// Camera objects (paper Section 3, Algorithm 1, lines 1-7).
//
// A camera is the global clock shared by every versioned CAS object of one
// data structure. takeSnapshot() reads the counter and attempts ONE CAS to
// bump it; if the CAS fails another takeSnapshot already bumped it, so the
// handle is valid either way. This is what makes snapshots constant-time.
//
// Beyond the paper's minimal interface, the camera lets a garbage collector
// compute the oldest snapshot any in-flight query might still read (used by
// version-list trimming; see versioned_cas.h). Pinning is optional — the
// paper's algorithm is the takeSnapshot/current pair alone.
//
// --- Snapshot pinning: refcount-packed eras (ROADMAP item 1) ---------------
//
// Clock time is chopped into ERAS. The camera's era word packs a 16-bit
// outer (acquire) count above a 48-bit pointer to the current Era record
// (vcas/era.h). The protocol:
//
//   pin       ONE unconditional seq_cst fetch_add of 2^48 on the era word.
//             Wait-free, no retry loop, no per-thread slot: the returned
//             word names the pinned era and bumps its outer count in the
//             same atomic step, so the era cannot be retired while the
//             bump is unbalanced. The handle is read AFTER the pin, and
//             the pinned era's `lower` was read from the clock BEFORE the
//             era was published, so lower <= handle always: an era with a
//             nonzero gap bounds every handle pinned under it.
//
//   unpin     fetch_add(1) on the pinned era's own sync word (the inner
//             count). If that made a CLOSED era balanced, this releaser —
//             exactly one observes the transition, because the final count
//             is frozen at close and inner rises monotonically toward it —
//             sweeps the era chain and EBR-retires the record.
//
//   roll      Piggybacked on takeSnapshot every kEraRollTicks clock ticks:
//             allocate a fresh Era stamped with the current clock, link it
//             behind the current one, then EXCHANGE the era word to point
//             at it. The exchange's return value carries the old era's
//             final outer count, which the roller publishes into the old
//             era's sync word together with the closed bit. Rolling is
//             serialized by a try-lock; losing simply defers to the next
//             snapshotter past the pacing threshold.
//
//   horizon   min_active() walks the short unretired-era chain — O(live
//             eras), typically one or two — instead of the old
//             O(slot_high_water) announcement scan. A closed era counts
//             iff its frozen gap is nonzero; the current era's gap is
//             sampled with a double-check (details at min_active) so the
//             result is exact when the camera is idle and merely
//             conservative under churn.
//
// Nested guards need no per-thread depth array anymore: each guard is an
// independent pin, and the oldest era stays live until its own releases
// balance. Abandoned pins are drained by the EBR dead-slot containment
// path (PR 8) through a per-slot pin ledger, so a corpse cannot stall the
// horizon forever; see drain_dead_pins.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "ebr/ebr.h"
#include "inject/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/annotations.h"
#include "util/padded.h"
#include "util/threading.h"
#include "vcas/era.h"

namespace vcas {

// Sentinel for VNodes whose timestamp has not been decided yet ("TBD" in
// the paper). Must compare less than every valid timestamp so that a
// readSnapshot can never mistake it for an old version; we guard against
// that by helping (initTS) before any traversal, but the ordering makes
// bugs loud.
inline constexpr Timestamp kTBD = std::numeric_limits<Timestamp>::min();

// "No active snapshot" sentinel (kept for callers that need an identity
// element when folding over handles; the announcement table that once
// stored it per slot is gone).
inline constexpr Timestamp kNoSnapshot = std::numeric_limits<Timestamp>::max();

// Era roll cadence in clock ticks. Small enough that an era's `lower`
// tracks the clock closely (a pinned era only holds trimming back by up to
// one cadence below the pin's actual handle), large enough that rolls —
// one allocation plus one exchange — are rare against the snapshot rate.
inline constexpr Timestamp kEraRollTicks = 64;

class Camera {
 public:
  // Token for one pin. Move-free value type: pass it back to unpin().
  class Pin {
   public:
    Pin() = default;
    explicit operator bool() const { return era_ != nullptr; }

   private:
    friend class Camera;
    Era* era_ = nullptr;
  };

  struct PinnedSnapshot {
    Pin pin;
    Timestamp ts = 0;
  };

  Camera() {
    Era* e = make_era(0);
    head_.store(e, std::memory_order_relaxed);
    era_word_.store(era_pack(e, 0), std::memory_order_release);
    obs::m::eras_live.add(1);
    ebr::register_dead_slot_hook(this, &Camera::dead_slot_hook);
  }

  ~Camera() {
    // Unregister first: after this returns no dead-slot drain can touch
    // our ledgers or eras (hooks run under the registry mutex).
    ebr::unregister_dead_slot_hook(this);
    // Teardown is quiescent by contract (no pins, no concurrent rolls);
    // whatever the sweeps have not yet handed to EBR is freed here.
    int n = 0;
    Era* e = head_.load(std::memory_order_relaxed);
    while (e != nullptr) {
      Era* const next = e->next.load(std::memory_order_relaxed);
      delete e;
      ++n;
      e = next;
    }
    obs::m::eras_live.add(-n);
  }

  Camera(const Camera&) = delete;
  Camera& operator=(const Camera&) = delete;

  // O(1): one read + at most one CAS. Returns the handle; versions written
  // while the counter still reads `handle` belong to this snapshot.
  //
  // The handle is the LOADED value, never the CAS's failure write-back:
  // compare_exchange_strong overwrites `expected` with the current counter
  // when it fails, and returning that would hand out a handle EQUAL to the
  // clock — in-flight writes would keep stamping <= the handle and the
  // "snapshot" would absorb updates for as long as the clock sat still
  // (torn cross-object reads, unstable re-reads; caught by the TSan trim
  // stress). Returning the loaded value is correct either way: on CAS
  // success the clock is now ts + 1, and on failure some concurrent
  // takeSnapshot already moved it past ts — the postcondition
  // "clock > handle" holds before this function returns.
  Timestamp takeSnapshot() {
    const Timestamp ts =
        timestamp_.load(std::memory_order_seq_cst) VCAS_ORD("cam.clock");
    Timestamp expected = ts;
    timestamp_.compare_exchange_strong(expected, ts + 1,
                                       std::memory_order_seq_cst)
        VCAS_ORD("cam.clock");
    obs::m::snapshots_taken.add();
    obs::trace_instant(obs::Ev::kTakeSnapshot,
                       static_cast<std::uint32_t>(ts));
    // Era roll-forward rides on the snapshot path: the clock word stays
    // hot-path-only (one load, one CAS) and pin traffic lives on the era
    // word a cache line away.
    if (ts - last_roll_.load(std::memory_order_relaxed) >= kEraRollTicks) {
      maybe_roll();
    }
    return ts;
  }

  // Current clock value; what initTS stamps into a freshly appended VNode.
  Timestamp current() const {
    return timestamp_.load(std::memory_order_seq_cst) VCAS_ORD("cam.clock");
  }

  std::atomic<Timestamp>& counter() { return timestamp_; }

  // --- snapshot pinning (GC extension) ---

  // Wait-free pin: one unconditional fetch_add, never a retry. The seq_cst
  // RMW both joins the current era (pointer bits) and publishes the join
  // (count bits) in a single step — the reason a min_active that read our
  // era's gap as zero must, by the seq_cst order S, have loaded the clock
  // before we did, making its horizon <= our coming handle. The outer
  // count wraps mod 2^16 through the word's natural carry-out; balance
  // math is mod-2^16 gaps throughout (vcas/era.h).
  Pin pin() {
    const std::uint64_t w =
        era_word_.fetch_add(kEraPinIncrement, std::memory_order_seq_cst)
            VCAS_ORD("cam.era.pin");
    Pin p;
    p.era_ = era_ptr(w);
    ledger_add(p.era_);
    obs::m::pin_fastpath.add();
    return p;
  }

  // Release a pin. If this balanced a closed era, the caller retires it.
  void unpin(Pin& p) {
    assert(p.era_ != nullptr && "unpin without a matching pin");
    Era* const e = p.era_;
    p.era_ = nullptr;
    ledger_remove(e);
    release_era(e, 1);
  }

  // Pin, then take the snapshot the pin protects. The pinned era's lower
  // bound was read from the clock before the era was published, so
  // lower <= ts: min_active can never rise past a handle returned here
  // while its pin is held.
  PinnedSnapshot pin_and_snapshot() {
    PinnedSnapshot ps;
    ps.pin = pin();
    ps.ts = takeSnapshot();
    return ps;
  }

  // Oldest snapshot any pinned query may still be reading. Every version
  // with timestamp strictly below this — except the newest such version per
  // object — is unreachable by all current and future readSnapshots.
  //
  // Cost: O(live eras) — the unretired chain, typically one or two nodes —
  // independent of thread count and slot_high_water(). Safety argument,
  // recorded because trimming against a too-high horizon would free
  // versions a live reader still needs:
  //   * Closed eras: the final outer count is frozen, so gap != 0 is an
  //     exact statement that a pin is outstanding; its handle is >= the
  //     era's lower, which we include.
  //   * The current era needs care: with only a sampled outer count, a
  //     concurrent pin+unpin pair (pin AFTER our era-word load, release
  //     BEFORE our sync load) could alias an OLDER outstanding pin to
  //     gap 0. The double-check below closes that hole: we re-load the era
  //     word after the sync read, and if it is unchanged — same era, same
  //     outer count — then no pin landed in the window, so every release
  //     the sync read saw belongs to a pin our outer sample already
  //     counted, and the gap is exact. If the word moved we retry, and
  //     after a few failures fall back to conservatively including both
  //     observed eras' lower bounds (safe: lower only under-estimates).
  //   * A pin whose RMW follows our final era-word load in the seq_cst
  //     order S also follows our clock load (program order within S), so
  //     its takeSnapshot handle is >= our clock value >= the returned
  //     horizon — exactly the old announcement-scan argument, now carried
  //     by the RMWs themselves with no standalone fence.
  Timestamp min_active() const {
    // Era records are EBR-retired; the chain walk may cross a node that a
    // concurrent sweep already unlinked.
    ebr::Guard g;
    const Timestamp clock =
        timestamp_.load(std::memory_order_seq_cst) VCAS_ORD("cam.minactive.scan");
    Timestamp min = clock;
    std::uint64_t w =
        era_word_.load(std::memory_order_seq_cst) VCAS_ORD("cam.minactive.scan");
    for (int attempt = 0;; ++attempt) {
      Era* const cur = era_ptr(w);
      const std::uint64_t sync = cur->sync.load(std::memory_order_acquire);
      const std::uint64_t w2 = era_word_.load(std::memory_order_seq_cst)
          VCAS_ORD("cam.minactive.scan");
      if (w2 == w) {
        if (era_gap(era_outer(w), sync) != 0 && cur->lower < min) {
          min = cur->lower;
        }
        break;
      }
      w = w2;
      if (attempt == 2) {
        // Pin/roll churn: give up on exactness, stay conservative.
        if (cur->lower < min) min = cur->lower;
        if (era_ptr(w)->lower < min) min = era_ptr(w)->lower;
        break;
      }
    }
    Era* const stop = era_ptr(w);
    for (Era* e = head_.load(std::memory_order_acquire);
         e != nullptr && e != stop;
         e = e->next.load(std::memory_order_acquire)) {
      const std::uint64_t sync = e->sync.load(std::memory_order_acquire);
      // Not-closed mid-roll eras are counted conservatively; closed eras
      // count iff their frozen gap says a pin is still out.
      if (!era_closed(sync) || era_gap(era_final(sync), sync) != 0) {
        if (e->lower < min) min = e->lower;
      }
    }
    // Telemetry: how far the trim horizon lags the clock, in ticks. `min`
    // starts at the clock load and only decreases, so the lag is >= 0.
    VCAS_OBS(obs::m::min_active_lag.record(
        static_cast<std::uint64_t>(clock - min)));
    return min;
  }

  // Outstanding snapshot pins across all live eras — the replacement for
  // the old announced-slot occupancy in StatsSnapshot. Racy-by-design
  // telemetry read; exact once pinners quiesce.
  int live_pins() const {
    ebr::Guard g;
    const std::uint64_t w = era_word_.load(std::memory_order_acquire);
    int pins = 0;
    for (Era* e = head_.load(std::memory_order_acquire); e != nullptr;
         e = e->next.load(std::memory_order_acquire)) {
      const std::uint64_t sync = e->sync.load(std::memory_order_acquire);
      if (e == era_ptr(w)) {
        pins += era_gap(era_outer(w), sync);
        break;
      }
      if (era_closed(sync)) pins += era_gap(era_final(sync), sync);
    }
    return pins;
  }

  // Unretired era records (the chain min_active walks). Test/debug aid;
  // exact when quiescent.
  int eras_live() const {
    ebr::Guard g;
    int n = 0;
    for (Era* e = head_.load(std::memory_order_acquire); e != nullptr;
         e = e->next.load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }

 private:
  // The only place an Era is allocated (reclamation manifest: factory).
  static Era* make_era(Timestamp lower) {
    Era* e = new Era;
    e->lower = lower;
    return e;
  }

  bool try_lock_chain() {
    bool expected = false;
    return chain_lock_.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)
        VCAS_ORD("cam.era.roll");
  }

  // Roll the camera onto a fresh era, close the old one, and sweep.
  // Serialized by the chain try-lock; a loser just returns — any later
  // takeSnapshot past the pacing threshold rolls instead. NOTHING that can
  // park (failpoints) or re-enter EBR runs while the lock is held, so a
  // dead lock-holder is impossible by construction and the lock needs no
  // recovery path.
  void maybe_roll() {
    // Failpoint sits BEFORE the try-lock on purpose (placement rule:
    // no site under a lock). A victim abandoned here has simply not
    // rolled; its own pins are drained by dead-slot containment.
    VCAS_FAILPOINT("cam.era.roll");
    if (!try_lock_chain()) return;
    Era* const cur = era_ptr(era_word_.load(std::memory_order_acquire));
    const Timestamp now = current();
    // Re-check pacing under the lock against the CURRENT era's open time:
    // a racing snapshotter may have rolled between our pacing check and
    // the lock acquisition.
    if (now - cur->lower >= kEraRollTicks) {
      Era* const fresh = make_era(now);
      // Link BEFORE the exchange: a min_active walk that observed the new
      // era word must find `fresh` reachable from the chain.
      cur->next.store(fresh, std::memory_order_release);
      const std::uint64_t old =
          era_word_.exchange(era_pack(fresh, 0), std::memory_order_seq_cst)
              VCAS_ORD("cam.era.roll");
      // `old` carries cur's final outer count — no pin can land on cur
      // after the exchange — so the close publishes an immutable balance
      // target together with the closed bit, in one RMW.
      cur->sync.fetch_add(era_close_delta(era_outer(old)),
                          std::memory_order_acq_rel)
          VCAS_ORD("cam.era.close");
      last_roll_.store(now, std::memory_order_relaxed);
      obs::m::era_rolls.add();
      obs::m::eras_live.add(1);
    }
    sweep_chain_then_unlock();
  }

  // Release `count` pins on era `e` (the slow half of unpin, shared with
  // the dead-slot drain's bookkeeping — though the drain itself bumps sync
  // directly; see drain_dead_pins for why).
  void release_era(Era* e, std::uint64_t count) {
    const std::uint64_t sync =
        e->sync.fetch_add(count, std::memory_order_acq_rel)
            VCAS_ORD("cam.era.release") +
        count;
    if (era_balanced(sync)) {
      // We balanced a closed era: the final count is frozen and inner
      // rises monotonically toward it, so exactly one releaser observes
      // this transition — it owns the retirement.
      VCAS_FAILPOINT("cam.era.retire");
      if (try_lock_chain()) sweep_chain_then_unlock();
      // try-lock miss: the balanced sync word is durable state; whoever
      // holds the lock next (roll or another balancer) sweeps the node.
    }
  }

  // Caller holds chain_lock_. Unlinks every closed+balanced era — head or
  // middle — then releases the lock, and only THEN hands the unlinked
  // records to EBR: retirement can scan (and scans carry a failpoint), so
  // it must never run under the lock.
  void sweep_chain_then_unlock() {
    Era* const cur = era_ptr(era_word_.load(std::memory_order_acquire));
    Era* reclaimed[8];  // per-pass cap; a later sweep continues the rest
    int n = 0;
    Era* prev = nullptr;
    Era* e = head_.load(std::memory_order_relaxed);
    while (e != cur && e != nullptr &&
           n < static_cast<int>(sizeof(reclaimed) / sizeof(reclaimed[0]))) {
      Era* const next = e->next.load(std::memory_order_relaxed);
      if (era_balanced(e->sync.load(std::memory_order_acquire))) {
        if (prev == nullptr) {
          head_.store(next, std::memory_order_release);
        } else {
          prev->next.store(next, std::memory_order_release);
        }
        // e->next stays intact: in-flight walkers cross the node.
        reclaimed[n++] = e;
      } else {
        prev = e;
      }
      e = next;
    }
    chain_lock_.store(false, std::memory_order_release);
    if (n > 0) {
      obs::m::eras_live.add(-n);
      for (int i = 0; i < n; ++i) ebr::retire(reclaimed[i]);
    }
  }

  // --- pin ledger: dead-slot containment for abandoned pins ---
  //
  // Plain (non-atomic) per-slot records of the pins the slot's tenant
  // currently holds. Owner-only writes; the one foreign reader is the EBR
  // dead-slot hook, which runs strictly after the dead tenant's last write
  // (declare_self_dead's release store + the tenure-end claim) and
  // strictly before the slot can be re-tenanted — the same
  // publish-by-tenure idiom the EBR limbo bags use.

  static constexpr int kPinLedgerCap = 16;

  struct LedgerEntry {
    Era* era = nullptr;
    std::uint32_t count = 0;
  };
  struct PinLedger {
    LedgerEntry entries[kPinLedgerCap];
  };

  void ledger_add(Era* e) {
    PinLedger& led = ledger_[util::thread_slot()].value;
    LedgerEntry* free_entry = nullptr;
    for (auto& entry : led.entries) {
      if (entry.era == e && entry.count > 0) {
        ++entry.count;
        return;
      }
      if (entry.count == 0 && free_entry == nullptr) free_entry = &entry;
    }
    if (free_entry == nullptr) {
      // One thread holding pins on >16 distinct eras means guards are
      // leaking across ~16 roll cadences — a bug worth dying loudly for.
      std::fprintf(stderr,
                   "vcas: pin ledger overflow (pins on > %d eras)\n",
                   kPinLedgerCap);
      std::abort();
    }
    free_entry->era = e;
    free_entry->count = 1;
  }

  void ledger_remove(Era* e) {
    PinLedger& led = ledger_[util::thread_slot()].value;
    for (auto& entry : led.entries) {
      if (entry.era == e && entry.count > 0) {
        if (--entry.count == 0) entry.era = nullptr;
        return;
      }
    }
    assert(false && "unpin of an era this thread holds no pin on");
  }

  static void dead_slot_hook(void* ctx, int slot) {
    static_cast<Camera*>(ctx)->drain_dead_pins(slot);
  }

  // Runs on whatever thread won the dead slot's tenure end (ebr.cc stall
  // containment, PR 8). Drains the corpse's outstanding pins so the
  // horizon un-sticks: the bare inner bumps are all recovery needs —
  // min_active skips a balanced era whether or not it is still linked.
  // Deliberately NO sweep, NO retire, NO locks here: this runs under the
  // hook registry mutex, and an EBR scan (with its failpoint) must never
  // execute there. The next chain-lock holder reclaims the node memory.
  void drain_dead_pins(int slot) {
    PinLedger& led = ledger_[slot].value;
    for (auto& entry : led.entries) {
      if (entry.count == 0) continue;
      // The era cannot have been retired: the dead tenant's pins kept its
      // gap nonzero until this very bump.
      entry.era->sync.fetch_add(entry.count, std::memory_order_acq_rel)
          VCAS_ORD("cam.era.release");
      entry.era = nullptr;
      entry.count = 0;
    }
  }

  // Clock line: every takeSnapshot hits it; last_roll_ shares it on
  // purpose (read each snapshot, written once per roll by a snapshotter
  // that owns the line anyway).
  alignas(util::kCacheLine) std::atomic<Timestamp> timestamp_{0};
  std::atomic<Timestamp> last_roll_{0};
  // Pin traffic gets its own line so pins never contend with the clock.
  alignas(util::kCacheLine) std::atomic<std::uint64_t> era_word_{0};
  // Chain bookkeeping (rolls, sweeps, horizon walks) off the hot lines.
  alignas(util::kCacheLine) std::atomic<Era*> head_{nullptr};
  std::atomic<bool> chain_lock_{false};
  util::Padded<PinLedger> ledger_[util::kMaxThreads];
};

}  // namespace vcas
