// Camera objects (paper Section 3, Algorithm 1, lines 1-7).
//
// A camera is the global clock shared by every versioned CAS object of one
// data structure. takeSnapshot() reads the counter and attempts ONE CAS to
// bump it; if the CAS fails another takeSnapshot already bumped it, so the
// handle is valid either way. This is what makes snapshots constant-time.
//
// Beyond the paper's minimal interface, the camera carries a per-thread
// announcement table so a garbage collector can compute the oldest snapshot
// any in-flight query might still read (used by version-list trimming; see
// versioned_cas.h). Announcing is optional — the paper's algorithm is the
// takeSnapshot/current pair alone.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/annotations.h"
#include "util/padded.h"
#include "util/threading.h"

namespace vcas {

using Timestamp = std::int64_t;

// Sentinel for VNodes whose timestamp has not been decided yet ("TBD" in
// the paper). Must compare less than every valid timestamp so that a
// readSnapshot can never mistake it for an old version; we guard against
// that by helping (initTS) before any traversal, but the ordering makes
// bugs loud.
inline constexpr Timestamp kTBD = std::numeric_limits<Timestamp>::min();

// Announcement slot value meaning "no active snapshot on this thread".
inline constexpr Timestamp kNoSnapshot = std::numeric_limits<Timestamp>::max();

class Camera {
 public:
  Camera() {
    for (auto& a : announce_) a.value.store(kNoSnapshot, std::memory_order_relaxed);
    for (auto& d : announce_depth_) d.value = 0;
  }

  Camera(const Camera&) = delete;
  Camera& operator=(const Camera&) = delete;

  // O(1): one read + at most one CAS. Returns the handle; versions written
  // while the counter still reads `handle` belong to this snapshot.
  //
  // The handle is the LOADED value, never the CAS's failure write-back:
  // compare_exchange_strong overwrites `expected` with the current counter
  // when it fails, and returning that would hand out a handle EQUAL to the
  // clock — in-flight writes would keep stamping <= the handle and the
  // "snapshot" would absorb updates for as long as the clock sat still
  // (torn cross-object reads, unstable re-reads; caught by the TSan trim
  // stress). Returning the loaded value is correct either way: on CAS
  // success the clock is now ts + 1, and on failure some concurrent
  // takeSnapshot already moved it past ts — the postcondition
  // "clock > handle" holds before this function returns.
  Timestamp takeSnapshot() {
    const Timestamp ts =
        timestamp_.load(std::memory_order_seq_cst) VCAS_ORD("cam.clock");
    Timestamp expected = ts;
    timestamp_.compare_exchange_strong(expected, ts + 1,
                                       std::memory_order_seq_cst)
        VCAS_ORD("cam.clock");
    obs::m::snapshots_taken.add();
    obs::trace_instant(obs::Ev::kTakeSnapshot,
                       static_cast<std::uint32_t>(ts));
    return ts;
  }

  // Current clock value; what initTS stamps into a freshly appended VNode.
  Timestamp current() const {
    return timestamp_.load(std::memory_order_seq_cst) VCAS_ORD("cam.clock");
  }

  std::atomic<Timestamp>& counter() { return timestamp_; }

  // --- announcement support (GC extension) ---

  // Publish intent to snapshot, then take one. The announced value is a
  // lower bound on the handle actually used, which is all min_active()
  // needs: announcing low only makes trimming more conservative.
  //
  // The announcement slot is reference-counted per thread: nested
  // announce/clear pairs on one thread keep the OUTERMOST (oldest)
  // announcement published, so min_active() never rises past a pin an
  // enclosing query still relies on. This makes nested SnapshotGuard use
  // safe even with version-list trimming enabled (previously a documented
  // silent hazard: the inner guard overwrote the outer pin).
  Timestamp announce_and_snapshot() {
    const int slot = util::thread_slot();
    if (announce_depth_[slot].value++ == 0) {
      announce_[slot].value.store(timestamp_.load(std::memory_order_seq_cst),
                                  std::memory_order_seq_cst)
          VCAS_ORD("cam.announce.publish");
    }
    return takeSnapshot();
  }

  void clear_announcement() {
    const int slot = util::thread_slot();
    assert(announce_depth_[slot].value > 0 &&
           "clear_announcement without a matching announce_and_snapshot");
    if (--announce_depth_[slot].value == 0) {
      announce_[slot].value.store(kNoSnapshot, std::memory_order_release);
    }
  }

  // Oldest snapshot any announced query may still be reading. Every version
  // with timestamp strictly below this — except the newest such version per
  // object — is unreachable by all current and future readSnapshots.
  //
  // Scan cost (audited for ISSUE 4): only slots that have ever been claimed
  // are visited (util::slot_high_water), and the per-slot loads are acquire
  // behind ONE seq_cst fence instead of kMaxThreads seq_cst loads. Safety
  // argument, recorded because trimming against a too-high horizon would
  // free versions a live reader still needs:
  //   * A slot above the high-water mark has never been claimed, so its
  //     announcement is the initial kNoSnapshot — skipping it reads the
  //     same value. A first-time claimant bumps the mark with a seq_cst RMW
  //     before its first announcement; if this scan's mark load (seq_cst)
  //     missed the bump, the bump — and therefore the claimant's later
  //     announcement store and later takeSnapshot clock read — follows this
  //     scan's earlier clock load in the seq_cst order S, so the missed
  //     reader's handle is >= our clock read >= the returned horizon.
  //   * For a visited slot, the announcer's store is seq_cst and the fence
  //     below is seq_cst, so they are ordered in S. Store before fence:
  //     the acquire load after the fence must observe it ([atomics.order]:
  //     a load that follows a seq_cst fence cannot read a value overwritten
  //     before an S-earlier store). Fence before store: the announcer's
  //     takeSnapshot clock read follows the fence — hence our clock load —
  //     in S, and same-location seq_cst reads are monotone along S, so its
  //     handle is >= our clock read >= the horizon. Either way no announced
  //     reader's handle is below the returned value.
  Timestamp min_active() const {
    Timestamp min = timestamp_.load(std::memory_order_seq_cst)
        VCAS_ORD("cam.minactive.scan");
    std::atomic_thread_fence(std::memory_order_seq_cst)
        VCAS_ORD("cam.minactive.scan");
    const int live = util::slot_high_water();
    for (int i = 0; i < live; ++i) {
      const Timestamp t = announce_[i].value.load(std::memory_order_acquire);
      if (t < min) min = t;
    }
    // Telemetry: how far the trim horizon lags the clock, in ticks. `min`
    // starts at the clock load and only decreases, so the lag is >= 0.
    VCAS_OBS(obs::m::min_active_lag.record(static_cast<std::uint64_t>(
        timestamp_.load(std::memory_order_relaxed) - min)));
    return min;
  }

  // Occupied announcement slots right now (queries currently holding a
  // published snapshot pin). Racy-by-design telemetry read.
  int announced_slots() const {
    int n = 0;
    const int live = util::slot_high_water();
    for (int i = 0; i < live; ++i) {
      if (announce_[i].value.load(std::memory_order_relaxed) != kNoSnapshot) {
        ++n;
      }
    }
    return n;
  }

 private:
  alignas(util::kCacheLine) std::atomic<Timestamp> timestamp_{0};
  util::Padded<std::atomic<Timestamp>> announce_[util::kMaxThreads];
  // Nesting depth of announcements; only ever touched by the owning thread.
  util::Padded<int> announce_depth_[util::kMaxThreads];
};

}  // namespace vcas
