// Indirection-free versioned pointers (paper Section 5 "Avoiding
// Indirection", Figure 9, Appendix G).
//
// When a data structure is *recorded-once* — every node is the new value of
// a successful vCAS at most once, and equal new values imply equal old
// values — the version bookkeeping (nextv, ts) can live inside the pointed-
// to nodes instead of separate VNodes, saving one cache miss per access.
// Nodes opt in by inheriting Versioned<Node>, and mutable links become
// VersionedPtr<Node> fields.
//
// Sharing of version fields across lists is benign: a node nd can appear in
// a second object's version list only as that object's *initial* value, and
// Appendix G shows no readSnapshot ever follows the nextv of the last
// version it needs (a query holding handle h only reaches an object created
// at time t <= h, so the initial version's ts <= h stops the walk).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "util/annotations.h"
#include "vcas/camera.h"

namespace vcas {

namespace detail {
// Distinguished non-null, non-dereferenceable pointer standing for "next
// version not yet decided" ("invalidNextv" in Figure 9). Real nodes are
// aligned, so address 0x1 can never collide.
template <typename Node>
Node* invalid_nextv() {
  return reinterpret_cast<Node*>(std::uintptr_t{1});
}
}  // namespace detail

// CRTP mix-in adding the two per-node version fields of Figure 9.
template <typename Derived>
struct Versioned {
  std::atomic<Derived*> vcas_nextv{detail::invalid_nextv<Derived>()};
  std::atomic<Timestamp> vcas_ts{kTBD};

  // Reset for reuse after a *failed, never-published* vCAS attempt. Calling
  // this on a node that was ever installed is a correctness bug.
  void reset_version_fields() {
    vcas_nextv.store(detail::invalid_nextv<Derived>(),
                     std::memory_order_relaxed);
    vcas_ts.store(kTBD, std::memory_order_relaxed);
  }
};

// A versioned CAS object over Node* values with the version list threaded
// through the nodes themselves. Node must derive from Versioned<Node>.
template <typename Node>
class VersionedPtr {
 public:
  VersionedPtr() : head_(nullptr), camera_(nullptr) {}

  // Figure 9 constructor: stamp the initial node (idempotent if it already
  // carries a timestamp from a previous life — the copy-on-delete case) and
  // terminate its version chain if fresh.
  VersionedPtr(Node* initial, Camera* camera)
      : head_(initial), camera_(camera) {
    if (initial != nullptr) {
      init_nextv(initial);
      initTS(initial);
    }
  }

  // Deferred init for nodes whose links are set after allocation. Must
  // happen before the owning node is published.
  void init(Node* initial, Camera* camera) {
    camera_ = camera;
    head_.store(initial, std::memory_order_relaxed);
    if (initial != nullptr) {
      init_nextv(initial);
      initTS(initial);
    }
  }

  VersionedPtr(const VersionedPtr&) = delete;
  VersionedPtr& operator=(const VersionedPtr&) = delete;

  // Figure 9 OptvRead. O(1).
  Node* vRead() {
    Node* head =
        head_.load(std::memory_order_seq_cst) VCAS_ORD("vptr.head.read");
    if (head != nullptr) initTS(head);
    return head;
  }

  // Plain read of the current head with no helping. Only for destructors /
  // quiescent traversals.
  Node* read_unsynchronized() const {
    return head_.load(std::memory_order_relaxed);
  }

  // Figure 9 OptvCAS. new_v must be a fresh (never-installed) node or null;
  // the recorded-once property is the caller's obligation.
  //
  // On failure new_v's nextv may have been set (to old_v) but new_v was not
  // published. A helper racing on the SAME new_v (the help_insert pattern)
  // writes the same old_v, so the write is benign; a caller reusing a
  // private failed node for a different target must reset_version_fields()
  // first.
  bool vCAS(Node* old_v, Node* new_v) {
    Node* head =
        head_.load(std::memory_order_seq_cst) VCAS_ORD("vptr.head.read");
    if (head != nullptr) initTS(head);
    if (head != old_v) return false;
    if (new_v == old_v) return true;
    if (new_v != nullptr) {
      // Not yet published (and any concurrent helper writes this same
      // value), so a relaxed store suffices.
      new_v->vcas_nextv.store(head, std::memory_order_relaxed);
    }
    if (head_.compare_exchange_strong(head, new_v,
                                      std::memory_order_seq_cst)
            VCAS_ORD("vptr.head.install")) {
      if (new_v != nullptr) initTS(new_v);
      return true;
    }
    Node* cur =
        head_.load(std::memory_order_seq_cst) VCAS_ORD("vptr.head.read");
    if (cur != nullptr) initTS(cur);
    return false;
  }

  // Figure 9 OptreadSnapshot. Wait-free; walk length = #successful vCASes
  // on this object stamped after ts.
  Node* readSnapshot(Timestamp ts) {
    Node* node =
        head_.load(std::memory_order_seq_cst) VCAS_ORD("vptr.head.read");
    if (node != nullptr) initTS(node);
    while (node != nullptr &&
           node->vcas_ts.load(std::memory_order_acquire) > ts) {
      node = node->vcas_nextv.load(std::memory_order_acquire);
      assert(node != detail::invalid_nextv<Node>() &&
             "readSnapshot hit an uninitialized version link: snapshot "
             "handle predates this object (precondition violation)");
    }
    return node;
  }

  // Version-list length from the current head (test/bench helper).
  std::size_t version_count() const {
    std::size_t n = 0;
    for (Node* node = head_.load(std::memory_order_acquire);
         node != nullptr && node != detail::invalid_nextv<Node>();
         node = node->vcas_nextv.load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }

 private:
  // Figure 9 initNextv: terminate the chain of a node used as an initial
  // value. If the node already belongs to another object's list the CAS
  // fails, which is exactly right (Appendix G: it is then the *last*
  // version this object ever exposes to any query).
  static void init_nextv(Node* n) {
    Node* expected = detail::invalid_nextv<Node>();
    n->vcas_nextv.compare_exchange_strong(expected, nullptr,
                                          std::memory_order_seq_cst)
        VCAS_ORD("vptr.init-nextv");
  }

  void initTS(Node* n) {
    if (n->vcas_ts.load(std::memory_order_acquire) == kTBD) {
      Timestamp cur = camera_->current();
      Timestamp expected = kTBD;
      n->vcas_ts.compare_exchange_strong(expected, cur,
                                         std::memory_order_seq_cst)
          VCAS_ORD("vptr.stamp");
    }
  }

  std::atomic<Node*> head_;
  Camera* camera_;
};

}  // namespace vcas
