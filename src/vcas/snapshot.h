// RAII snapshot handles.
//
// A multi-point query (paper Section 4) is: take a snapshot, then run the
// sequential read-only algorithm over readSnapshot() reads. SnapshotGuard
// bundles the three things every such query needs:
//   1. an EBR pin, so nodes unlinked mid-query stay readable,
//   2. an era-pinned takeSnapshot, so version-list trimming (the GC
//      extension) never reclaims versions this query can still reach,
//   3. the handle itself.
//
// Nested guards on one thread are independent era pins (no per-thread
// depth bookkeeping): the outer guard's era stays unbalanced — and the
// horizon bounded by it — until the outer guard itself is destroyed,
// regardless of how many inner guards come and go.
#pragma once

#include "ebr/ebr.h"
#include "obs/metrics.h"
#include "vcas/camera.h"

namespace vcas {

class SnapshotGuard {
 public:
  explicit SnapshotGuard(Camera& camera)
      : camera_(camera), pinned_(camera.pin_and_snapshot()) {
    obs::m::guards_taken.add();
    obs::m::guards_active.add(1);
  }

  ~SnapshotGuard() {
    camera_.unpin(pinned_.pin);
    obs::m::guards_active.add(-1);
  }

  SnapshotGuard(const SnapshotGuard&) = delete;
  SnapshotGuard& operator=(const SnapshotGuard&) = delete;

  Timestamp ts() const { return pinned_.ts; }

 private:
  ebr::Guard ebr_;  // pinned for the guard's full lifetime
  Camera& camera_;
  Camera::PinnedSnapshot pinned_;
};

}  // namespace vcas
