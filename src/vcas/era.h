// Refcount-packed snapshot eras (ROADMAP item 1, atomsnap-style pinning).
//
// One Era represents a window of clock time during which snapshot pins
// accumulate on a single 64-bit word: the camera's era word packs a 16-bit
// outer (acquire) count into the UPPER bits of a 48-bit pointer to the
// current Era record. A reader pins with ONE unconditional fetch_add of
// 2^48 — the returned word carries both the Era pointer and the acquire
// count the pin joined, atomically, so there is no window in which a
// freshly pinned era can be mistaken for reclaimable. Releases bump the
// era's own inner count; once an era is CLOSED (a roll captured its final
// outer count into the sync word) the releaser that balances
// outer == inner hands the record to EBR. See vcas/camera.h for the
// protocol; this header is the record layout and the packing arithmetic.
//
// The two documented pitfalls of this packing, both guarded by tests
// (camera_test.cc):
//   * 48-bit addresses: x86-64 / aarch64 Linux user pointers fit in 48
//     bits today; the static_assert plus the runtime check in era_pack
//     make a 57-bit-address future (LA57 with a high heap) fail loudly
//     instead of silently corrupting the outer count.
//   * uint16 wraparound: the outer count wraps mod 2^16 through the
//     fetch_add's natural carry out of the 64-bit word. Balance
//     arithmetic therefore only ever compares mod-2^16 GAPS, never
//     totals — sound because the outstanding gap is bounded by
//     kMaxThreads * nesting depth, far below 2^16, while the running
//     totals may wrap freely.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

namespace vcas {

using Timestamp = std::int64_t;

struct Era {
  // Clock value loaded immediately before this era was published: a lower
  // bound on the handle of every snapshot pinned under it (the clock is
  // monotone and a pinner loads its handle only after its pin landed).
  Timestamp lower = 0;
  // [final_outer:16 | closed:1 | inner:47]. inner counts releases; final
  // and the closed bit are published together, once, by the roll that
  // ended the era (era_close_delta). 47 bits of inner cannot carry into
  // the closed bit within any realistic process lifetime.
  std::atomic<std::uint64_t> sync{0};
  // Toward newer eras (the oldest-first chain hanging off Camera::head_).
  // Unlinking keeps a retired node's next intact so an in-flight
  // min_active walk crosses it instead of dead-ending.
  std::atomic<Era*> next{nullptr};
};

// --- era-word packing: [outer:16 | Era*:48] ----------------------------------

inline constexpr int kEraCountShift = 48;
inline constexpr std::uint64_t kEraPinIncrement = std::uint64_t{1}
                                                  << kEraCountShift;
inline constexpr std::uint64_t kEraPtrMask = kEraPinIncrement - 1;

static_assert(sizeof(void*) == 8, "era-word packing needs 64-bit pointers");

inline std::uint64_t era_pack(Era* e, std::uint16_t outer) {
  const auto bits = reinterpret_cast<std::uintptr_t>(e);
  assert((bits & ~kEraPtrMask) == 0 &&
         "Era allocated above 2^48: the era-word packing assumes 48-bit "
         "user-space addresses (see the header comment)");
  return (std::uint64_t{outer} << kEraCountShift) | bits;
}

inline Era* era_ptr(std::uint64_t word) {
  return reinterpret_cast<Era*>(word & kEraPtrMask);
}

inline std::uint16_t era_outer(std::uint64_t word) {
  return static_cast<std::uint16_t>(word >> kEraCountShift);
}

// --- sync-word packing: [final_outer:16 | closed:1 | inner:47] ---------------

inline constexpr std::uint64_t kEraClosedBit = std::uint64_t{1} << 47;
inline constexpr std::uint64_t kEraInnerMask = kEraClosedBit - 1;

inline bool era_closed(std::uint64_t sync) {
  return (sync & kEraClosedBit) != 0;
}

inline std::uint64_t era_inner(std::uint64_t sync) {
  return sync & kEraInnerMask;
}

inline std::uint16_t era_final(std::uint64_t sync) {
  return static_cast<std::uint16_t>(sync >> kEraCountShift);
}

// The constant a roll adds to sync: publishes the final outer count and
// the closed bit in one RMW, so a releaser either sees neither or both.
inline std::uint64_t era_close_delta(std::uint16_t final_outer) {
  return (std::uint64_t{final_outer} << kEraCountShift) | kEraClosedBit;
}

// Outstanding pins = acquires - releases, computed mod 2^16 (wraparound
// note above). Exact whenever `outer` is the era's authoritative count:
// the frozen final of a closed era, or a current-era sample validated by
// the double-check in Camera::min_active.
inline std::uint16_t era_gap(std::uint16_t outer, std::uint64_t sync) {
  return static_cast<std::uint16_t>(
      outer - static_cast<std::uint16_t>(era_inner(sync)));
}

// A closed era whose releases balanced its final acquire count: no pin on
// it can exist, its lower bound no longer constrains the horizon, and the
// record may be unlinked and EBR-retired.
inline bool era_balanced(std::uint64_t sync) {
  return era_closed(sync) && era_gap(era_final(sync), sync) == 0;
}

}  // namespace vcas
