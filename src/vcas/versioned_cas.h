// Versioned CAS objects (paper Section 3.1, Algorithm 1).
//
// A VersionedCAS<T> behaves like std::atomic<T> restricted to read/CAS, and
// additionally answers "what was your value when snapshot ts was taken?".
// Internally it is a singly-linked version list, newest first; each VNode
// carries the value and the camera timestamp of the vCAS that installed it.
//
// The crux (paper Section 3.1, "Helping"): a successful vCAS must appear to
// (1) append its node, (2) read the global clock, (3) record the timestamp —
// atomically. The node is appended with ts = TBD and *every* operation that
// observes a TBD head calls initTS to install a timestamp before relying on
// it; the vCAS linearizes at the clock read of whichever initTS wins.
//
// Extension beyond the paper's pseudocode: optional version-list trimming.
// Old versions below the camera's min_active() announcement can never be
// read again, so they may be detached and EBR-retired (see trim()).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <utility>

#include "ebr/ebr.h"
#include "vcas/camera.h"

namespace vcas {

template <typename T>
class VersionedCAS {
 public:
  struct VNode {
    T val;                     // immutable once initialized
    std::atomic<VNode*> nextv; // next older version; written once by vCAS,
                               // then only by trim() at the pivot
    std::atomic<Timestamp> ts; // TBD until initTS installs a clock value

    VNode(T v, VNode* next) : val(v), nextv(next), ts(kTBD) {}
  };

  // Precondition (paper, Initialization): the camera's constructor has
  // completed. The initial version is stamped immediately so that every
  // snapshot taken after construction can read it.
  VersionedCAS(T initial, Camera* camera)
      : vhead_(new VNode(initial, nullptr)), camera_(camera) {
    initTS(vhead_.load(std::memory_order_relaxed));
  }

  VersionedCAS(const VersionedCAS&) = delete;
  VersionedCAS& operator=(const VersionedCAS&) = delete;

  ~VersionedCAS() {
    VNode* node = vhead_.load(std::memory_order_relaxed);
    while (node != nullptr) {
      VNode* next = node->nextv.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  // Algorithm 1, lines 36-39. O(1).
  T vRead() {
    VNode* head = vhead_.load(std::memory_order_seq_cst);
    initTS(head);
    return head->val;
  }

  // Head node with its timestamp helped (initTS run). Exposes version-node
  // identity for install_over's pointer-compare protocol (store-layer batch
  // helping); the node stays readable while the caller is EBR-pinned.
  VNode* vReadNode() {
    VNode* head = vhead_.load(std::memory_order_seq_cst);
    initTS(head);
    return head;
  }

  // Install-if-head-matches: append `new_v` over `expected` by NODE
  // IDENTITY, not value — helpers racing to apply one batch op must never
  // re-install over a value-equal but newer head, which a value-compare CAS
  // (vCAS) could do. Returns the appended node, stamped before return, or
  // nullptr if the head is no longer `expected`. Precondition: `expected`
  // came from this object's vReadNode under an EBR pin still in effect —
  // the pin is what rules out address reuse (pointer ABA) and guarantees
  // `expected` was stamped before the new node is.
  VNode* install_over(VNode* expected, const T& new_v) {
    VNode* node = new VNode(new_v, expected);
    VNode* e = expected;
    if (vhead_.compare_exchange_strong(e, node, std::memory_order_seq_cst)) {
      initTS(node);
      return node;
    }
    delete node;  // never published; safe to free immediately
    initTS(vhead_.load(std::memory_order_seq_cst));  // help the winner
    return nullptr;
  }

  // Algorithm 1, lines 40-52. O(1); lock-free (a failed CAS means another
  // vCAS succeeded).
  bool vCAS(T old_v, T new_v) {
    VNode* head = vhead_.load(std::memory_order_seq_cst);
    initTS(head);
    if (head->val != old_v) return false;
    if (new_v == old_v) return true;
    VNode* new_node = new VNode(new_v, head);
    if (vhead_.compare_exchange_strong(head, new_node,
                                       std::memory_order_seq_cst)) {
      initTS(new_node);
      return true;
    }
    delete new_node;  // never published; safe to free immediately
    initTS(vhead_.load(std::memory_order_seq_cst));
    return false;
  }

  // Algorithm 1, lines 31-35. Wait-free: the walk is bounded by the number
  // of successful vCASes with timestamps greater than ts (Theorem 2).
  // Precondition: ts came from the associated camera's takeSnapshot, taken
  // after this object was constructed; with trimming enabled the snapshot
  // must be announced (SnapshotGuard does both).
  T readSnapshot(Timestamp ts) {
    VNode* node = vhead_.load(std::memory_order_seq_cst);
    initTS(node);
    while (node->ts.load(std::memory_order_acquire) > ts) {
      node = node->nextv.load(std::memory_order_acquire);
      assert(node != nullptr &&
             "readSnapshot walked past the initial version: snapshot handle "
             "predates this object (precondition violation)");
    }
    return node->val;
  }

  // Generalized snapshot read for values whose visibility depends on more
  // than the install timestamp (used by the store layer's atomic batches:
  // a value installed at t may only become visible at a later commit stamp
  // carried inside the value). Walks past versions with ts > ts_limit OR
  // !visible(val). Precondition, on top of readSnapshot's: the caller
  // guarantees some version with ts <= ts_limit satisfies `visible` (the
  // store layer seeds every object with an unconditionally visible value).
  template <typename Pred>
  T readSnapshotWhere(Timestamp ts, Pred&& visible) {
    return readSnapshotNodeWhere(ts, std::forward<Pred>(visible))->val;
  }

  // readSnapshotWhere exposing the version NODE — the record pointer and
  // its install stamp — instead of a value copy. This is the store layer's
  // version-observation read: snapshot resolution borrows the value by
  // reference (no copy of embedded shared state), and transaction
  // validation walks onward from the returned node. The node (and, via
  // nextv, everything the walk can reach: trimming never detaches below a
  // node a `visible`-satisfying reader can stop at) stays readable while
  // the caller is EBR-pinned.
  template <typename Pred>
  VNode* readSnapshotNodeWhere(Timestamp ts, Pred&& visible) {
    VNode* node = vhead_.load(std::memory_order_seq_cst);
    initTS(node);
    while (node->ts.load(std::memory_order_acquire) > ts ||
           !visible(static_cast<const T&>(node->val))) {
      node = node->nextv.load(std::memory_order_acquire);
      assert(node != nullptr &&
             "readSnapshotNodeWhere walked past the initial version: no "
             "visible version at or below ts (precondition violation)");
    }
    return node;
  }

  // --- introspection / GC extension (not part of the paper's interface) ---

  // Plain read of the newest value with no helping. Only for destructors
  // and quiescent traversals.
  T read_unsynchronized() const {
    return vhead_.load(std::memory_order_relaxed)->val;
  }

  // Length of the version list. Test/bench helper; O(versions).
  std::size_t version_count() const {
    std::size_t n = 0;
    for (VNode* node = vhead_.load(std::memory_order_acquire); node != nullptr;
         node = node->nextv.load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }

  // Detach every version no announced snapshot can still read: keep the
  // newest version with ts <= min_active (the "pivot" — any current or
  // future readSnapshot stops at or before it, because every announced
  // reader's handle is >= its announcement >= min_active) and EBR-retire
  // the rest. One trimmer per object at a time (non-blocking try-lock) so
  // the suffix is retired exactly once. Callers must hold an ebr::Guard.
  // Returns the number of versions detached.
  std::size_t trim(Timestamp min_active) {
    return trim_where(min_active, [](const T&) { return true; });
  }

  // trim() generalized to deferred-visibility values (the readSnapshotWhere
  // counterpart): the pivot must additionally satisfy `visible` under every
  // handle h >= min_active, which the caller guarantees by passing a
  // predicate monotone in h evaluated at h = min_active (e.g. "batch commit
  // stamp decided and <= min_active"). Versions below such a pivot are
  // unreachable by any announced reader: every reader's handle is >=
  // min_active, and its visibility walk stops at or above the pivot.
  template <typename Pred>
  std::size_t trim_where(Timestamp min_active, Pred&& visible) {
    bool expected = false;
    if (!trimming_.compare_exchange_strong(expected, true,
                                           std::memory_order_acquire)) {
      return 0;
    }
    std::size_t detached = 0;
    VNode* node = vhead_.load(std::memory_order_seq_cst);
    // Find the pivot: newest node with a valid ts <= min_active that is
    // visible at min_active. A TBD head is treated as "too new" — its
    // eventual timestamp is unknown here.
    while (node != nullptr) {
      const Timestamp t = node->ts.load(std::memory_order_acquire);
      if (t != kTBD && t <= min_active &&
          visible(static_cast<const T&>(node->val))) {
        break;
      }
      node = node->nextv.load(std::memory_order_acquire);
    }
    if (node != nullptr) {
      VNode* old = node->nextv.exchange(nullptr, std::memory_order_acq_rel);
      while (old != nullptr) {
        VNode* next = old->nextv.load(std::memory_order_relaxed);
        ebr::retire(old);
        ++detached;
        old = next;
      }
    }
    trimming_.store(false, std::memory_order_release);
    return detached;
  }

 private:
  // Algorithm 1, lines 19-22. Idempotent; at most one CAS ever succeeds
  // because ts only transitions TBD -> valid.
  void initTS(VNode* node) {
    if (node->ts.load(std::memory_order_acquire) == kTBD) {
      Timestamp cur = camera_->current();
      Timestamp expected = kTBD;
      node->ts.compare_exchange_strong(expected, cur,
                                       std::memory_order_seq_cst);
    }
  }

  std::atomic<VNode*> vhead_;
  Camera* camera_;
  std::atomic<bool> trimming_{false};
};

}  // namespace vcas
