// Versioned CAS objects (paper Section 3.1, Algorithm 1).
//
// A VersionedCAS<T> behaves like std::atomic<T> restricted to read/CAS, and
// additionally answers "what was your value when snapshot ts was taken?".
// Internally it is a singly-linked version list, newest first; each VNode
// carries the value and the camera timestamp of the vCAS that installed it.
//
// The crux (paper Section 3.1, "Helping"): a successful vCAS must appear to
// (1) append its node, (2) read the global clock, (3) record the timestamp —
// atomically. The node is appended with ts = TBD and *every* operation that
// observes a TBD head calls initTS to install a timestamp before relying on
// it; the vCAS linearizes at the clock read of whichever initTS wins.
//
// Extensions beyond the paper's pseudocode (this repo's write-path memory
// system, ISSUE 4):
//
//   * Version-list trimming. Old versions below the camera's min_active()
//     pin horizon can never be read again, so they may be detached and
//     EBR-retired (see trim()). The detached suffix is retired as ONE limbo
//     entry (ebr::retire_batch) whose deleter walks the dead run — not one
//     entry per version.
//
//   * Clock-gated version coalescing (try_coalesce_below). Two adjacent
//     versions stamped with the SAME timestamp are indistinguishable to
//     every snapshot: a reader with handle h >= ts stops at the newer one,
//     a reader with h < ts skips both. The older node is therefore dead
//     weight the instant the newer one is stamped equal, and may be
//     unlinked and recycled. Under a write-heavy, snapshot-light load the
//     clock barely moves, so this bounds version-list length (and hence
//     readSnapshot walk length, Theorem 2's bound) by the number of
//     snapshots taken instead of the number of writes.
//
//   * VNode recycling. Nodes come from a per-thread slab pool
//     (util::SlabPool) instead of the global allocator, and every retired
//     node is handed back to the pool by its EBR deleter. Addresses recur
//     only after the 3-epoch grace period, which is exactly the guarantee
//     install_over's pointer-identity (ABA) argument needs.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <new>
#include <utility>

#include "ebr/ebr.h"
#include "inject/failpoint.h"
#include "obs/metrics.h"
#include "util/annotations.h"
#include "util/slab_pool.h"
#include "vcas/camera.h"

namespace vcas {

// Process-wide default for whether VersionedCAS objects draw their VNodes
// from the recycling slab pool (the PR's write path) or the heap (the
// seed's). Per-object and fixed at construction, so every node of an
// object has one allocation origin and the EBR deleters stay trivial.
// Benches flip the default between phases to ablate the whole write-path
// memory system; production leaves it on.
inline std::atomic<bool>& default_node_pooling() {
  static std::atomic<bool> pooled{true};
  return pooled;
}

template <typename T>
class VersionedCAS {
 public:
  struct VNode {
    T val;                     // immutable once initialized
    std::atomic<VNode*> nextv; // next older version; written once by vCAS,
                               // then only by trim()/coalescing at the
                               // newer neighbor
    std::atomic<Timestamp> ts; // TBD until initTS installs a clock value

    VNode(T v, VNode* next) : val(std::move(v)), nextv(next), ts(kTBD) {}
  };

  // Precondition (paper, Initialization): the camera's constructor has
  // completed. The initial version is stamped immediately so that every
  // snapshot taken after construction can read it.
  VersionedCAS(T initial, Camera* camera)
      : VersionedCAS(std::move(initial), camera,
                     default_node_pooling().load(std::memory_order_relaxed)) {}

  VersionedCAS(T initial, Camera* camera, bool pooled_nodes)
      : camera_(camera), pooled_(pooled_nodes) {
    vhead_.store(make_node(std::move(initial), nullptr),
                 std::memory_order_relaxed);
    initTS(vhead_.load(std::memory_order_relaxed));
  }

  VersionedCAS(const VersionedCAS&) = delete;
  VersionedCAS& operator=(const VersionedCAS&) = delete;

  ~VersionedCAS() {
    VNode* node = vhead_.load(std::memory_order_relaxed);
    while (node != nullptr) {
      VNode* next = node->nextv.load(std::memory_order_relaxed);
      destroy_node(node);
      node = next;
    }
  }

  // Algorithm 1, lines 36-39. O(1).
  //
  // Memory-order note (audited for ISSUE 4): the head load stays seq_cst.
  // The linearization argument orders this load against initTS clock reads
  // and takeSnapshot clock CASes through the seq_cst total order S — an
  // acquire load has no position in S, so a vRead could return a head that
  // a real-time-earlier write already replaced. (On x86 the downgrade would
  // be free but unjustifiable; on ARM it would be an actual reordering.)
  T vRead() {
    VNode* head =
        vhead_.load(std::memory_order_seq_cst) VCAS_ORD("vcas.head.read");
    initTS(head);
    return head->val;
  }

  // Head node with its timestamp helped (initTS run). Exposes version-node
  // identity for install_over's pointer-compare protocol (store-layer batch
  // helping); the node stays readable while the caller is EBR-pinned.
  VNode* vReadNode() {
    VNode* head =
        vhead_.load(std::memory_order_seq_cst) VCAS_ORD("vcas.head.read");
    initTS(head);
    return head;
  }

  // Install-if-head-matches: append `new_v` over `expected` by NODE
  // IDENTITY, not value — helpers racing to apply one batch op must never
  // re-install over a value-equal but newer head, which a value-compare CAS
  // (vCAS) could do. Returns the appended node, stamped before return, or
  // nullptr if the head is no longer `expected`. Precondition: `expected`
  // came from this object's vReadNode under an EBR pin still in effect —
  // the pin is what rules out address reuse (pointer ABA) and guarantees
  // `expected` was stamped before the new node is. Node addresses DO recur
  // through the recycling pool, but only via ebr deleters, i.e. only after
  // every pin from the address's previous life has been released.
  VNode* install_over(VNode* expected, const T& new_v) {
    // Death here = a writer that read the head but never published: the
    // head is untouched and every other thread proceeds as if the install
    // was never attempted.
    VCAS_FAILPOINT("vcas.install");
    VNode* node = make_node(new_v, expected);
    VNode* e = expected;
    if (vhead_.compare_exchange_strong(e, node, std::memory_order_seq_cst)
            VCAS_ORD("vcas.head.install")) {
      initTS(node);
      return node;
    }
    destroy_node(node);  // never published; no grace period needed
    // Helping-only re-load: stamping whatever head we see is idempotent and
    // best-effort (the winner, and every reader, also stamps), so this load
    // needs no position in the seq_cst order — acquire suffices to read the
    // node's fields.
    initTS(vhead_.load(std::memory_order_acquire));
    return nullptr;
  }

  // Algorithm 1, lines 40-52. O(1); lock-free (a failed CAS means another
  // vCAS succeeded).
  bool vCAS(T old_v, T new_v) {
    VNode* head =
        vhead_.load(std::memory_order_seq_cst) VCAS_ORD("vcas.head.read");
    initTS(head);
    if (head->val != old_v) return false;
    if (new_v == old_v) return true;
    VNode* new_node = make_node(std::move(new_v), head);
    if (vhead_.compare_exchange_strong(head, new_node,
                                       std::memory_order_seq_cst)
            VCAS_ORD("vcas.head.install")) {
      initTS(new_node);
      return true;
    }
    destroy_node(new_node);  // never published; no grace period needed
    initTS(vhead_.load(std::memory_order_acquire));  // helping-only; see above
    return false;
  }

  // Algorithm 1, lines 31-35. Wait-free: the walk is bounded by the number
  // of successful vCASes with timestamps greater than ts (Theorem 2) — and,
  // with coalescing, by the number of DISTINCT timestamps above ts.
  // Precondition: ts came from the associated camera's takeSnapshot, taken
  // after this object was constructed; with trimming or coalescing enabled
  // the snapshot must be era-pinned (SnapshotGuard does both).
  //
  // Memory-order note: the head load stays seq_cst for the same reason as
  // vRead's — a node stamped <= ts must be found by this walk, and the
  // proof runs through the seq_cst order (takeSnapshot's clock CAS follows
  // the stamping initTS's clock read in S, and this load follows the
  // takeSnapshot). The per-node ts/nextv loads are acquire: they only need
  // to observe fields published by the install/stamp releases of nodes the
  // head load already anchored.
  T readSnapshot(Timestamp ts) {
    VNode* node =
        vhead_.load(std::memory_order_seq_cst) VCAS_ORD("vcas.head.read");
    initTS(node);
    while (node->ts.load(std::memory_order_acquire) > ts) {
      node = node->nextv.load(std::memory_order_acquire);
      assert(node != nullptr &&
             "readSnapshot walked past the initial version: snapshot handle "
             "predates this object (precondition violation)");
    }
    return node->val;
  }

  // Generalized snapshot read for values whose visibility depends on more
  // than the install timestamp (used by the store layer's atomic batches:
  // a value installed at t may only become visible at a later commit stamp
  // carried inside the value). Walks past versions with ts > ts_limit OR
  // !visible(val). Precondition, on top of readSnapshot's: the caller
  // guarantees some version with ts <= ts_limit satisfies `visible` (the
  // store layer seeds every object with an unconditionally visible value).
  template <typename Pred>
  T readSnapshotWhere(Timestamp ts, Pred&& visible) {
    return readSnapshotNodeWhere(ts, std::forward<Pred>(visible))->val;
  }

  // readSnapshotWhere exposing the version NODE — the record pointer and
  // its install stamp — instead of a value copy. This is the store layer's
  // version-observation read: snapshot resolution borrows the value by
  // reference (no copy of embedded shared state), and transaction
  // validation walks onward from the returned node. The node (and, via
  // nextv, everything the walk can reach: trimming never detaches below a
  // node a `visible`-satisfying reader can stop at, and coalescing never
  // unlinks a node any predicate-guided walk can stop at — see
  // try_coalesce_below) stays readable while the caller is EBR-pinned.
  template <typename Pred>
  VNode* readSnapshotNodeWhere(Timestamp ts, Pred&& visible) {
    VNode* node =
        vhead_.load(std::memory_order_seq_cst) VCAS_ORD("vcas.head.read");
    initTS(node);
    while (node->ts.load(std::memory_order_acquire) > ts ||
           !visible(static_cast<const T&>(node->val))) {
      node = node->nextv.load(std::memory_order_acquire);
      assert(node != nullptr &&
             "readSnapshotNodeWhere walked past the initial version: no "
             "visible version at or below ts (precondition violation)");
    }
    return node;
  }

  // --- write-path memory system (not part of the paper's interface) --------

  // Clock-gated coalescing: unlink and recycle the run of versions directly
  // below `node` that carry the SAME timestamp as `node`. Called by the
  // thread that just installed `node` (via install_over or vCAS), after the
  // install stamped it.
  //
  // Preconditions:
  //   * the caller holds an ebr::Guard, and every concurrent reader of this
  //     object is EBR-pinned (same contract as trim(); plain unpinned
  //     readSnapshot use is only legal on objects that never trim or
  //     coalesce);
  //   * `node`'s value is unconditionally visible to every predicate any
  //     reader of this object passes to readSnapshot[Node]Where — the
  //     caller installed the value, so it knows (the store only coalesces
  //     under plain, un-ticketed records);
  //   * `droppable(below.val)` returns true only for values whose version
  //     node no helper protocol needs to find by identity (the store
  //     rejects every ticketed record — see store.h).
  //
  // Correctness: let c = node->ts. Every unlinked node B satisfies
  // B.ts == c with `node` (always-visible, stamped c) above it. A reader
  // with handle h >= c stops at `node` or newer, never reaching B; a reader
  // with h < c skips both node and B (both stamped c > h). B's unique
  // predecessor is `node` (each version's nextv is written once, to the
  // node it was installed over), so redirecting node->nextv removes B from
  // every future walk, and in-flight walkers already at B still read its
  // intact fields under their pins. Handles can never "land between" two
  // equal stamps: a handle h >= c is only issued after the clock passed c,
  // after which no initTS can stamp c anymore — so the order of equal-
  // stamped versions is unobservable, which is what makes the replaced
  // history indistinguishable from the chained one.
  //
  // Mutual exclusion: the unlink serializes with trim_where and with other
  // coalescers on this object through the trimming_ try-lock (skip, never
  // wait — a skipped coalesce just leaves the chain for the next writer,
  // whose loop drains the backlog). Holding the lock, `vhead_ == node`
  // proves `node` itself was never unlinked: unlinking requires the lock,
  // prior holders' observations are visible here (lock release/acquire +
  // read-read coherence), and an unlinked or trimmed `node` implies a
  // head past `node` that can never return to it while we hold a pin.
  //
  // Returns the number of versions unlinked (each retired through EBR into
  // the recycling pool).
  template <typename Pred>
  std::size_t try_coalesce_below(VNode* node, Pred&& droppable) {
    // Before the trimming_ try-lock on purpose: death (or an injected
    // skip) here only forgoes an optimization every pass may legally skip,
    // and never strands the lock.
    if (VCAS_FAILPOINT_SKIP("vcas.coalesce")) return 0;
    const Timestamp ts = node->ts.load(std::memory_order_acquire);
    assert(ts != kTBD && "coalesce before the installed node was stamped");
    VNode* below = node->nextv.load(std::memory_order_acquire);
    if (below == nullptr || below->ts.load(std::memory_order_acquire) != ts) {
      return 0;  // clock moved (or seed reached): nothing equal-stamped
    }
    bool expected = false;
    if (!trimming_.compare_exchange_strong(expected, true,
                                           std::memory_order_acquire)) {
      return 0;  // trimmer or another coalescer active: skip, don't wait
    }
    std::size_t unlinked = 0;
    if (vhead_.load(std::memory_order_acquire) == node) {
      // Collect the droppable equal-stamp run (up to kMaxRun per attempt —
      // pacing means backlogs drain across attempts) under the lock, while
      // the nodes are still warm, then remove it with ONE pointer swing
      // and ONE limbo entry. The run's internal links are left untouched:
      // in-flight pinned walkers already inside it keep walking through to
      // the live continuation; future walkers are routed around it by the
      // swing.
      VNode* first = node->nextv.load(std::memory_order_acquire);
      VNode* cur = first;
      VNode* cont = first;
      VNode* run_nodes[kMaxRun];
      while (unlinked < kMaxRun && cur != nullptr &&
             cur->ts.load(std::memory_order_acquire) == ts &&
             droppable(static_cast<const T&>(cur->val))) {
        run_nodes[unlinked++] = cur;
        cont = cur->nextv.load(std::memory_order_acquire);
        cur = cont;
      }
      if (unlinked > 0) {
        node->nextv.store(cont, std::memory_order_release);
        retire_run(run_nodes, unlinked);
        obs::m::coalesce_run.record(unlinked);
      }
    }
    trimming_.store(false, std::memory_order_release);
    return unlinked;
  }

  // Maintenance-side coalescing (ISSUE 5): collapse equal-stamp runs
  // ANYWHERE in the chain, including above the trim horizon, off the write
  // path. try_coalesce_below only fires at the head (the writer that just
  // installed); history pinned by a long-lived era-pinned view sits above
  // min_active() where trim cannot legally touch it, yet equal-stamped
  // runs inside it are just as unobservable. This walk unlinks, for every
  // maximal run of CONSECUTIVE versions with equal stamps, every node
  // strictly below the run's newest `always_visible` node that is itself
  // `always_visible`.
  //
  // Correctness (extends try_coalesce_below's argument to interior nodes):
  // install stamps are non-increasing going down the chain (each node is
  // stamped at or after the node it was installed over), so an equal-stamp
  // run is contiguous. Let P be the kept node and Q an unlinked one,
  // ts(P) == ts(Q), P newer. A readSnapshot[Node]Where walk stops at P
  // unless P.ts > handle — `always_visible(P.val)` promises every
  // predicate any reader passes accepts P (the store passes "plain,
  // non-detached record", which every resolve/validation/trim predicate
  // accepts) — and if P.ts > handle then Q.ts > handle too, so the walk
  // skips Q regardless. Either way no walk can STOP at Q, and in-flight
  // walkers already at Q keep reading its intact fields under their pins.
  // Q's unique predecessor is the chain neighbor we redirect (nextv is
  // written once at install, then only by the trimming_-lock holder), so
  // one store removes Q from every future walk.
  //
  // Serialization: the trimming_ try-lock (shared with trim_where,
  // try_coalesce_below and try_unlink_head_run) makes this the only
  // mutator of interior links; concurrent writers only swing vhead_ and
  // never touch interior nextv fields, so walking the chain while they
  // install is safe. Skip-don't-wait, like every maintenance pass.
  //
  // Returns versions unlinked (each EBR-retired into the recycling pool).
  template <typename Pred>
  std::size_t maintain_coalesce(Pred&& always_visible) {
    bool expected = false;
    if (!trimming_.compare_exchange_strong(expected, true,
                                           std::memory_order_acquire)) {
      return 0;
    }
    std::size_t unlinked = 0;
    VNode* keeper = vhead_.load(std::memory_order_acquire);
    while (keeper != nullptr) {
      const Timestamp ts = keeper->ts.load(std::memory_order_acquire);
      VNode* next = keeper->nextv.load(std::memory_order_acquire);
      // A TBD keeper (freshly appended, not yet stamped) proves nothing
      // about the nodes below it; step past. Same for keepers a reader's
      // predicate could reject: they cannot anchor the "no walk stops
      // below me" argument.
      if (ts != kTBD && always_visible(static_cast<const T&>(keeper->val))) {
        while (next != nullptr) {
          VNode* run_nodes[kMaxRun];
          std::size_t n = 0;
          VNode* cur = next;
          VNode* cont = next;
          while (n < kMaxRun && cur != nullptr &&
                 cur->ts.load(std::memory_order_acquire) == ts &&
                 always_visible(static_cast<const T&>(cur->val))) {
            run_nodes[n++] = cur;
            cont = cur->nextv.load(std::memory_order_acquire);
            cur = cont;
          }
          if (n == 0) break;
          keeper->nextv.store(cont, std::memory_order_release);
          retire_run(run_nodes, n);
          obs::m::coalesce_run.record(n);
          unlinked += n;
          next = cont;
          // Loop again: a run longer than kMaxRun drains in chunks under
          // the same keeper (same stamp, contiguity argument unchanged).
          if (cur == nullptr ||
              cur->ts.load(std::memory_order_acquire) != ts) {
            break;
          }
        }
      }
      keeper = next;
    }
    trimming_.store(false, std::memory_order_release);
    return unlinked;
  }

  // Unlink the run of versions at the HEAD whose records are dead at every
  // handle — the store passes "decided ABORTED" (an aborted batch's records
  // never happened, at any timestamp), so an aborted transaction capping an
  // otherwise-committed chain stops costing every reader a skip (ISSUE 5;
  // the ROADMAP's txn-aware cell GC follow-on).
  //
  // Protocol: collect the maximal dead prefix under the trimming_ lock,
  // then ONE head CAS (old head -> first live node) removes it; a failed
  // CAS means a writer installed meanwhile — nothing was unlinked, give up
  // (skip-don't-wait). The CAS, not the lock, is what excludes writers:
  // they never take trimming_. In-flight walkers inside the spliced run
  // keep reading intact fields under their pins, exactly like trim's
  // detached suffixes. Safety of removing by identity: dead records are
  // DECIDED, so no helper will re-enter their descriptor's install
  // machinery (help_decide returns at the decision load), and validators
  // of other transactions may walk THROUGH them but never stop AT them
  // (decided-aborted records are skipped by every predicate in the store).
  //
  // Precondition: `dead(v)` is immutable once true (a decision is final)
  // and the seed record is never dead (the walk must find a live node).
  // Caller holds an ebr::Guard. Returns versions unlinked.
  template <typename Pred>
  std::size_t try_unlink_head_run(Pred&& dead) {
    VNode* head =
        vhead_.load(std::memory_order_seq_cst) VCAS_ORD("vcas.head.read");
    if (!dead(static_cast<const T&>(head->val))) return 0;
    bool expected = false;
    if (!trimming_.compare_exchange_strong(expected, true,
                                           std::memory_order_acquire)) {
      return 0;
    }
    VNode* run_nodes[kMaxRun];
    std::size_t n = 0;
    VNode* fresh = vhead_.load(std::memory_order_acquire);
    VNode* cur = fresh;
    while (n < kMaxRun && cur != nullptr &&
           dead(static_cast<const T&>(cur->val))) {
      run_nodes[n++] = cur;
      cur = cur->nextv.load(std::memory_order_acquire);
    }
    std::size_t unlinked = 0;
    if (n > 0 && cur != nullptr) {  // cur: first live node, the new head
      // cur was installed below the head, so it is already stamped (every
      // install stamps the node it replaced first, via vReadNode).
      assert(cur->ts.load(std::memory_order_acquire) != kTBD &&
             "non-head version left unstamped");
      if (vhead_.compare_exchange_strong(fresh, cur,
                                         std::memory_order_seq_cst)
              VCAS_ORD("vcas.unlink.head")) {
        retire_run(run_nodes, n);
        unlinked = n;
      }
      // CAS failure: a writer won the head; the run is still linked (we
      // changed nothing) and the next maintenance pass retries.
    }
    trimming_.store(false, std::memory_order_release);
    return unlinked;
  }

  // --- introspection / GC extension (not part of the paper's interface) ---

  // Plain read of the newest value with no helping. Only for destructors
  // and quiescent traversals.
  T read_unsynchronized() const {
    return vhead_.load(std::memory_order_relaxed)->val;
  }

  // Length of the version list. Test/bench helper; O(versions).
  std::size_t version_count() const {
    std::size_t n = 0;
    for (VNode* node = vhead_.load(std::memory_order_acquire); node != nullptr;
         node = node->nextv.load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }

  // Detach every version no pinned snapshot can still read: keep the
  // newest version with ts <= min_active (the "pivot" — any current or
  // future readSnapshot stops at or before it, because every pinned
  // reader's handle is >= its era's lower bound >= min_active) and EBR-retire
  // the rest. One trimmer per object at a time (non-blocking try-lock) so
  // the suffix is retired exactly once. Callers must hold an ebr::Guard.
  // Returns the number of versions detached.
  std::size_t trim(Timestamp min_active) {
    return trim_where(min_active, [](const T&) { return true; });
  }

  // trim() generalized to deferred-visibility values (the readSnapshotWhere
  // counterpart): the pivot must additionally satisfy `visible` under every
  // handle h >= min_active, which the caller guarantees by passing a
  // predicate monotone in h evaluated at h = min_active (e.g. "batch commit
  // stamp decided and <= min_active"). Versions below such a pivot are
  // unreachable by any pinned reader: every reader's handle is >=
  // min_active, and its visibility walk stops at or above the pivot.
  template <typename Pred>
  std::size_t trim_where(Timestamp min_active, Pred&& visible) {
    // Same placement rule as vcas.coalesce: ahead of the trimming_
    // try-lock, so an injected death leaves trim skippable-not-stuck.
    if (VCAS_FAILPOINT_SKIP("vcas.trim")) return 0;
    bool expected = false;
    if (!trimming_.compare_exchange_strong(expected, true,
                                           std::memory_order_acquire)) {
      return 0;
    }
    // Memory-order note: an acquire head load suffices here (unlike the
    // read paths): a stale head only starts the pivot search lower, which
    // picks an older (still correct, merely conservative) pivot.
    VNode* node = vhead_.load(std::memory_order_acquire);
    // Find the pivot: newest node with a valid ts <= min_active that is
    // visible at min_active. A TBD head is treated as "too new" — its
    // eventual timestamp is unknown here.
    while (node != nullptr) {
      const Timestamp t = node->ts.load(std::memory_order_acquire);
      if (t != kTBD && t <= min_active &&
          visible(static_cast<const T&>(node->val))) {
        break;
      }
      node = node->nextv.load(std::memory_order_acquire);
    }
    std::size_t detached = 0;
    if (node != nullptr) {
      VNode* old = node->nextv.exchange(nullptr, std::memory_order_acq_rel)
          VCAS_ORD("vcas.trim.detach");
      // Count the dead run, then retire it as ONE limbo entry: the suffix
      // keeps its internal links (in-flight pinned walkers may still be
      // inside it and walk through to its end, the initial version), so a
      // single deleter can walk it again at reclamation time. One
      // entry per trim instead of one per version is what keeps trim's
      // limbo bookkeeping O(1).
      for (VNode* n = old; n != nullptr;
           n = n->nextv.load(std::memory_order_relaxed)) {
        ++detached;
      }
      if (old != nullptr) {
        ebr::retire_batch(
            old, pooled_ ? &delete_run<true> : &delete_run<false>, detached);
        obs::m::trim_run.record(detached);
      }
    }
    trimming_.store(false, std::memory_order_release);
    return detached;
  }

 private:
  using Pool = util::SlabPool<sizeof(VNode), alignof(VNode)>;

  // Header describing a coalesced-away run. The nodes are recorded BY
  // ADDRESS (not walked via nextv) for two reasons: the run's last node
  // still points into the live chain (a link walk would need a count bound
  // anyway), and by reclamation time the nodes are cache-cold — an array
  // lets the deleter prefetch them all up front instead of taking a
  // dependent-load miss per hop. Pool-allocated: one small header per run
  // is the only allocation coalescing ever adds, amortized over the run.
  static constexpr std::size_t kMaxRun = 16;
  struct DeadRun {
    std::size_t count;
    bool pooled;  // allocation origin of the nodes (matches the object's)
    VNode* nodes[kMaxRun];
  };
  using RunPool = util::SlabPool<sizeof(DeadRun), alignof(DeadRun)>;

  VNode* make_node(T v, VNode* next) {
    if (pooled_) return new (Pool::allocate()) VNode(std::move(v), next);
    return new VNode(std::move(v), next);
  }

  void destroy_node(VNode* node) {
    destroy_node_as(node, pooled_);
  }

  static void destroy_node_as(VNode* node, bool pooled) {
    if (pooled) {
      node->~VNode();
      Pool::deallocate(node);
    } else {
      delete node;
    }
  }

  // Retire `n` unlinked nodes (n >= 1, n <= kMaxRun) as one limbo entry:
  // a single node goes straight to its deleter, a run gets a pooled
  // DeadRun header so the deleter iterates an address array instead of
  // pointer-chasing cold links. Shared by write-path coalescing
  // (try_coalesce_below) and the maintenance passes.
  void retire_run(VNode** nodes, std::size_t n) {
    if (n == 1) {
      ebr::retire(nodes[0], pooled_ ? &delete_one : &delete_one_heap);
      return;
    }
    auto* run = new (RunPool::allocate()) DeadRun;
    run->count = n;
    run->pooled = pooled_;
    for (std::size_t i = 0; i < n; ++i) run->nodes[i] = nodes[i];
    ebr::retire_batch(run, &delete_dead_run, n);
  }

  // EBR deleters (plain function pointers — no per-retire thunk state).
  // Chosen by the retiring object's allocation origin.
  static void delete_one(void* p) {
    destroy_node_as(static_cast<VNode*>(p), true);
  }
  static void delete_one_heap(void* p) {
    destroy_node_as(static_cast<VNode*>(p), false);
  }

  // Trim suffixes end at the original oldest version (nextv == nullptr).
  template <bool Pooled>
  static void delete_run(void* p) {
    VNode* node = static_cast<VNode*>(p);
    while (node != nullptr) {
      VNode* next = node->nextv.load(std::memory_order_relaxed);
      destroy_node_as(node, Pooled);
      node = next;
    }
  }

  static void delete_dead_run(void* p) {
    DeadRun* run = static_cast<DeadRun*>(p);
    for (std::size_t i = 0; i < run->count; ++i) {
      __builtin_prefetch(run->nodes[i], 1);
    }
    for (std::size_t i = 0; i < run->count; ++i) {
      destroy_node_as(run->nodes[i], run->pooled);
    }
    run->~DeadRun();
    RunPool::deallocate(run);
  }

  // Algorithm 1, lines 19-22. Idempotent; at most one CAS ever succeeds
  // because ts only transitions TBD -> valid.
  //
  // Memory-order note: the clock read (Camera::current, seq_cst) and the
  // stamp CAS stay seq_cst — together they ARE the vCAS's linearization
  // point, and the snapshot-stability proof positions them in the seq_cst
  // order against takeSnapshot's clock ops ("append happens-before
  // stamp-read" + "clock > handle at takeSnapshot return" is what makes
  // equal-stamped runs unobservable, which coalescing then exploits).
  void initTS(VNode* node) {
    if (node->ts.load(std::memory_order_acquire) == kTBD) {
      Timestamp cur = camera_->current();
      Timestamp expected = kTBD;
      node->ts.compare_exchange_strong(expected, cur,
                                       std::memory_order_seq_cst)
          VCAS_ORD("vcas.stamp");
    }
  }

  std::atomic<VNode*> vhead_{nullptr};
  Camera* camera_;
  std::atomic<bool> trimming_{false};
  const bool pooled_;  // allocation origin of every node of this object
};

}  // namespace vcas
