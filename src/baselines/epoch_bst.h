// EpochBST: lock-free external BST with range queries implemented in the
// style of Arbel-Raviv & Brown, "Harnessing epoch-based reclamation for
// efficient range queries" (PPoPP 2018) — the baseline the paper's C++
// experiments (Figures 2j/2k) compare VcasBST against.
//
// Mechanism: a global range-query clock (reused from vcas::Camera, which
// also provides the era-pinned GC horizon). Every leaf carries an insert
// timestamp (itime) and a delete timestamp (dtime), stamped right after
// the linearizing child CAS; readers help stamp (the same TBD/helping idea
// as initTS) so the structure stays lock-free. A range query
//   1. pins the current era and takes a timestamp ts,
//   2. traverses the live tree collecting in-range leaves visible at ts
//      (itime <= ts < dtime),
//   3. scans per-thread limbo lists of recently deleted leaves — value
//      copies, so no lifetime games — to catch leaves unlinked during the
//      traversal, and
//   4. deduplicates by key.
// The limbo scan is exactly why the paper reports EpochBST range queries
// visiting 1.5-5.5x more nodes than VcasBST: every concurrent delete adds
// work proportional to the number of active range queries.
//
// The update protocol is Ellen et al.'s flag/mark/Info helping, identical
// in structure to ds/ellen_bst.h but with the original leaf-reusing insert
// (the inserted leaf keeps its identity, so itime/dtime stay meaningful).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <limits>
#include <optional>
#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

#include "ebr/ebr.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/padded.h"
#include "util/threading.h"
#include "vcas/camera.h"

namespace vcas::baselines {

template <typename K, typename V>
class EpochBST {
  enum State : std::uintptr_t { kClean = 0, kIFlag = 1, kDFlag = 2, kMark = 3 };
  static constexpr std::uintptr_t kStateMask = 3;

  struct Info;

  struct Node {
    K key{};
    V value{};
    std::uint8_t inf = 0;
    bool leaf = false;
    std::atomic<std::uintptr_t> update{kClean};
    std::atomic<Node*> left{nullptr};
    std::atomic<Node*> right{nullptr};
    // Visibility interval for leaves: [itime, dtime). kTBD until helped.
    std::atomic<Timestamp> itime{kTBD};
    std::atomic<Timestamp> dtime{std::numeric_limits<Timestamp>::max()};
  };

  struct Info {
    bool is_insert;
    Node* gp = nullptr;
    Node* p = nullptr;
    Node* l = nullptr;
    Node* new_internal = nullptr;
    std::uintptr_t pupdate = 0;
  };

  // A retired leaf's data, copied into the limbo list so range queries can
  // examine it without touching freed memory.
  struct LimboRecord {
    K key;
    V value;
    Timestamp itime;
    Timestamp dtime;
  };

  struct LimboList {
    util::Mutex mu;
    std::vector<LimboRecord> records VCAS_GUARDED_BY(mu);
  };

  static std::uintptr_t pack(Info* info, State s) {
    return reinterpret_cast<std::uintptr_t>(info) | s;
  }
  static State state_of(std::uintptr_t u) {
    return static_cast<State>(u & kStateMask);
  }
  static Info* info_of(std::uintptr_t u) {
    return reinterpret_cast<Info*>(u & ~kStateMask);
  }
  static bool key_less_node(const K& k, const Node* n) {
    return n->inf != 0 || k < n->key;
  }
  static bool node_less(const Node* a, const Node* b) {
    if (a->inf != b->inf) return a->inf < b->inf;
    if (a->inf != 0) return false;
    return a->key < b->key;
  }

 public:
  EpochBST() {
    Node* leaf1 = make_leaf(K{}, V{}, 1);
    Node* leaf2 = make_leaf(K{}, V{}, 2);
    stamp_insert(leaf1);
    stamp_insert(leaf2);
    root_ = new Node;
    root_->inf = 2;
    root_->left.store(leaf1, std::memory_order_relaxed);
    root_->right.store(leaf2, std::memory_order_relaxed);
  }

  EpochBST(const EpochBST&) = delete;
  EpochBST& operator=(const EpochBST&) = delete;

  ~EpochBST() {
    std::unordered_set<Info*> infos;
    free_rec(root_, infos);
    for (Info* info : infos) delete info;
  }

  std::optional<V> find(const K& key) {
    ebr::Guard g;
    Node* l = root_;
    while (!l->leaf) {
      l = key_less_node(key, l) ? l->left.load(std::memory_order_seq_cst)
                                      VCAS_ORD("base.ebst.tree-link")
                                : l->right.load(std::memory_order_seq_cst)
                                      VCAS_ORD("base.ebst.tree-link");
    }
    if (l->inf == 0 && l->key == key) return l->value;
    return std::nullopt;
  }

  bool contains(const K& key) { return find(key).has_value(); }

  bool insert(const K& key, const V& value) {
    ebr::Guard g;
    for (;;) {
      SearchResult s = search(key);
      if (s.l->inf == 0 && s.l->key == key) return false;
      if (state_of(s.pupdate) != kClean) {
        help(s.pupdate);
        continue;
      }
      // Original Ellen insert: the existing leaf keeps its identity (and
      // its itime), so only the new leaf needs stamping.
      Node* new_leaf = make_leaf(key, value, 0);
      Node* ni = new Node;
      if (node_less(new_leaf, s.l)) {
        ni->key = s.l->key;
        ni->inf = s.l->inf;
        ni->left.store(new_leaf, std::memory_order_relaxed);
        ni->right.store(s.l, std::memory_order_relaxed);
      } else {
        ni->key = key;
        ni->left.store(s.l, std::memory_order_relaxed);
        ni->right.store(new_leaf, std::memory_order_relaxed);
      }
      Info* op = new Info;
      op->is_insert = true;
      op->p = s.p;
      op->l = s.l;
      op->new_internal = ni;
      std::uintptr_t expected = s.pupdate;
      if (s.p->update.compare_exchange_strong(expected, pack(op, kIFlag),
                                              std::memory_order_seq_cst)
              VCAS_ORD("base.ebst.update-word")) {
        retire_replaced(s.pupdate);
        help_insert(op);
        return true;
      }
      delete new_leaf;
      delete ni;
      delete op;
      help(s.p->update.load(std::memory_order_seq_cst)
               VCAS_ORD("base.ebst.update-word"));
    }
  }

  bool remove(const K& key) {
    ebr::Guard g;
    for (;;) {
      SearchResult s = search(key);
      if (!(s.l->inf == 0 && s.l->key == key)) return false;
      if (state_of(s.gpupdate) != kClean) {
        help(s.gpupdate);
        continue;
      }
      if (state_of(s.pupdate) != kClean) {
        help(s.pupdate);
        continue;
      }
      assert(s.gp != nullptr);
      Info* op = new Info;
      op->is_insert = false;
      op->gp = s.gp;
      op->p = s.p;
      op->l = s.l;
      op->pupdate = s.pupdate;
      std::uintptr_t expected = s.gpupdate;
      if (s.gp->update.compare_exchange_strong(expected, pack(op, kDFlag),
                                               std::memory_order_seq_cst)
              VCAS_ORD("base.ebst.update-word")) {
        retire_replaced(s.gpupdate);
        if (help_delete(op)) return true;
      } else {
        delete op;
        help(s.gp->update.load(std::memory_order_seq_cst)
                 VCAS_ORD("base.ebst.update-word"));
      }
    }
  }

  // Atomic range query: Arbel-Raviv & Brown's tree-traversal + limbo-scan.
  std::vector<std::pair<K, V>> range(const K& lo, const K& hi) {
    ebr::Guard g;
    Camera::PinnedSnapshot snap = clock_.pin_and_snapshot();
    const Timestamp ts = snap.ts;
    std::set<K> seen;
    std::vector<std::pair<K, V>> out;
    collect_rec(root_, lo, hi, ts, seen, out);
    // Leaves unlinked during the traversal were visible at ts but may have
    // been missed above; their value copies are in the limbo lists.
    for (int t = 0; t < util::kMaxThreads; ++t) {
      LimboList& limbo = limbo_[t].value;
      util::MutexLock lock(limbo.mu);
      for (const LimboRecord& rec : limbo.records) {
        if (rec.key < lo || hi < rec.key) continue;
        if (rec.itime == kTBD || rec.itime > ts) continue;
        if (rec.dtime <= ts) continue;
        if (seen.insert(rec.key).second) out.emplace_back(rec.key, rec.value);
      }
    }
    clock_.unpin(snap.pin);
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
  }

  // Observability: total limbo records currently retained (bench metric —
  // this is the extra work concurrent deletes impose on EpochBST queries).
  std::size_t limbo_size() const {
    std::size_t n = 0;
    for (int t = 0; t < util::kMaxThreads; ++t) {
      n += limbo_[t].value.records.size();  // racy read; metric only
    }
    return n;
  }

  std::size_t size_unsynchronized() const { return size_rec(root_); }

  std::vector<K> keys_unsynchronized() const {
    std::vector<K> out;
    keys_rec(root_, out);
    return out;
  }

 private:
  struct SearchResult {
    Node* gp = nullptr;
    Node* p = nullptr;
    Node* l = nullptr;
    std::uintptr_t pupdate = kClean;
    std::uintptr_t gpupdate = kClean;
  };

  Node* make_leaf(const K& k, const V& v, std::uint8_t inf) {
    Node* n = new Node;
    n->key = k;
    n->value = v;
    n->inf = inf;
    n->leaf = true;
    return n;
  }

  // Helped timestamping (the initTS idea): CAS from TBD so exactly one
  // clock value wins, and any reader can finish a laggard's stamp.
  void stamp_insert(Node* leaf) {
    if (leaf->itime.load(std::memory_order_acquire) == kTBD) {
      Timestamp cur = clock_.current();
      Timestamp expected = kTBD;
      leaf->itime.compare_exchange_strong(expected, cur,
                                          std::memory_order_seq_cst)
          VCAS_ORD("base.ebst.stamp");
    }
  }
  void stamp_delete(Node* leaf) {
    constexpr Timestamp kUnset = std::numeric_limits<Timestamp>::max();
    if (leaf->dtime.load(std::memory_order_acquire) == kUnset) {
      Timestamp cur = clock_.current();
      Timestamp expected = kUnset;
      leaf->dtime.compare_exchange_strong(expected, cur,
                                          std::memory_order_seq_cst)
          VCAS_ORD("base.ebst.stamp");
    }
  }

  SearchResult search(const K& key) {
    SearchResult r;
    r.l = root_;
    while (!r.l->leaf) {
      r.gp = r.p;
      r.p = r.l;
      r.gpupdate = r.pupdate;
      r.pupdate = r.p->update.load(std::memory_order_seq_cst)
          VCAS_ORD("base.ebst.update-word");
      r.l = key_less_node(key, r.p)
                ? r.p->left.load(std::memory_order_seq_cst)
                      VCAS_ORD("base.ebst.tree-link")
                : r.p->right.load(std::memory_order_seq_cst)
                      VCAS_ORD("base.ebst.tree-link");
    }
    return r;
  }

  void help(std::uintptr_t u) {
    switch (state_of(u)) {
      case kIFlag:
        help_insert(info_of(u));
        break;
      case kDFlag:
        help_delete(info_of(u));
        break;
      case kMark:
        help_marked(info_of(u));
        break;
      case kClean:
        break;
    }
  }

  void retire_replaced(std::uintptr_t old_word) {
    Info* old = info_of(old_word);
    if (old != nullptr) ebr::retire(old);
  }

  bool cas_child(Node* parent, Node* old_node, Node* new_node) {
    if (node_less(new_node, parent)) {
      return parent->left.compare_exchange_strong(old_node, new_node,
                                                  std::memory_order_seq_cst)
          VCAS_ORD("base.ebst.tree-link");
    }
    return parent->right.compare_exchange_strong(old_node, new_node,
                                                 std::memory_order_seq_cst)
        VCAS_ORD("base.ebst.tree-link");
  }

  void help_insert(Info* op) {
    if (cas_child(op->p, op->l, op->new_internal)) {
      // The reused leaf stays in the tree; only the new leaf needs its
      // insert stamp. (The old leaf's interval is unchanged.)
    }
    // Help stamp regardless of who won the child CAS.
    Node* nl = op->new_internal->left.load(std::memory_order_relaxed);
    Node* nr = op->new_internal->right.load(std::memory_order_relaxed);
    if (nl->leaf) stamp_insert(nl);
    if (nr->leaf) stamp_insert(nr);
    std::uintptr_t expected = pack(op, kIFlag);
    op->p->update.compare_exchange_strong(expected, pack(op, kClean),
                                          std::memory_order_seq_cst)
        VCAS_ORD("base.ebst.update-word");
  }

  bool help_delete(Info* op) {
    std::uintptr_t expected = op->pupdate;
    const std::uintptr_t marked = pack(op, kMark);
    if (op->p->update.compare_exchange_strong(expected, marked,
                                              std::memory_order_seq_cst)
            VCAS_ORD("base.ebst.update-word") ||
        op->p->update.load(std::memory_order_seq_cst)
            VCAS_ORD("base.ebst.update-word") == marked) {
      if (expected == op->pupdate) retire_replaced(op->pupdate);
      help_marked(op);
      return true;
    }
    help(op->p->update.load(std::memory_order_seq_cst)
             VCAS_ORD("base.ebst.update-word"));
    std::uintptr_t flagged = pack(op, kDFlag);
    op->gp->update.compare_exchange_strong(flagged, pack(op, kClean),
                                           std::memory_order_seq_cst)
        VCAS_ORD("base.ebst.update-word");
    return false;
  }

  void help_marked(Info* op) {
    Node* other =
        (op->p->right.load(std::memory_order_seq_cst)
                 VCAS_ORD("base.ebst.tree-link") == op->l)
            ? op->p->left.load(std::memory_order_seq_cst)
                  VCAS_ORD("base.ebst.tree-link")
            : op->p->right.load(std::memory_order_seq_cst)
                  VCAS_ORD("base.ebst.tree-link");
    // Stamp the delete *before* unlinking so a range query that misses the
    // leaf in the tree finds a fully resolved limbo record.
    stamp_delete(op->l);
    if (cas_child(op->gp, op->p, other)) {
      // Unique winner: publish the limbo record, then retire.
      push_limbo(op->l);
      ebr::retire(op->p);
      ebr::retire(op->l);
    }
    std::uintptr_t flagged = pack(op, kDFlag);
    op->gp->update.compare_exchange_strong(flagged, pack(op, kClean),
                                           std::memory_order_seq_cst)
        VCAS_ORD("base.ebst.update-word");
  }

  void push_limbo(Node* leaf) {
    LimboList& limbo = limbo_[util::thread_slot()].value;
    util::MutexLock lock(limbo.mu);
    limbo.records.push_back(LimboRecord{
        leaf->key, leaf->value, leaf->itime.load(std::memory_order_acquire),
        leaf->dtime.load(std::memory_order_acquire)});
    // Prune records no active or future range query can need.
    if (limbo.records.size() >= 256) {
      const Timestamp min_active = clock_.min_active();
      std::size_t keep = 0;
      for (std::size_t i = 0; i < limbo.records.size(); ++i) {
        if (limbo.records[i].dtime > min_active) {
          limbo.records[keep++] = limbo.records[i];
        }
      }
      limbo.records.resize(keep);
    }
  }

  void collect_rec(Node* node, const K& lo, const K& hi, Timestamp ts,
                   std::set<K>& seen, std::vector<std::pair<K, V>>& out) {
    if (node->leaf) {
      if (node->inf != 0 || node->key < lo || hi < node->key) return;
      stamp_insert(node);  // help a laggard inserter
      const Timestamp it = node->itime.load(std::memory_order_acquire);
      const Timestamp dt = node->dtime.load(std::memory_order_acquire);
      if (it <= ts && dt > ts && seen.insert(node->key).second) {
        out.emplace_back(node->key, node->value);
      }
      return;
    }
    if (key_less_node(lo, node)) {
      collect_rec(node->left.load(std::memory_order_seq_cst)
                      VCAS_ORD("base.ebst.tree-link"),
                  lo, hi, ts, seen, out);
    }
    if (!key_less_node(hi, node)) {
      collect_rec(node->right.load(std::memory_order_seq_cst)
                      VCAS_ORD("base.ebst.tree-link"),
                  lo, hi, ts, seen, out);
    }
  }

  std::size_t size_rec(const Node* node) const {
    if (node->leaf) return node->inf == 0 ? 1 : 0;
    return size_rec(node->left.load(std::memory_order_relaxed)) +
           size_rec(node->right.load(std::memory_order_relaxed));
  }

  void keys_rec(const Node* node, std::vector<K>& out) const {
    if (node->leaf) {
      if (node->inf == 0) out.push_back(node->key);
      return;
    }
    keys_rec(node->left.load(std::memory_order_relaxed), out);
    keys_rec(node->right.load(std::memory_order_relaxed), out);
  }

  void free_rec(Node* node, std::unordered_set<Info*>& infos) {
    if (node == nullptr) return;
    if (!node->leaf) {
      free_rec(node->left.load(std::memory_order_relaxed), infos);
      free_rec(node->right.load(std::memory_order_relaxed), infos);
      Info* info = info_of(node->update.load(std::memory_order_relaxed));
      if (info != nullptr) infos.insert(info);
    }
    delete node;
  }

  Camera clock_;
  Node* root_;
  util::Padded<LimboList> limbo_[util::kMaxThreads];
};

}  // namespace vcas::baselines
