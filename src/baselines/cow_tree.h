// CowTree: a lock-based external BST with lazy copy-on-write snapshots —
// the behavioral analogue of Bronson et al.'s SnapTree [PPoPP 2010] used
// by the paper's Java experiments.
//
// Mechanism (the one the paper's analysis attributes SnapTree's profile
// to): updates normally mutate nodes in place under fine-grained
// hand-over-hand locks, so update throughput is competitive when no
// snapshot is outstanding. Taking a snapshot bumps a global snapshot epoch
// and drains in-flight writers; every node created before that epoch
// becomes frozen, and the next update through it must copy it (lazy
// copy-on-write of the touched path). Frequent range queries therefore
// force updates into persistent-tree behavior — the "no scalability with
// range queries" effect in Figure 2 — while queries themselves read an
// immutable subtree for free.
//
// Locking order is strictly top-down (root guard, then hand-over-hand node
// locks), so writers cannot deadlock. Point reads are lock-free over the
// atomic child pointers. Reclamation: EBR (readers and snapshots pin).
//
// Differences from the real SnapTree, documented in DESIGN.md: no AVL
// rebalancing (uniform keys keep the external BST shallow in expectation)
// and snapshot-drain instead of its optimistic epoch protocol.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <limits>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "ebr/ebr.h"
#include "util/annotations.h"

namespace vcas::baselines {

namespace detail {
class Spinlock {
 public:
  void lock() {
    while (flag_.exchange(true, std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};
}  // namespace detail

template <typename K, typename V>
class CowTree {
  struct Node {
    K key{};
    V value{};
    std::uint8_t inf = 0;  // 0 real, 1 = inf1, 2 = inf2
    bool leaf = false;
    std::uint64_t epoch = 0;  // creation snapshot epoch; frozen when stale
    std::atomic<Node*> left{nullptr};
    std::atomic<Node*> right{nullptr};
    detail::Spinlock lock;
  };

  static bool key_less_node(const K& k, const Node* n) {
    return n->inf != 0 || k < n->key;
  }

 public:
  CowTree() {
    Node* leaf1 = make_leaf(K{}, V{}, 1, 0);
    Node* leaf2 = make_leaf(K{}, V{}, 2, 0);
    Node* root = new Node;
    root->inf = 2;
    root->left.store(leaf1, std::memory_order_relaxed);
    root->right.store(leaf2, std::memory_order_relaxed);
    root_.store(root, std::memory_order_relaxed);
  }

  CowTree(const CowTree&) = delete;
  CowTree& operator=(const CowTree&) = delete;

  ~CowTree() { free_rec(root_.load(std::memory_order_relaxed)); }

  std::optional<V> find(const K& key) {
    ebr::Guard g;
    Node* node =
        root_.load(std::memory_order_seq_cst) VCAS_ORD("base.cow.tree-link");
    while (!node->leaf) {
      node = key_less_node(key, node)
                 ? node->left.load(std::memory_order_seq_cst)
                       VCAS_ORD("base.cow.tree-link")
                 : node->right.load(std::memory_order_seq_cst)
                       VCAS_ORD("base.cow.tree-link");
    }
    if (node->inf == 0 && node->key == key) return node->value;
    return std::nullopt;
  }

  bool contains(const K& key) { return find(key).has_value(); }

  bool insert(const K& key, const V& value) {
    ebr::Guard g;
    WriterSession w = enter_writer();
    Node* p = nullptr;    // cur's locked parent (null at the root)
    Node* cur = w.root;   // locked, current-epoch internal
    for (;;) {
      const bool go_left = key_less_node(key, cur);
      Node* child = (go_left ? cur->left : cur->right)
                        .load(std::memory_order_seq_cst)
          VCAS_ORD("base.cow.tree-link");
      if (child->leaf) {
        bool inserted = false;
        if (!(child->inf == 0 && child->key == key)) {
          Node* new_leaf = make_leaf(key, value, 0, w.epoch);
          Node* ni = new Node;
          ni->epoch = w.epoch;
          if (child->inf != 0 || key < child->key) {
            ni->key = child->key;
            ni->inf = child->inf;
            ni->left.store(new_leaf, std::memory_order_relaxed);
            ni->right.store(child, std::memory_order_relaxed);
          } else {
            ni->key = key;
            ni->left.store(child, std::memory_order_relaxed);
            ni->right.store(new_leaf, std::memory_order_relaxed);
          }
          (go_left ? cur->left : cur->right)
              .store(ni, std::memory_order_seq_cst)
              VCAS_ORD("base.cow.tree-link");
          inserted = true;
        }
        if (p != nullptr) p->lock.unlock();
        cur->lock.unlock();
        exit_writer();
        return inserted;
      }
      child = ensure_current(cur, go_left, child, w.epoch);
      if (p != nullptr) p->lock.unlock();
      p = cur;
      cur = child;
    }
  }

  bool remove(const K& key) {
    ebr::Guard g;
    WriterSession w = enter_writer();
    Node* p = nullptr;
    Node* cur = w.root;
    for (;;) {
      const bool go_left = key_less_node(key, cur);
      Node* child = (go_left ? cur->left : cur->right)
                        .load(std::memory_order_seq_cst)
          VCAS_ORD("base.cow.tree-link");
      if (child->leaf) {
        bool removed = false;
        if (child->inf == 0 && child->key == key) {
          // Splice cur out: its other child takes cur's place under p.
          assert(p != nullptr && "real leaves always have a grandparent");
          Node* sibling = (go_left ? cur->right : cur->left)
                              .load(std::memory_order_seq_cst)
              VCAS_ORD("base.cow.tree-link");
          const bool cur_left = p->left.load(std::memory_order_seq_cst)
                  VCAS_ORD("base.cow.tree-link") == cur;
          (cur_left ? p->left : p->right)
              .store(sibling, std::memory_order_seq_cst)
              VCAS_ORD("base.cow.tree-link");
          ebr::retire(cur);
          ebr::retire(child);
          removed = true;
        }
        if (p != nullptr) p->lock.unlock();
        cur->lock.unlock();
        exit_writer();
        return removed;
      }
      child = ensure_current(cur, go_left, child, w.epoch);
      if (p != nullptr) p->lock.unlock();
      p = cur;
      cur = child;
    }
  }

  // Atomic range query via a lazy copy-on-write snapshot: bump the epoch,
  // drain in-flight writers, then read an immutable subtree.
  std::vector<std::pair<K, V>> range(const K& lo, const K& hi) {
    ebr::Guard g;
    Node* root;
    {
      root_guard_.lock();
      snap_epoch_.fetch_add(1, std::memory_order_seq_cst)
          VCAS_ORD("base.cow.snap-drain");
      while (writers_active_.load(std::memory_order_acquire) != 0) {
        std::this_thread::yield();
      }
      root = root_.load(std::memory_order_seq_cst)
          VCAS_ORD("base.cow.snap-drain");
      root_guard_.unlock();
    }
    // root->epoch < the new snapshot epoch, so the whole reachable subtree
    // is frozen: post-drain writers clone before touching any of it.
    std::vector<std::pair<K, V>> out;
    range_rec(root, lo, hi, out);
    return out;
  }

  std::size_t size_snapshot() {
    auto all = range(std::numeric_limits<K>::lowest(),
                     std::numeric_limits<K>::max());
    return all.size();
  }

  std::size_t size_unsynchronized() const {
    return size_rec(root_.load(std::memory_order_relaxed));
  }

  std::vector<K> keys_unsynchronized() const {
    std::vector<K> out;
    keys_rec(root_.load(std::memory_order_relaxed), out);
    return out;
  }

  std::size_t height_unsynchronized() const {
    return height_rec(root_.load(std::memory_order_relaxed));
  }

 private:
  struct WriterSession {
    Node* root;        // locked, current-epoch
    std::uint64_t epoch;
  };

  // Register as a writer and return the locked, current-epoch root. The
  // root guard serializes against snapshots: a writer that passes it is
  // either drained by a later snapshot or sees that snapshot's epoch.
  WriterSession enter_writer() {
    root_guard_.lock();
    writers_active_.fetch_add(1, std::memory_order_seq_cst)
        VCAS_ORD("base.cow.snap-drain");
    const std::uint64_t epoch = snap_epoch_.load(std::memory_order_seq_cst)
        VCAS_ORD("base.cow.snap-drain");
    Node* root = root_.load(std::memory_order_seq_cst)
        VCAS_ORD("base.cow.snap-drain");
    root->lock.lock();
    if (root->epoch < epoch) {
      Node* clone = clone_locked(root, epoch);
      root_.store(clone, std::memory_order_seq_cst)
          VCAS_ORD("base.cow.tree-link");
      ebr::retire(root);
      root->lock.unlock();
      root = clone;  // constructed holding its lock
    }
    root_guard_.unlock();
    return WriterSession{root, epoch};
  }

  void exit_writer() {
    writers_active_.fetch_sub(1, std::memory_order_release);
  }

  // Under cur's lock: return the child on `go_left`, copied first if it is
  // frozen (internal nodes only; leaves are immutable and never mutated in
  // place). The returned node is locked; `cur` stays locked.
  Node* ensure_current(Node* cur, bool go_left, Node* child,
                       std::uint64_t epoch) {
    child->lock.lock();
    if (child->epoch >= epoch) return child;
    Node* clone = clone_locked(child, epoch);
    (go_left ? cur->left : cur->right).store(clone, std::memory_order_seq_cst)
        VCAS_ORD("base.cow.tree-link");
    ebr::retire(child);
    child->lock.unlock();
    return clone;
  }

  // Copy of `src` (whose lock the caller holds, so its children are
  // stable); the clone is returned LOCKED so the caller can hand it over.
  Node* clone_locked(Node* src, std::uint64_t epoch) {
    Node* n = new Node;
    n->key = src->key;
    n->value = src->value;
    n->inf = src->inf;
    n->leaf = src->leaf;
    n->epoch = epoch;
    n->left.store(src->left.load(std::memory_order_seq_cst)
                      VCAS_ORD("base.cow.tree-link"),
                  std::memory_order_relaxed);
    n->right.store(src->right.load(std::memory_order_seq_cst)
                       VCAS_ORD("base.cow.tree-link"),
                   std::memory_order_relaxed);
    n->lock.lock();
    return n;
  }

  Node* make_leaf(const K& k, const V& v, std::uint8_t inf,
                  std::uint64_t epoch) {
    Node* n = new Node;
    n->key = k;
    n->value = v;
    n->inf = inf;
    n->leaf = true;
    n->epoch = epoch;
    return n;
  }

  void range_rec(const Node* node, const K& lo, const K& hi,
                 std::vector<std::pair<K, V>>& out) const {
    if (node->leaf) {
      if (node->inf == 0 && !(node->key < lo) && !(hi < node->key)) {
        out.emplace_back(node->key, node->value);
      }
      return;
    }
    if (key_less_node(lo, node)) {
      range_rec(node->left.load(std::memory_order_seq_cst)
                    VCAS_ORD("base.cow.tree-link"),
                lo, hi, out);
    }
    if (!key_less_node(hi, node)) {
      range_rec(node->right.load(std::memory_order_seq_cst)
                    VCAS_ORD("base.cow.tree-link"),
                lo, hi, out);
    }
  }

  std::size_t height_rec(const Node* node) const {
    if (node->leaf) return 0;
    const std::size_t lh = height_rec(node->left.load(std::memory_order_relaxed));
    const std::size_t rh = height_rec(node->right.load(std::memory_order_relaxed));
    return 1 + (lh > rh ? lh : rh);
  }

  std::size_t size_rec(const Node* node) const {
    if (node->leaf) return node->inf == 0 ? 1 : 0;
    return size_rec(node->left.load(std::memory_order_relaxed)) +
           size_rec(node->right.load(std::memory_order_relaxed));
  }

  void keys_rec(const Node* node, std::vector<K>& out) const {
    if (node->leaf) {
      if (node->inf == 0) out.push_back(node->key);
      return;
    }
    keys_rec(node->left.load(std::memory_order_relaxed), out);
    keys_rec(node->right.load(std::memory_order_relaxed), out);
  }

  void free_rec(Node* node) {
    if (node == nullptr) return;
    if (!node->leaf) {
      free_rec(node->left.load(std::memory_order_relaxed));
      free_rec(node->right.load(std::memory_order_relaxed));
    }
    delete node;
  }

  std::atomic<Node*> root_;
  detail::Spinlock root_guard_;
  std::atomic<std::uint64_t> snap_epoch_{1};
  std::atomic<int> writers_active_{0};
};

}  // namespace vcas::baselines
