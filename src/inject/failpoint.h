// Fault-injection failpoints (compiled out by default).
//
// The store's lock-freedom claim is really a claim about HELPING: every
// multi-step protocol (batch install -> stamp -> decide, cell GC's
// seal -> unmap -> unlink, trim/coalesce, EBR scans) must tolerate a
// thread disappearing between any two steps, because any other thread can
// finish — or safely skip — the remainder. VCAS_FAILPOINT("tag") marks
// exactly those between-steps points. With -DVCAS_INJECT=1 each expands to
// a hit on a named site in a lock-free registry; tests arm a site with an
// action and drive the schedule deterministically:
//
//   kPark        spin (yielding) until inject::release(tag) — the modern
//                replacement for the old set_batch_pause_for_tests hook
//   kYieldStorm  N sched yields, optionally on a seeded pseudo-random
//                subset of hits (every_n) — reproducible scheduler noise
//   kSkipOnce    VCAS_FAILPOINT_SKIP sites only: skip the guarded
//                (skip-legal, maintenance-style) work once
//   kAbandon     the thread declares itself dead to EBR and never runs
//                again — simulated death mid-protocol; stall containment
//                (ebr.cc) must reclaim its slot and pins
//
// With VCAS_INJECT off (the default) VCAS_FAILPOINT expands to nothing and
// VCAS_FAILPOINT_SKIP to `false`; the control API below degrades to inline
// no-ops so tests compile in both configurations. Tags are machine-checked
// two-way against tools/lint/failpoints.toml, like VCAS_ORD tags.
//
// Placement rules: a parked/abandoned thread must only ever strand work
// the protocol already treats as skippable or helpable — never anything
// an OPERATION must wait on. Concretely: no site under a mutex; no site
// under the version-list trimming_ try-lock (vcas.trim / vcas.coalesce sit
// just before the acquire). Sites inside the janitor's shard claim
// (store.gc.*, maint.janitor.cell) are the deliberate exception: dying
// there permanently strands that ONE shard's maintenance claim, which the
// skip-don't-wait design degrades to "kBusy forever" for that shard —
// maintenance coverage shrinks, no operation ever blocks.
#pragma once

#ifndef VCAS_INJECT
#define VCAS_INJECT 0
#endif

#include <cstdint>

namespace vcas::inject {

inline constexpr bool kInjectEnabled = VCAS_INJECT != 0;

enum class Action : std::uint8_t {
  kNone = 0,
  kPark = 1,
  kYieldStorm = 2,
  kSkipOnce = 3,
  kAbandon = 4,
};

struct Spec {
  Action action = Action::kNone;
  // Fire on the trigger-th hit AFTER arming (1-based). With a single
  // instrumented writer this counts its protocol steps exactly — e.g.
  // trigger=N on store.batch.install parks a writer after its Nth install.
  std::uint64_t trigger = 1;
  // When > 0: ignore `trigger` and fire on a seeded pseudo-random subset
  // of hits, about one in every_n — deterministic for a fixed seed.
  std::uint64_t every_n = 0;
  std::uint32_t yields = 64;  // yield-storm length
  bool one_shot = true;       // disarm at the first firing (trigger mode)
};

#if VCAS_INJECT

namespace detail {
struct Site;
// Find-or-create the site for `tag` in the lock-free registry. Sites are
// interned once and live for the process.
Site* intern(const char* tag);
void hit(Site* site);
bool hit_skip(Site* site);
}  // namespace detail

// Control plane (tests). arm() resets the release latch; trigger counts
// relative to the hit count at arm time.
void arm(const char* tag, const Spec& spec);
void disarm(const char* tag);
void disarm_all();
// Unblock kPark'd threads at one site / at every site.
void release(const char* tag);
void release_all();
// Number of threads currently parked at the site.
std::int64_t parked(const char* tag);
// Total hits / firings at the site since process start.
std::uint64_t hits(const char* tag);
std::uint64_t fired(const char* tag);
// Threads that took kAbandon anywhere, ever.
std::uint64_t abandoned();
// Seed for every_n schedules; fixed default, override per run (tests read
// VCAS_INJECT_SEED). Set before arming.
void set_seed(std::uint64_t seed);

#else  // !VCAS_INJECT

inline void arm(const char*, const Spec&) {}
inline void disarm(const char*) {}
inline void disarm_all() {}
inline void release(const char*) {}
inline void release_all() {}
inline std::int64_t parked(const char*) { return 0; }
inline std::uint64_t hits(const char*) { return 0; }
inline std::uint64_t fired(const char*) { return 0; }
inline std::uint64_t abandoned() { return 0; }
inline void set_seed(std::uint64_t) {}

#endif  // VCAS_INJECT

}  // namespace vcas::inject

#if VCAS_INJECT

// Statement failpoint. The per-expansion function-local static makes the
// steady-state cost of an un-armed site one relaxed fetch_add + one
// acquire load after the first pass interns the tag.
#define VCAS_FAILPOINT(tag)                                   \
  do {                                                        \
    static ::vcas::inject::detail::Site* const vcas_fp_site = \
        ::vcas::inject::detail::intern(tag);                  \
    ::vcas::inject::detail::hit(vcas_fp_site);                \
  } while (false)

// Expression failpoint for skip-legal work: true exactly when an armed
// kSkipOnce fires, in which case the caller skips the guarded step (which
// must be something the protocol already allows skipping — maintenance
// passes, opportunistic helps).
#define VCAS_FAILPOINT_SKIP(tag)                                \
  ([]() -> bool {                                               \
    static ::vcas::inject::detail::Site* const vcas_fp_site =   \
        ::vcas::inject::detail::intern(tag);                    \
    return ::vcas::inject::detail::hit_skip(vcas_fp_site);      \
  }())

#else  // !VCAS_INJECT

#define VCAS_FAILPOINT(tag) \
  do {                      \
  } while (false)
#define VCAS_FAILPOINT_SKIP(tag) false

#endif  // VCAS_INJECT
