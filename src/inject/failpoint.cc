// Failpoint site registry and actions. Compiled into vcas_core in every
// build; the whole body is ifdef'd so a VCAS_INJECT=0 build contributes an
// empty TU and the header's no-op macros/stubs are the entire feature.
#include "inject/failpoint.h"

#if VCAS_INJECT

#include <atomic>
#include <cstring>
#include <thread>

#include "ebr/ebr.h"

namespace vcas::inject {
namespace detail {

// One interned failpoint site. Control-plane fields are written by arm()/
// release() and read on the hit path; everything is independent atomics
// because the hit path must stay lock-free (sites live inside lock-free
// protocols) and the control plane is test orchestration, where a racy
// re-arm is a test bug, not a memory-safety bug.
struct Site {
  char tag[64] = {};
  std::atomic<Site*> next{nullptr};

  std::atomic<bool> armed{false};
  std::atomic<std::uint8_t> action{0};
  std::atomic<std::uint64_t> fire_at{0};  // absolute hit index, trigger mode
  std::atomic<std::uint64_t> every_n{0};
  std::atomic<std::uint32_t> yields{64};
  std::atomic<bool> one_shot{true};
  std::atomic<bool> released{false};

  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fired{0};
  std::atomic<std::int64_t> parked{0};
};

namespace {

std::atomic<Site*> g_sites{nullptr};
std::atomic<std::uint64_t> g_seed{0x9e3779b97f4a7c15ull};
std::atomic<std::uint64_t> g_abandoned{0};

Site* find(const char* tag) {
  for (Site* s = g_sites.load(std::memory_order_acquire); s != nullptr;
       s = s->next.load(std::memory_order_acquire)) {
    if (std::strcmp(s->tag, tag) == 0) return s;
  }
  return nullptr;
}

// splitmix64 finalizer: the every_n schedule hashes (hit index ^ seed) so
// firings are scattered but exactly reproducible for a fixed seed.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool should_fire(Site* s, std::uint64_t h) {
  if (!s->armed.load(std::memory_order_acquire)) return false;
  const std::uint64_t every = s->every_n.load(std::memory_order_relaxed);
  if (every > 0) {
    return mix(h ^ g_seed.load(std::memory_order_relaxed)) % every == 0;
  }
  return h == s->fire_at.load(std::memory_order_relaxed);
}

void park(Site* s) {
  s->parked.fetch_add(1, std::memory_order_release);
  while (!s->released.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  s->parked.fetch_sub(1, std::memory_order_release);
}

[[noreturn]] void abandon() {
  g_abandoned.fetch_add(1, std::memory_order_release);
  // Simulated death mid-protocol: hand the slot, pins, and limbo to EBR's
  // stall containment, then never touch shared state again. The thread is
  // expected to be detached; it spins on its own stack until process exit.
  ebr::declare_self_dead();
  for (;;) std::this_thread::yield();
}

// Common firing bookkeeping; the action itself runs in the caller.
Action fire(Site* s) {
  s->fired.fetch_add(1, std::memory_order_release);
  const Action a =
      static_cast<Action>(s->action.load(std::memory_order_relaxed));
  if (s->every_n.load(std::memory_order_relaxed) == 0 &&
      s->one_shot.load(std::memory_order_relaxed)) {
    s->armed.store(false, std::memory_order_release);
  }
  return a;
}

void run_action(Site* s, Action a) {
  switch (a) {
    case Action::kPark:
      park(s);
      break;
    case Action::kYieldStorm: {
      const std::uint32_t n = s->yields.load(std::memory_order_relaxed);
      for (std::uint32_t i = 0; i < n; ++i) std::this_thread::yield();
      break;
    }
    case Action::kAbandon:
      abandon();
    case Action::kSkipOnce:  // only meaningful at _SKIP sites
    case Action::kNone:
      break;
  }
}

}  // namespace

void hit(Site* s) {
  const std::uint64_t h = s->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (should_fire(s, h)) run_action(s, fire(s));
}

bool hit_skip(Site* s) {
  const std::uint64_t h = s->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!should_fire(s, h)) return false;
  const Action a = fire(s);
  run_action(s, a);
  return a == Action::kSkipOnce;
}

Site* intern(const char* tag) {
  if (Site* s = find(tag)) return s;
  Site* fresh = new Site;  // interned for the process lifetime, never freed
  std::strncpy(fresh->tag, tag, sizeof(fresh->tag) - 1);
  Site* head = g_sites.load(std::memory_order_acquire);
  for (;;) {
    fresh->next.store(head, std::memory_order_relaxed);
    if (g_sites.compare_exchange_weak(head, fresh, std::memory_order_release,
                                      std::memory_order_acquire)) {
      return fresh;
    }
    // Lost the push: the winner may have interned this very tag.
    if (Site* s = find(tag)) {
      delete fresh;
      return s;
    }
  }
}

}  // namespace detail

void arm(const char* tag, const Spec& spec) {
  detail::Site* s = detail::intern(tag);
  s->released.store(false, std::memory_order_relaxed);
  s->action.store(static_cast<std::uint8_t>(spec.action),
                  std::memory_order_relaxed);
  s->every_n.store(spec.every_n, std::memory_order_relaxed);
  s->yields.store(spec.yields, std::memory_order_relaxed);
  s->one_shot.store(spec.one_shot, std::memory_order_relaxed);
  s->fire_at.store(s->hits.load(std::memory_order_relaxed) + spec.trigger,
                   std::memory_order_relaxed);
  s->armed.store(true, std::memory_order_release);
}

void disarm(const char* tag) {
  if (detail::Site* s = detail::find(tag)) {
    s->armed.store(false, std::memory_order_release);
  }
}

void disarm_all() {
  for (detail::Site* s = detail::g_sites.load(std::memory_order_acquire);
       s != nullptr; s = s->next.load(std::memory_order_acquire)) {
    s->armed.store(false, std::memory_order_release);
  }
}

void release(const char* tag) {
  if (detail::Site* s = detail::find(tag)) {
    s->released.store(true, std::memory_order_release);
  }
}

void release_all() {
  for (detail::Site* s = detail::g_sites.load(std::memory_order_acquire);
       s != nullptr; s = s->next.load(std::memory_order_acquire)) {
    s->released.store(true, std::memory_order_release);
  }
}

std::int64_t parked(const char* tag) {
  detail::Site* s = detail::find(tag);
  return s != nullptr ? s->parked.load(std::memory_order_acquire) : 0;
}

std::uint64_t hits(const char* tag) {
  detail::Site* s = detail::find(tag);
  return s != nullptr ? s->hits.load(std::memory_order_acquire) : 0;
}

std::uint64_t fired(const char* tag) {
  detail::Site* s = detail::find(tag);
  return s != nullptr ? s->fired.load(std::memory_order_acquire) : 0;
}

std::uint64_t abandoned() {
  return detail::g_abandoned.load(std::memory_order_acquire);
}

void set_seed(std::uint64_t seed) {
  detail::g_seed.store(seed, std::memory_order_relaxed);
}

}  // namespace vcas::inject

#endif  // VCAS_INJECT
