// Non-blocking binary search tree of Ellen, Fatourou, Ruppert and van
// Breugel (PODC 2010), in three build flavors sharing one implementation:
//
//   NBBST<K,V>           — the original: plain atomic child pointers.
//   VcasBST<K,V>         — the paper's snapshottable version (Sections
//                          4-6): child pointers are VersionedPtr (the
//                          indirection-free Figure 9 form), and delete
//                          restores the *recorded-once* property by
//                          freezing and copying the promoted sibling
//                          instead of re-installing an existing node.
//   VcasBSTIndirect<K,V> — Algorithm 1 as-is: child pointers are
//                          VersionedCAS<Node*> with separate VNode lists.
//                          No structural changes needed (recorded-once is
//                          not required), at the price of one extra cache
//                          miss per child access — the Section 5 ablation.
//
// Structure: leaf-oriented (external) BST. Internal nodes route searches;
// leaves hold the keys. Sentinels: root key is inf2, root->right is
// Leaf(inf2), root->left starts as Leaf(inf1); every real key is smaller
// than both, so real leaves always have a non-null grandparent.
//
// Synchronization: "lock-free locks". Each internal node has an update word
// = (Info*, state) packed in one CAS-able word. Inserts IFLAG the parent;
// deletes DFLAG the grandparent then MARK the parent (permanent). Any
// operation that finds a node non-CLEAN helps the recorded operation finish
// before retrying, which makes the whole structure lock-free. Updates
// linearize at the child CAS that splices the fragment in or out.
//
// The versioned flavor adds a COPY state: help_marked freezes the promoted
// sibling (so its children cannot change), installs a *fresh copy* of it,
// and retires the original. Appendix G's argument covers the copy sharing
// version fields with nodes that remain version-list members elsewhere.
//
// Reclamation: EBR. Nodes and Info records are retired by unique winners
// (the successful child-CAS or the flag CAS that overwrites a CLEAN word),
// so nothing is retired twice; snapshot queries hold an ebr::Guard for
// their full lifetime, which keeps every version they can reach alive
// (a query's handle is at least its pin time, so any node it can reach was
// unlinked — and therefore retired — after it pinned).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "ebr/ebr.h"
#include "util/annotations.h"
#include "vcas/camera.h"
#include "vcas/snapshot.h"
#include "vcas/versioned_cas.h"
#include "vcas/versioned_ptr.h"

namespace vcas::ds {

// Which versioning scheme backs the tree's child pointers.
enum class VcasMode {
  kPlain,     // original NBBST: plain atomic child pointers, no snapshots
  kDirect,    // Figure 9: version fields inside the nodes (recorded-once;
              // delete must copy the promoted sibling)
  kIndirect,  // Algorithm 1: separate VNode version lists (no structural
              // changes needed — the unmodified Ellen delete is legal)
};

namespace detail {

struct Empty {};

// Plain-atomic child pointer with the VersionedPtr interface, so all BST
// flavors compile from identical update-path code.
template <typename Node>
class PlainPtr {
 public:
  PlainPtr() = default;
  void init(Node* n, Camera*) { p_.store(n, std::memory_order_relaxed); }
  Node* vRead() {
    return p_.load(std::memory_order_seq_cst) VCAS_ORD("ds.ellen.plainptr");
  }
  Node* read_unsynchronized() const {
    return p_.load(std::memory_order_relaxed);
  }
  bool vCAS(Node* old_v, Node* new_v) {
    return p_.compare_exchange_strong(old_v, new_v,
                                      std::memory_order_seq_cst)
        VCAS_ORD("ds.ellen.plainptr");
  }

 private:
  std::atomic<Node*> p_{nullptr};
};

// VersionedCAS<Node*>-backed child pointer (Algorithm 1, with one level of
// indirection through VNodes). Lazily constructed because tree nodes wire
// their links after allocation; leaves never init theirs.
template <typename Node>
class IndirectPtr {
 public:
  IndirectPtr() = default;
  ~IndirectPtr() {
    if (initialized_) vc().~VersionedCAS<Node*>();
  }
  IndirectPtr(const IndirectPtr&) = delete;
  IndirectPtr& operator=(const IndirectPtr&) = delete;

  void init(Node* n, Camera* cam) {
    new (&storage_) VersionedCAS<Node*>(n, cam);
    initialized_ = true;
  }
  Node* vRead() { return vc().vRead(); }
  Node* read_unsynchronized() const { return vc().read_unsynchronized(); }
  bool vCAS(Node* old_v, Node* new_v) { return vc().vCAS(old_v, new_v); }
  Node* readSnapshot(Timestamp ts) { return vc().readSnapshot(ts); }
  std::size_t version_count() const { return vc().version_count(); }

 private:
  VersionedCAS<Node*>& vc() {
    return *reinterpret_cast<VersionedCAS<Node*>*>(&storage_);
  }
  const VersionedCAS<Node*>& vc() const {
    return *reinterpret_cast<const VersionedCAS<Node*>*>(&storage_);
  }
  alignas(VersionedCAS<Node*>) unsigned char storage_[sizeof(
      VersionedCAS<Node*>)];
  bool initialized_ = false;
};

}  // namespace detail

template <typename K, typename V, VcasMode Mode>
class EllenBST {
  static constexpr bool kVersioned = Mode != VcasMode::kPlain;
  static constexpr bool kDirect = Mode == VcasMode::kDirect;

  struct Node;
  using ChildPtr = std::conditional_t<
      Mode == VcasMode::kDirect, VersionedPtr<Node>,
      std::conditional_t<Mode == VcasMode::kIndirect,
                         detail::IndirectPtr<Node>, detail::PlainPtr<Node>>>;
  using NodeBase =
      std::conditional_t<kDirect, Versioned<Node>, detail::Empty>;

  // update-word states, packed into the low 3 bits of an Info pointer.
  enum State : std::uintptr_t {
    kClean = 0,
    kIFlag = 1,
    kDFlag = 2,
    kMark = 3,   // parent of a deleted leaf; permanent
    kCopy = 4,   // versioned flavor only: sibling frozen for copying
  };
  static constexpr std::uintptr_t kStateMask = 7;

  struct Info;  // fwd

  static std::uintptr_t pack(Info* info, State s) {
    return reinterpret_cast<std::uintptr_t>(info) | s;
  }
  static State state_of(std::uintptr_t u) {
    return static_cast<State>(u & kStateMask);
  }
  static Info* info_of(std::uintptr_t u) {
    return reinterpret_cast<Info*>(u & ~kStateMask);
  }

  struct Node : NodeBase {
    K key{};
    V value{};
    std::uint8_t inf = 0;  // 0 = real key, 1 = inf1, 2 = inf2 sentinel
    bool leaf = false;
    std::atomic<std::uintptr_t> update{kClean};
    ChildPtr left;
    ChildPtr right;
  };

  // One record type for both operations keeps help() simple.
  struct Info {
    bool is_insert;
    Node* gp = nullptr;          // delete only
    Node* p = nullptr;           // insert: flagged parent; delete: marked node
    Node* l = nullptr;           // the leaf being replaced / removed
    Node* new_internal = nullptr;  // insert only
    std::uintptr_t pupdate = 0;  // delete only: p's update word at search
  };

  // (a.inf, a.key) < (b.inf, b.key) with inf dominant; real keys sort below
  // both sentinels so searches for real keys never fall off the right edge.
  static bool node_less(const Node* a, const Node* b) {
    if (a->inf != b->inf) return a->inf < b->inf;
    if (a->inf != 0) return false;  // equal sentinels
    return a->key < b->key;
  }
  static bool key_less_node(const K& k, const Node* n) {
    return n->inf != 0 || k < n->key;
  }

 public:
  EllenBST() : EllenBST(nullptr) {}

  // Associate with an existing camera (paper Section 3); nullptr means a
  // private camera. Shared cameras enable cross-structure atomic queries
  // through the *_at variants.
  explicit EllenBST(Camera* shared) {
    if (shared == nullptr) {
      owned_camera_ = std::make_unique<Camera>();
      camera_ = owned_camera_.get();
    } else {
      camera_ = shared;
    }
    Node* leaf1 = make_leaf(K{}, V{}, 1);
    Node* leaf2 = make_leaf(K{}, V{}, 2);
    root_ = new Node;
    root_->inf = 2;
    root_->left.init(leaf1, camera_);
    root_->right.init(leaf2, camera_);
  }

  EllenBST(const EllenBST&) = delete;
  EllenBST& operator=(const EllenBST&) = delete;

  ~EllenBST() {
    std::unordered_set<Info*> infos;
    free_rec(root_, infos);
    for (Info* info : infos) delete info;
  }

  Camera& camera() { return *camera_; }

  // Wait-free single descent; linearizes while the reached leaf was on the
  // search path (Ellen et al., Lemma on Search).
  std::optional<V> find(const K& key) {
    ebr::Guard g;
    Node* l = descend(key);
    if (l->inf == 0 && l->key == key) return l->value;
    return std::nullopt;
  }

  bool contains(const K& key) { return find(key).has_value(); }

  bool insert(const K& key, const V& value) {
    ebr::Guard g;
    for (;;) {
      SearchResult s = search(key);
      if (s.l->inf == 0 && s.l->key == key) return false;
      if (state_of(s.pupdate) != kClean) {
        help(s.pupdate);
        continue;
      }
      // Fragment: new internal with a fresh copy of l and the new leaf,
      // ordered by key. Copying l (rather than reusing it) keeps every
      // installed node freshly allocated.
      Node* new_leaf = make_leaf(key, value, 0);
      Node* old_copy = make_leaf(s.l->key, s.l->value, s.l->inf);
      Node* ni = new Node;
      if (s.l->inf != 0 || key < s.l->key) {
        ni->key = s.l->key;
        ni->inf = s.l->inf;
        ni->left.init(new_leaf, camera_);
        ni->right.init(old_copy, camera_);
      } else {
        ni->key = key;
        ni->left.init(old_copy, camera_);
        ni->right.init(new_leaf, camera_);
      }
      Info* op = new Info;
      op->is_insert = true;
      op->p = s.p;
      op->l = s.l;
      op->new_internal = ni;
      std::uintptr_t expected = s.pupdate;
      if (s.p->update.compare_exchange_strong(expected, pack(op, kIFlag),
                                              std::memory_order_seq_cst)
              VCAS_ORD("ds.ellen.update-word")) {
        retire_replaced(s.pupdate);
        help_insert(op);
        return true;
      }
      // Lost the flag: nothing was published; discard and help the winner.
      delete new_leaf;
      delete old_copy;
      delete ni;
      delete op;
      help(s.p->update.load(std::memory_order_seq_cst)
               VCAS_ORD("ds.ellen.update-word"));
    }
  }

  bool remove(const K& key) {
    return remove_if(key, [](const V&) { return true; });
  }

  // Conditional unlink hook for the store's tombstone cell GC (ISSUE 5):
  // remove the key's entry iff it currently maps to `expected` (leaves are
  // immutable — inserts install fresh leaves — so the check is a plain
  // read on the search-result leaf). False means absent or mapped
  // elsewhere at the search's linearization point; the store only erases
  // values that are never re-inserted (detached cells), which makes that
  // verdict permanent, so the caller may then retire `expected`.
  template <typename U>
  bool erase(const K& key, const U& expected) {
    return remove_if(key, [&](const V& v) { return v == expected; });
  }

 private:
  template <typename Pred>
  bool remove_if(const K& key, Pred&& value_ok) {
    ebr::Guard g;
    for (;;) {
      SearchResult s = search(key);
      if (!(s.l->inf == 0 && s.l->key == key)) return false;
      if (!value_ok(s.l->value)) return false;
      if (state_of(s.gpupdate) != kClean) {
        help(s.gpupdate);
        continue;
      }
      if (state_of(s.pupdate) != kClean) {
        help(s.pupdate);
        continue;
      }
      assert(s.gp != nullptr && "real leaves always have a grandparent");
      Info* op = new Info;
      op->is_insert = false;
      op->gp = s.gp;
      op->p = s.p;
      op->l = s.l;
      op->pupdate = s.pupdate;
      std::uintptr_t expected = s.gpupdate;
      if (s.gp->update.compare_exchange_strong(expected, pack(op, kDFlag),
                                               std::memory_order_seq_cst)
              VCAS_ORD("ds.ellen.update-word")) {
        retire_replaced(s.gpupdate);
        if (help_delete(op)) return true;
        // Backtracked: op stays reachable from gp's CLEAN word until the
        // next flag retires it; loop and retry.
      } else {
        delete op;
        help(s.gp->update.load(std::memory_order_seq_cst)
                 VCAS_ORD("ds.ellen.update-word"));
      }
    }
  }

 public:
  // --- snapshot queries (versioned flavor only) ----------------------------

  // All (key, value) with key in [lo, hi], atomic at the snapshot.
  std::vector<std::pair<K, V>> range(const K& lo, const K& hi)
    requires (Mode != VcasMode::kPlain)
  {
    SnapshotGuard snap(*camera_);
    return range_at(snap.ts(), lo, hi);
  }

  // Handle-explicit variant for cross-structure snapshots (caller holds a
  // SnapshotGuard on the shared camera, taken after this tree existed).
  std::vector<std::pair<K, V>> range_at(Timestamp ts, const K& lo,
                                        const K& hi)
    requires (Mode != VcasMode::kPlain)
  {
    std::vector<std::pair<K, V>> out;
    range_rec(root_, lo, hi, ts, out);
    return out;
  }

  // Point lookup against an existing snapshot handle (caller holds a
  // SnapshotGuard on the shared camera, taken after this tree existed).
  std::optional<V> find_at(Timestamp ts, const K& key)
    requires (Mode != VcasMode::kPlain)
  {
    Node* node = root_;
    while (!node->leaf) {
      node = key_less_node(key, node) ? node->left.readSnapshot(ts)
                                      : node->right.readSnapshot(ts);
    }
    if (node->inf == 0 && node->key == key) return node->value;
    return std::nullopt;
  }

  // Visit every (key, value) present at the snapshot, in ascending key
  // order. Same precondition as find_at. Iterative (explicit stack): the
  // tree is unbalanced, so recursing per internal node could exhaust the
  // call stack under adversarial insertion orders.
  template <typename Fn>
  void for_each_at(Timestamp ts, Fn&& fn)
    requires (Mode != VcasMode::kPlain)
  {
    std::vector<Node*> stack{root_};
    while (!stack.empty()) {
      Node* node = stack.back();
      stack.pop_back();
      if (node->leaf) {
        if (node->inf == 0) fn(node->key, node->value);
        continue;
      }
      stack.push_back(node->right.readSnapshot(ts));
      stack.push_back(node->left.readSnapshot(ts));
    }
  }

  // First `count` pairs with key strictly greater than k, ascending.
  std::vector<std::pair<K, V>> succ(const K& k, std::size_t count)
    requires (Mode != VcasMode::kPlain)
  {
    SnapshotGuard snap(*camera_);
    std::vector<std::pair<K, V>> out;
    succ_rec(root_, k, count, snap.ts(), out);
    return out;
  }

  // First pair in [lo, hi) whose key satisfies pred (in key order).
  std::optional<std::pair<K, V>> find_if(
      const K& lo, const K& hi, const std::function<bool(const K&)>& pred)
    requires (Mode != VcasMode::kPlain)
  {
    SnapshotGuard snap(*camera_);
    return findif_rec(root_, lo, hi, pred, snap.ts());
  }

  // Values for each queried key (nullopt if absent), all from one snapshot.
  std::vector<std::optional<V>> multisearch(const std::vector<K>& keys)
    requires (Mode != VcasMode::kPlain)
  {
    SnapshotGuard snap(*camera_);
    std::vector<std::optional<V>> out(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      out[i] = find_at(snap.ts(), keys[i]);
    }
    return out;
  }

  // Height of the snapshot tree (a structural query: Table 1 row 3).
  std::size_t height_snapshot()
    requires (Mode != VcasMode::kPlain)
  {
    SnapshotGuard snap(*camera_);
    return height_rec(root_, snap.ts());
  }

  // Number of real keys at the snapshot.
  std::size_t size_snapshot()
    requires (Mode != VcasMode::kPlain)
  {
    SnapshotGuard snap(*camera_);
    return size_rec(root_, snap.ts());
  }

  // --- non-atomic counterparts (both flavors; Figure 3's baseline) --------
  // These run the sequential algorithm on the live tree with no snapshot;
  // they are linearizable only in the absence of concurrent updates.

  std::vector<std::pair<K, V>> range_nonatomic(const K& lo, const K& hi) {
    ebr::Guard g;
    std::vector<std::pair<K, V>> out;
    range_live_rec(root_, lo, hi, out);
    return out;
  }

  std::vector<std::pair<K, V>> succ_nonatomic(const K& k, std::size_t count) {
    ebr::Guard g;
    std::vector<std::pair<K, V>> out;
    succ_live_rec(root_, k, count, out);
    return out;
  }

  std::optional<std::pair<K, V>> find_if_nonatomic(
      const K& lo, const K& hi, const std::function<bool(const K&)>& pred) {
    ebr::Guard g;
    return findif_live_rec(root_, lo, hi, pred);
  }

  std::vector<std::optional<V>> multisearch_nonatomic(
      const std::vector<K>& keys) {
    std::vector<std::optional<V>> out(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) out[i] = find(keys[i]);
    return out;
  }

  // Double-collect range query (the mechanism behind KST's obstruction-free
  // range queries [Brown & Avni 2012]): collect the live range twice and
  // accept only when both collects agree; restart otherwise. Fast when the
  // range is quiet, but starves — and falls back to a non-atomic answer —
  // when updates keep hitting the range (the paper's Figure 2g explanation
  // for KST's collapse at large rqsize).
  std::vector<std::pair<K, V>> range_double_collect(const K& lo, const K& hi,
                                                    int max_retries = 64) {
    ebr::Guard g;
    std::vector<std::pair<K, V>> prev;
    range_live_rec(root_, lo, hi, prev);
    for (int attempt = 0; attempt < max_retries; ++attempt) {
      std::vector<std::pair<K, V>> cur;
      range_live_rec(root_, lo, hi, cur);
      if (cur == prev) return cur;
      prev = std::move(cur);
    }
    return prev;  // obstruction-free fallback: last collect, not validated
  }

  // Structural stats on the live tree (quiescent use).
  std::size_t size_unsynchronized() const { return size_live_rec(root_); }
  std::size_t height_unsynchronized() const { return height_live_rec(root_); }

  // Validation helper: in-order real keys of the live tree (quiescent use).
  std::vector<K> keys_unsynchronized() const {
    std::vector<K> out;
    keys_live_rec(root_, out);
    return out;
  }

 private:
  struct SearchResult {
    Node* gp = nullptr;
    Node* p = nullptr;
    Node* l = nullptr;
    std::uintptr_t pupdate = kClean;
    std::uintptr_t gpupdate = kClean;
  };

  static Node* make_leaf(const K& k, const V& v, std::uint8_t inf) {
    Node* n = new Node;
    n->key = k;
    n->value = v;
    n->inf = inf;
    n->leaf = true;
    return n;
  }

  Node* descend(const K& key) {
    Node* node = root_;
    while (!node->leaf) {
      node = key_less_node(key, node) ? node->left.vRead()
                                      : node->right.vRead();
    }
    return node;
  }

  // Ellen et al. Search: single descent recording parent/grandparent and
  // their update words (update read *before* following the child, so a
  // successful flag CAS on that word certifies the child is unchanged).
  SearchResult search(const K& key) {
    SearchResult r;
    r.l = root_;
    while (!r.l->leaf) {
      r.gp = r.p;
      r.p = r.l;
      r.gpupdate = r.pupdate;
      r.pupdate = r.p->update.load(std::memory_order_seq_cst)
          VCAS_ORD("ds.ellen.update-word");
      r.l = key_less_node(key, r.p) ? r.p->left.vRead() : r.p->right.vRead();
    }
    return r;
  }

  void help(std::uintptr_t u) {
    switch (state_of(u)) {
      case kIFlag:
        help_insert(info_of(u));
        break;
      case kDFlag:
        help_delete(info_of(u));
        break;
      case kMark:
      case kCopy:
        help_marked(info_of(u));
        break;
      case kClean:
        break;
    }
  }

  // A CLEAN|op word that was just overwritten by a successful flag CAS can
  // no longer be read by new threads; retire its Info.
  void retire_replaced(std::uintptr_t old_word) {
    Info* old = info_of(old_word);
    if (old != nullptr) ebr::retire(old);
  }

  void help_insert(Info* op) {
    // ichild CAS: splice the fragment in over the old leaf. Exactly one
    // helper succeeds and owns retiring the replaced leaf.
    if (cas_child(op->p, op->l, op->new_internal)) {
      ebr::retire(op->l);
    }
    // iunflag (same Info stays in the word; no retire).
    std::uintptr_t expected = pack(op, kIFlag);
    op->p->update.compare_exchange_strong(expected, pack(op, kClean),
                                          std::memory_order_seq_cst)
        VCAS_ORD("ds.ellen.update-word");
  }

  bool help_delete(Info* op) {
    // mark CAS on p. Success (or finding our own mark) lets the delete
    // proceed; any other value means a competing operation won p and we
    // must backtrack.
    std::uintptr_t expected = op->pupdate;
    const std::uintptr_t marked = pack(op, kMark);
    if (op->p->update.compare_exchange_strong(expected, marked,
                                              std::memory_order_seq_cst)
            VCAS_ORD("ds.ellen.update-word")) {
      retire_replaced(op->pupdate);
      help_marked(op);
      return true;
    }
    if (op->p->update.load(std::memory_order_seq_cst)
            VCAS_ORD("ds.ellen.update-word") == marked) {
      help_marked(op);  // another helper marked for us
      return true;
    }
    help(op->p->update.load(std::memory_order_seq_cst)
             VCAS_ORD("ds.ellen.update-word"));
    // backtrack CAS: unflag gp so the delete can retry from scratch.
    std::uintptr_t flagged = pack(op, kDFlag);
    op->gp->update.compare_exchange_strong(flagged, pack(op, kClean),
                                           std::memory_order_seq_cst)
        VCAS_ORD("ds.ellen.update-word");
    return false;
  }

  // p is marked: splice p (and the removed leaf) out by installing p's
  // other child at gp. Original flavor installs the sibling itself; the
  // versioned flavor freezes the sibling, installs a fresh copy (keeping
  // the structure recorded-once) and retires the original sibling too.
  void help_marked(Info* op) {
    // p is frozen by its permanent mark, so this read is stable.
    Node* other = (op->p->right.vRead() == op->l) ? op->p->left.vRead()
                                                  : op->p->right.vRead();
    if constexpr (!kDirect) {
      // Plain and indirect flavors install the existing sibling: with
      // VNode-based versioning the sibling is just the vCAS's new value
      // and recorded-once is not required (Algorithm 1 is fully general).
      if (cas_child(op->gp, op->p, other)) {
        ebr::retire(op->p);
        ebr::retire(op->l);
      }
    } else {
      // Freeze an internal sibling so its children cannot change while we
      // copy. Leaves are immutable; no freeze needed.
      if (!other->leaf) {
        for (;;) {
          std::uintptr_t u = other->update.load(std::memory_order_seq_cst)
              VCAS_ORD("ds.ellen.update-word");
          if (state_of(u) == kCopy) {
            // Only our op can copy-freeze p's child (one mark winner per
            // p), so this is our freeze.
            assert(info_of(u) == op);
            break;
          }
          if (state_of(u) == kClean) {
            std::uintptr_t expected = u;
            if (other->update.compare_exchange_strong(
                    expected, pack(op, kCopy), std::memory_order_seq_cst)
                    VCAS_ORD("ds.ellen.update-word")) {
              retire_replaced(u);
              break;
            }
            continue;
          }
          help(u);  // finish the operation pinning the sibling, then retry
        }
      }
      Node* copy = clone_frozen(other);
      if (cas_child(op->gp, op->p, copy)) {
        ebr::retire(op->p);
        ebr::retire(op->l);
        ebr::retire(other);
      } else {
        delete copy;  // never published
      }
    }
    // dunflag.
    std::uintptr_t flagged = pack(op, kDFlag);
    op->gp->update.compare_exchange_strong(flagged, pack(op, kClean),
                                           std::memory_order_seq_cst)
        VCAS_ORD("ds.ellen.update-word");
  }

  // Fresh copy of a frozen (or leaf) node. Children are read after the
  // freeze, so they are final; the copy starts CLEAN with pristine version
  // fields. Its child pointers adopt the frozen children as initial values
  // (the Appendix G shared-initial-value case).
  Node* clone_frozen(Node* other)
    requires (Mode == VcasMode::kDirect)
  {
    Node* copy = new Node;
    copy->key = other->key;
    copy->value = other->value;
    copy->inf = other->inf;
    copy->leaf = other->leaf;
    if (!other->leaf) {
      copy->left.init(other->left.vRead(), camera_);
      copy->right.init(other->right.vRead(), camera_);
    }
    return copy;
  }

  // Direction chosen by key order (valid because the BST property places
  // every descendant strictly by comparison with the parent key).
  bool cas_child(Node* parent, Node* old_node, Node* new_node) {
    if (node_less(new_node, parent)) {
      return parent->left.vCAS(old_node, new_node);
    }
    return parent->right.vCAS(old_node, new_node);
  }

  // --- snapshot query recursions -------------------------------------------

  void range_rec(Node* node, const K& lo, const K& hi, Timestamp ts,
                 std::vector<std::pair<K, V>>& out)
    requires (Mode != VcasMode::kPlain)
  {
    if (node->leaf) {
      if (node->inf == 0 && !(node->key < lo) && !(hi < node->key)) {
        out.emplace_back(node->key, node->value);
      }
      return;
    }
    // Left subtree holds keys < node->key; right holds keys >= node->key.
    if (key_less_node(lo, node)) {
      range_rec(node->left.readSnapshot(ts), lo, hi, ts, out);
    }
    if (!key_less_node(hi, node)) {
      range_rec(node->right.readSnapshot(ts), lo, hi, ts, out);
    }
  }

  void succ_rec(Node* node, const K& k, std::size_t count, Timestamp ts,
                std::vector<std::pair<K, V>>& out)
    requires (Mode != VcasMode::kPlain)
  {
    if (out.size() >= count) return;
    if (node->leaf) {
      if (node->inf == 0 && k < node->key) {
        out.emplace_back(node->key, node->value);
      }
      return;
    }
    if (key_less_node(k, node)) {
      succ_rec(node->left.readSnapshot(ts), k, count, ts, out);
      if (out.size() < count) {
        succ_rec(node->right.readSnapshot(ts), k, count, ts, out);
      }
    } else {
      succ_rec(node->right.readSnapshot(ts), k, count, ts, out);
    }
  }

  std::optional<std::pair<K, V>> findif_rec(
      Node* node, const K& lo, const K& hi,
      const std::function<bool(const K&)>& pred, Timestamp ts)
    requires (Mode != VcasMode::kPlain)
  {
    if (node->leaf) {
      if (node->inf == 0 && !(node->key < lo) && node->key < hi &&
          pred(node->key)) {
        return std::make_pair(node->key, node->value);
      }
      return std::nullopt;
    }
    if (key_less_node(lo, node)) {
      auto r = findif_rec(node->left.readSnapshot(ts), lo, hi, pred, ts);
      if (r.has_value()) return r;
    }
    // Right subtree keys are >= node->key; with a half-open [lo, hi) it can
    // only contribute when node->key < hi (sentinel keys never are).
    if (node->inf == 0 && node->key < hi) {
      return findif_rec(node->right.readSnapshot(ts), lo, hi, pred, ts);
    }
    return std::nullopt;
  }

  std::size_t height_rec(Node* node, Timestamp ts)
    requires (Mode != VcasMode::kPlain)
  {
    if (node->leaf) return 0;
    const std::size_t lh = height_rec(node->left.readSnapshot(ts), ts);
    const std::size_t rh = height_rec(node->right.readSnapshot(ts), ts);
    return 1 + (lh > rh ? lh : rh);
  }


  std::size_t size_rec(Node* node, Timestamp ts)
    requires (Mode != VcasMode::kPlain)
  {
    if (node->leaf) return node->inf == 0 ? 1 : 0;
    return size_rec(node->left.readSnapshot(ts), ts) +
           size_rec(node->right.readSnapshot(ts), ts);
  }

  // --- live-tree (non-atomic) recursions -----------------------------------

  void range_live_rec(Node* node, const K& lo, const K& hi,
                      std::vector<std::pair<K, V>>& out) {
    if (node->leaf) {
      if (node->inf == 0 && !(node->key < lo) && !(hi < node->key)) {
        out.emplace_back(node->key, node->value);
      }
      return;
    }
    if (key_less_node(lo, node)) range_live_rec(node->left.vRead(), lo, hi, out);
    if (!key_less_node(hi, node)) {
      range_live_rec(node->right.vRead(), lo, hi, out);
    }
  }

  void succ_live_rec(Node* node, const K& k, std::size_t count,
                     std::vector<std::pair<K, V>>& out) {
    if (out.size() >= count) return;
    if (node->leaf) {
      if (node->inf == 0 && k < node->key) {
        out.emplace_back(node->key, node->value);
      }
      return;
    }
    if (key_less_node(k, node)) {
      succ_live_rec(node->left.vRead(), k, count, out);
      if (out.size() < count) succ_live_rec(node->right.vRead(), k, count, out);
    } else {
      succ_live_rec(node->right.vRead(), k, count, out);
    }
  }

  std::optional<std::pair<K, V>> findif_live_rec(
      Node* node, const K& lo, const K& hi,
      const std::function<bool(const K&)>& pred) {
    if (node->leaf) {
      if (node->inf == 0 && !(node->key < lo) && node->key < hi &&
          pred(node->key)) {
        return std::make_pair(node->key, node->value);
      }
      return std::nullopt;
    }
    if (key_less_node(lo, node)) {
      auto r = findif_live_rec(node->left.vRead(), lo, hi, pred);
      if (r.has_value()) return r;
    }
    if (node->inf == 0 && node->key < hi) {
      return findif_live_rec(node->right.vRead(), lo, hi, pred);
    }
    return std::nullopt;
  }

  std::size_t size_live_rec(const Node* node) const {
    if (node->leaf) return node->inf == 0 ? 1 : 0;
    return size_live_rec(node->left.read_unsynchronized()) +
           size_live_rec(node->right.read_unsynchronized());
  }

  std::size_t height_live_rec(const Node* node) const {
    if (node->leaf) return 0;
    const std::size_t lh = height_live_rec(node->left.read_unsynchronized());
    const std::size_t rh = height_live_rec(node->right.read_unsynchronized());
    return 1 + (lh > rh ? lh : rh);
  }

  void keys_live_rec(const Node* node, std::vector<K>& out) const {
    if (node->leaf) {
      if (node->inf == 0) out.push_back(node->key);
      return;
    }
    keys_live_rec(node->left.read_unsynchronized(), out);
    keys_live_rec(node->right.read_unsynchronized(), out);
  }

  void free_rec(Node* node, std::unordered_set<Info*>& infos) {
    if (node == nullptr) return;
    if (!node->leaf) {
      free_rec(node->left.read_unsynchronized(), infos);
      free_rec(node->right.read_unsynchronized(), infos);
      Info* info = info_of(node->update.load(std::memory_order_relaxed));
      if (info != nullptr) infos.insert(info);
    }
    delete node;
  }

  std::unique_ptr<Camera> owned_camera_;
  Camera* camera_;
  Node* root_;
};

template <typename K, typename V = K>
using NBBST = EllenBST<K, V, VcasMode::kPlain>;

template <typename K, typename V = K>
using VcasBST = EllenBST<K, V, VcasMode::kDirect>;

// The un-optimized Algorithm 1 build: one extra pointer chase per child
// access. Exists for the Section 5 indirection ablation.
template <typename K, typename V = K>
using VcasBSTIndirect = EllenBST<K, V, VcasMode::kIndirect>;

}  // namespace vcas::ds
