// Non-blocking chromatic tree (Brown, Ellen, Ruppert, PPoPP 2014) built on
// the LLX/SCX primitives, in two flavors:
//
//   ChromaticTree<K,V>  — plain atomic child pointers (the paper's "CT").
//   VcasChromaticTree<K,V> — versioned child pointers ("VcasCT"): the SCX
//        update CAS becomes a vCAS, making the tree snapshottable. Every
//        SCX installs a freshly allocated fragment, so the structure is
//        recorded-once *by construction* (paper Section 6) and the
//        indirection-free Figure 9 representation applies directly.
//
// Structure: leaf-oriented BST with a weight per node (relaxed red-black:
// w==0 red, w==1 black, w>1 overweight). The invariant maintained *exactly*
// at all times is: every root-to-leaf path over real nodes has the same
// total weight. Two kinds of violations may exist temporarily and are
// repaired by a cleanup pass after each update:
//   - red-red: a w==0 node whose (real) parent has w==0,
//   - overweight: a node with w > 1.
// Every rebalancing transformation below preserves (a) the in-order key
// sequence and (b) the weight sum along every path through the replaced
// fragment; tests/chromatic_test.cc checks both properties globally after
// randomized histories, which validates the transformation algebra without
// transcribing the original paper's 22 case diagrams.
//
// LLX/SCX: each node carries an SCX-record pointer (info) and a marked bit.
// LLX(r) returns a snapshot of r's mutable fields provided no SCX is in
// progress on r; SCX(V, fld, old, new) freezes every node in V (CAS its
// info from the LLX-observed record to the new record), marks the removed
// nodes (all of V except the field owner V[0]), performs the single child
// CAS that swings the fragment in, and commits. Any operation that finds a
// node frozen helps the recorded SCX finish, which makes updates lock-free.
//
// Reclamation: EBR, with the same unique-winner discipline as ellen_bst.h:
// the SCX initiator retires removed nodes; an SCX record is retired by the
// freeze CAS that later replaces it in a live node's info field.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "ds/ellen_bst.h"  // detail::PlainPtr, detail::Empty
#include "ebr/ebr.h"
#include "util/annotations.h"
#include "vcas/camera.h"
#include "vcas/snapshot.h"
#include "vcas/versioned_ptr.h"

namespace vcas::ds {

template <typename K, typename V, bool UseVcas>
class ChromaticTreeT {
  struct Node;
  using ChildPtr = std::conditional_t<UseVcas, VersionedPtr<Node>,
                                      detail::PlainPtr<Node>>;
  using NodeBase =
      std::conditional_t<UseVcas, Versioned<Node>, detail::Empty>;

  enum class ScxState : int { kInProgress = 0, kCommitted = 1, kAborted = 2 };

  struct ScxRecord;

  struct Node : NodeBase {
    K key{};
    V value{};
    std::uint8_t inf = 0;  // 0 real, 1 = inf1, 2 = inf2 sentinel
    bool leaf = false;
    std::int32_t weight = 1;
    std::atomic<ScxRecord*> info{nullptr};
    std::atomic<bool> marked{false};
    ChildPtr left;
    ChildPtr right;
  };

  static constexpr int kMaxV = 6;

  struct ScxRecord {
    ScxState initial_state;
    int n = 0;                       // |V|
    Node* nodes[kMaxV] = {};         // V, field owner first
    ScxRecord* infos[kMaxV] = {};    // LLX-observed records
    ChildPtr* field = nullptr;       // mutable field of nodes[0]
    Node* old_child = nullptr;
    Node* new_child = nullptr;
    std::atomic<ScxState> state;
    std::atomic<bool> all_frozen{false};
    // Aborted-but-published records join a per-tree garbage list freed at
    // destruction: they may sit in the info words of several *live* nodes
    // (the frozen prefix), so no single replacement event can own their
    // reclamation. Committed records live in exactly one live word (V[0])
    // and are EBR-retired when that word is replaced.
    ScxRecord* next_garbage = nullptr;

    explicit ScxRecord(ScxState s) : initial_state(s), state(s) {}
  };

 public:
  ChromaticTreeT() : ChromaticTreeT(nullptr) {}

  // Associate with an existing camera (paper Section 3); nullptr means a
  // private camera. Shared cameras enable cross-structure atomic queries
  // through the *_at variants.
  explicit ChromaticTreeT(Camera* shared) : dummy_(ScxState::kAborted) {
    if (shared == nullptr) {
      owned_camera_ = std::make_unique<Camera>();
      camera_ = owned_camera_.get();
    } else {
      camera_ = shared;
    }
    Node* leaf1 = make_leaf(K{}, V{}, 1, 1);
    Node* leaf2 = make_leaf(K{}, V{}, 2, 1);
    root_ = new Node;
    root_->inf = 2;
    root_->weight = 1;
    root_->info.store(&dummy_, std::memory_order_relaxed);
    root_->left.init(leaf1, camera_);
    root_->right.init(leaf2, camera_);
  }

  ChromaticTreeT(const ChromaticTreeT&) = delete;
  ChromaticTreeT& operator=(const ChromaticTreeT&) = delete;

  ~ChromaticTreeT() {
    std::unordered_set<ScxRecord*> records;
    free_rec(root_, records);
    // Records reachable from live words: committed ones never replaced on
    // their V[0]. Aborted ones are owned by the garbage list below and must
    // not be double-freed here.
    for (ScxRecord* r : records) {
      if (r != &dummy_ &&
          r->state.load(std::memory_order_relaxed) == ScxState::kCommitted) {
        delete r;
      }
    }
    ScxRecord* g = garbage_.load(std::memory_order_relaxed);
    while (g != nullptr) {
      ScxRecord* next = g->next_garbage;
      delete g;
      g = next;
    }
  }

  Camera& camera() { return *camera_; }

  std::optional<V> find(const K& key) {
    ebr::Guard g;
    Node* node = root_;
    while (!node->leaf) {
      node = key_less_node(key, node) ? node->left.vRead()
                                      : node->right.vRead();
    }
    if (node->inf == 0 && node->key == key) return node->value;
    return std::nullopt;
  }

  bool contains(const K& key) { return find(key).has_value(); }

  bool insert(const K& key, const V& value) {
    ebr::Guard g;
    for (;;) {
      // Optimistic descent, then validate with LLX.
      Node* p = root_;
      Node* l = key_less_node(key, p) ? p->left.vRead() : p->right.vRead();
      while (!l->leaf) {
        p = l;
        l = key_less_node(key, p) ? p->left.vRead() : p->right.vRead();
      }
      Llx rp = llx(p);
      if (!rp.ok) continue;
      const bool go_left = key_less_node(key, p);
      if ((go_left ? rp.left : rp.right) != l) continue;  // stale descent
      if (l->inf == 0 && l->key == key) return false;     // validated present
      Llx rl = llx(l);
      if (!rl.ok) continue;

      // Fragment: internal with weight w(l)-1 (floor 0) and two weight-1
      // leaves, preserving the path weight sum w(l) to both leaves. A red
      // leaf (w==0) degenerates to an all-red fragment, fixed by cleanup.
      const std::int32_t wl = l->weight;
      const std::int32_t wi = wl >= 1 ? wl - 1 : 0;
      const std::int32_t wleaf = wl >= 1 ? 1 : 0;
      Node* new_leaf = make_leaf(key, value, 0, wleaf);
      Node* old_copy = make_leaf(l->key, l->value, l->inf, wleaf);
      Node* ni = new Node;
      ni->weight = wi;
      ni->info.store(&dummy_, std::memory_order_relaxed);
      if (l->inf != 0 || key < l->key) {
        ni->key = l->key;
        ni->inf = l->inf;
        ni->left.init(new_leaf, camera_);
        ni->right.init(old_copy, camera_);
      } else {
        ni->key = key;
        ni->left.init(old_copy, camera_);
        ni->right.init(new_leaf, camera_);
      }
      Llx vs[2] = {rp, rl};
      const K sibling_key = l->key;
      if (scx(vs, 2, go_left ? &p->left : &p->right, l, ni)) {
        cleanup(key);
        // Inserting at a red leaf creates an all-red fragment: two red-red
        // edges, and the one toward the copied leaf is off cleanup(key)'s
        // path. A second targeted pass keeps the creator responsible for
        // every violation it introduced (quiescent trees stay violation-
        // free).
        if (wl == 0) cleanup(sibling_key);
        return true;
      }
      delete new_leaf;
      delete old_copy;
      delete ni;
    }
  }

  bool remove(const K& key) {
    return remove_if(key, [](const V&) { return true; });
  }

  // Conditional unlink hook for the store's tombstone cell GC (ISSUE 5):
  // remove the key's entry iff it currently maps to `expected` (leaves are
  // immutable — inserts and clones install fresh leaves). False means
  // absent or mapped elsewhere at the validated descent's linearization
  // point; the store only erases values that are never re-inserted
  // (detached cells), which makes that verdict permanent, so the caller
  // may then retire `expected`.
  template <typename U>
  bool erase(const K& key, const U& expected) {
    return remove_if(key, [&](const V& v) { return v == expected; });
  }

 private:
  template <typename Pred>
  bool remove_if(const K& key, Pred&& value_ok) {
    ebr::Guard g;
    for (;;) {
      Node* gp = nullptr;
      Node* p = root_;
      Node* l = key_less_node(key, p) ? p->left.vRead() : p->right.vRead();
      while (!l->leaf) {
        gp = p;
        p = l;
        l = key_less_node(key, p) ? p->left.vRead() : p->right.vRead();
      }
      if (!(l->inf == 0 && l->key == key)) {
        // Validate absence against a stable parent before reporting false.
        Llx rp = llx(p);
        if (!rp.ok) continue;
        const bool go_left = key_less_node(key, p);
        if ((go_left ? rp.left : rp.right) != l) continue;
        return false;
      }
      if (!value_ok(l->value)) {
        // Same stable-parent validation before reporting a value mismatch:
        // a stale descent must not turn into a (permanent, to the GC
        // caller) "maps elsewhere" verdict.
        Llx rp = llx(p);
        if (!rp.ok) continue;
        const bool go_left = key_less_node(key, p);
        if ((go_left ? rp.left : rp.right) != l) continue;
        return false;
      }
      assert(gp != nullptr && "real leaves always have a grandparent");
      Llx rgp = llx(gp);
      if (!rgp.ok) continue;
      const bool gp_left = key_less_node(key, gp);
      if ((gp_left ? rgp.left : rgp.right) != p) continue;
      Llx rp = llx(p);
      if (!rp.ok) continue;
      const bool p_left = key_less_node(key, p);
      if ((p_left ? rp.left : rp.right) != l) continue;
      Node* s = p_left ? rp.right : rp.left;
      Llx rs = llx(s);
      if (!rs.ok) continue;
      Llx rl = llx(l);
      if (!rl.ok) continue;

      // Promote a copy of the sibling carrying w(p)+w(s), preserving the
      // path weight sum through the removed parent. Directly below a
      // sentinel the weight resets to 1 (uniform shift over all real
      // paths).
      Node* sp = clone_node(s, rs);
      sp->weight = gp->inf != 0 ? 1 : p->weight + s->weight;
      Llx vs[4] = {rgp, rp, rs, rl};
      if (scx(vs, 4, gp_left ? &gp->left : &gp->right, p, sp)) {
        cleanup(key);
        return true;
      }
      delete sp;
    }
  }

 public:
  // --- snapshot queries (versioned flavor only) ----------------------------

  std::vector<std::pair<K, V>> range(const K& lo, const K& hi)
    requires UseVcas
  {
    SnapshotGuard snap(*camera_);
    return range_at(snap.ts(), lo, hi);
  }

  // Handle-explicit variant for cross-structure snapshots (caller holds a
  // SnapshotGuard on the shared camera, taken after this tree existed).
  std::vector<std::pair<K, V>> range_at(Timestamp ts, const K& lo,
                                        const K& hi)
    requires UseVcas
  {
    std::vector<std::pair<K, V>> out;
    range_rec(root_, lo, hi, ts, out);
    return out;
  }

  // Point lookup against an existing snapshot handle (caller holds a
  // SnapshotGuard on the shared camera, taken after this tree existed).
  std::optional<V> find_at(Timestamp ts, const K& key)
    requires UseVcas
  {
    Node* node = root_;
    while (!node->leaf) {
      node = key_less_node(key, node) ? node->left.readSnapshot(ts)
                                      : node->right.readSnapshot(ts);
    }
    if (node->inf == 0 && node->key == key) return node->value;
    return std::nullopt;
  }

  // Visit every (key, value) present at the snapshot, in ascending key
  // order. Same precondition as find_at. Iterative, like the Ellen BST's:
  // balance here is best-effort (cleanup gives up under adversarial
  // scheduling), so depth is not worth betting the call stack on.
  template <typename Fn>
  void for_each_at(Timestamp ts, Fn&& fn)
    requires UseVcas
  {
    std::vector<Node*> stack{root_};
    while (!stack.empty()) {
      Node* node = stack.back();
      stack.pop_back();
      if (node->leaf) {
        if (node->inf == 0) fn(node->key, node->value);
        continue;
      }
      stack.push_back(node->right.readSnapshot(ts));
      stack.push_back(node->left.readSnapshot(ts));
    }
  }

  std::vector<std::pair<K, V>> succ(const K& k, std::size_t count)
    requires UseVcas
  {
    SnapshotGuard snap(*camera_);
    std::vector<std::pair<K, V>> out;
    succ_rec(root_, k, count, snap.ts(), out);
    return out;
  }

  std::optional<std::pair<K, V>> find_if(
      const K& lo, const K& hi, const std::function<bool(const K&)>& pred)
    requires UseVcas
  {
    SnapshotGuard snap(*camera_);
    return findif_rec(root_, lo, hi, pred, snap.ts());
  }

  std::vector<std::optional<V>> multisearch(const std::vector<K>& keys)
    requires UseVcas
  {
    SnapshotGuard snap(*camera_);
    std::vector<std::optional<V>> out(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      out[i] = find_at(snap.ts(), keys[i]);
    }
    return out;
  }

  std::size_t size_snapshot()
    requires UseVcas
  {
    SnapshotGuard snap(*camera_);
    return size_rec(root_, snap.ts());
  }

  std::size_t height_snapshot()
    requires UseVcas
  {
    SnapshotGuard snap(*camera_);
    return height_rec(root_, snap.ts());
  }

  // --- non-atomic query counterparts (both flavors) ------------------------

  std::vector<std::pair<K, V>> range_nonatomic(const K& lo, const K& hi) {
    ebr::Guard g;
    std::vector<std::pair<K, V>> out;
    range_live_rec(root_, lo, hi, out);
    return out;
  }

  std::vector<std::pair<K, V>> succ_nonatomic(const K& k, std::size_t count) {
    ebr::Guard g;
    std::vector<std::pair<K, V>> out;
    succ_live_rec(root_, k, count, out);
    return out;
  }

  std::optional<std::pair<K, V>> find_if_nonatomic(
      const K& lo, const K& hi, const std::function<bool(const K&)>& pred) {
    ebr::Guard g;
    return findif_live_rec(root_, lo, hi, pred);
  }

  std::vector<std::optional<V>> multisearch_nonatomic(
      const std::vector<K>& keys) {
    std::vector<std::optional<V>> out(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) out[i] = find(keys[i]);
    return out;
  }

  // --- quiescent introspection (tests, benches) ----------------------------

  std::size_t size_unsynchronized() const { return size_live(root_); }
  std::size_t height_unsynchronized() const { return height_live(root_); }

  std::vector<K> keys_unsynchronized() const {
    std::vector<K> out;
    keys_live(root_, out);
    return out;
  }

  // All real root-to-leaf weighted path sums (quiescent): the relaxed
  // red-black safety invariant demands these are all equal at all times.
  std::vector<std::int64_t> leaf_path_weights_unsynchronized() const {
    std::vector<std::int64_t> out;
    path_weights(root_, 0, out);
    return out;
  }

  // Count of outstanding violations (quiescent): zero once cleanup has run
  // to completion after single-threaded updates.
  std::size_t violations_unsynchronized() const {
    return violations_live(root_, nullptr);
  }

  // Human-readable description of each outstanding violation (debugging).
  std::vector<std::string> dump_violations_unsynchronized() const {
    std::vector<std::string> out;
    dump_violations(root_, nullptr, 0, out);
    return out;
  }

  struct RebalanceStats {
    std::uint64_t blk = 0, rb1 = 0, rb2 = 0, push = 0, rotate = 0, root = 0;
  };
  RebalanceStats rebalance_stats() const {
    return RebalanceStats{stat_blk_.load(std::memory_order_relaxed),
                          stat_rb1_.load(std::memory_order_relaxed),
                          stat_rb2_.load(std::memory_order_relaxed),
                          stat_push_.load(std::memory_order_relaxed),
                          stat_rotate_.load(std::memory_order_relaxed),
                          stat_root_.load(std::memory_order_relaxed)};
  }

 private:
  struct Llx {
    bool ok = false;
    Node* node = nullptr;
    ScxRecord* info = nullptr;
    Node* left = nullptr;
    Node* right = nullptr;
  };

  static bool key_less_node(const K& k, const Node* n) {
    return n->inf != 0 || k < n->key;
  }

  Node* make_leaf(const K& k, const V& v, std::uint8_t inf,
                  std::int32_t weight) {
    Node* n = new Node;
    n->key = k;
    n->value = v;
    n->inf = inf;
    n->leaf = true;
    n->weight = weight;
    n->info.store(&dummy_, std::memory_order_relaxed);
    return n;
  }

  // Fresh copy of a node with children adopted from its LLX snapshot.
  Node* clone_node(Node* src, const Llx& snap) {
    Node* n = new Node;
    n->key = src->key;
    n->value = src->value;
    n->inf = src->inf;
    n->leaf = src->leaf;
    n->weight = src->weight;
    n->info.store(&dummy_, std::memory_order_relaxed);
    if (!src->leaf) {
      n->left.init(snap.left, camera_);
      n->right.init(snap.right, camera_);
    }
    return n;
  }

  // --- LLX / SCX -----------------------------------------------------------

  Llx llx(Node* r) {
    const bool marked =
        r->marked.load(std::memory_order_seq_cst) VCAS_ORD("ds.llx.read");
    ScxRecord* rinfo =
        r->info.load(std::memory_order_seq_cst) VCAS_ORD("ds.llx.read");
    const ScxState state =
        rinfo->state.load(std::memory_order_seq_cst) VCAS_ORD("ds.llx.read");
    if (state == ScxState::kInProgress) {
      help(rinfo);
      return {};
    }
    if (marked) return {};  // finalized: caller retries from scratch
    Llx result;
    result.node = r;
    result.info = rinfo;
    if (!r->leaf) {
      result.left = r->left.vRead();
      result.right = r->right.vRead();
    }
    if (r->info.load(std::memory_order_seq_cst) VCAS_ORD("ds.llx.read") ==
        rinfo) {
      result.ok = true;
      return result;
    }
    return {};
  }

  // V[0] owns `field`; V[1..] are removed (marked + retired) on commit.
  bool scx(const Llx* vs, int n, ChildPtr* field, Node* old_child,
           Node* new_child) {
    assert(n >= 1 && n <= kMaxV);
    ScxRecord* op = new ScxRecord(ScxState::kInProgress);
    op->n = n;
      op->field = field;
    op->old_child = old_child;
    op->new_child = new_child;
    for (int i = 0; i < n; ++i) {
      op->nodes[i] = vs[i].node;
      op->infos[i] = vs[i].info;
    }
    const HelpOutcome outcome = help_initial(op);
    if (outcome == HelpOutcome::kCommitted) {
      // Unique winner: retire removed nodes (V[1..]).
      for (int i = 1; i < n; ++i) ebr::retire(op->nodes[i]);
      return true;
    }
    if (outcome == HelpOutcome::kNeverPublished) {
      delete op;
    } else {
      push_garbage(op);
    }
    return false;
  }

  enum class HelpOutcome { kCommitted, kAborted, kNeverPublished };

  // Initiator's help: like help(), but reports whether op ever became
  // visible so an unpublished record can be freed eagerly.
  HelpOutcome help_initial(ScxRecord* op) {
    for (int i = 0; i < op->n; ++i) {
      Node* r = op->nodes[i];
      ScxRecord* expected = op->infos[i];
      if (!r->info.compare_exchange_strong(expected, op,
                                           std::memory_order_seq_cst)
               VCAS_ORD("ds.scx.freeze")) {
        if (r->info.load(std::memory_order_seq_cst)
                VCAS_ORD("ds.scx.freeze") != op) {
          if (op->all_frozen.load(std::memory_order_seq_cst)
                  VCAS_ORD("ds.scx.commit")) {
            return HelpOutcome::kCommitted;
          }
          op->state.store(ScxState::kAborted, std::memory_order_seq_cst)
              VCAS_ORD("ds.scx.freeze");
          return i == 0 ? HelpOutcome::kNeverPublished
                        : HelpOutcome::kAborted;
        }
      } else {
        retire_replaced(r, op->infos[i]);
      }
    }
    commit(op);
    return HelpOutcome::kCommitted;
  }

  // Helper path (op discovered in some node's info field).
  bool help(ScxRecord* op) {
    for (int i = 0; i < op->n; ++i) {
      Node* r = op->nodes[i];
      ScxRecord* expected = op->infos[i];
      if (!r->info.compare_exchange_strong(expected, op,
                                           std::memory_order_seq_cst)
               VCAS_ORD("ds.scx.freeze")) {
        if (r->info.load(std::memory_order_seq_cst)
                VCAS_ORD("ds.scx.freeze") != op) {
          if (op->all_frozen.load(std::memory_order_seq_cst)
                  VCAS_ORD("ds.scx.commit")) {
            return true;
          }
          op->state.store(ScxState::kAborted, std::memory_order_seq_cst)
              VCAS_ORD("ds.scx.freeze");
          return false;
        }
      } else {
        retire_replaced(r, op->infos[i]);
      }
    }
    commit(op);
    return true;
  }

  void commit(ScxRecord* op) {
    op->all_frozen.store(true, std::memory_order_seq_cst)
        VCAS_ORD("ds.scx.commit");
    for (int i = 1; i < op->n; ++i) {
      op->nodes[i]->marked.store(true, std::memory_order_seq_cst)
          VCAS_ORD("ds.scx.commit");
    }
    // The single linearizing child CAS; idempotent across helpers.
    op->field->vCAS(op->old_child, op->new_child);
    op->state.store(ScxState::kCommitted, std::memory_order_seq_cst)
        VCAS_ORD("ds.scx.commit");
  }

  // A freshly replaced record can no longer be read by new LLXs *from this
  // word*. Only a committed record replaced on its own V[0] is retired
  // here: that is its single live word (the rest of its V is marked and
  // dead), so the retire happens exactly once. Aborted records may occupy
  // several live words and are reclaimed via the garbage list instead.
  void retire_replaced(Node* r, ScxRecord* old) {
    if (old == nullptr || old == &dummy_) return;
    if (old->state.load(std::memory_order_seq_cst)
                VCAS_ORD("ds.scx.commit") == ScxState::kCommitted &&
        old->nodes[0] == r) {
      ebr::retire(old);
    }
  }

  void push_garbage(ScxRecord* op) {
    ScxRecord* head = garbage_.load(std::memory_order_relaxed);
    do {
      op->next_garbage = head;
    } while (!garbage_.compare_exchange_weak(head, op,
                                             std::memory_order_release,
                                             std::memory_order_relaxed));
  }

  // --- rebalancing ----------------------------------------------------------

  // After an update, walk from the root toward `key` and repair the first
  // violation found — checking both the on-path child and its sibling
  // (the "frontier"), because several transformations deposit their
  // residual violation on a sibling one step off the path. Repeat until a
  // clean descent. The attempt cap bounds the walk under adversarial
  // scheduling (the tree stays correct, merely less balanced; later
  // operations continue the repair).
  void cleanup(const K& key) {
    constexpr int kMaxAttempts = 1024;
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      Node* gp = nullptr;
      Node* p = nullptr;
      Node* node = root_;
      bool fixed = false;
      while (!node->leaf) {
        const bool go_left = key_less_node(key, node);
        Node* next = go_left ? node->left.vRead() : node->right.vRead();
        Node* sib = go_left ? node->right.vRead() : node->left.vRead();
        // Red-red first: the overweight fixes assume no red-red sits at
        // (node, child) (their weight algebra needs w(parent) >= 1 in the
        // rotate case).
        if (node->inf == 0 && node->weight == 0 && next->weight == 0) {
          fix_redred(gp, p, node, next);
          fixed = true;
          break;
        }
        if (node->inf == 0 && node->weight == 0 && sib->weight == 0) {
          fix_redred(gp, p, node, sib);
          fixed = true;
          break;
        }
        if (next->weight > 1) {
          fix_overweight(p, node, next);
          fixed = true;
          break;
        }
        if (sib->weight > 1) {
          fix_overweight(p, node, sib);
          fixed = true;
          break;
        }
        gp = p;
        p = node;
        node = next;
      }
      if (!fixed) return;  // clean path: done
    }
  }

  // Build a fresh internal node (children wired by the caller).
  Node* make_internal(const K& key, std::uint8_t inf, std::int32_t weight) {
    Node* n = new Node;
    n->key = key;
    n->inf = inf;
    n->weight = weight;
    n->info.store(&dummy_, std::memory_order_relaxed);
    return n;
  }

  // Overweight at u; `parent` = u's parent, `grand` = parent's parent
  // (freeze owner). Every branch strictly preserves path weight sums and
  // leaves any residual violation either on the cleanup path or on the
  // frontier (a child of a path node), where the next cleanup pass sees it.
  void fix_overweight(Node* grand, Node* parent, Node* u) {
    if (parent == root_ || parent->inf != 0) {
      // u is the true root of the real tree: every real path passes
      // through it, so resetting its weight to 1 shifts all sums uniformly.
      Llx rp = llx(parent);
      if (!rp.ok) return;
      const bool left = rp.left == u;
      if (!left && rp.right != u) return;  // stale
      Llx ru = llx(u);
      if (!ru.ok) return;
      Node* nu = clone_node(u, ru);
      nu->weight = 1;
      Llx vs[2] = {rp, ru};
      if (scx(vs, 2, left ? &parent->left : &parent->right, u, nu)) {
        stat_root_.fetch_add(1, std::memory_order_relaxed);
      } else {
        delete nu;
      }
      return;
    }
    if (grand == nullptr) return;
    Llx rg = llx(grand);
    if (!rg.ok) return;
    const bool g_left = rg.left == parent;
    if (!g_left && rg.right != parent) return;
    Llx rp = llx(parent);
    if (!rp.ok) return;
    const bool u_left = rp.left == u;
    if (!u_left && rp.right != u) return;
    Node* s = u_left ? rp.right : rp.left;
    Llx rs = llx(s);
    if (!rs.ok) return;

    // A red leaf sibling of an overweight node would contradict the equal-
    // path-sum invariant (its path would be lighter by w(u) >= 2 with
    // nothing below to compensate).
    assert(!(s->weight == 0 && s->leaf));

    if (s->weight == 0 && !s->leaf) {
      // Red sibling: rotate it up.  parent{u, s{A,B}} -> s'{p'{u,A}, B}
      // (mirrored when u is right). s'.w = w(parent), p'.w = 0; u, A, B
      // adopted. The overweight stays at u (now with sibling A, which in a
      // violation-free neighborhood is non-red, enabling the next case);
      // if A is red, the leftover (p', A) red-red is frontier-visible.
      Node* np = make_internal(parent->key, parent->inf, 0);
      Node* ns = make_internal(s->key, s->inf, parent->weight);
      if (u_left) {
        np->left.init(u, camera_);
        np->right.init(rs.left, camera_);
        ns->left.init(np, camera_);
        ns->right.init(rs.right, camera_);
      } else {
        np->left.init(rs.right, camera_);
        np->right.init(u, camera_);
        ns->left.init(rs.left, camera_);
        ns->right.init(np, camera_);
      }
      Llx vs[3] = {rg, rp, rs};
      if (scx(vs, 3, g_left ? &grand->left : &grand->right, parent, ns)) {
        stat_rotate_.fetch_add(1, std::memory_order_relaxed);
      } else {
        delete np;
        delete ns;
      }
      return;
    }

    // Black sibling with a red child: classic RB delete-fixup rotations.
    // They remove one unit of overweight and introduce no violation at all.
    if (s->weight == 1 && !s->leaf) {
      Node* outer = u_left ? rs.right : rs.left;   // nephew far from u
      Node* inner = u_left ? rs.left : rs.right;   // nephew adjacent to u
      if (outer->weight == 0) {
        // parent{u, s{A, B=outer}} -> s'{p'{u-1, A}, B'} with s'.w =
        // w(parent), p'.w = 1, B'.w = 1 (mirrored when u is right).
        Llx ru = llx(u);  // freeze u to clone it
        if (!ru.ok) return;
        Llx rb = llx(outer);
        if (!rb.ok) return;
        Node* nu = clone_node(u, ru);
        nu->weight = u->weight - 1;
        Node* nb = clone_node(outer, rb);
        nb->weight = 1;
        Node* np = make_internal(parent->key, parent->inf, 1);
        Node* ns = make_internal(s->key, s->inf, parent->weight);
        if (u_left) {
          np->left.init(nu, camera_);
          np->right.init(rs.left, camera_);
          ns->left.init(np, camera_);
          ns->right.init(nb, camera_);
        } else {
          np->left.init(rs.right, camera_);
          np->right.init(nu, camera_);
          ns->left.init(nb, camera_);
          ns->right.init(np, camera_);
        }
        Llx vs[5] = {rg, rp, rs, ru, rb};
        if (scx(vs, 5, g_left ? &grand->left : &grand->right, parent, ns)) {
          stat_rotate_.fetch_add(1, std::memory_order_relaxed);
        } else {
          delete nu;
          delete nb;
          delete np;
          delete ns;
        }
        return;
      }
      if (inner->weight == 0 && !inner->leaf) {
        // parent{u, s{A=inner{A1,A2}, B}} -> A'{p'{u-1, A1}, s'{A2, B}}
        // with A'.w = w(parent), p'.w = s'.w = 1 (mirrored).
        Llx ru = llx(u);
        if (!ru.ok) return;
        Llx ra = llx(inner);
        if (!ra.ok) return;
        Node* nu = clone_node(u, ru);
        nu->weight = u->weight - 1;
        Node* np = make_internal(parent->key, parent->inf, 1);
        Node* ns = make_internal(s->key, s->inf, 1);
        Node* na = make_internal(inner->key, inner->inf, parent->weight);
        if (u_left) {
          np->left.init(nu, camera_);
          np->right.init(ra.left, camera_);
          ns->left.init(ra.right, camera_);
          ns->right.init(rs.right, camera_);
          na->left.init(np, camera_);
          na->right.init(ns, camera_);
        } else {
          ns->left.init(rs.left, camera_);
          ns->right.init(ra.left, camera_);
          np->left.init(ra.right, camera_);
          np->right.init(nu, camera_);
          na->left.init(ns, camera_);
          na->right.init(np, camera_);
        }
        Llx vs[5] = {rg, rp, rs, ru, ra};
        if (scx(vs, 5, g_left ? &grand->left : &grand->right, parent, na)) {
          stat_rotate_.fetch_add(1, std::memory_order_relaxed);
        } else {
          delete nu;
          delete np;
          delete ns;
          delete na;
        }
        return;
      }
      // red leaf nephew: falls through to push (a red leaf has no children
      // to rotate; push keeps sums and any residual is frontier-visible).
    }

    // Push: parent{u, s} -> parent'{u-1, s-1} with parent'.w = w(parent)+1
    // (or 1 directly below a sentinel). Creates a red sibling only when
    // w(s) == 1; in a violation-free neighborhood s's children are then
    // non-red, so no red-red appears.
    Llx ru = llx(u);
    if (!ru.ok) return;
    Node* nu = clone_node(u, ru);
    nu->weight = u->weight - 1;
    Node* ns2 = clone_node(s, rs);
    ns2->weight = s->weight >= 1 ? s->weight - 1 : 0;
    Node* np2 = make_internal(parent->key, parent->inf,
                              grand->inf != 0 ? 1 : parent->weight + 1);
    if (u_left) {
      np2->left.init(nu, camera_);
      np2->right.init(ns2, camera_);
    } else {
      np2->left.init(ns2, camera_);
      np2->right.init(nu, camera_);
    }
    Llx vs[4] = {rg, rp, ru, rs};
    if (scx(vs, 4, g_left ? &grand->left : &grand->right, parent, np2)) {
      stat_push_.fetch_add(1, std::memory_order_relaxed);
    } else {
      delete nu;
      delete ns2;
      delete np2;
    }
  }

  // Red-red edge (p,u): both w==0, p real. grand = p's parent, great =
  // grand's parent (freeze owner). Branches:
  //   - p is the true root: recolor it to 1 (uniform shift).
  //   - uncle red: blk recoloring; moves the violation up the path.
  //   - uncle black, u outer, p's other child black: plain rb1 rotation.
  //   - uncle black, u outer, p's other child red: recolored rb1 (fixes
  //     both red-red edges under p; possible new red at (great, p')).
  //   - uncle black, u inner: recolored rb2 (robust to all child colors).
  void fix_redred(Node* great, Node* grand, Node* p, Node* u) {
    if (grand == nullptr) return;  // p is the root: cannot happen (w checks)
    if (grand->inf != 0 || grand == root_) {
      Llx rg = llx(grand);
      if (!rg.ok) return;
      const bool left = rg.left == p;
      if (!left && rg.right != p) return;
      Llx rp = llx(p);
      if (!rp.ok) return;
      Node* np = clone_node(p, rp);
      np->weight = 1;
      Llx vs[2] = {rg, rp};
      if (scx(vs, 2, left ? &grand->left : &grand->right, p, np)) {
        stat_root_.fetch_add(1, std::memory_order_relaxed);
      } else {
        delete np;
      }
      return;
    }
    if (great == nullptr) return;
    Llx rgg = llx(great);
    if (!rgg.ok) return;
    const bool gg_left = rgg.left == grand;
    if (!gg_left && rgg.right != grand) return;
    Llx rg = llx(grand);
    if (!rg.ok) return;
    const bool p_left = rg.left == p;
    if (!p_left && rg.right != p) return;
    Node* c = p_left ? rg.right : rg.left;  // uncle
    Llx rp = llx(p);
    if (!rp.ok) return;
    const bool u_left = rp.left == u;
    if (!u_left && rp.right != u) return;
    // The cleanup pass fixes the topmost violation first, so (grand, p) is
    // not red-red and grand's weight (immutable per node) is >= 1.
    assert(grand->weight >= 1);

    if (c->weight == 0) {
      // blk: grand{p, c} -> grand'{p'(1), c'(1)} with grand'.w =
      // w(grand)-1 (or 1 below a sentinel). Fixes every red-red under
      // grand; may move one up to (great, grand').
      Llx rc = llx(c);
      if (!rc.ok) return;
      Node* np = clone_node(p, rp);
      np->weight = 1;
      Node* nc = clone_node(c, rc);
      nc->weight = 1;
      Node* ng = make_internal(grand->key, grand->inf,
                               great->inf != 0 ? 1 : grand->weight - 1);
      if (p_left) {
        ng->left.init(np, camera_);
        ng->right.init(nc, camera_);
      } else {
        ng->left.init(nc, camera_);
        ng->right.init(np, camera_);
      }
      Llx vs[4] = {rgg, rg, rp, rc};
      if (scx(vs, 4, gg_left ? &great->left : &great->right, grand, ng)) {
        stat_blk_.fetch_add(1, std::memory_order_relaxed);
      } else {
        delete np;
        delete nc;
        delete ng;
      }
      return;
    }

    if (u_left == p_left) {
      Node* three = u_left ? rp.right : rp.left;  // p's other child
      if (three->weight != 0) {
        // rb1: grand{p{u,3}, c} -> p'{u, grand'{3, c}} (mirrored) with
        // p'.w = w(grand) >= 1, grand'.w = 0; u, 3, c adopted. No new
        // violation anywhere.
        Node* ng = make_internal(grand->key, grand->inf, 0);
        Node* np = make_internal(p->key, p->inf, grand->weight);
        if (p_left) {
          ng->left.init(rp.right, camera_);
          ng->right.init(c, camera_);
          np->left.init(u, camera_);
          np->right.init(ng, camera_);
        } else {
          ng->left.init(c, camera_);
          ng->right.init(rp.left, camera_);
          np->left.init(ng, camera_);
          np->right.init(u, camera_);
        }
        Llx vs[3] = {rgg, rg, rp};
        if (scx(vs, 3, gg_left ? &great->left : &great->right, grand, np)) {
          stat_rb1_.fetch_add(1, std::memory_order_relaxed);
        } else {
          delete ng;
          delete np;
        }
        return;
      }
      // Recolored rb1 (3 is red, so (p,3) is a second red-red):
      // grand{p{u,3}, c} -> p'{u'(1), grand'(1){3, c}} with p'.w =
      // w(grand)-1. Fixes both edges; possible new red at (great, p').
      Llx ru = llx(u);
      if (!ru.ok) return;
      Node* nu = clone_node(u, ru);
      nu->weight = 1;
      Node* ng = make_internal(grand->key, grand->inf, 1);
      Node* np = make_internal(p->key, p->inf, grand->weight - 1);
      if (p_left) {
        ng->left.init(rp.right, camera_);
        ng->right.init(c, camera_);
        np->left.init(nu, camera_);
        np->right.init(ng, camera_);
      } else {
        ng->left.init(c, camera_);
        ng->right.init(rp.left, camera_);
        np->left.init(ng, camera_);
        np->right.init(nu, camera_);
      }
      Llx vs[4] = {rgg, rg, rp, ru};
      if (scx(vs, 4, gg_left ? &great->left : &great->right, grand, np)) {
        stat_rb1_.fetch_add(1, std::memory_order_relaxed);
      } else {
        delete nu;
        delete ng;
        delete np;
      }
      return;
    }

    // Recolored rb2 (u inner): grand{p{1, u{2,3}}, c} ->
    // u'{p'(1){1,2}, grand'(1){3,c}} with u'.w = w(grand)-1 (mirrored).
    // Robust to the colors of 1, 2, 3, c; possible new red at (great, u').
    Llx ru = llx(u);
    if (!ru.ok) return;
    Node* np = make_internal(p->key, p->inf, 1);
    Node* ng = make_internal(grand->key, grand->inf, 1);
    Node* nu = make_internal(u->key, u->inf, grand->weight - 1);
    if (p_left) {
      np->left.init(rp.left, camera_);
      np->right.init(ru.left, camera_);
      ng->left.init(ru.right, camera_);
      ng->right.init(c, camera_);
      nu->left.init(np, camera_);
      nu->right.init(ng, camera_);
    } else {
      ng->left.init(c, camera_);
      ng->right.init(ru.left, camera_);
      np->left.init(ru.right, camera_);
      np->right.init(rp.right, camera_);
      nu->left.init(ng, camera_);
      nu->right.init(np, camera_);
    }
    Llx vs[4] = {rgg, rg, rp, ru};
    if (scx(vs, 4, gg_left ? &great->left : &great->right, grand, nu)) {
      stat_rb2_.fetch_add(1, std::memory_order_relaxed);
    } else {
      delete np;
      delete ng;
      delete nu;
    }
  }

  // --- query recursions -----------------------------------------------------

  void range_rec(Node* node, const K& lo, const K& hi, Timestamp ts,
                 std::vector<std::pair<K, V>>& out)
    requires UseVcas
  {
    if (node->leaf) {
      if (node->inf == 0 && !(node->key < lo) && !(hi < node->key)) {
        out.emplace_back(node->key, node->value);
      }
      return;
    }
    if (key_less_node(lo, node)) {
      range_rec(node->left.readSnapshot(ts), lo, hi, ts, out);
    }
    if (!key_less_node(hi, node)) {
      range_rec(node->right.readSnapshot(ts), lo, hi, ts, out);
    }
  }

  void succ_rec(Node* node, const K& k, std::size_t count, Timestamp ts,
                std::vector<std::pair<K, V>>& out)
    requires UseVcas
  {
    if (out.size() >= count) return;
    if (node->leaf) {
      if (node->inf == 0 && k < node->key) {
        out.emplace_back(node->key, node->value);
      }
      return;
    }
    if (key_less_node(k, node)) {
      succ_rec(node->left.readSnapshot(ts), k, count, ts, out);
      if (out.size() < count) {
        succ_rec(node->right.readSnapshot(ts), k, count, ts, out);
      }
    } else {
      succ_rec(node->right.readSnapshot(ts), k, count, ts, out);
    }
  }

  std::optional<std::pair<K, V>> findif_rec(
      Node* node, const K& lo, const K& hi,
      const std::function<bool(const K&)>& pred, Timestamp ts)
    requires UseVcas
  {
    if (node->leaf) {
      if (node->inf == 0 && !(node->key < lo) && node->key < hi &&
          pred(node->key)) {
        return std::make_pair(node->key, node->value);
      }
      return std::nullopt;
    }
    if (key_less_node(lo, node)) {
      auto r = findif_rec(node->left.readSnapshot(ts), lo, hi, pred, ts);
      if (r.has_value()) return r;
    }
    if (node->inf == 0 && node->key < hi) {
      return findif_rec(node->right.readSnapshot(ts), lo, hi, pred, ts);
    }
    return std::nullopt;
  }

  std::size_t size_rec(Node* node, Timestamp ts)
    requires UseVcas
  {
    if (node->leaf) return node->inf == 0 ? 1 : 0;
    return size_rec(node->left.readSnapshot(ts), ts) +
           size_rec(node->right.readSnapshot(ts), ts);
  }

  std::size_t height_rec(Node* node, Timestamp ts)
    requires UseVcas
  {
    if (node->leaf) return 0;
    const std::size_t lh = height_rec(node->left.readSnapshot(ts), ts);
    const std::size_t rh = height_rec(node->right.readSnapshot(ts), ts);
    return 1 + (lh > rh ? lh : rh);
  }


  void range_live_rec(Node* node, const K& lo, const K& hi,
                      std::vector<std::pair<K, V>>& out) {
    if (node->leaf) {
      if (node->inf == 0 && !(node->key < lo) && !(hi < node->key)) {
        out.emplace_back(node->key, node->value);
      }
      return;
    }
    if (key_less_node(lo, node)) range_live_rec(node->left.vRead(), lo, hi, out);
    if (!key_less_node(hi, node)) {
      range_live_rec(node->right.vRead(), lo, hi, out);
    }
  }

  void succ_live_rec(Node* node, const K& k, std::size_t count,
                     std::vector<std::pair<K, V>>& out) {
    if (out.size() >= count) return;
    if (node->leaf) {
      if (node->inf == 0 && k < node->key) {
        out.emplace_back(node->key, node->value);
      }
      return;
    }
    if (key_less_node(k, node)) {
      succ_live_rec(node->left.vRead(), k, count, out);
      if (out.size() < count) succ_live_rec(node->right.vRead(), k, count, out);
    } else {
      succ_live_rec(node->right.vRead(), k, count, out);
    }
  }

  std::optional<std::pair<K, V>> findif_live_rec(
      Node* node, const K& lo, const K& hi,
      const std::function<bool(const K&)>& pred) {
    if (node->leaf) {
      if (node->inf == 0 && !(node->key < lo) && node->key < hi &&
          pred(node->key)) {
        return std::make_pair(node->key, node->value);
      }
      return std::nullopt;
    }
    if (key_less_node(lo, node)) {
      auto r = findif_live_rec(node->left.vRead(), lo, hi, pred);
      if (r.has_value()) return r;
    }
    if (node->inf == 0 && node->key < hi) {
      return findif_live_rec(node->right.vRead(), lo, hi, pred);
    }
    return std::nullopt;
  }

  std::size_t size_live(const Node* node) const {
    if (node->leaf) return node->inf == 0 ? 1 : 0;
    return size_live(node->left.read_unsynchronized()) +
           size_live(node->right.read_unsynchronized());
  }

  std::size_t height_live(const Node* node) const {
    if (node->leaf) return 0;
    const std::size_t lh = height_live(node->left.read_unsynchronized());
    const std::size_t rh = height_live(node->right.read_unsynchronized());
    return 1 + (lh > rh ? lh : rh);
  }

  void keys_live(const Node* node, std::vector<K>& out) const {
    if (node->leaf) {
      if (node->inf == 0) out.push_back(node->key);
      return;
    }
    keys_live(node->left.read_unsynchronized(), out);
    keys_live(node->right.read_unsynchronized(), out);
  }

  void path_weights(const Node* node, std::int64_t acc,
                    std::vector<std::int64_t>& out) const {
    acc += node->weight;
    if (node->leaf) {
      if (node->inf == 0) out.push_back(acc);
      return;
    }
    path_weights(node->left.read_unsynchronized(), acc, out);
    path_weights(node->right.read_unsynchronized(), acc, out);
  }

  void dump_violations(const Node* node, const Node* parent, int depth,
                       std::vector<std::string>& out) const {
    auto describe = [&](const char* kind) {
      std::string s = std::string(kind) + " depth=" + std::to_string(depth) +
                      " w=" + std::to_string(node->weight) +
                      " leaf=" + (node->leaf ? "y" : "n") +
                      " inf=" + std::to_string(static_cast<int>(node->inf));
      if (node->inf == 0) s += " key=" + std::to_string(node->key);
      if (parent != nullptr) {
        s += " | parent w=" + std::to_string(parent->weight) +
             " inf=" + std::to_string(static_cast<int>(parent->inf));
        if (parent->inf == 0) s += " key=" + std::to_string(parent->key);
      }
      out.push_back(s);
    };
    if (node->weight > 1) describe("overweight");
    if (parent != nullptr && parent->inf == 0 && parent->weight == 0 &&
        node->weight == 0) {
      describe("red-red");
    }
    if (!node->leaf) {
      dump_violations(node->left.read_unsynchronized(), node, depth + 1, out);
      dump_violations(node->right.read_unsynchronized(), node, depth + 1, out);
    }
  }

  std::size_t violations_live(const Node* node, const Node* parent) const {
    std::size_t v = 0;
    if (node->weight > 1) ++v;
    if (parent != nullptr && parent->inf == 0 && parent->weight == 0 &&
        node->weight == 0) {
      ++v;
    }
    if (!node->leaf) {
      v += violations_live(node->left.read_unsynchronized(), node);
      v += violations_live(node->right.read_unsynchronized(), node);
    }
    return v;
  }

  void free_rec(Node* node, std::unordered_set<ScxRecord*>& records) {
    if (node == nullptr) return;
    ScxRecord* r = node->info.load(std::memory_order_relaxed);
    if (r != nullptr) records.insert(r);
    if (!node->leaf) {
      free_rec(node->left.read_unsynchronized(), records);
      free_rec(node->right.read_unsynchronized(), records);
    }
    delete node;
  }

  std::unique_ptr<Camera> owned_camera_;
  Camera* camera_;
  ScxRecord dummy_;
  Node* root_;
  std::atomic<ScxRecord*> garbage_{nullptr};

  std::atomic<std::uint64_t> stat_blk_{0}, stat_rb1_{0}, stat_rb2_{0},
      stat_push_{0}, stat_rotate_{0}, stat_root_{0};
};

template <typename K, typename V = K>
using ChromaticTree = ChromaticTreeT<K, V, false>;

template <typename K, typename V = K>
using VcasChromaticTree = ChromaticTreeT<K, V, true>;

}  // namespace vcas::ds
