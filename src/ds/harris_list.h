// Versioned Harris sorted linked list (paper Section 4 "Sorted Linked
// List", Appendix F).
//
// Harris's ordered-set list marks a node's next pointer (low bit) before
// splicing the node out; deletes linearize at the marking CAS. The mutable
// state is exactly the next pointers (mark included), so versioning them —
// every CAS becomes a vCAS on a VersionedCAS<Node*> whose value carries the
// mark bit — makes the list snapshottable.
//
// Snapshot queries walk the list through readSnapshot and skip nodes whose
// *snapshot* next pointer is marked (Appendix F getNext): those were
// logically deleted at the snapshot's linearization point.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "ebr/ebr.h"
#include "util/marked_ptr.h"
#include "vcas/camera.h"
#include "vcas/snapshot.h"
#include "vcas/versioned_cas.h"

namespace vcas::ds {

using util::is_marked;
using util::with_mark;
using util::without_mark;

template <typename K, typename V = K>
class VcasHarrisList {
  struct Node {
    K key;
    V val;
    VersionedCAS<Node*> next;
    Node(K k, V v, Node* succ, Camera* cam)
        : key(std::move(k)), val(std::move(v)), next(succ, cam) {}
  };

 public:
  VcasHarrisList() : VcasHarrisList(nullptr) {}

  // Associate with an existing camera (paper Section 3); nullptr means a
  // private camera. Shared cameras enable cross-structure atomic queries
  // through the *_at variants.
  explicit VcasHarrisList(Camera* shared) {
    if (shared == nullptr) {
      owned_camera_ = std::make_unique<Camera>();
      camera_ = owned_camera_.get();
    } else {
      camera_ = shared;
    }
    tail_ = new Node(K{}, V{}, nullptr, camera_);
    head_ = new Node(K{}, V{}, tail_, camera_);
  }

  VcasHarrisList(const VcasHarrisList&) = delete;
  VcasHarrisList& operator=(const VcasHarrisList&) = delete;

  ~VcasHarrisList() {
    Node* node = head_;
    while (node != nullptr) {
      Node* next = without_mark(node->next.vRead());
      delete node;
      node = next;
    }
  }

  // Inserts (key, val); returns false if the key is already present.
  bool insert(const K& key, const V& val) {
    ebr::Guard g;
    for (;;) {
      auto [left, right] = search(key);
      if (right != tail_ && right->key == key) return false;
      Node* node = new Node(key, val, right, camera_);
      if (left->next.vCAS(right, node)) return true;
      delete node;  // link lost a race; fresh node next round
    }
  }

  // Removes key; returns false if absent. Linearizes at the marking vCAS.
  bool remove(const K& key) {
    return remove_if(key, [](const V&) { return true; });
  }

  // Conditional unlink hook for the store's tombstone cell GC (ISSUE 5):
  // remove the key's entry iff it currently maps to `expected` (node
  // values are immutable, so the check is a plain read). Returns true when
  // THIS call removed the mapping. A false return means the key is absent
  // or maps to a different value at the operation's linearization point;
  // the store only erases values that can never be re-inserted (a detached
  // cell is never re-used), which upgrades that point-in-time verdict to a
  // permanent one — the caller may then retire `expected`.
  template <typename U>
  bool erase(const K& key, const U& expected) {
    return remove_if(key, [&](const V& v) { return v == expected; });
  }

 private:
  // Shared delete protocol (mark, then eager physical unlink; a failed
  // unlink is cleaned up — and the node retired — by a later search).
  template <typename Pred>
  bool remove_if(const K& key, Pred&& value_ok) {
    ebr::Guard g;
    for (;;) {
      auto [left, right] = search(key);
      if (right == tail_ || right->key != key) return false;
      if (!value_ok(right->val)) return false;
      Node* right_next = right->next.vRead();
      if (!is_marked(right_next)) {
        if (right->next.vCAS(right_next, with_mark(right_next))) {
          if (left->next.vCAS(right, right_next)) ebr::retire(right);
          return true;
        }
      }
    }
  }

 public:

  // Membership in the current state (no snapshot), same cost as original.
  bool contains(const K& key) {
    ebr::Guard g;
    Node* node = without_mark(head_->next.vRead());
    while (node != tail_ && node->key < key) {
      node = without_mark(node->next.vRead());
    }
    return node != tail_ && node->key == key &&
           !is_marked(node->next.vRead());
  }

  std::optional<V> find(const K& key) {
    ebr::Guard g;
    Node* node = without_mark(head_->next.vRead());
    while (node != tail_ && node->key < key) {
      node = without_mark(node->next.vRead());
    }
    if (node != tail_ && node->key == key && !is_marked(node->next.vRead())) {
      return node->val;
    }
    return std::nullopt;
  }

  Camera& camera() { return *camera_; }

  // --- snapshot queries (Appendix F) ---------------------------------------

  // All (key, value) pairs with key in [lo, hi] at a single instant.
  std::vector<std::pair<K, V>> range(const K& lo, const K& hi) {
    SnapshotGuard snap(*camera_);
    return range_at(snap.ts(), lo, hi);
  }

  // Handle-explicit variant for cross-structure snapshots (caller holds a
  // SnapshotGuard on the shared camera).
  std::vector<std::pair<K, V>> range_at(Timestamp ts, const K& lo,
                                        const K& hi) {
    std::vector<std::pair<K, V>> out;
    Node* node = get_next_snapshot(head_, ts);
    while (node != tail_ && node->key < lo) {
      node = get_next_snapshot(node, ts);
    }
    while (node != tail_ && !(hi < node->key)) {
      out.emplace_back(node->key, node->val);
      node = get_next_snapshot(node, ts);
    }
    return out;
  }

  // Point lookup against an existing snapshot handle (caller holds a
  // SnapshotGuard on the shared camera, taken after this list existed).
  std::optional<V> find_at(Timestamp ts, const K& key) {
    Node* node = get_next_snapshot(head_, ts);
    while (node != tail_ && node->key < key) {
      node = get_next_snapshot(node, ts);
    }
    if (node != tail_ && node->key == key) return node->val;
    return std::nullopt;
  }

  // Visit every (key, value) present at the snapshot, in ascending key
  // order. Same precondition as find_at.
  template <typename Fn>
  void for_each_at(Timestamp ts, Fn&& fn) {
    for (Node* node = get_next_snapshot(head_, ts); node != tail_;
         node = get_next_snapshot(node, ts)) {
      fn(node->key, node->val);
    }
  }

  // Presence (value or nullopt) for each requested key, all judged against
  // one snapshot. Keys are answered in one ordered pass.
  std::vector<std::optional<V>> multisearch(std::vector<K> keys) {
    std::vector<std::size_t> order(keys.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });

    SnapshotGuard snap(*camera_);
    std::vector<std::optional<V>> out(keys.size());
    Node* node = get_next_snapshot(head_, snap.ts());
    for (std::size_t idx : order) {
      const K& k = keys[idx];
      while (node != tail_ && node->key < k) {
        node = get_next_snapshot(node, snap.ts());
      }
      if (node != tail_ && node->key == k) out[idx] = node->val;
    }
    return out;
  }

  // The i-th smallest key (0-based) at a single instant.
  std::optional<std::pair<K, V>> ith(std::size_t i) {
    SnapshotGuard snap(*camera_);
    Node* node = get_next_snapshot(head_, snap.ts());
    for (std::size_t pos = 0; node != tail_; ++pos) {
      if (pos == i) return std::make_pair(node->key, node->val);
      node = get_next_snapshot(node, snap.ts());
    }
    return std::nullopt;
  }

  // Number of keys at a single instant.
  std::size_t size_snapshot() {
    SnapshotGuard snap(*camera_);
    std::size_t n = 0;
    for (Node* node = get_next_snapshot(head_, snap.ts()); node != tail_;
         node = get_next_snapshot(node, snap.ts())) {
      ++n;
    }
    return n;
  }

 private:
  // Harris search: returns adjacent unmarked (left, right) with
  // left->key < key <= right->key; physically removes marked chains it
  // passes (retiring unlinked nodes).
  std::pair<Node*, Node*> search(const K& key) {
    for (;;) {
      Node* left = head_;
      Node* left_next = head_->next.vRead();
      Node* right = nullptr;
      // Phase 1: locate left (last unmarked node before key) and right.
      {
        Node* t = head_;
        Node* t_next = head_->next.vRead();
        do {
          if (!is_marked(t_next)) {
            left = t;
            left_next = t_next;
          }
          t = without_mark(t_next);
          if (t == tail_) break;
          t_next = t->next.vRead();
        } while (is_marked(t_next) || t->key < key);
        right = t;
      }
      // Phase 2: already adjacent?
      if (left_next == right) {
        if (right != tail_ && is_marked(right->next.vRead())) continue;
        return {left, right};
      }
      // Phase 3: unlink the marked chain between left and right.
      if (left->next.vCAS(left_next, right)) {
        // Retire every node in the detached chain (all marked).
        Node* n = left_next;
        while (n != right) {
          Node* nx = without_mark(n->next.vRead());
          ebr::retire(n);
          n = nx;
        }
        if (right != tail_ && is_marked(right->next.vRead())) continue;
        return {left, right};
      }
    }
  }

  // Appendix F, Figure 8, against a snapshot: next node that was unmarked
  // (not logically deleted) at the snapshot's linearization point.
  Node* get_next_snapshot(Node* node, Timestamp ts) {
    Node* n = without_mark(node->next.readSnapshot(ts));
    while (n != tail_ && is_marked(n->next.readSnapshot(ts))) {
      n = without_mark(n->next.readSnapshot(ts));
    }
    return n;
  }

  std::unique_ptr<Camera> owned_camera_;
  Camera* camera_;
  Node* head_;
  Node* tail_;
};

}  // namespace vcas::ds
