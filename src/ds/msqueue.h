// Versioned Michael–Scott queue (paper Section 4 "FIFO Queue", Appendix E).
//
// The mutable state of an MS queue is Head, Tail and every node's next
// pointer. Replacing each with a VersionedCAS bound to one camera makes the
// whole queue snapshottable: takeSnapshot is O(1) and a query can then
// reconstruct any part of the queue state it needs while enqueues/dequeues
// proceed concurrently.
//
// Linearization (Appendix E): enqueue at the Tail swing, dequeue at the
// Head swing; Head never passes Tail because dequeue helps a lagging Tail
// first. Queries walk Head..Tail under one handle, so the abstract state
// they observe is the queue at the handle's linearization point.
//
// Each next pointer receives exactly one successful vCAS (null -> node), so
// readSnapshot on a next pointer inspects at most two versions; queries
// cost their sequential cost plus the number of concurrent dequeues
// (Table 1, row 1).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "ebr/ebr.h"
#include "vcas/camera.h"
#include "vcas/snapshot.h"
#include "vcas/versioned_cas.h"

namespace vcas::ds {

template <typename V>
class VcasMSQueue {
  struct Node {
    V val;
    VersionedCAS<Node*> next;
    Node(V v, Node* succ, Camera* cam) : val(std::move(v)), next(succ, cam) {}
  };

 public:
  VcasMSQueue() : VcasMSQueue(nullptr) {}

  // Associate with an existing camera (paper Section 3: many structures
  // may share one camera, enabling cross-structure atomic snapshots via
  // the *_at query variants). Pass nullptr to own a private camera.
  explicit VcasMSQueue(Camera* shared) {
    if (shared == nullptr) {
      owned_camera_ = std::make_unique<Camera>();
      camera_ = owned_camera_.get();
    } else {
      camera_ = shared;
    }
    Node* dummy = new Node(V{}, nullptr, camera_);
    head_ = new VersionedCAS<Node*>(dummy, camera_);
    tail_ = new VersionedCAS<Node*>(dummy, camera_);
  }

  VcasMSQueue(const VcasMSQueue&) = delete;
  VcasMSQueue& operator=(const VcasMSQueue&) = delete;

  ~VcasMSQueue() {
    Node* node = head_->vRead();
    while (node != nullptr) {
      Node* next = node->next.vRead();
      delete node;
      node = next;
    }
    delete head_;
    delete tail_;
  }

  void enqueue(V v) {
    ebr::Guard g;
    Node* node = new Node(std::move(v), nullptr, camera_);
    for (;;) {
      Node* last = tail_->vRead();
      Node* next = last->next.vRead();
      if (last != tail_->vRead()) continue;  // tail moved under us; reread
      if (next == nullptr) {
        if (last->next.vCAS(nullptr, node)) {
          tail_->vCAS(last, node);  // ok to fail: someone helped
          return;
        }
      } else {
        tail_->vCAS(last, next);  // help a lagging tail
      }
    }
  }

  std::optional<V> dequeue() {
    ebr::Guard g;
    for (;;) {
      Node* first = head_->vRead();
      Node* last = tail_->vRead();
      Node* next = first->next.vRead();
      if (first != head_->vRead()) continue;
      if (first == last) {
        if (next == nullptr) return std::nullopt;  // empty
        tail_->vCAS(last, next);  // tail lags behind a completed link
      } else {
        V v = next->val;
        if (head_->vCAS(first, next)) {
          ebr::retire(first);  // old dummy; next becomes the new dummy
          return v;
        }
      }
    }
  }

  Camera& camera() { return *camera_; }

  // --- snapshot queries (Appendix E, Figure 4) ----------------------------

  // Values at both ends of the queue at a single instant, or nullopt pair
  // if the queue was empty at the snapshot.
  std::pair<std::optional<V>, std::optional<V>> peek_end_points() {
    SnapshotGuard snap(*camera_);
    Node* h = head_->readSnapshot(snap.ts());
    Node* t = tail_->readSnapshot(snap.ts());
    if (h == t) return {std::nullopt, std::nullopt};
    Node* first = h->next.readSnapshot(snap.ts());
    return {first->val, t->val};
  }

  // The whole queue contents, oldest first, at a single instant.
  std::vector<V> scan() {
    SnapshotGuard snap(*camera_);
    return scan_at(snap.ts());
  }

  // Handle-explicit variant for cross-structure snapshots: the caller
  // holds a SnapshotGuard on the (shared) camera and passes its handle, so
  // several structures can be read at the same instant. Precondition: the
  // guard is live and was taken after this queue was constructed.
  std::vector<V> scan_at(Timestamp ts) {
    std::vector<V> result;
    Node* q = head_->readSnapshot(ts);
    Node* last = tail_->readSnapshot(ts);
    while (q != last) {
      q = q->next.readSnapshot(ts);
      result.push_back(q->val);
    }
    return result;
  }

  // The i-th element from the head (0-based) at a single instant. Cost
  // O(i + #concurrent dequeues): Table 1.
  std::optional<V> ith(std::size_t i) {
    SnapshotGuard snap(*camera_);
    Node* q = head_->readSnapshot(snap.ts());
    Node* last = tail_->readSnapshot(snap.ts());
    for (std::size_t steps = 0; q != last; ++steps) {
      q = q->next.readSnapshot(snap.ts());
      if (steps == i) return q->val;
    }
    return std::nullopt;
  }

  // Number of elements at a single instant.
  std::size_t size_snapshot() {
    SnapshotGuard snap(*camera_);
    std::size_t n = 0;
    Node* q = head_->readSnapshot(snap.ts());
    Node* last = tail_->readSnapshot(snap.ts());
    while (q != last) {
      q = q->next.readSnapshot(snap.ts());
      ++n;
    }
    return n;
  }

 private:
  std::unique_ptr<Camera> owned_camera_;
  Camera* camera_;
  VersionedCAS<Node*>* head_;
  VersionedCAS<Node*>* tail_;
};

}  // namespace vcas::ds
