#include "ebr/ebr.h"

#include <vector>

#include "inject/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/padded.h"
#include "util/threading.h"

namespace vcas::ebr {
namespace {

using util::kMaxThreads;
using util::Padded;

constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};
// Scan (and possibly advance the epoch) after this many retires per thread.
// Raised from 128 when the coalescing write path started retiring one node
// per update: larger sweep batches stream the prefetched deleter loop and
// halve the per-retire overhead (measured in bench_write_churn), while the
// worst-case limbo inventory this adds (~1k nodes/thread) is well below
// what one preempted pinned thread already pins by stalling the epoch for
// a scheduling quantum.
constexpr int kScanThreshold = 1024;

struct Retired {
  void* ptr;
  void (*deleter)(void*);
  std::size_t count;  // objects this entry disposes of (batch retires > 1)
};

// Limbo entries grouped by retire epoch. With the write path retiring one
// node per coalesced update, the old flat bag (per-entry epoch, full
// rescan every sweep) went quadratic whenever the epoch stalled — e.g. a
// writer preempted mid-pin holds its reservation for a whole scheduling
// quantum, every other thread's bag grows meanwhile, and each 128-retire
// scan re-walked the entire unfreeable backlog (measured as a multi-writer
// collapse in bench_write_churn). Epoch sub-bags make a sweep O(entries
// actually freed) + O(distinct pending epochs): a stalled epoch grows one
// sub-bag that nobody re-examines until it becomes freeable as a whole.
struct SubBag {
  std::uint64_t epoch;
  std::vector<Retired> items;
};

struct ThreadState {
  std::atomic<std::uint64_t> reservation{kQuiescent};
  int nesting = 0;
  int retire_count = 0;
  std::vector<SubBag> limbo;  // ascending epochs (g_epoch is monotone)
  // Emptied sub-bag vectors cycle through here so steady-state retiring
  // reuses their capacity instead of re-growing (and re-mallocing) a fresh
  // vector every sweep interval.
  std::vector<std::vector<Retired>> spare_bags;
  // Stats counters, slot-local so the retire hot path (once per coalesced
  // write) never touches a shared cache line; each is written only by the
  // thread owning the slot (relaxed atomics for the cross-thread stats()
  // sum). freed_objects counts objects THIS thread's sweeps disposed of,
  // wherever they were retired; pending = sum(retired) - sum(freed).
  std::atomic<std::uint64_t> retired_objects{0};
  std::atomic<std::uint64_t> freed_objects{0};
};

std::atomic<std::uint64_t> g_epoch{0};
Padded<ThreadState> g_threads[kMaxThreads];

// Death declarations, one per slot: 0 = none, otherwise dead tenure
// generation + 1 (see util/threading.h's tenure protocol). Written with
// release by the dying thread AFTER its last limbo write, read with
// acquire by reclaimers — that pairing is what publishes the dead thread's
// plain-field state (limbo vectors, nesting) to whoever orphans it.
Padded<std::atomic<std::uint64_t>> g_dead[kMaxThreads];

// Stall blame: consecutive try_advance failures charged to one slot.
// Heuristic telemetry (racy relaxed counters are fine): a real stalled
// pin blames the same slot every scan until contained or resolved.
std::atomic<int> g_blame_slot{-1};
std::atomic<int> g_blame_count{0};
std::atomic<int> g_stall_threshold{16};
// Last value pushed into the ebr.stalled_slot gauge by THIS publisher
// chain; publish_stalled's exchange-delta keeps the gauge's per-slot sum
// equal to the newest published value even when publishers race.
std::atomic<std::int64_t> g_published_stall{0};
std::atomic<std::uint64_t> g_dead_reclaims{0};

// Bags abandoned by exited threads; adopted under lock during scans. Not
// epoch-sorted (threads die in any order), but the list stays short: every
// scan frees all freeable sub-bags outright.
util::Mutex g_orphan_mu;
std::vector<SubBag> g_orphans VCAS_GUARDED_BY(g_orphan_mu);

// Dead-slot hooks (ebr.h): run under g_hook_mu so unregister is a barrier.
struct DeadHook {
  void* ctx;
  DeadSlotHook fn;
};
util::Mutex g_hook_mu;
std::vector<DeadHook> g_hooks VCAS_GUARDED_BY(g_hook_mu);
// Reentrancy latch: hook bodies must not re-enter dead-slot reclamation
// (they would self-deadlock on g_hook_mu). With the latch set, a nested
// try_advance simply defers the other dead slot to any later scan.
thread_local bool t_in_dead_hooks = false;

void run_dead_slot_hooks(int slot) {
  t_in_dead_hooks = true;
  {
    util::MutexLock lock(g_hook_mu);
    for (const DeadHook& h : g_hooks) h.fn(h.ctx, slot);
  }
  t_in_dead_hooks = false;
}

ThreadState& self() { return g_threads[util::thread_slot()].value; }

// Smallest epoch any pinned thread may still be reading in. Scans only
// slots that have ever been claimed (util::slot_high_water): a slot above
// the mark has never run pin(), so its reservation is the initial
// kQuiescent and skipping it reads the same value. A first-time claimant
// racing the scan publishes its slot-claim bump (seq_cst RMW) before its
// first reservation store, so a scan that misses the bump is ordered, in
// the seq_cst total order, before that thread's pin — equivalent to the
// always-possible "thread pins right after the scan", which the 3-epoch
// slack already tolerates. The fence pairs with pin()'s seq_cst
// reservation store for slots the scan does visit ([atomics.order]: a
// store seq_cst-ordered before the fence is visible to loads after it).
std::uint64_t min_reservation() {
  std::uint64_t min = g_epoch.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst)
      VCAS_ORD("ebr.scan.fence");
  const int live = util::slot_high_water();
  for (int i = 0; i < live; ++i) {
    const std::uint64_t r =
        g_threads[i].value.reservation.load(std::memory_order_acquire);
    if (r < min) min = r;
  }
  return min;
}

// Orphan slot `i`'s limbo and reset its per-thread EBR state so the next
// tenant starts clean. Caller must have WON claim_tenure_end for the
// slot's current tenure — that exclusivity (plus the dead-flag release/
// acquire pairing for third-party reclaims) is what makes these plain-
// field accesses race-free.
void orphan_slot(int i) {
  ThreadState& ts = g_threads[i].value;
  if (!ts.limbo.empty()) {
    util::MutexLock lock(g_orphan_mu);
    for (SubBag& bag : ts.limbo) g_orphans.push_back(std::move(bag));
    ts.limbo.clear();
  }
  ts.retire_count = 0;
  ts.nesting = 0;
  ts.reservation.store(kQuiescent, std::memory_order_release);
}

// Tenure-end race entry shared by the thread-exit hook and the dead-slot
// reclaimer below: whoever wins cleans the slot and releases it; losers
// must not touch it.
void end_tenure(int slot, std::uint64_t gen) {
  if (slot < 0) return;
  if (!util::claim_tenure_end(slot, gen)) return;
  orphan_slot(slot);
  // Clear a death declaration from the tenure we just ended (the thread
  // declared dead, then exited normally before any reclaimer acted), so
  // the slot's next tenant starts without a stale flag.
  std::uint64_t flag = gen + 1;
  if (g_dead[slot].value.compare_exchange_strong(flag, 0,
                                                 std::memory_order_release,
                                                 std::memory_order_relaxed)) {
    // The tenure died declared-dead and we (its own exit destructors) beat
    // the containment reclaimer to the claim: the dead tenure's external
    // per-slot state (e.g. abandoned snapshot pins) still needs draining,
    // and it must happen before finish_tenure_end releases the slot.
    run_dead_slot_hooks(slot);
  }
  util::finish_tenure_end(slot);
}

// Reclaim the slot of a thread that declared itself dead: the tenure-
// generation CAS is the safety argument — if the slot was already
// released and recycled to a live tenant, the dead tenure's generation is
// stale and the claim fails (we only clear the leftover flag).
void reclaim_dead(int slot, std::uint64_t flag) {
  // A dead-slot hook body reached a nested try_advance: defer this slot
  // to a later scan rather than deadlock on the hook registry mutex.
  if (t_in_dead_hooks) return;
  const std::uint64_t gen = flag - 1;
  if (util::claim_tenure_end(slot, gen)) {
    orphan_slot(slot);
    g_dead[slot].value.compare_exchange_strong(flag, 0,
                                               std::memory_order_release,
                                               std::memory_order_relaxed);
    // Hooks run BEFORE finish_tenure_end: the slot must not be re-tenanted
    // while a hook is still reading the dead tenure's per-slot state.
    run_dead_slot_hooks(slot);
    util::finish_tenure_end(slot);
    g_dead_reclaims.fetch_add(1, std::memory_order_relaxed);
    obs::m::ebr_dead_slot_reclaims.add();
  } else {
    g_dead[slot].value.compare_exchange_strong(flag, 0,
                                               std::memory_order_release,
                                               std::memory_order_relaxed);
  }
}

// Mirror the blamed slot (+1; 0 = none) into the ebr.stalled_slot gauge.
// Exchange-delta: each publisher adds (new - previous-published) to its
// own gauge slot; the adds commute, the exchange chain linearizes, so the
// gauge's sum always equals the newest published value.
void publish_stalled(std::int64_t v) {
  const std::int64_t prev =
      g_published_stall.exchange(v, std::memory_order_relaxed);
  if (prev != v) obs::m::ebr_stalled_slot.add(v - prev);
}

void note_stall(int slot) {
  if (g_blame_slot.load(std::memory_order_relaxed) != slot) {
    g_blame_slot.store(slot, std::memory_order_relaxed);
    g_blame_count.store(1, std::memory_order_relaxed);
    return;
  }
  const int c = g_blame_count.fetch_add(1, std::memory_order_relaxed) + 1;
  if (c == g_stall_threshold.load(std::memory_order_relaxed)) {
    publish_stalled(slot + 1);
  }
}

void clear_stall() {
  g_blame_slot.store(-1, std::memory_order_relaxed);
  g_blame_count.store(0, std::memory_order_relaxed);
  if (g_published_stall.load(std::memory_order_relaxed) != 0) {
    publish_stalled(0);
  }
}

void try_advance() {
  const std::uint64_t e = g_epoch.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst)
      VCAS_ORD("ebr.scan.fence");
  const int live = util::slot_high_water();
  for (int i = 0; i < live; ++i) {
    // Containment first: a declared-dead slot is reclaimed whether or not
    // it is the stall (a dead UNPINNED thread does not block the epoch,
    // but its limbo would otherwise sit stranded until adopted).
    const std::uint64_t flag = g_dead[i].value.load(std::memory_order_acquire);
    if (flag != 0) reclaim_dead(i, flag);
    const std::uint64_t r =
        g_threads[i].value.reservation.load(std::memory_order_acquire);
    if (r != kQuiescent && r != e) {
      // A thread lags; cannot advance. This is the epoch-stall event the
      // limbo-depth telemetry pairs with: stalls * retire rate bounds the
      // unfreeable backlog a preempted pin accumulates. Blame tracking
      // turns a streak against one slot into the ebr.stalled_slot report.
      note_stall(i);
      obs::m::ebr_epoch_stalls.add();
      return;
    }
  }
  std::uint64_t expected = e;
  g_epoch.compare_exchange_strong(expected, e + 1, std::memory_order_acq_rel)
      VCAS_ORD("ebr.epoch.advance");
  clear_stall();
}

// Free every sub-bag retired at least two epochs before any live
// reservation; keep the rest. Only freeable entries are ever touched — an
// unfreeable sub-bag costs one epoch comparison no matter how large it
// grows. Returns OBJECTS freed (batch entries count all their objects),
// matching the pending/freed stats.
std::size_t free_subbag(SubBag& bag) {
  std::size_t freed = 0;
  const std::size_t n = bag.items.size();
  for (std::size_t i = 0; i < n; ++i) {
    // By reclamation time entries have sat out the grace period and their
    // lines are usually evicted; prefetching ahead of the deleter hides
    // the miss (a measured ~20% throughput gain on the coalescing write
    // path, whose every update funnels one node through here).
    if (i + 8 < n) __builtin_prefetch(bag.items[i + 8].ptr, 1);
    bag.items[i].deleter(bag.items[i].ptr);
    freed += bag.items[i].count;
  }
  return freed;
}

// `spare` (nullable): sink for emptied sub-bag vectors, recycled by
// retire_batch. Bounded so a burst does not pin capacity forever.
std::size_t sweep(std::vector<SubBag>& bags, std::uint64_t safe_before,
                  std::vector<std::vector<Retired>>* spare) {
  std::size_t freed = 0;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < bags.size(); ++i) {
    if (bags[i].epoch + 2 <= safe_before) {
      freed += free_subbag(bags[i]);
      if (spare != nullptr && spare->size() < 4) {
        bags[i].items.clear();
        spare->push_back(std::move(bags[i].items));
      }
    } else {
      if (keep != i) bags[keep] = std::move(bags[i]);
      ++keep;
    }
  }
  bags.resize(keep);
  return freed;
}

void scan(ThreadState& ts) {
  VCAS_TRACE_SPAN(obs::Ev::kEbrScan);
  // Death here = a thread that dies between retiring and sweeping: its
  // limbo is exactly what stall containment + orphan adoption must drain.
  VCAS_FAILPOINT("ebr.scan");
  try_advance();
  const std::uint64_t safe_before = min_reservation();
  std::size_t freed = sweep(ts.limbo, safe_before, &ts.spare_bags);
  // Adopt orphaned garbage opportunistically so exited threads' retirees
  // do not accumulate forever.
  if (g_orphan_mu.try_lock()) {
    freed += sweep(g_orphans, safe_before, nullptr);
    g_orphan_mu.unlock();
  }
  if (freed > 0) util::bump_counter(ts.freed_objects, freed);
}

// End the thread's slot tenure on exit: orphan its limbo (so a recycled
// slot starts clean) through the tenure-end claim, which arbitrates
// against a stall reclaimer that may have already ended a declared-dead
// tenure. The slot/gen pair is captured at arm time — the destructor must
// not call thread_slot() (the SlotHandle may be mid-teardown ordering-wise
// on some platforms, and a reclaimed slot must not be re-resolved).
struct ExitHook {
  int slot;
  std::uint64_t gen;
  ~ExitHook() { end_tenure(slot, gen); }
};

void arm_exit_hook() {
  thread_local ExitHook hook{util::thread_slot(), util::thread_slot_gen()};
  (void)hook;
}

}  // namespace

void pin() {
  ThreadState& ts = self();
  arm_exit_hook();
  if (ts.nesting++ > 0) return;
  // Publish the observed epoch, then re-check: the store must be visible
  // before we rely on epoch e, otherwise a concurrent advance could free
  // nodes we are about to read.
  for (;;) {
    const std::uint64_t e = g_epoch.load(std::memory_order_acquire);
    ts.reservation.store(e, std::memory_order_seq_cst)
        VCAS_ORD("ebr.pin.publish");
    if (g_epoch.load(std::memory_order_seq_cst)
            VCAS_ORD("ebr.pin.publish") == e) {
      break;
    }
  }
}

void unpin() {
  ThreadState& ts = self();
  if (--ts.nesting > 0) return;
  ts.reservation.store(kQuiescent, std::memory_order_release);
}

void retire(void* p, void (*deleter)(void*)) { retire_batch(p, deleter, 1); }

void retire_batch(void* p, void (*deleter)(void*), std::size_t count) {
  ThreadState& ts = self();
  arm_exit_hook();
  const std::uint64_t e = g_epoch.load(std::memory_order_acquire);
  // g_epoch is monotone, so appending keeps limbo's epochs ascending; the
  // common case appends to the existing newest sub-bag.
  if (ts.limbo.empty() || ts.limbo.back().epoch != e) {
    SubBag bag{e, {}};
    if (!ts.spare_bags.empty()) {
      bag.items = std::move(ts.spare_bags.back());
      ts.spare_bags.pop_back();
    }
    ts.limbo.push_back(std::move(bag));
  }
  ts.limbo.back().items.push_back(Retired{p, deleter, count});
  util::bump_counter(ts.retired_objects, count);
  if (++ts.retire_count >= kScanThreshold) {
    ts.retire_count = 0;
    scan(ts);
  }
}

std::size_t flush() {
  ThreadState& ts = self();
  arm_exit_hook();
  ts.retire_count = 0;
  const std::uint64_t before =
      ts.freed_objects.load(std::memory_order_relaxed);
  scan(ts);
  return static_cast<std::size_t>(
      ts.freed_objects.load(std::memory_order_relaxed) - before);
}

std::size_t drain_for_tests() {
  // Advance the epoch enough times that everything retired so far clears
  // the 3-epoch rule, then sweep every bag. Caller guarantees quiescence.
  for (int i = 0; i < 3; ++i) try_advance();
  const std::uint64_t safe_before = min_reservation() + 2;  // free all
  std::size_t freed = 0;
  for (int i = 0; i < kMaxThreads; ++i) {
    freed += sweep(g_threads[i].value.limbo, safe_before, nullptr);
  }
  {
    util::MutexLock lock(g_orphan_mu);
    freed += sweep(g_orphans, safe_before, nullptr);
  }
  if (freed > 0) util::bump_counter(self().freed_objects, freed);
  return freed;
}

void declare_self_dead() {
  const int slot = util::thread_slot();
  const std::uint64_t gen = util::thread_slot_gen();
  // Release: publishes every plain-field write this thread made to its
  // ThreadState (limbo, nesting) to the reclaimer's acquire load of the
  // flag. The caller makes no ebr/util calls after this returns.
  g_dead[slot].value.store(gen + 1, std::memory_order_release);
}

int stalled_slot() {
  return static_cast<int>(
             g_published_stall.load(std::memory_order_relaxed)) -
         1;
}

std::uint64_t dead_slot_reclaims() {
  return g_dead_reclaims.load(std::memory_order_relaxed);
}

void set_stall_threshold_for_tests(int consecutive_failures) {
  g_stall_threshold.store(consecutive_failures, std::memory_order_relaxed);
}

void register_dead_slot_hook(void* ctx, DeadSlotHook fn) {
  util::MutexLock lock(g_hook_mu);
  g_hooks.push_back(DeadHook{ctx, fn});
}

void unregister_dead_slot_hook(void* ctx) {
  util::MutexLock lock(g_hook_mu);
  std::size_t keep = 0;
  for (std::size_t i = 0; i < g_hooks.size(); ++i) {
    if (g_hooks[i].ctx != ctx) g_hooks[keep++] = g_hooks[i];
  }
  g_hooks.resize(keep);
}

Stats stats() {
  std::uint64_t retired = 0;
  std::uint64_t freed = 0;
  const int live = util::slot_high_water();
  for (int i = 0; i < live; ++i) {
    retired += g_threads[i].value.retired_objects.load(
        std::memory_order_relaxed);
    freed += g_threads[i].value.freed_objects.load(std::memory_order_relaxed);
  }
  // Counters are sampled per slot without a snapshot point, so a racing
  // sweep can make the difference transiently negative; clamp.
  const std::uint64_t pending = retired > freed ? retired - freed : 0;
  return Stats{g_epoch.load(std::memory_order_relaxed),
               static_cast<std::size_t>(pending), freed};
}

}  // namespace vcas::ebr
