#include "ebr/ebr.h"

#include <mutex>
#include <vector>

#include "util/padded.h"
#include "util/threading.h"

namespace vcas::ebr {
namespace {

using util::kMaxThreads;
using util::Padded;

constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};
// Scan (and possibly advance the epoch) after this many retires per thread.
// Low enough to bound limbo-bag growth, high enough to amortize the
// O(kMaxThreads) reservation scan.
constexpr int kScanThreshold = 128;

struct Retired {
  void* ptr;
  void (*deleter)(void*);
  std::uint64_t epoch;
};

struct ThreadState {
  std::atomic<std::uint64_t> reservation{kQuiescent};
  int nesting = 0;
  int retire_count = 0;
  std::vector<Retired> limbo;
};

std::atomic<std::uint64_t> g_epoch{0};
std::atomic<std::uint64_t> g_freed{0};
std::atomic<std::int64_t> g_pending{0};
Padded<ThreadState> g_threads[kMaxThreads];

// Bags abandoned by exited threads; adopted under lock during scans.
std::mutex g_orphan_mu;
std::vector<Retired> g_orphans;

ThreadState& self() { return g_threads[util::thread_slot()].value; }

// Smallest epoch any pinned thread may still be reading in.
std::uint64_t min_reservation() {
  std::uint64_t min = g_epoch.load(std::memory_order_acquire);
  for (int i = 0; i < kMaxThreads; ++i) {
    const std::uint64_t r =
        g_threads[i].value.reservation.load(std::memory_order_acquire);
    if (r < min) min = r;
  }
  return min;
}

void try_advance() {
  const std::uint64_t e = g_epoch.load(std::memory_order_acquire);
  for (int i = 0; i < kMaxThreads; ++i) {
    const std::uint64_t r =
        g_threads[i].value.reservation.load(std::memory_order_acquire);
    if (r != kQuiescent && r != e) return;  // a thread lags; cannot advance
  }
  std::uint64_t expected = e;
  g_epoch.compare_exchange_strong(expected, e + 1, std::memory_order_acq_rel);
}

// Free every entry of `bag` retired at least two epochs before any live
// reservation; keep the rest.
std::size_t sweep(std::vector<Retired>& bag, std::uint64_t safe_before) {
  std::size_t freed = 0;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < bag.size(); ++i) {
    if (bag[i].epoch + 2 <= safe_before) {
      bag[i].deleter(bag[i].ptr);
      ++freed;
    } else {
      bag[keep++] = bag[i];
    }
  }
  bag.resize(keep);
  return freed;
}

void scan(ThreadState& ts) {
  try_advance();
  const std::uint64_t safe_before = min_reservation();
  std::size_t freed = sweep(ts.limbo, safe_before);
  // Adopt orphaned garbage opportunistically so exited threads' retirees
  // do not accumulate forever.
  if (g_orphan_mu.try_lock()) {
    freed += sweep(g_orphans, safe_before);
    g_orphan_mu.unlock();
  }
  if (freed > 0) {
    g_freed.fetch_add(freed, std::memory_order_relaxed);
    g_pending.fetch_sub(static_cast<std::int64_t>(freed),
                        std::memory_order_relaxed);
  }
}

// Orphan the limbo bag when a thread exits mid-life so a recycled slot
// starts clean.
struct ExitHook {
  ~ExitHook() {
    ThreadState& ts = self();
    if (!ts.limbo.empty()) {
      std::lock_guard<std::mutex> lock(g_orphan_mu);
      g_orphans.insert(g_orphans.end(), ts.limbo.begin(), ts.limbo.end());
      ts.limbo.clear();
    }
    ts.retire_count = 0;
    ts.nesting = 0;
    ts.reservation.store(kQuiescent, std::memory_order_release);
  }
};

void arm_exit_hook() { thread_local ExitHook hook; (void)hook; }

}  // namespace

void pin() {
  ThreadState& ts = self();
  arm_exit_hook();
  if (ts.nesting++ > 0) return;
  // Publish the observed epoch, then re-check: the store must be visible
  // before we rely on epoch e, otherwise a concurrent advance could free
  // nodes we are about to read.
  for (;;) {
    const std::uint64_t e = g_epoch.load(std::memory_order_acquire);
    ts.reservation.store(e, std::memory_order_seq_cst);
    if (g_epoch.load(std::memory_order_seq_cst) == e) break;
  }
}

void unpin() {
  ThreadState& ts = self();
  if (--ts.nesting > 0) return;
  ts.reservation.store(kQuiescent, std::memory_order_release);
}

void retire(void* p, void (*deleter)(void*)) {
  ThreadState& ts = self();
  arm_exit_hook();
  ts.limbo.push_back(
      Retired{p, deleter, g_epoch.load(std::memory_order_acquire)});
  g_pending.fetch_add(1, std::memory_order_relaxed);
  if (++ts.retire_count >= kScanThreshold) {
    ts.retire_count = 0;
    scan(ts);
  }
}

std::size_t drain_for_tests() {
  // Advance the epoch enough times that everything retired so far clears
  // the 3-epoch rule, then sweep every bag. Caller guarantees quiescence.
  for (int i = 0; i < 3; ++i) try_advance();
  const std::uint64_t safe_before = min_reservation() + 2;  // free all
  std::size_t freed = 0;
  for (int i = 0; i < kMaxThreads; ++i) {
    freed += sweep(g_threads[i].value.limbo, safe_before);
  }
  {
    std::lock_guard<std::mutex> lock(g_orphan_mu);
    freed += sweep(g_orphans, safe_before);
  }
  g_freed.fetch_add(freed, std::memory_order_relaxed);
  g_pending.fetch_sub(static_cast<std::int64_t>(freed),
                      std::memory_order_relaxed);
  return freed;
}

Stats stats() {
  return Stats{g_epoch.load(std::memory_order_relaxed),
               static_cast<std::size_t>(
                   g_pending.load(std::memory_order_relaxed) < 0
                       ? 0
                       : g_pending.load(std::memory_order_relaxed)),
               g_freed.load(std::memory_order_relaxed)};
}

}  // namespace vcas::ebr
