// Epoch-based memory reclamation (Fraser-style, 3-epoch rule).
//
// This is the reclamation substrate the paper relies on (reference [33]):
// lock-free operations run inside an epoch-pinned critical region; unlinked
// nodes are *retired*, not freed, and become reclaimable only once every
// pinned thread has moved at least two epochs past the retiring epoch, at
// which point no reader can still hold a reference.
//
// Usage:
//   {
//     vcas::ebr::Guard g;            // pin (reentrant)
//     ... traverse / CAS ...
//     vcas::ebr::retire(node);       // node is unlinked, free later
//   }                                 // unpin
//
// Threads that exit with unreclaimed garbage hand their limbo bag to a
// global orphan list adopted by future scans, so no memory is stranded.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace vcas::ebr {

// Enter/leave an epoch-protected critical region. Reentrant: only the
// outermost pin publishes a reservation.
void pin();
void unpin();

class Guard {
 public:
  Guard() { pin(); }
  ~Guard() { unpin(); }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;
};

// Hand an unlinked object to the reclaimer. The deleter runs once the
// 3-epoch rule proves no reader can hold a reference.
void retire(void* p, void (*deleter)(void*));

// Batch form: ONE limbo entry covering `count` unlinked objects reachable
// from `p`; `deleter` is invoked once with `p` and must dispose of all of
// them (e.g. walk a detached version-list suffix). Stats (pending/freed)
// account all `count` objects, but the limbo bookkeeping — entry push,
// sweep test, deleter dispatch — is paid once per run instead of once per
// object. This is how trim retires whole version-list suffixes.
void retire_batch(void* p, void (*deleter)(void*), std::size_t count);

template <typename T>
void retire(T* p) {
  retire(static_cast<void*>(p), +[](void* q) { delete static_cast<T*>(q); });
}

// Opportunistic scan: try to advance the epoch and sweep the calling
// thread's limbo (adopting orphans if uncontended). For long-lived
// background threads — maintenance workers retire in bursts (whole trim
// suffixes, coalesced runs, detached cells) and then idle, and without
// this their last sub-bags would wait for the next burst's retire count
// to trip a scan. Safe from any thread at any time (a pinned caller
// simply bounds the sweep by its own reservation). Returns objects freed.
std::size_t flush();

// Force reclamation of everything retired so far. Only valid when the
// caller knows no thread is pinned (test teardown, single-threaded phases).
// Returns the number of objects freed.
std::size_t drain_for_tests();

struct Stats {
  std::uint64_t epoch;
  std::size_t pending;  // retired but not yet freed (approximate)
  std::uint64_t freed;  // total freed since process start
};
Stats stats();

// --- stall containment (fault-injection subsystem) --------------------------
//
// A thread that dies (or is abandoned by fault injection) while pinned
// stalls the epoch forever — the classic EBR soft spot. Containment: the
// dying thread declares itself dead FIRST; any later try_advance that sees
// the declaration reclaims the slot through the tenure-generation protocol
// in util/threading.h (so a recycled slot's new live tenant can never be
// reclaimed by a stale declaration), orphans the dead thread's limbo, and
// clears its reservation, after which the epoch advances and pending
// retirals drain normally.

// Declare the CALLING thread dead mid-protocol. Contract: the caller makes
// no further vcas/ebr/util::thread_slot calls afterwards — its slot, pins,
// and limbo now belong to the reclaimer (or to its own exit destructors,
// whichever wins the tenure-end race; both are safe, and the thread remains
// joinable).
void declare_self_dead();

// Slot id currently blamed for an epoch-stall streak past the containment
// threshold, or -1. Works in every build config (unlike the mirrored
// ebr.stalled_slot gauge, which needs VCAS_STATS).
int stalled_slot();

// Dead tenures reclaimed by try_advance since process start.
std::uint64_t dead_slot_reclaims();

// Consecutive try_advance failures blamed on one slot before it is
// reported as stalled. Test hook; default 16.
void set_stall_threshold_for_tests(int consecutive_failures);

// --- dead-slot hooks ---------------------------------------------------------
//
// Subsystems that keep per-slot state OUTSIDE ebr (e.g. the camera's
// snapshot-pin ledger) register a hook; when a declared-dead slot's tenure
// end is claimed — by containment's reclaim or by the dead thread's own
// exit destructors — every registered hook runs exactly once for that
// slot: after the slot's EBR state was orphaned, and strictly before the
// slot is released for reuse, so a hook may read the dead tenure's plain
// per-slot state race-free. Hooks execute under the registry mutex (which
// is what makes unregister a barrier: once it returns, no hook with that
// ctx can be running or run again). Hooks must therefore be cheap and
// reentrancy-free: no EBR calls, no locks an EBR path can hold, no
// failpoints.
using DeadSlotHook = void (*)(void* ctx, int slot);
void register_dead_slot_hook(void* ctx, DeadSlotHook fn);
void unregister_dead_slot_hook(void* ctx);

}  // namespace vcas::ebr
