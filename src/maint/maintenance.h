// Shard-parallel background maintenance engine (ISSUE 5).
//
// The store's version-history upkeep — incremental trim, horizon-side
// coalescing, tombstone cell GC, abort-chain cleanup (see maint/janitor.h
// for the fused per-cell pass) — all schedules through ONE MaintenancePool:
// N worker threads draining an MPMC queue of per-shard MaintTasks. This
// replaces the former single trimmer thread whose every tick re-walked
// every cell of every shard; work now arrives per shard, in bounded
// resumable slices, from two sources:
//
//   * hints — the write path enqueues a shard when it creates work worth
//     reacting to (a tombstone that GC could reclaim, a churn threshold
//     crossed). Hints are deduplicated per shard (at most one queued task)
//     and carry a GENERATION stamp: each hint bumps the shard's
//     enqueued_gen, each completed pass records the generation it covered
//     in done_gen, and a popped task whose generation is already covered
//     drops on the floor instead of re-scanning a clean shard.
//   * sweeps — a periodic tick (claimed by whichever worker's wait expires
//     first) enqueues every shard, so quiet shards still trim and a pass
//     that exhausted its per-task cell budget resumes from its cursor.
//
// Progress/locking honesty: the queue is lock-free (Michael–Scott on EBR)
// and the hinter's wake is a bare notify_one with no mutex, so enqueueing
// a hint never blocks the write path — a missed wakeup (worker between
// its empty-queue check and its wait) costs at most one tick of latency,
// never correctness. The only mutexes in the subsystem guard worker
// sleep (condvar) and lifecycle (start/stop), which no data-path
// operation ever touches. Both are util::Mutex, so their guarded state
// (including the condvar predicate, via util::CondVar) sits inside
// -Wthread-safety.
//
// Watchdog (fault-injection subsystem): each worker publishes a heartbeat
// (shard, start time, a busy/idle sequence) around every pass, and every
// worker cheaply checks its PEERS' beats each loop iteration. A task
// running past the configured deadline (set_task_deadline; disabled by
// default) fires once per stuck instance — counted in
// obs::m::maint_watchdog_fired, traced as an instant event — and its
// shard is re-enqueued so another worker covers the generation the stuck
// one claimed. Requeues ride the normal generation-stamped dedup path, and
// a shard whose claim never clears (a worker abandoned mid-pass under
// fault injection) stops cycling through the queue after a bounded number
// of consecutive kBusy requeues: maintenance coverage degrades for that
// one shard, the pool and every operation stay live.
//
// The pool is deliberately store-agnostic: it schedules opaque per-shard
// passes (a PassFn returning whether the shard's cursor wrapped);
// scheduling and pass telemetry both report into the process-wide obs
// registry (obs/metrics.h). Later subsystems (NUMA-aware
// placement, adaptive backend migration, persistence flushing) are
// expected to schedule through the same engine.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "ebr/ebr.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/annotations.h"
#include "util/mutex.h"

namespace vcas::maint {

enum class TaskKind : std::uint8_t {
  kHint = 0,   // write-path enqueue (tombstone created, churn threshold)
  kSweep = 1,  // periodic tick, or the continuation of a budget-bounded pass
};

struct MaintTask {
  std::size_t shard = 0;
  std::uint64_t gen = 0;
  TaskKind kind = TaskKind::kSweep;
};

// What one janitor pass did with its shard slice.
enum class PassStatus {
  kBusy,     // another pass holds the shard; nothing ran
  kMore,     // budget exhausted mid-shard; cursor parked, continuation due
  kWrapped,  // reached the end of the shard's registry
};

// Plain-value snapshot of the maintenance meters for telemetry rows and
// tests. The counters themselves live in the process-wide obs registry
// (obs/metrics.h, `obs::m::maint_*`) — ISSUE 6 deleted the pool-owned
// atomic-counter struct that used to parallel it. Every field is an
// AGGREGATE-ON-READ sum over the per-thread slots, so a snapshot taken
// mid-run is coherent (each counter exact at some instant during the
// scan, monotone across calls) instead of whatever one worker's hot
// counter happened to read.
struct Stats {
  std::uint64_t tasks_run = 0;
  std::uint64_t tasks_dropped = 0;
  std::uint64_t hints = 0;
  std::uint64_t sweeps = 0;
  std::uint64_t cells_visited = 0;
  std::uint64_t versions_trimmed = 0;
  std::uint64_t versions_coalesced = 0;
  std::uint64_t aborted_unlinked = 0;
  std::uint64_t cells_detached = 0;
  std::uint64_t task_ns_total = 0;
  std::uint64_t task_ns_max = 0;
  std::size_t queue_depth = 0;
  // Full per-task latency distribution (ns); task_ns_total/max above are
  // its sum/max, kept as flat fields for existing consumers.
  obs::HistogramSnapshot task_latency;
};

// Registry-side snapshot; queue_depth stays 0 (only a live pool knows
// its depth — ShardedStore::maintenance_stats fills it in).
inline Stats stats_from_registry() {
  Stats s;
  s.tasks_run = obs::m::maint_tasks_run.read();
  s.tasks_dropped = obs::m::maint_tasks_dropped.read();
  s.hints = obs::m::maint_hints.read();
  s.sweeps = obs::m::maint_sweeps.read();
  s.cells_visited = obs::m::maint_cells_visited.read();
  s.versions_trimmed = obs::m::maint_versions_trimmed.read();
  s.versions_coalesced = obs::m::maint_versions_coalesced.read();
  s.aborted_unlinked = obs::m::maint_aborted_unlinked.read();
  s.cells_detached = obs::m::maint_cells_detached.read();
  s.task_latency = obs::m::maint_task_latency.snapshot();
  s.task_ns_total = s.task_latency.sum;
  s.task_ns_max = s.task_latency.max;
  return s;
}

namespace detail {

// Michael–Scott MPMC queue of MaintTasks. Nodes are EBR-retired (push/pop
// run pinned), so a dequeuer racing another dequeuer can safely read
// through a node the winner just unlinked — the same reclamation contract
// as every other lock-free structure in the repo.
class TaskQueue {
  struct Node {
    MaintTask task;
    std::atomic<Node*> next{nullptr};
  };

 public:
  TaskQueue() {
    Node* dummy = new Node;
    head_.store(dummy, std::memory_order_relaxed);
    tail_.store(dummy, std::memory_order_relaxed);
  }

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  // Quiescent destruction (pool joined its workers first).
  ~TaskQueue() {
    Node* node = head_.load(std::memory_order_relaxed);
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  void push(const MaintTask& t) {
    ebr::Guard g;
    Node* node = new Node;
    node->task = t;
    for (;;) {
      Node* last = tail_.load(std::memory_order_acquire);
      Node* next = last->next.load(std::memory_order_acquire);
      if (last != tail_.load(std::memory_order_acquire)) continue;
      if (next == nullptr) {
        if (last->next.compare_exchange_weak(next, node,
                                             std::memory_order_acq_rel)
                VCAS_ORD("maint.queue.msq")) {
          tail_.compare_exchange_strong(last, node,
                                        std::memory_order_acq_rel)
              VCAS_ORD("maint.queue.msq");
          return;
        }
      } else {
        tail_.compare_exchange_strong(last, next, std::memory_order_acq_rel)
            VCAS_ORD("maint.queue.msq");
      }
    }
  }

  bool pop(MaintTask& out) {
    ebr::Guard g;
    for (;;) {
      Node* first = head_.load(std::memory_order_acquire);
      Node* last = tail_.load(std::memory_order_acquire);
      Node* next = first->next.load(std::memory_order_acquire);
      if (first != head_.load(std::memory_order_acquire)) continue;
      if (first == last) {
        if (next == nullptr) return false;
        tail_.compare_exchange_strong(last, next, std::memory_order_acq_rel)
            VCAS_ORD("maint.queue.msq");
      } else {
        out = next->task;  // read before the CAS: the pin keeps next alive
        if (head_.compare_exchange_strong(first, next,
                                          std::memory_order_acq_rel)
                VCAS_ORD("maint.queue.msq")) {
          ebr::retire(first);
          return true;
        }
      }
    }
  }

 private:
  std::atomic<Node*> head_;
  std::atomic<Node*> tail_;
};

}  // namespace detail

class MaintenancePool {
 public:
  // One bounded pass over `shard`. Returns what happened; the pool
  // schedules continuations for kMore and retries (after other work) for
  // kBusy.
  using PassFn = std::function<PassStatus(std::size_t shard)>;

  MaintenancePool(std::size_t shards, PassFn pass)
      : pass_(std::move(pass)),
        shards_(shards),
        sched_(std::make_unique<Sched[]>(shards)) {}

  MaintenancePool(const MaintenancePool&) = delete;
  MaintenancePool& operator=(const MaintenancePool&) = delete;

  ~MaintenancePool() { stop(); }

  // Spawn `workers` threads; every `tick` a full sweep (one task per
  // shard) is enqueued. Idempotent while running; restartable after
  // stop().
  void start(std::size_t workers, std::chrono::milliseconds tick) {
    util::MutexLock lk(lifecycle_mu_);
    if (!workers_.empty()) return;
    tick_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(tick).count(),
        std::memory_order_relaxed);
    last_tick_ns_.store(0, std::memory_order_relaxed);  // sweep immediately
    {
      util::MutexLock cv_lk(cv_mu_);
      stop_ = false;
    }
    stopping_.store(false, std::memory_order_release);
    if (workers == 0) workers = 1;
    // Heartbeats are (re)allocated before any worker exists and the spawn
    // publishes them (thread creation happens-before the thread body), so
    // the workers' lock-free peer scans need no further synchronization.
    beats_ = std::make_unique<Beat[]>(workers);
    beat_count_ = workers;
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this, i] { worker_loop(&beats_[i]); });
    }
  }

  // Drain-and-join exactly once: workers finish their in-flight pass and
  // exit; already-queued tasks are kept (they run on a restart, and a
  // stopped queue costs nothing). Idempotent, and safe against concurrent
  // stop()/start() calls (dtor + explicit disable + re-enable): the JOIN
  // happens under lifecycle_mu_, so a racing start() cannot reset the
  // stop flags while old workers are still reading them, and a second
  // stop() returns only after the first one's workers are really gone
  // (the destructor relies on that). Workers never take lifecycle_mu_,
  // so holding it across the join cannot deadlock.
  void stop() {
    util::MutexLock lk(lifecycle_mu_);
    if (workers_.empty()) return;
    stopping_.store(true, std::memory_order_release);
    {
      util::MutexLock cv_lk(cv_mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
  }

  bool running() const {
    util::MutexLock lk(lifecycle_mu_);
    return !workers_.empty();
  }

  // Write-path enqueue: lock-free dedup + queue push; wakes a worker only
  // if one is asleep (see the progress note in the header comment).
  void hint(std::size_t shard) {
    obs::m::maint_hints.add();
    enqueue(shard, TaskKind::kHint);
  }

  // Enqueue a sweep task for every shard (periodic tick; also handy for
  // tests that want the pool, not the caller, to do the work).
  void sweep_all() {
    obs::m::maint_sweeps.add();
    for (std::size_t s = 0; s < shards_; ++s) enqueue(s, TaskKind::kSweep);
  }

  std::size_t queue_depth() const {
    const std::int64_t d = depth_.load(std::memory_order_relaxed);
    return d > 0 ? static_cast<std::size_t>(d) : 0;
  }

  Stats stats() const {
    Stats s = stats_from_registry();
    s.queue_depth = queue_depth();
    return s;
  }

  // Watchdog deadline for one pass; zero (the default) disables the peer
  // checks entirely. Takes effect on the next beat — safe to call while
  // the pool runs. Pick a bound well above the expected per-task latency
  // ceiling (the obs::m::maint_task_latency histogram is the empirical
  // source): a fired watchdog means a WORKER is presumed gone, not that a
  // pass was merely slow, and the recovery (re-enqueue for a peer) is
  // harmless-but-wasted work when the blamed pass eventually finishes.
  void set_task_deadline(std::chrono::nanoseconds deadline) {
    task_deadline_ns_.store(deadline.count(), std::memory_order_relaxed);
  }

 private:
  // Per-shard scheduling state. `queued` dedups (at most one task per
  // shard in the queue); the generation pair is what lets stale tasks
  // drop: work is covered by the pass that READ enqueued_gen after the
  // state change the hint announced.
  struct Sched {
    std::atomic<std::uint64_t> enqueued_gen{0};
    std::atomic<std::uint64_t> done_gen{0};
    std::atomic<bool> queued{false};
    // Consecutive kBusy requeues since the last completed pass. At the
    // bound the task DROPS instead of cycling: a claim that never clears
    // (abandoned worker) must not keep a ghost task orbiting the queue.
    // Later hints/sweeps still probe the shard once each, so a merely
    // slow holder loses nothing — the first completed pass resets this.
    std::atomic<std::uint64_t> busy_requeues{0};
  };

  // Consecutive kBusy requeues tolerated per shard before dropping.
  static constexpr std::uint64_t kMaxBusyRequeues = 64;

  // One worker's heartbeat, read lock-free by its peers. `seq` is odd
  // exactly while a pass runs (shard/start_ns are published by the
  // release bump into odd); `fired_seq` dedups the watchdog — at most one
  // firing per odd seq value, claimed by CAS. Dedup needs atomicity only,
  // so the CAS stays relaxed.
  struct Beat {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> fired_seq{0};
    std::atomic<std::size_t> shard{0};
    std::atomic<std::int64_t> start_ns{0};
  };

  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void enqueue(std::size_t shard, TaskKind kind) {
    Sched& s = sched_[shard];
    const std::uint64_t gen =
        s.enqueued_gen.fetch_add(1, std::memory_order_acq_rel)
            VCAS_ORD("maint.hint.gen") + 1;
    if (!s.queued.exchange(true, std::memory_order_acq_rel)
             VCAS_ORD("maint.hint.gen")) {
      queue_.push(MaintTask{shard, gen, kind});
      depth_.fetch_add(1, std::memory_order_relaxed);
      wake_one();
    }
    // Already queued: the queued task's runner clears `queued` BEFORE it
    // reads enqueued_gen, so either it observes our bump (covered) or a
    // later hint re-enqueues. Nothing to do.
  }

  void wake_one() {
    if (sleepers_.load(std::memory_order_acquire) == 0) return;
    // Deliberately NO cv_mu_ here: taking it would let a worker preempted
    // inside its sleep/wake critical section block the hinting writer —
    // the stalled-thread-blocks-writers class the store's helping
    // protocol exists to avoid. The cost is the classic missed-wakeup
    // window (a worker between its empty-queue check and its wait misses
    // this notify), which is bounded by the wait's tick timeout and
    // already tolerated everywhere hints are: a hint's only contract is
    // "the sweep would have gotten there anyway, just later".
    cv_.notify_one();
  }

  void run_task(const MaintTask& task, Beat* self) {
    Sched& s = sched_[task.shard];
    s.queued.store(false, std::memory_order_release);
    const std::uint64_t gen = s.enqueued_gen.load(std::memory_order_acquire);
    if (task.gen <= s.done_gen.load(std::memory_order_acquire)) {
      obs::m::maint_tasks_dropped.add();
      return;
    }
    // Heartbeat: shard/start first, then the release bump into odd — a
    // peer that reads an odd seq (acquire) sees both. The deadline clock
    // starts HERE, not at dequeue, so queue latency never counts against
    // the pass.
    const std::int64_t t0_ns = now_ns();
    self->shard.store(task.shard, std::memory_order_relaxed);
    self->start_ns.store(t0_ns, std::memory_order_relaxed);
    self->seq.fetch_add(1, std::memory_order_release);
    const PassStatus status = pass_(task.shard);
    self->seq.fetch_add(1, std::memory_order_release);  // even again: idle
    obs::m::maint_tasks_run.add();
    // One histogram record replaces the old total/CAS-max pair: sum and
    // max fall out of the aggregation, percentiles come for free. The
    // clock reads now also feed the watchdog beat, so they are no longer
    // VCAS_STATS-gated.
    obs::m::maint_task_latency.record(
        static_cast<std::uint64_t>(now_ns() - t0_ns));
    switch (status) {
      case PassStatus::kBusy:
        // Another pass holds the shard and may not have seen task.gen;
        // requeue so the generation is eventually covered. A LIVE holder
        // finishes and resets busy_requeues, so cycling is transient; a
        // dead holder's shard hits kMaxBusyRequeues and the task drops
        // (see the bound's comment on Sched).
        if (s.busy_requeues.fetch_add(1, std::memory_order_relaxed) + 1 <
            kMaxBusyRequeues) {
          std::this_thread::yield();
          enqueue(task.shard, task.kind);
        } else {
          obs::m::maint_tasks_dropped.add();
        }
        return;
      case PassStatus::kMore:
        // Budget-bounded slice: schedule the continuation ourselves rather
        // than waiting for the next tick — incremental, not slower.
        enqueue(task.shard, TaskKind::kSweep);
        break;
      case PassStatus::kWrapped:
        break;
    }
    s.busy_requeues.store(0, std::memory_order_relaxed);
    // Record coverage: monotone max (two passes can finish out of order
    // only across different claims, but stay safe regardless).
    std::uint64_t done = s.done_gen.load(std::memory_order_relaxed);
    while (done < gen && !s.done_gen.compare_exchange_weak(
                             done, gen, std::memory_order_acq_rel)
                              VCAS_ORD("maint.hint.gen")) {
    }
  }

  void maybe_tick() {
    const std::int64_t tick = tick_ns_.load(std::memory_order_relaxed);
    const std::int64_t now =
        std::chrono::steady_clock::now().time_since_epoch().count();
    std::int64_t last = last_tick_ns_.load(std::memory_order_acquire);
    if (now - last < tick) return;
    if (last_tick_ns_.compare_exchange_strong(last, now,
                                              std::memory_order_acq_rel)
            VCAS_ORD("maint.tick.claim")) {
      sweep_all();
    }
  }

  // The watchdog's peer scan: fire once per stuck pass instance, requeue
  // its shard for a live worker. One relaxed load when the deadline is
  // unset, so it can run every loop iteration. A worker never checks
  // ITSELF (it is provably not stuck while executing this), which also
  // means a single-worker pool has no watchdog coverage — the stuck
  // worker cannot scan, and there is no peer; deploy >= 2 workers when a
  // deadline is set.
  void check_peers(const Beat* self) {
    const std::int64_t deadline =
        task_deadline_ns_.load(std::memory_order_relaxed);
    if (deadline <= 0) return;
    const std::int64_t now = now_ns();
    for (std::size_t i = 0; i < beat_count_; ++i) {
      Beat& b = beats_[i];
      if (&b == self) continue;
      const std::uint64_t seq = b.seq.load(std::memory_order_acquire);
      if ((seq & 1) == 0) continue;  // idle, or finished since we looked
      if (now - b.start_ns.load(std::memory_order_relaxed) < deadline) {
        continue;
      }
      std::uint64_t fired = b.fired_seq.load(std::memory_order_relaxed);
      if (fired == seq ||
          !b.fired_seq.compare_exchange_strong(fired, seq,
                                               std::memory_order_relaxed)) {
        continue;  // another peer already claimed this stuck instance
      }
      const std::size_t shard = b.shard.load(std::memory_order_relaxed);
      obs::m::maint_watchdog_fired.add();
      obs::trace_instant(obs::Ev::kWatchdogFire,
                         static_cast<std::uint32_t>(shard));
      // Re-enqueue through the normal generation-stamped path: dedup'd
      // against an already-queued task, dropped once covered, and bounded
      // by the kBusy cap if the stuck worker still holds the shard claim.
      obs::m::maint_watchdog_requeues.add();
      enqueue(shard, TaskKind::kSweep);
    }
  }

  void worker_loop(Beat* self) {
    for (;;) {
      // Checked every iteration, not just when idle: writers may keep
      // hinting (and continuations keep re-enqueueing) while stop() wants
      // the workers out, so "drain the queue first" would never return.
      if (stopping_.load(std::memory_order_acquire)) return;
      check_peers(self);
      MaintTask task;
      if (queue_.pop(task)) {
        depth_.fetch_sub(1, std::memory_order_relaxed);
        run_task(task, self);
        continue;
      }
      maybe_tick();
      if (queue_depth() > 0) continue;  // a tick just enqueued work
      // Idle: opportunistically advance the epoch and sweep our limbo —
      // a maintenance worker retires in bursts (whole trim suffixes,
      // coalesced runs, detached cells) and would otherwise sit on its
      // last sub-bags until the next burst.
      ebr::flush();
      util::MutexLock lk(cv_mu_);
      if (stop_) return;
      sleepers_.fetch_add(1, std::memory_order_release);
      const std::int64_t tick = tick_ns_.load(std::memory_order_relaxed);
      cv_.wait_for(cv_mu_,
                   std::chrono::nanoseconds(tick > 0 ? tick : 1000000));
      sleepers_.fetch_sub(1, std::memory_order_release);
      if (stop_) return;
    }
  }

  PassFn pass_;
  const std::size_t shards_;
  std::unique_ptr<Sched[]> sched_;
  detail::TaskQueue queue_;
  std::atomic<std::int64_t> depth_{0};

  std::atomic<std::int64_t> tick_ns_{0};
  std::atomic<std::int64_t> last_tick_ns_{0};

  mutable util::Mutex lifecycle_mu_;
  std::vector<std::thread> workers_ VCAS_GUARDED_BY(lifecycle_mu_);

  // Watchdog state. `beats_`/`beat_count_` are written only in start()
  // (under lifecycle_mu_) before the workers that read them are spawned —
  // thread creation happens-before the thread body, and stop() joins the
  // readers before any re-start can write again — so the workers' scans
  // are race-free WITHOUT holding the mutex; deliberately un-annotated.
  std::unique_ptr<Beat[]> beats_;
  std::size_t beat_count_ = 0;
  std::atomic<std::int64_t> task_deadline_ns_{0};  // 0 = watchdog off

  util::Mutex cv_mu_;
  util::CondVar cv_;
  bool stop_ VCAS_GUARDED_BY(cv_mu_) = false;  // condvar predicate
  std::atomic<bool> stopping_{false};  // lock-free mirror for the work loop
  std::atomic<std::int64_t> sleepers_{0};
};

}  // namespace vcas::maint
