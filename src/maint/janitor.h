// CellJanitor: the fused per-shard maintenance pass (ISSUE 5).
//
// One bounded walk over a shard's cell registry does four jobs per cell,
// in an order where each job widens the next one's reach:
//
//   1. abort-chain cleanup — splice the run of decided-ABORTED records
//      capping the version chain (VersionedCAS::try_unlink_head_run with
//      the record_is_aborted_cap predicate, batch.h). Aborted records are
//      invisible at every handle, so removing them is unobservable; doing
//      it FIRST can expose a plain tombstone at the head for job 4.
//   2. incremental trim — detach versions below Camera::min_active(),
//      batch-commit aware (identical predicate to the old trim_all loop,
//      now shard-sliced and resumable instead of stop-the-world-ish).
//   3. horizon-side coalescing — collapse equal-stamp runs ABOVE the
//      horizon that trim cannot legally touch but coalescing can
//      (VersionedCAS::maintain_coalesce; the write path's
//      try_coalesce_below proof extended to interior nodes). This is what
//      reclaims history pinned by a long-lived analytical view. Gated on
//      the store's coalescing knob so the seed-faithful ablation mode
//      stays faithful.
//   4. tombstone cell GC — structurally unlink absent-stable cells whose
//      plain tombstone's install stamp is older than min_active(): seal
//      the cell with a DETACHED sentinel record (one install_over, so a
//      racing writer loses the head CAS and observes the seal), erase the
//      (key -> cell) mapping from the backend (conditional erase hook),
//      unlink the cell from the registry, and EBR-retire cell + remaining
//      versions as one batch entry. See store.h ("cell GC protocol") for
//      the full race matrix.
//
// Budget & resumability: at most `max_cells` cells are PROCESSED per pass;
// the next unprocessed cell AND its registry predecessor park in the
// shard, so a continuation resumes in O(1) — task latency is O(budget),
// not O(shard size). Both parked pointers stay valid across passes
// because only janitor passes unlink/retire registry cells, passes on one
// shard are serialized by the shard's janitor_busy claim, pushes happen
// strictly at the registry head, and a pass never parks a cell it
// unlinked.
//
// Epochs: the whole pass runs under one ebr::Guard — every splice target
// an in-flight reader may still hold stays readable until the reader
// unpins, and everything the pass unlinks retires through EBR batch
// entries (one per trim suffix / coalesced run / detached cell).
#pragma once

#include <cstddef>
#include <cstdint>

#include "ebr/ebr.h"
#include "inject/failpoint.h"
#include "maint/maintenance.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/batch.h"
#include "util/annotations.h"
#include "vcas/camera.h"

namespace vcas::maint {

template <typename Store>
class CellJanitor {
  using Cell = typename Store::Cell;
  using Record = typename Store::Record;
  using Shard = typename Store::Shard;

 public:
  // One bounded pass; see the header comment. Skip-don't-wait: a shard
  // already claimed by another pass returns kBusy untouched. The pass
  // reports straight into the process-wide obs registry (obs/metrics.h);
  // per-slot relaxed bumps, so the reporting adds nothing measurable.
  static PassStatus pass(Store& store, std::size_t shard_idx,
                         std::size_t max_cells) {
    Shard& shard = *store.shards_[shard_idx];
    bool expected = false;
    if (!shard.janitor_busy.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)
            VCAS_ORD("maint.janitor.claim")) {
      return PassStatus::kBusy;
    }
    ebr::Guard g;
    VCAS_TRACE_SPAN(obs::Ev::kJanitorPass,
                    static_cast<std::uint32_t>(shard_idx));
    // O(live eras) since the era-pin rework — cheap enough to refresh per
    // task rather than amortize across a whole shard cycle, so the trim
    // horizon tracks pin releases closely.
    const Timestamp horizon = store.camera_.min_active();
    // Resume in O(1): the previous pass parked the next unprocessed cell
    // AND its registry predecessor (unlinks need the predecessor, and
    // re-walking from the head would make task latency O(shard size)
    // instead of O(budget)). Both pointers are still valid: only
    // claim-serialized janitor passes unlink/retire registry cells,
    // pushes happen at the head, and no pass parks a cell it unlinked.
    // The busy claim's release/acquire pairing publishes the stores.
    Cell* cell = shard.janitor_cursor.load(std::memory_order_relaxed);
    Cell* prev = shard.janitor_cursor_prev.load(std::memory_order_relaxed);
    if (cell == nullptr) {  // fresh cycle: start at the (current) head
      prev = nullptr;
      cell = shard.cells.load(std::memory_order_acquire);
    }
    std::size_t processed = 0;
    while (cell != nullptr && processed < max_cells) {
      // Death mid-walk (under the shard claim, deliberately — see the
      // placement note in inject/failpoint.h): this shard's maintenance
      // goes kBusy-forever, every operation and every other shard's
      // upkeep proceeds untouched.
      VCAS_FAILPOINT("maint.janitor.cell");
      Cell* next = cell->next_all.load(std::memory_order_acquire);
      ++processed;
      obs::m::maint_cells_visited.add();
      // Chain-length sampling: 1-in-64 visited cells pay a full
      // version_count() walk. Sampling (vs. every cell) keeps the pass's
      // cost profile unchanged even in the coalescing-off ablation, where
      // chains grow to thousands of nodes; the tick starts at 0 so the
      // FIRST cell of every worker samples and small stores still report.
      VCAS_OBS({
        thread_local std::uint32_t sample_tick = 0;
        if ((sample_tick++ & 63u) == 0) {
          obs::m::chain_length.record(cell->rec.version_count());
        }
      });
      const std::size_t aborted =
          cell->rec.try_unlink_head_run([](const Record& r) {
            return store::record_is_aborted_cap(r.ticket);
          });
      if (aborted != 0) obs::m::maint_aborted_unlinked.add(aborted);
      const std::size_t trimmed =
          cell->rec.trim_where(horizon, [&](const Record& r) {
            // The one shared pivot rule (Store::trim_pivot_visible):
            // foreground and background trim must never diverge.
            return Store::trim_pivot_visible(r, horizon);
          });
      if (trimmed != 0) obs::m::maint_versions_trimmed.add(trimmed);
      if (store.coalescing()) {
        const std::size_t coalesced =
            cell->rec.maintain_coalesce([](const Record& r) {
              // Keeper/droppable rule: plain, non-detached records are the
              // ones EVERY store predicate accepts (and none addresses by
              // node identity) — see maintain_coalesce's proof.
              return r.ticket == nullptr && !r.detached;
            });
        if (coalesced != 0) obs::m::maint_versions_coalesced.add(coalesced);
      }
      if (store.try_detach_cell(shard, prev, cell, horizon)) {
        obs::m::maint_cells_detached.add();
        cell = next;  // prev unchanged: `cell` left the registry
        continue;
      }
      prev = cell;
      cell = next;
    }
    shard.janitor_cursor.store(cell, std::memory_order_relaxed);
    shard.janitor_cursor_prev.store(cell == nullptr ? nullptr : prev,
                                    std::memory_order_relaxed);
    shard.janitor_busy.store(false, std::memory_order_release);
    return cell == nullptr ? PassStatus::kWrapped : PassStatus::kMore;
  }
};

}  // namespace vcas::maint
