// Store-wide read views.
//
// ShardedStore::snapshotAll() returns a StoreView: one SnapshotGuard-backed
// handle under which any number of reads — point gets, multi-gets, merged
// ranges, size — observe the SAME instant across every shard. The guard
// announces the handle, so version-list trimming (ShardedStore::trim_all /
// the background trimmer) never reclaims a version the view can still
// reach, and pins an epoch so structurally unlinked nodes stay readable.
//
// Views are cheap to create (one clock read + at most one CAS) but hold a
// trim pin for their lifetime: a long-lived view makes every version
// written after it un-trimmable. Scope views tightly.
//
// Nested views on one thread are safe: the camera's announcement slot is
// reference-counted, so an inner view never un-pins an outer one.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "vcas/camera.h"
#include "vcas/snapshot.h"

namespace vcas::store {

template <typename Store>
class StoreView {
 public:
  using key_type = typename Store::key_type;
  using mapped_type = typename Store::mapped_type;

  explicit StoreView(Store& store)
      : store_(store), snap_(store.camera()) {}

  StoreView(const StoreView&) = delete;
  StoreView& operator=(const StoreView&) = delete;

  // The linearization point every read of this view observes.
  Timestamp ts() const { return snap_.ts(); }

  std::optional<mapped_type> get(const key_type& key) {
    return store_.get_at(snap_.ts(), key);
  }

  bool contains(const key_type& key) { return get(key).has_value(); }

  std::vector<std::optional<mapped_type>> multiGet(
      const std::vector<key_type>& keys) {
    return store_.multiGet_at(snap_.ts(), keys);
  }

  std::vector<std::pair<key_type, mapped_type>> range(const key_type& lo,
                                                      const key_type& hi) {
    return store_.rangeQuery_at(snap_.ts(), lo, hi);
  }

  std::size_t size() { return store_.size_at(snap_.ts()); }

 private:
  Store& store_;
  SnapshotGuard snap_;  // EBR pin + announced handle, for the whole lifetime
};

}  // namespace vcas::store
