// Store-wide read views and transaction handles.
//
// ShardedStore::snapshotAll() returns a StoreView: one SnapshotGuard-backed
// handle under which any number of reads — point gets, multi-gets, merged
// ranges, size — observe the SAME instant across every shard. The guard
// era-pins the handle, so version-list trimming (ShardedStore::trim_all /
// the background trimmer) never reclaims a version the view can still
// reach, and pins an epoch so structurally unlinked nodes stay readable.
//
// ShardedStore::beginTransaction() returns a Transaction: the same
// snapshot-backed read surface plus a buffered write set, committed as one
// conditional batch (compare-and-batch) that ABORTS if any read key
// changed after the snapshot — see store.h for the protocol.
//
// Views and transactions are cheap to create (one clock read + at most one
// CAS) but hold a trim pin for their lifetime: a long-lived one makes
// every version written after it un-trimmable. Scope them tightly.
//
// Nested views on one thread are safe: each view holds its own era pin,
// so an inner view's release never un-pins an outer one.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "vcas/camera.h"
#include "vcas/snapshot.h"

namespace vcas::store {

template <typename Store>
class StoreView {
 public:
  using key_type = typename Store::key_type;
  using mapped_type = typename Store::mapped_type;

  explicit StoreView(Store& store)
      : store_(store), snap_(store.camera()) {}

  StoreView(const StoreView&) = delete;
  StoreView& operator=(const StoreView&) = delete;

  // The linearization point every read of this view observes.
  Timestamp ts() const { return snap_.ts(); }

  std::optional<mapped_type> get(const key_type& key) {
    return store_.get_at(snap_.ts(), key);
  }

  bool contains(const key_type& key) { return get(key).has_value(); }

  std::vector<std::optional<mapped_type>> multiGet(
      const std::vector<key_type>& keys) {
    return store_.multiGet_at(snap_.ts(), keys);
  }

  std::vector<std::pair<key_type, mapped_type>> range(const key_type& lo,
                                                      const key_type& hi) {
    return store_.rangeQuery_at(snap_.ts(), lo, hi);
  }

  std::size_t size() { return store_.size_at(snap_.ts()); }

 private:
  Store& store_;
  SnapshotGuard snap_;  // EBR pin + era-pinned handle, for the whole lifetime
};

// An optimistic read-modify-write transaction on a ShardedStore (created
// by Store::beginTransaction, retried by Store::transact).
//
//   auto txn = store.beginTransaction();
//   auto v = txn.get(k);              // snapshot read, witnessed
//   txn.put(k, f(v));                 // buffered
//   if (auto ts = txn.commit()) ...   // nullopt: conflict, retry
//
// Reads resolve at one snapshot handle (so a transaction's view of the
// store is itself atomic); every read key is witnessed and re-validated at
// commit, which installs the buffered writes as one conditional batch —
// COMMITTED all-or-nothing at the commit stamp, ABORTED (writes resolve to
// no-ops, forever) if any witnessed key changed after the snapshot.
// Aborts surface as nullopt from commit(); they leave no visible trace.
//
// A Transaction is single-threaded and single-shot: use it on the thread
// that created it, commit (or drop) it once. Dropping without commit
// writes nothing. Reads of keys the transaction already wrote return the
// buffered value (read-your-writes) and witness nothing — only reads that
// reach the store constrain the commit.
//
// Sizing: per-operation bookkeeping (read-your-writes lookup, witness
// dedup) is linear in the transaction's own size — transactions are meant
// to touch a handful of keys. For large unconditional write sets use
// applyBatch, which has no read set to validate.
template <typename Store>
class Transaction {
 public:
  using key_type = typename Store::key_type;
  using mapped_type = typename Store::mapped_type;

  // Moving finishes the source: a moved-from transaction has no snapshot
  // pin left, so letting it keep reading would walk version lists
  // unprotected from trimming.
  Transaction(Transaction&& o) noexcept
      : store_(o.store_),
        snap_(std::move(o.snap_)),
        handle_(o.handle_),
        writes_(std::move(o.writes_)),
        reads_(std::move(o.reads_)),
        finished_(std::exchange(o.finished_, true)) {}
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;
  Transaction& operator=(Transaction&&) = delete;

  // The snapshot handle every read of this transaction observes; on
  // commit, the transaction linearizes at a stamp whose read view of the
  // witnessed keys is provably identical. Remains valid after commit().
  Timestamp snapshot_ts() const { return handle_; }

  std::optional<mapped_type> get(const key_type& key) {
    assert(!finished_ && "read on a finished transaction");
    // Read-your-writes: the last buffered op on the key wins, and buffered
    // reads witness nothing.
    const auto& ops = writes_.ops();
    for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
      if (it->key == key) {
        if (it->is_put) return it->value;
        return std::nullopt;
      }
    }
    return store_->txn_read(key, handle_, reads_);
  }

  bool contains(const key_type& key) { return get(key).has_value(); }

  void put(key_type key, mapped_type value) {
    assert(!finished_ && "write on a finished transaction");
    writes_.put(std::move(key), std::move(value));
  }

  void remove(key_type key) {
    assert(!finished_ && "write on a finished transaction");
    writes_.remove(std::move(key));
  }

  std::size_t read_set_size() const { return reads_.size(); }
  std::size_t write_set_size() const { return writes_.size(); }

  // Validate-and-install. Returns the commit stamp, or nullopt when a
  // witnessed key changed after the snapshot (the transaction ABORTED and
  // left no visible trace — rebuild it from a fresh snapshot and retry,
  // or use Store::transact for the loop). Finishes the transaction and
  // releases its snapshot pin either way.
  std::optional<Timestamp> commit() {
    assert(!finished_ && "commit on a finished transaction");
    finished_ = true;
    const std::optional<Timestamp> result =
        store_->commit_transaction(handle_, writes_, reads_);
    snap_.reset();  // release the era-pinned handle + EBR pin
    return result;
  }

  bool finished() const { return finished_; }

 private:
  friend Store;

  explicit Transaction(Store& store)
      : store_(&store),
        snap_(std::make_unique<SnapshotGuard>(store.camera())),
        handle_(snap_->ts()) {}

  Store* store_;
  std::unique_ptr<SnapshotGuard> snap_;
  Timestamp handle_;
  typename Store::Batch writes_;
  std::vector<typename Store::TxnRead> reads_;
  bool finished_ = false;
};

}  // namespace vcas::store
