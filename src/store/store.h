// Sharded snapshot-consistent key-value store (the repo's first
// production-shaped composition of the paper's machinery).
//
// Layout: keys hash-partition across N shards; each shard is an independent
// vCAS structure (backend.h) mapping K -> Cell*, and every shard — plus
// every cell's value register — hangs off ONE shared Camera. That single
// clock is what makes cross-shard queries atomic: multiGet / rangeQuery /
// size / snapshotAll take one O(1) handle and read all shards at that
// instant, touching only the shards the query needs (a "partial snapshot":
// the handle is global, the traversal isn't).
//
// Values: a cell is created the first time its key is written and holds a
// VersionedCAS<Record> register. Puts and removes swap records on the live
// head, which (a) gives the Harris-list backend in-place updates it lacks
// natively, and (b) gives every key a timestamped value history that
// snapshot reads resolve with readSnapshot semantics. Removed keys keep a
// tombstone record until the maintenance subsystem's cell GC structurally
// unlinks the whole cell (see "Background maintenance" below).
//
// Atomic batches: applyBatch publishes a batch descriptor (batch.h) listing
// one planned op per (deduplicated) key in global (shard, key) order,
// installs one ticketed record per key, fixes the descriptor's commit
// stamp from the clock, and publishes a COMMITTED decision. Readers treat
// ticketed records as written at the commit stamp once committed, and as
// never written at all when the decision is ABORTED. Nobody installs over
// a record whose ticket is still undecided — doing so could order a write
// before a batch that commits later — but nobody *waits* on one either: a
// reader resolving an undecided record, a writer about to install over
// one, a conflicting batch, and the trimmer all help the batch to its
// decision from its descriptor (finish the remaining installs
// idempotently, stamp, validate, then CAS the decision). Per-key version
// order therefore matches batch commit order and the whole history stays
// linearizable with each committed batch at its commit stamp.
//
// Transactions (compare-and-batch): beginTransaction() opens an optimistic
// read-modify-write transaction — reads resolve against one snapshot
// handle h and record a per-key witness; writes buffer into a batch. At
// commit the writes go through an extended descriptor (TxnDescriptor)
// whose decide() phase validates, at the already-fixed commit stamp c,
// that no read key has a committed record with effective stamp in (h, c].
// Validation passes -> decision COMMITTED (the transaction linearizes at
// c, reads and writes together); validation fails -> decision ABORTED and
// every installed record resolves to "no-op" for all time. Helpers run
// the exact same install/stamp/validate/decide machinery mid-flight, so a
// stalled transaction owner blocks no one and strangers can decide a
// transaction ABORTED while its owner sleeps (txn_test.cc proves it).
// transact() wraps the abort-retry loop.
//
// Progress: every store operation is lock-free (as the underlying
// structures are). The former protocol's spin-waits — readers yielding
// through a batch's install+commit window, writers yielding until an
// in-flight batch on their key was rescheduled — are gone: a stalled batch
// writer's remaining work is finished by whoever bumps into it, the
// store-level analogue of the paper's initTS-before-any-traversal helping
// discipline. Help chains cannot cycle: (a) install-phase helping between
// conflicting batches ascends the global (shard, key) op order, because a
// batch's installed ops always form a prefix of its ordered op list;
// (b) validation-phase helping descends (commit stamp, descriptor
// address) lexicographically, and a stamped descriptor has already
// completed every install, so mixed chains are a bounded run of ascending
// install hops followed by a bounded run of descending validation hops.
// Point reads (get/contains) never help at all — an undecided batch simply
// has not happened yet from their point of view.
//
// Background maintenance (ISSUE 5): all version-history upkeep runs
// through a shard-parallel MaintenancePool (src/maint/) instead of the
// former dedicated trimmer thread. enable_maintenance(workers, tick)
// starts N workers draining a work queue of per-shard tasks; each task
// runs a CellJanitor pass (src/maint/janitor.h) fusing four jobs in one
// bounded, cursor-resumable registry walk: incremental trim below
// Camera::min_active() (batch-commit aware, like the old trim_all),
// horizon-side coalescing of equal-stamp runs ABOVE the horizon (history
// pinned by long-lived views), tombstone cell GC (below), and splicing of
// decided-ABORTED records capping version chains. The write path enqueues
// hints (tombstone creation, churn thresholds); a periodic tick sweeps
// every shard. enable_background_trim(interval) survives as a
// compatibility shim over a 1-worker pool. The synchronous trim_all()
// remains for deterministic tests. Announced readers (SnapshotGuard /
// StoreView) are never broken by any of it.
//
// Cell GC protocol: a cell whose head is a PLAIN tombstone install-stamped
// below min_active() is absent at every pinned (and every future)
// handle, so the janitor may remove it entirely: (1) SEAL — install_over a
// DETACHED sentinel record on the head; the install's identity CAS is the
// linearization point, and a racing writer that loses it re-reads the head
// and observes the seal. A sealed cell accepts no installs, ever: put()
// and BatchDescriptor::install_one treat a detached head as "this cell is
// being dismantled" — they help erase the stale (key -> cell) mapping
// (conditional backend erase) and re-resolve through live_cell, which
// inserts a FRESH cell rather than resurrecting the sealed one (a write
// into a sealed cell would be silently unreachable). (2) UNMAP — erase the
// key's mapping iff it still points at the sealed cell. (3) UNLINK — take
// the cell out of the per-shard registry (janitor-exclusive, serialized by
// the shard's janitor claim). (4) RETIRE — EBR-retire the cell and its
// remaining versions as one batch entry; readers that found the cell
// before the unmap are pinned for their whole query (SnapshotGuard holds
// the pin), so a get_at(old handle) resolving through the sealed cell
// walks sentinel -> tombstone and still answers "absent" from intact
// memory. DETACHED records are invisible at every handle (every
// resolve/validation/trim predicate skips them), so the seal itself is
// unobservable.
//
// Write-path memory (ISSUE 4): version nodes come from a recycling slab
// pool, and single-key writes coalesce — a put/remove whose install stamp
// equals the previous plain record's stamp unlinks that record instead of
// keeping it, so per-key chains and allocation grow with snapshots taken,
// not writes issued (set_coalescing toggles it; ticketed records are never
// coalesced — helpers address them by node identity).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ebr/ebr.h"
#include "inject/failpoint.h"
#include "maint/janitor.h"
#include "maint/maintenance.h"
#include "obs/metrics.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "store/backend.h"
#include "store/batch.h"
#include "store/view.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "vcas/camera.h"
#include "vcas/snapshot.h"
#include "vcas/versioned_cas.h"

namespace vcas::store {

// K: ordered (<, ==) and hashable. V: default-constructible (tombstone and
// batch-remove records hold a V{}) and copyable. Updates install by node
// identity, so V never needs to be equality-comparable.
template <typename K, typename V, typename Backend = ChromaticBackend,
          typename Hash = std::hash<K>>
class ShardedStore {
 public:
  using key_type = K;
  using mapped_type = V;
  using Batch = WriteBatch<K, V>;
  using View = StoreView<ShardedStore>;

  // One key's state at one instant. `ticket` is null for single-key writes
  // and for the absent seed record every cell starts with; ticketed records
  // defer their visibility to the ticket's commit stamp. `detached` marks
  // the sealing sentinel cell GC installs as a cell's final record: it is
  // invisible at every handle (all predicates skip it) and its presence at
  // the head tells writers the cell may never be installed into again —
  // see "Cell GC protocol" above.
  struct Record {
    V value{};
    bool present = false;
    std::shared_ptr<BatchTicket> ticket{};
    bool detached = false;
  };

 private:
  template <typename>
  friend class Transaction;
  friend vcas::maint::CellJanitor<ShardedStore>;

  struct Cell {
    Cell(const K& k, Camera* cam, bool pooled)
        : key(k), rec(Record{}, cam, pooled) {}
    const K key;               // for the GC's conditional map erase
    VersionedCAS<Record> rec;  // seeded absent: every visibility walk
                               // terminates on an un-ticketed record
    // Per-shard registry link. Pushes happen at the registry head
    // (live_cell); cell GC unlinks anywhere, serialized per shard by the
    // janitor claim, so interior links have exactly one writer at a time.
    std::atomic<Cell*> next_all{nullptr};
    // Writes since this cell's last coalesce attempt. Deliberately racy
    // (plain load+store, lost updates harmless): it only paces how often
    // the write path pays the coalesce lock — correctness never depends
    // on it.
    std::atomic<std::uint32_t> churn{0};
    // Same racy pacing for maintenance hints: every kHintChurn-th write on
    // a cell nudges the pool to look at this shard.
    std::atomic<std::uint32_t> hint_churn{0};
  };

  using VNode = typename VersionedCAS<Record>::VNode;

  using Map = typename Backend::template Map<K, Cell*>;
  static_assert(SnapshotMap<Map, K, Cell*>,
                "store backend must satisfy the SnapshotMap concept");

  // Full batch descriptor: the BatchTicket decision protocol plus the
  // published per-key op list. The original writer and every helper run the
  // same idempotent install machinery, so any thread can finish a stalled
  // batch (the tentpole of the cooperative-helping protocol). Blind batches
  // use this directly (decide() defaults to COMMITTED); transactions extend
  // it with a read set and a real validation (TxnDescriptor below).
  struct BatchDescriptor : BatchTicket {
    using Node = typename VersionedCAS<Record>::VNode;

    // One planned install. `installed` is the per-op claimed/installed
    // state machine: nullptr = pending, non-null = the exact version node
    // carrying this op (written once with the node a successful installer
    // created, or the node a helper observed already in place). `cell` is
    // atomic because cell GC may seal the planned cell mid-batch: the
    // helper that observes the DETACHED head re-resolves the key to a live
    // cell and moves the op over by CAS, so every helper converges on one
    // target (see install_one). The key is copied in — the caller's
    // WriteBatch may die while helpers still install.
    struct PlannedOp {
      K key;
      std::atomic<Cell*> cell;
      V value;
      bool is_put;
      std::atomic<Node*> installed{nullptr};

      PlannedOp(K k, Cell* c, V v, bool put)
          : key(std::move(k)), cell(c), value(std::move(v)), is_put(put) {}
      // Moves happen only while applyBatch builds the still-private list.
      PlannedOp(PlannedOp&& o) noexcept
          : key(std::move(o.key)),
            cell(o.cell.load(std::memory_order_relaxed)),
            value(std::move(o.value)),
            is_put(o.is_put),
            installed(o.installed.load(std::memory_order_relaxed)) {}
    };

    using OpList = std::vector<PlannedOp>;

    BatchDescriptor(Camera* cam, ShardedStore* store, OpList planned)
        : BatchTicket(cam),
          store_(store),
          ops_(new OpList(std::move(planned))) {}

    ~BatchDescriptor() override { delete ops_.load(std::memory_order_relaxed); }

    // (shard, key)-ascending; immutable once the first record is installed.
    // Nulled (and the list EBR-retired) when the commit stamp is decided:
    // surviving records keep the descriptor alive for its commit stamp —
    // potentially forever, a trimmed cell retains its newest record — and
    // retaining every batched value that long would be unbounded baggage.
    // Readers hold EBR pins, so a stale helper mid-iteration stays safe.
    OpList* ops() { return ops_.load(std::memory_order_acquire); }

    // In-order pass, so the installed set stays a prefix of the list — the
    // help-chain termination argument relies on it (see install_one).
    void install_all() override {
      OpList* list = ops();
      if (list == nullptr) return;  // committed and released already
      for (PlannedOp& op : *list) install_one(op);
    }

    void release_install_state() override {
      if (OpList* list = ops_.exchange(nullptr, std::memory_order_acq_rel)
              VCAS_ORD("store.descriptor.release")) {
        ebr::retire(list);
      }
    }

    // Idempotent install of one op: the writer and any number of helpers
    // agree on exactly one installed record per key. Returns once the op is
    // installed or the whole batch is decided. Lock-free: every retry
    // means another thread won a head CAS or decided a batch.
    void install_one(PlannedOp& op) {
      if (op.installed.load(std::memory_order_acquire) != nullptr) return;
      for (;;) {
        Cell* cell = op.cell.load(std::memory_order_acquire);
        Node* head = cell->rec.vReadNode();  // timestamp helped
        if (head->val.ticket.get() == this) {
          // Our record is in (installed by us or a helper) and still at
          // head. The release pairs with the deciding helper's acquire,
          // so the commit clock read dominates this node's install stamp.
          op.installed.store(head, std::memory_order_release);
          return;
        }
        // Not at head. An undecided batch's record stays at head until
        // the decision (nobody installs over an undecided record), so if
        // the batch is decided by now, this op was installed — and possibly
        // already overwritten — by someone else. Checked AFTER the head
        // read: the other order would race a decision landing in between.
        if (this->decided()) return;
        const Record& hv = head->val;
        if (hv.detached) {
          // The planned cell was sealed by cell GC after planning (its
          // plain tombstone aged past the horizon between make_planned and
          // this install). Installing over the sentinel would resurrect a
          // cell the map no longer (or soon won't) reach — a lost write.
          // Instead: help finish the unmap (conditional on identity, so a
          // fresh cell another helper already inserted is untouched),
          // re-resolve the key to a live cell, and move the op over by
          // CAS so racing helpers converge on one target.
          store_->shard_for(op.key).map.erase(op.key, cell);
          Cell* fresh = store_->live_cell(op.key);
          op.cell.compare_exchange_strong(cell, fresh,
                                          std::memory_order_acq_rel)
              VCAS_ORD("store.op-cell.migrate");
          continue;  // reload op.cell (ours or the winning helper's)
        }
        if (hv.ticket != nullptr && !hv.ticket->decided()) {
          // Blocked by another in-flight batch: finish it ourselves rather
          // than wait for its writer. Termination: installed ops form a
          // prefix of each batch's (shard, key)-ordered list, so the
          // blocker's first pending op is strictly ABOVE this cell in the
          // global order — install help chains ascend, never cycle, and
          // their depth is bounded by the number of in-flight batches.
          hv.ticket->help_decide();
          continue;
        }
        // Decided head: install over it by node identity. Node addresses
        // cannot recur while we are EBR-pinned, so success means the head
        // never moved since we read it — in particular our record was
        // never installed meanwhile — which is what makes this exactly
        // once (a value-compare vCAS could double-install after an ABA).
        // The record (a V copy + a descriptor refcount bump) is built only
        // here, so pure-helper passes over already-installed ops pay none
        // of that.
        const Record mine{op.is_put ? op.value : V{}, op.is_put,
                          this->shared_from_this()};
        if (Node* mine_node = cell->rec.install_over(head, mine)) {
          op.installed.store(mine_node, std::memory_order_release);
          return;
        }
        // Lost the head race; retry (a helper may have installed our op).
      }
    }

   protected:
    ShardedStore* store_;

   private:
    std::atomic<OpList*> ops_;
  };

  // Conditional-batch (transaction) descriptor: BatchDescriptor's install
  // machinery plus the transaction's read set and snapshot handle, with a
  // real validation in decide(). Everything a helper needs to decide the
  // transaction mid-flight is published here before the first record is
  // installed.
  //
  // Validation soundness. The stamp phase uses takeSnapshot(), whose
  // postcondition is clock > c before the stamp is visible to anyone; so
  // every record INSTALLED after validation begins is install-stamped
  // above c (initTS reads the clock fresh, after the append, and the
  // seq_cst total order chains that read after the clock bump). A
  // validator walks each read key's version list from the head (or from
  // just below the transaction's own installed record, for keys it also
  // writes), skipping records that can never be visible at or below c —
  // aborted ones, and undecided ones stamped above c — and stops at the
  // first committed (or unticketed) record. Undecided UNSTAMPED tickets
  // can neither be skipped (their owner may have read the clock before
  // our stamp phase and still publish a commit stamp <= c — the clock
  // read and the stamp CAS are not one atomic step) nor helped (their
  // install phase may be blocked on one of OUR records, and helping would
  // re-enter this validation unchanged): they are an immediate ABORT
  // vote, which is always safe. Once the walk stops: if the stop
  // record's effective stamp (commit stamp for ticketed records, install
  // stamp otherwise) is <= h, then NO committed record with effective
  // stamp in (h, c] exists on that key, now or ever — records above the
  // stop point were decided aborted or bound above c, later installs
  // stamp above c, and records below the stop point have effective
  // stamps <= the stop point's (install-over only happens over decided
  // records, so a record's install stamp bounds every effective stamp
  // below it). A validator that instead finds a committed stamp in
  // (h, c] — or any committed stamp > h it cannot rule out — votes ABORT,
  // which is always safe. Different helpers may therefore vote
  // differently; the decision CAS arbitrates, and both outcomes preserve
  // linearizability: COMMITTED only wins if some validator proved every
  // read key unchanged through c, and ABORTED only costs a retry.
  //
  // Helping order. Validators only help STAMPED descriptors: helping a
  // ticket stamped at c' < c descends the commit stamps, and on the
  // equal-stamp tie only the lower-addressed descriptor is helped (the
  // other side votes ABORT) — so mutual helping cannot cycle. A stamped
  // descriptor has completed every install, so these recursive helps
  // never re-enter the install phase's blocking paths; unstamped
  // descriptors (whose installs may block on us) are abort votes, never
  // help targets.
  struct TxnDescriptor final : BatchDescriptor {
    using Node = typename VersionedCAS<Record>::VNode;
    using PlannedOp = typename BatchDescriptor::PlannedOp;

    // One read-key witness. `op` non-null means the key is also in the
    // write set: validate the history strictly below the transaction's own
    // installed record. `cell` null means the key had no cell when read
    // (witnessed absent on a key nobody had ever written).
    struct ReadWitness {
      K key;
      Cell* cell;
      const PlannedOp* op;
      bool witnessed_present;
    };
    using ReadSet = std::vector<ReadWitness>;

    TxnDescriptor(Camera* cam, ShardedStore* store, Timestamp handle,
                  typename BatchDescriptor::OpList planned)
        : BatchDescriptor(cam, store, std::move(planned)),
          handle_(handle),
          reads_(new ReadSet) {}

    ~TxnDescriptor() override { delete reads_.load(std::memory_order_relaxed); }

    // Filled by the owner BEFORE the first install publishes the
    // descriptor; read-only afterwards until release retires it.
    ReadSet* reads() { return reads_.load(std::memory_order_acquire); }

    Timestamp handle() const { return handle_; }

    // takeSnapshot instead of current(): the clock is strictly above the
    // commit stamp before any validator can see it (see soundness note).
    Timestamp read_commit_clock() override {
      return this->camera_->takeSnapshot();
    }

    Decision decide(Timestamp c) override {
      // Death here = a stamped transaction whose validator vanished: the
      // descriptor stays a legal help target and any other validator's
      // verdict decides it.
      VCAS_FAILPOINT("store.txn.validate");
      ReadSet* reads = reads_.load(std::memory_order_acquire);
      if (reads == nullptr) return Decision::kAborted;  // decided elsewhere
      for (const ReadWitness& w : *reads) {
        if (!validate_one(w, c)) return Decision::kAborted;
      }
      return Decision::kCommitted;
    }

    void release_install_state() override {
      BatchDescriptor::release_install_state();
      if (ReadSet* reads = reads_.exchange(nullptr, std::memory_order_acq_rel)
              VCAS_ORD("store.descriptor.release")) {
        ebr::retire(reads);
      }
    }

   private:
    // True iff this read key is provably unchanged between the snapshot
    // handle and the commit stamp c (or equal-by-absence at both ends).
    bool validate_one(const ReadWitness& w, Timestamp c) {
      // Telemetry: version-chain hops this witness's walk takes (recorded
      // on every exit path). Validation cost is O(walk), so the histogram
      // is the live view of what conflict windows cost.
      struct WalkSample {
        std::uint64_t hops = 0;
        ~WalkSample() { obs::m::txn_validate_walk.record(hops); }
      } walk;
      obs::TraceSpan span(obs::Ev::kTxnValidate);
      Node* node;
      if (w.op != nullptr) {
        Node* mine = w.op->installed.load(std::memory_order_acquire);
        if (mine == nullptr) return false;  // decision landed; vote discarded
        node = mine->nextv.load(std::memory_order_acquire);
        // Our undecided record cannot be installed over or serve as a trim
        // pivot, so pre-decision its nextv is intact; a null here means the
        // decision landed and trimming moved on — the vote is discarded.
        if (node == nullptr) return false;
      } else {
        // Keys first written after the snapshot get their cell created
        // then; re-finding it here (instead of witnessing null forever)
        // lets the walk below judge that later write.
        Cell* cell = w.cell != nullptr ? w.cell : this->store_->find_cell(w.key);
        if (cell == nullptr) return true;  // never written by anyone
        node = cell->rec.vReadNode();
        // Cell GC may have sealed the witnessed cell after the read. The
        // sealed cell's own history proves nothing about (h, c] — it was
        // absent-stable below the horizon (<= h) when sealed, and nothing
        // installs into it afterwards — but the key's LIVE history
        // continues in a fresh replacement cell, where a put can commit
        // in (h, c] and must abort us. Chase the current mapping: a
        // replacement cell existing at this find_cell is walked like any
        // witness; one created after it is stamped above c (stamp-phase
        // postcondition) and cannot conflict; no mapping at all means the
        // key is absent now AND was absent at h (a sealed head implies an
        // aged tombstone at every pinned handle), which the
        // absent==absent rule accepts. The chase terminates: a fresh cell
        // cannot itself be sealed while we stay pinned — all its
        // records are stamped above our handle, which bounds min_active.
        while (node->val.detached) {
          Cell* fresh = this->store_->find_cell(w.key);
          if (fresh == nullptr || fresh == cell) return !w.witnessed_present;
          cell = fresh;
          node = cell->rec.vReadNode();
        }
      }
      // Walk down to the newest record that did (or still can) take effect
      // at a stamp <= c.
      for (;;) {
        if (node->val.detached) {
          // Cell-GC sentinel: invisible at every handle, like an aborted
          // record. It can only sit above an aged plain tombstone (the
          // seal precondition), so the walk terminates just below.
          node = older(node);
          ++walk.hops;
          continue;
        }
        BatchTicket* t = node->val.ticket.get();
        if (t == nullptr) break;  // plain record: effective at install stamp
        if (!t->decided()) {
          const Timestamp ct = t->commit_stamp();
          if (ct != kTBD && ct > c) {
            // Stamped above c: if it ever commits it serializes after this
            // transaction. Not a conflict at <= c.
            node = older(node);
            ++walk.hops;
            continue;
          }
          if (ct == kTBD) {
            // Unstamped: it cannot be SKIPPED (its owner may have read the
            // clock before our stamp phase and still publish a commit
            // stamp <= c — the clock read and the stamp CAS are not one
            // atomic step), and it cannot be HELPED (its install phase may
            // itself be blocked on one of OUR undecided records, so
            // helping would re-enter this decide() with nothing changed —
            // unbounded mutual recursion). Vote ABORT, which is always
            // safe; the blocker's unstamped window is one install phase.
            return false;
          }
          // Stamped at or below c: its decision determines visibility at
          // <= c, so help it to one and re-examine. A stamped descriptor
          // has completed every install, so this never re-enters the
          // install phase's blocking paths, and help descends the
          // (commit stamp, descriptor address) order — acyclic — except
          // on the equal-stamp address tie we must not take, where we
          // vote ABORT instead (safe; the symmetric peer aborts or helps
          // us).
          if (ct == c && !std::less<const BatchTicket*>{}(
                             t, static_cast<const BatchTicket*>(this))) {
            return false;
          }
          t->help_decide();
          continue;  // re-examine the same record, now decided
        }
        if (t->committed()) break;
        node = older(node);  // aborted: logically never happened
        ++walk.hops;
      }
      const Record& r = node->val;
      const Timestamp eff = r.ticket != nullptr
                                ? r.ticket->commit_stamp()
                                : node->ts.load(std::memory_order_acquire);
      if (eff <= handle_) return true;  // unchanged since the snapshot
      // Absent when read and absent at the commit stamp is equality too:
      // tombstones (and fresh cells' absent seeds) stamped in (h, c] do
      // not change what the transaction observed. Cuts the false aborts a
      // head-stamp-only rule would charge to absent-stable keys.
      return !w.witnessed_present && !r.present && eff <= c;
    }

    static Node* older(Node* node) {
      Node* next = node->nextv.load(std::memory_order_acquire);
      assert(next != nullptr &&
             "transaction validation walked past the initial version");
      return next;
    }

    const Timestamp handle_;
    std::atomic<ReadSet*> reads_;
  };

  struct Shard {
    explicit Shard(Camera* cam) : map(cam) {}
    Map map;
    std::atomic<Cell*> cells{nullptr};  // registry: destruction + maintenance
    // Maintenance claim + resumable sweep position (maint/janitor.h). The
    // claim's release/acquire pairing is what publishes the cursor pair
    // from one pass to the next, and its exclusivity is what makes
    // registry unlinks single-writer per shard. The cursor's registry
    // PREDECESSOR is parked alongside it so a continuation resumes in
    // O(1) instead of re-walking from the head (unlinks need the
    // predecessor); both stay valid across passes because only
    // claim-serialized janitor passes unlink or retire registry cells,
    // pushes happen strictly at the head, and a pass never parks a cell
    // it unlinked.
    std::atomic<bool> janitor_busy{false};
    std::atomic<Cell*> janitor_cursor{nullptr};
    std::atomic<Cell*> janitor_cursor_prev{nullptr};
  };

 public:
  explicit ShardedStore(std::size_t num_shards = 8) {
    assert(num_shards >= 1);
    shards_.reserve(num_shards);
    for (std::size_t i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(&camera_));
    }
  }

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  // Teardown ordering (audited against the create/destroy stress in
  // store_teardown_test.cc; callers must have joined their own readers and
  // writers first): (1) stop the maintenance pool — drain-and-join,
  // exactly once (disable_maintenance and the pool's own stop() are both
  // idempotent) — BEFORE touching any cell: a worker may be mid-pass
  // holding cell and version pointers, and its limbo bag is orphaned to
  // the EBR global list at thread exit; (2) delete cells through the
  // per-shard registry — versions maintenance detached are no longer
  // reachable from any vhead_ (every splice unlinks before it retires),
  // cells the GC detached are no longer in the registry (unlinked before
  // retiring), so EBR frees those exactly once — possibly after the store
  // is gone, which is safe because a Cell's destructor touches no store
  // state — and this walk frees the still-linked cells exactly once;
  // (3) members then destruct in reverse declaration order: maint_pool_
  // (already stopped; must precede the shards its pass lambda references)
  // then shards_ (whose map nodes hold now-dangling Cell* VALUES but never
  // dereference them) before camera_ (which cells and maps reference, so
  // it must die last). Batch descriptors may outlive the store inside EBR
  // limbo via their records' shared_ptr, but a decided descriptor never
  // dereferences its Cell*s.
  ~ShardedStore() {
    disable_maintenance();
    for (auto& shard : shards_) {
      Cell* cell = shard->cells.load(std::memory_order_acquire);
      while (cell != nullptr) {
        Cell* next = cell->next_all.load(std::memory_order_relaxed);
        delete cell;
        cell = next;
      }
    }
  }

  Camera& camera() { return camera_; }
  std::size_t shard_count() const { return shards_.size(); }
  static constexpr const char* backend_name() { return Backend::kName; }

  // --- single-key operations (live state) ----------------------------------

  // Upsert. Returns true when the key was previously absent. Installs by
  // node identity over a decided head (an aborted record at head is a
  // legitimate install target — it never happened, so the return value is
  // judged against the logical record at or below it). A DETACHED head
  // means cell GC sealed the cell between our lookup and the install: help
  // finish the unmap and re-resolve — never install into a sealed cell
  // (the write would be unreachable; maintenance_test.cc races this).
  bool put(const K& key, const V& value) {
    ebr::Guard g;
    const std::size_t shard = shard_index(key);
    const Record next{value, true, nullptr};
    for (;;) {
      Cell* cell = live_cell(key);
      for (;;) {
        VNode* head = help_head_decided(cell);
        if (head->val.detached) {
          shards_[shard]->map.erase(key, cell);
          break;  // outer loop: find-or-create a live cell
        }
        const bool was_present = logical_record(head).present;
        if (VNode* mine = cell->rec.install_over(head, next)) {
          after_write(shard, cell, mine, /*tombstone=*/false);
          return !was_present;
        }
      }
    }
  }

  // Returns true when the key was present (and is now tombstoned). A
  // sealed cell reads as absent — no help needed, the key is gone either
  // way (a racing put targets a fresh cell, which this remove does not
  // linearize after).
  bool remove(const K& key) {
    ebr::Guard g;
    Cell* cell = find_cell(key);
    if (cell == nullptr) return false;
    for (;;) {
      VNode* head = help_head_decided(cell);
      if (head->val.detached) return false;
      if (!logical_record(head).present) return false;
      if (VNode* mine = cell->rec.install_over(head, Record{})) {
        after_write(shard_index(key), cell, mine, /*tombstone=*/true);
        return true;
      }
    }
  }

  std::optional<V> get(const K& key) {
    ebr::Guard g;
    Cell* cell = find_cell(key);
    if (cell == nullptr) return std::nullopt;
    const Record& r = resolve_current(cell);  // borrow under the EBR pin
    if (!r.present) return std::nullopt;
    return r.value;
  }

  bool contains(const K& key) { return get(key).has_value(); }

  // --- optimistic read-modify-write transactions ----------------------------

  using Txn = Transaction<ShardedStore>;

  // Open a transaction: reads resolve against one snapshot handle and are
  // witnessed; writes buffer until commit() validates-and-installs them as
  // one conditional batch (all-or-nothing, ABORTED if any read key changed
  // since the snapshot). Single-threaded use; scope tightly — the
  // transaction era-pins its snapshot, holding back version GC, until commit.
  Txn beginTransaction() { return Txn(*this); }

  // Run `fn(txn)` under beginTransaction/commit with abort-retry until a
  // commit sticks; returns the commit stamp. fn must be safe to re-run
  // (it sees a fresh snapshot each attempt).
  template <typename Fn>
  Timestamp transact(Fn&& fn) {
    for (;;) {
      Txn txn = beginTransaction();
      fn(txn);
      if (std::optional<Timestamp> ts = txn.commit()) return *ts;
    }
  }

  // --- atomic multi-key updates --------------------------------------------

  // Apply every op in the batch so that any snapshot query observes either
  // all of them or none. Within the batch, the last op on a key wins.
  // Returns the batch's commit stamp (its linearization point). A blind
  // batch always commits (its decide() is trivially COMMITTED).
  Timestamp applyBatch(const Batch& batch) {
    ebr::Guard g;
    if (batch.ops().empty()) return camera_.current();
    auto desc = std::make_shared<BatchDescriptor>(&camera_, this,
                                                  make_planned(batch));
    run_descriptor(*desc);
    return desc->commit_stamp();
  }

  // --- cross-shard atomic queries ------------------------------------------

  // Values for each key (nullopt if absent), all at one instant. Only the
  // shards owning queried keys are traversed.
  std::vector<std::optional<V>> multiGet(const std::vector<K>& keys) {
    SnapshotGuard snap(camera_);
    return multiGet_at(snap.ts(), keys);
  }

  // All (key, value) pairs with key in [lo, hi] across every shard, in
  // ascending key order (merge of the per-shard snapshot ranges), at one
  // instant.
  std::vector<std::pair<K, V>> rangeQuery(const K& lo, const K& hi) {
    SnapshotGuard snap(camera_);
    return rangeQuery_at(snap.ts(), lo, hi);
  }

  // Number of present keys across every shard at one instant.
  std::size_t size() {
    SnapshotGuard snap(camera_);
    return size_at(snap.ts());
  }

  // A reusable read view: many reads, one instant. See view.h.
  View snapshotAll() { return View(*this); }

  // Handle-explicit variants (caller holds a SnapshotGuard on this store's
  // camera — e.g. through a StoreView, or one guard spanning several
  // stores that share a camera).

  std::optional<V> get_at(Timestamp ts, const K& key) {
    Shard& shard = shard_for(key);
    std::optional<Cell*> cell = shard.map.find_at(ts, key);
    if (!cell.has_value()) return std::nullopt;
    const Record& r = resolve_at(*cell, ts);
    if (!r.present) return std::nullopt;
    return r.value;
  }

  std::vector<std::optional<V>> multiGet_at(Timestamp ts,
                                            const std::vector<K>& keys) {
    std::vector<std::optional<V>> out(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      out[i] = get_at(ts, keys[i]);
    }
    return out;
  }

  std::vector<std::pair<K, V>> rangeQuery_at(Timestamp ts, const K& lo,
                                             const K& hi) {
    // Per-shard runs arrive sorted (the backends are ordered maps); shards
    // partition the key space, so a heap-based k-way merge yields the
    // global order with no duplicate keys.
    std::vector<std::vector<std::pair<K, V>>> runs;
    runs.reserve(shards_.size());
    for (auto& shard : shards_) {
      auto entries = shard->map.range_at(ts, lo, hi);
      std::vector<std::pair<K, V>> run;
      run.reserve(entries.size());
      for (auto& [key, cell] : entries) {
        const Record& r = resolve_at(cell, ts);
        if (r.present) run.emplace_back(key, r.value);
      }
      if (!run.empty()) runs.push_back(std::move(run));
    }
    return merge_runs(std::move(runs));
  }

  std::size_t size_at(Timestamp ts) {
    std::size_t n = 0;
    for (auto& shard : shards_) {
      shard->map.for_each_at(ts, [&](const K&, Cell* const& cell) {
        if (resolve_at(cell, ts).present) ++n;
      });
    }
    return n;
  }

  // --- write-path coalescing (ISSUE 4) -------------------------------------

  // Clock-gated version coalescing, ON by default: a single-key write that
  // lands while the camera clock has not moved since the previous plain
  // record replaces it instead of growing the version chain, so per-key
  // version counts (and allocation, via the recycling pool) track SNAPSHOT
  // activity, not write volume. No snapshot can tell the difference — see
  // VersionedCAS::try_coalesce_below for the equal-stamp argument and
  // record_keeps_node_identity (batch.h) for why ticketed records are
  // exempt. The toggle exists for benches (ablation) and history-shape
  // tests; flipping it only affects future writes.
  void set_coalescing(bool on) {
    coalesce_.store(on, std::memory_order_relaxed);
  }
  bool coalescing() const {
    return coalesce_.load(std::memory_order_relaxed);
  }

  // How many writes a cell absorbs between coalesce attempts. The default
  // amortizes the per-attempt cost (try-lock + run splice + one retire)
  // over a batch of writes — the run-based unlink reclaims the whole
  // accumulated backlog in one go, so chains stay bounded by roughly this
  // value per stamp. 1 = coalesce eagerly on every write (tests that pin
  // exact history shapes use this).
  void set_coalesce_every(std::uint32_t n) {
    coalesce_every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }

  // Whether cells created from now on draw version nodes from the
  // recycling slab pool (default) or the heap. Per-cell and fixed at cell
  // creation, so flipping mid-run is safe (each cell reclaims through its
  // own origin). Exists for the write-path ablation in bench_write_churn;
  // production leaves it on.
  void set_node_pooling(bool pooled) {
    node_pooling_.store(pooled, std::memory_order_relaxed);
  }

  // --- background maintenance (trim + coalesce + cell GC + abort GC) -------

  // Synchronous full trim: detach versions below the camera's min_active()
  // horizon in every cell of every shard. Batch-commit aware: a ticketed
  // record only qualifies as the trim pivot once its commit stamp is
  // decided and below the horizon; a DETACHED sentinel never pivots (the
  // tombstone below it must stay readable at old handles). Safe
  // concurrently with pinned readers and with the maintenance pool
  // (per-cell try-locks serialize); returns versions detached. Kept for
  // deterministic tests and quiesce points — production reclamation runs
  // through the pool.
  std::size_t trim_all() {
    ebr::Guard g;
    VCAS_TRACE_SPAN(obs::Ev::kTrimAll);
    const Timestamp horizon = camera_.min_active();
    std::size_t detached = 0;
    for (auto& shard : shards_) {
      for (Cell* cell = shard->cells.load(std::memory_order_acquire);
           cell != nullptr;
           cell = cell->next_all.load(std::memory_order_acquire)) {
        detached += cell->rec.trim_where(horizon, [&](const Record& r) {
          return trim_pivot_visible(r, horizon);
        });
      }
    }
    return detached;
  }

  // Start the maintenance pool: `workers` threads drain a queue of
  // per-shard janitor tasks (see maint/maintenance.h for scheduling and
  // maint/janitor.h for the fused pass); every `tick` a full sweep is
  // enqueued, and the write path adds targeted hints in between.
  // Idempotent while running; restartable after disable_maintenance().
  void enable_maintenance(std::size_t workers,
                          std::chrono::milliseconds tick) {
    util::MutexLock lk(maint_mu_);
    ensure_maint_pool();
    maint_pool_->start(workers, tick);
    maint_hint_target_.store(maint_pool_.get(), std::memory_order_release);
  }

  // Drain and join the pool's workers, exactly once per enable (idempotent
  // and safe to race with the destructor's call). The pool object itself
  // persists until store destruction so a writer mid-hint can never touch
  // a freed pool — a hint that slips past the disable lands in the queue
  // and runs only if the pool is re-enabled. maint_mu_ is held ACROSS the
  // stop: releasing it first would let a concurrent enable_maintenance
  // start fresh workers that this stop() then joins while the hint target
  // stays set — maintenance silently dead behind a successful enable.
  // Workers never take maint_mu_ (their pass lambda only reads store
  // state and bumps obs registry slots), so holding it through the join
  // cannot deadlock.
  void disable_maintenance() {
    util::MutexLock lk(maint_mu_);
    maint_hint_target_.store(nullptr, std::memory_order_release);
    if (maint_pool_) maint_pool_->stop();
  }

  // Watchdog deadline for one janitor pass (see MaintenancePool's setter
  // for calibration guidance); zero disables. Creates the pool if needed
  // so the knob can be set before enable_maintenance and survive
  // disable/enable cycles.
  void set_maintenance_task_deadline(std::chrono::nanoseconds deadline) {
    util::MutexLock lk(maint_mu_);
    ensure_maint_pool();
    maint_pool_->set_task_deadline(deadline);
  }

  // Compatibility shims (pre-ISSUE 5 API): background trimming is now a
  // 1-worker maintenance pool whose tick is the old trim interval.
  // Existing call sites compile and behave the same, plus they get the
  // pool's extra jobs (coalescing, cell GC, abort cleanup) for free.
  void enable_background_trim(std::chrono::milliseconds interval) {
    enable_maintenance(1, interval);
  }

  void disable_background_trim() { disable_maintenance(); }

  // Synchronous janitor pass over one shard (at most cells-per-tick cells;
  // returns true when the cursor wrapped past the end). Deterministic
  // maintenance for tests — no pool required; safe alongside one (the
  // per-shard claim serializes, busy retries).
  bool maintain_shard(std::size_t shard) {
    for (;;) {
      switch (maint::CellJanitor<ShardedStore>::pass(
          *this, shard,
          cells_per_tick_.load(std::memory_order_relaxed))) {
        case maint::PassStatus::kWrapped:
          return true;
        case maint::PassStatus::kMore:
          return false;
        case maint::PassStatus::kBusy:
          std::this_thread::yield();  // pool worker holds the shard; wait out
      }
    }
  }

  // Run every shard to a wrapped cursor, twice — the second round
  // guarantees every cell got at least one full pass regardless of where
  // the cursors started. Synchronous; tests' quiesce-and-check helper.
  void maintain_all() {
    for (int round = 0; round < 2; ++round) {
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        while (!maintain_shard(s)) {
        }
      }
    }
  }

  // Cells a janitor pass may PROCESS per task (the incremental-trim
  // budget). Small values bound task latency on huge shards; tests use
  // them to pin the resumable-cursor behavior.
  void set_cells_per_tick(std::size_t n) {
    cells_per_tick_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }

  // Maintenance telemetry, read from the process-wide obs registry
  // (aggregate-on-read over the per-thread slots — a mid-run read is a
  // coherent lower bound, not one worker's torn hot counter), plus the
  // live queue depth when the pool exists.
  maint::Stats maintenance_stats() const {
    maint::Stats s = maint::stats_from_registry();
    util::MutexLock lk(maint_mu_);
    if (maint_pool_) s.queue_depth = maint_pool_->queue_depth();
    return s;
  }

  // Full observability snapshot (ISSUE 6): every registry meter —
  // snapshot lifetime, chain shape, helping/decide traffic, EBR, the
  // maintenance subsystem, trace accounting — plus this store's live
  // state (clock, horizon lag, live-pin occupancy, queue depth).
  // One call, then .to_text() / .to_json() for the dump.
  obs::StatsSnapshot stats() const {
    obs::StatsSnapshot s = obs::collect();
    // Horizon before clock: min_active() is bounded by its own (earlier)
    // clock load and the clock is monotone, so the lag stays >= 0.
    const Timestamp horizon = camera_.min_active();
    const Timestamp clock = camera_.current();
    s.clock = static_cast<std::uint64_t>(clock);
    s.min_active = static_cast<std::uint64_t>(horizon);
    s.min_active_lag_now = static_cast<std::uint64_t>(clock - horizon);
    s.live_pins = camera_.live_pins();
    {
      util::MutexLock lk(maint_mu_);
      if (maint_pool_) s.maint_queue_depth = maint_pool_->queue_depth();
    }
    return s;
  }

  // --- introspection (tests, benches) --------------------------------------

  // Total version-list length across every cell. O(cells + versions).
  // Pinned: cell GC may retire registry cells mid-walk.
  std::size_t total_versions() const {
    ebr::Guard g;
    std::size_t n = 0;
    for (const auto& shard : shards_) {
      for (Cell* cell = shard->cells.load(std::memory_order_acquire);
           cell != nullptr;
           cell = cell->next_all.load(std::memory_order_acquire)) {
        n += cell->rec.version_count();
      }
    }
    return n;
  }

  // Live cells across every shard registry (sealed-but-unreclaimed cells
  // included until their unlink lands). The cell-GC acceptance metric:
  // bounded for a bounded live-key set under delete churn.
  std::size_t total_cells() const {
    ebr::Guard g;
    std::size_t n = 0;
    for (const auto& shard : shards_) {
      for (Cell* cell = shard->cells.load(std::memory_order_acquire);
           cell != nullptr;
           cell = cell->next_all.load(std::memory_order_acquire)) {
        ++n;
      }
    }
    return n;
  }

  // Mean version-list length over at most `max_cells` cells (spread across
  // shards). Bounded introspection for benches: total_versions() walks
  // EVERY version, which against an un-reclaimed write-heavy history means
  // millions of cold nodes. O(max_cells x chain length).
  double sampled_versions_per_cell(std::size_t max_cells) const {
    ebr::Guard g;
    std::size_t cells = 0;
    std::size_t versions = 0;
    const std::size_t per_shard =
        max_cells / shards_.size() + 1;
    for (const auto& shard : shards_) {
      std::size_t taken = 0;
      for (Cell* cell = shard->cells.load(std::memory_order_acquire);
           cell != nullptr && taken < per_shard && cells < max_cells;
           cell = cell->next_all.load(std::memory_order_acquire),
                ++taken, ++cells) {
        versions += cell->rec.version_count();
      }
    }
    return cells == 0 ? 0.0
                      : static_cast<double>(versions) /
                            static_cast<double>(cells);
  }

  std::size_t shard_index(const K& key) const {
    // Finalizer mix (splitmix64): std::hash is identity for integers, which
    // would otherwise alias residue classes with user key patterns.
    std::uint64_t h = static_cast<std::uint64_t>(Hash{}(key));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h % shards_.size());
  }

 private:
  Shard& shard_for(const K& key) { return *shards_[shard_index(key)]; }

  Cell* find_cell(const K& key) {
    return shard_for(key).map.find(key).value_or(nullptr);
  }

  Cell* live_cell(const K& key) {
    Shard& shard = shard_for(key);
    for (;;) {
      if (std::optional<Cell*> cell = shard.map.find(key)) return *cell;
      Cell* fresh = new Cell(key, &camera_,
                             node_pooling_.load(std::memory_order_relaxed));
      if (shard.map.insert(key, fresh)) {
        // Registry push (head-only, lock-free) AFTER the structural
        // insert wins, so losers are simply deleted. Cell GC is the only
        // other registry writer (interior unlinks, janitor-serialized).
        Cell* head = shard.cells.load(std::memory_order_relaxed);
        do {
          fresh->next_all.store(head, std::memory_order_relaxed);
        } while (!shard.cells.compare_exchange_weak(
            head, fresh, std::memory_order_release,
            std::memory_order_relaxed));
        return fresh;
      }
      delete fresh;
    }
  }

  // --- cell GC internals (invoked by maint::CellJanitor) --------------------

  // Attempt the full detach protocol on one cell (see "Cell GC protocol"
  // in the header comment). `prev` is the cell's registry predecessor as
  // of the janitor's walk (nullptr = cell was at the head when reached).
  // Returns true when THIS call sealed and retired the cell. Caller holds
  // the shard's janitor claim and an ebr::Guard.
  bool try_detach_cell(Shard& shard, Cell* prev, Cell* cell,
                       Timestamp horizon) {
    VNode* head = cell->rec.vReadNode();
    const Record& r = head->val;
    // Only a PLAIN tombstone qualifies: ticketed records are addressed by
    // node identity for their descriptor's lifetime, and a committed
    // ticketed tombstone simply waits for trim/coalescing to be replaced
    // by... nothing — it stays until a writer lands; the cell is still
    // absent-stable but conservatively kept. (Sealing under a ticketed
    // head would complicate the identity rules for no measured win.)
    if (r.detached || r.present || r.ticket != nullptr) return false;
    const Timestamp ts = head->ts.load(std::memory_order_acquire);
    if (ts == kTBD || ts >= horizon) return false;
    // SEAL. Identity CAS: success proves the tombstone was still the head
    // — no writer interposed — and from here no writer ever installs into
    // this cell (they observe the sentinel instead). Death just before =
    // nothing happened yet; the next janitor pass redoes the check.
    VCAS_FAILPOINT("store.gc.seal");
    Record sentinel{};
    sentinel.detached = true;
    if (cell->rec.install_over(head, sentinel) == nullptr) return false;
    // Death between seal and unmap: writers that meet the sentinel help
    // erase the stale mapping themselves (install_one / put), so the key
    // stays writable through a fresh cell even if this janitor dies here.
    VCAS_FAILPOINT("store.gc.unmap");
    // UNMAP. Conditional on identity; false means a racing writer that
    // observed the seal already unmapped it (and by now may have inserted
    // a fresh cell this erase must not touch). Either way the mapping to
    // THIS cell is permanently gone — sealed cells are never re-inserted.
    shard.map.erase(cell->key, cell);
    // Death between unmap and unlink strands one sealed, unmapped cell in
    // the shard registry (bounded leak; later passes skip it as detached).
    VCAS_FAILPOINT("store.gc.unlink");
    // UNLINK + RETIRE, as one EBR batch entry covering the cell and its
    // remaining versions (sentinel, tombstone, whatever trim left). The
    // deleter is the Cell destructor, which frees the chain through each
    // node's own allocation origin.
    const std::size_t versions = cell->rec.version_count();
    unlink_from_registry(shard, prev, cell);
    ebr::retire_batch(
        cell, +[](void* p) { delete static_cast<Cell*>(p); }, 1 + versions);
    return true;
  }

  // Remove `cell` from the shard registry. Only janitor passes unlink
  // (serialized by the shard claim); concurrent head pushes are the only
  // other writers, handled by the head CAS + predecessor re-scan.
  void unlink_from_registry(Shard& shard, Cell* prev, Cell* cell) {
    Cell* next = cell->next_all.load(std::memory_order_relaxed);
    if (prev == nullptr) {
      Cell* expected = cell;
      if (shard.cells.compare_exchange_strong(expected, next,
                                              std::memory_order_acq_rel)
              VCAS_ORD("store.registry.unlink")) {
        return;
      }
      // New cells were pushed above since the walk began; the real
      // predecessor exists (only we unlink) — find it.
      prev = shard.cells.load(std::memory_order_acquire);
      while (prev->next_all.load(std::memory_order_acquire) != cell) {
        prev = prev->next_all.load(std::memory_order_acquire);
      }
    }
    prev->next_all.store(next, std::memory_order_release);
  }

  // THE version-reclamation boundary: may `r` serve as a trim pivot at
  // `horizon`? One definition shared by the foreground trim_all and the
  // janitor's incremental trim (a wrong pivot frees versions a pinned
  // reader still needs, so the two must never diverge). Help-then-check:
  // deciding an undecided batch here (a) keeps the trimmer off the
  // stalled writer's schedule and (b) judges the record by its real fate
  // instead of conservatively skipping it until the writer reappears.
  // Aborted records are never visible, so they never pivot (and get
  // detached below one); a DETACHED sentinel never pivots either — the
  // tombstone below it must stay readable at old handles.
  static bool trim_pivot_visible(const Record& r, Timestamp horizon) {
    return !r.detached &&
           (r.ticket == nullptr || r.ticket->help_visible_at(horizon));
  }

  // Write-path maintenance hint: nudge the pool at the given shard.
  // Lock-free; a no-op while maintenance is disabled.
  void maint_hint(std::size_t shard) {
    if (maint::MaintenancePool* pool =
            maint_hint_target_.load(std::memory_order_acquire)) {
      pool->hint(shard);
    }
  }

  // The batch's planned op list: one op per key (last op wins), cells
  // resolved up front, in global (shard, key) ascending order. Installed
  // ops then form a prefix of this order (install_all/install_one preserve
  // it), which is what lets conflicting batches help each other without
  // cycles.
  typename BatchDescriptor::OpList make_planned(const Batch& batch) {
    const auto& ops = batch.ops();
    std::vector<std::size_t> order(ops.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const std::size_t sa = shard_index(ops[a].key);
                       const std::size_t sb = shard_index(ops[b].key);
                       if (sa != sb) return sa < sb;
                       return ops[a].key < ops[b].key;
                     });
    typename BatchDescriptor::OpList planned;
    planned.reserve(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      // Last op per key wins: skip unless this is the final (stable-sorted)
      // entry for its key.
      if (i + 1 < order.size() && ops[order[i + 1]].key == ops[order[i]].key) {
        continue;
      }
      const auto& op = ops[order[i]];
      // Removes install a ticketed tombstone even when the key has no cell
      // yet (unlike single-key remove(), which may no-op at its read):
      // every op of the batch must take effect at the commit stamp, and a
      // put of this key committing between our absence check and our
      // commit would otherwise survive a remove that linearizes after it.
      // Reclaiming absent-stable cells is the "cell GC" ROADMAP item.
      planned.emplace_back(op.key, live_cell(op.key),
                           op.is_put ? op.value : V{}, op.is_put);
    }
    return planned;
  }

  // Owner-side drive of a published descriptor: install in order, then
  // help to the decision — the same idempotent machinery every helper
  // runs, so a stall anywhere (the per-install failpoint injects one)
  // leaves a batch that any reader or writer can finish, or a transaction
  // that any of them can ABORT, without us. The raw list pointer stays
  // valid across a concurrent help-driven decision (which retires it)
  // because the caller's EBR pin predates the retire.
  Decision run_descriptor(BatchDescriptor& desc) {
    auto* list = desc.ops();
    {
      obs::TraceSpan span(obs::Ev::kApplyBatchInstall,
                          static_cast<std::uint32_t>(list->size()));
      for (auto& op : *list) {
        desc.install_one(op);
        // Owner-only, once per installed op (helpers run install_all, not
        // this loop): the stalled-writer tests park/abandon the ORIGINAL
        // writer here mid-batch — trigger=N stalls it right after its Nth
        // install — and prove strangers finish or abort the batch.
        VCAS_FAILPOINT("store.batch.install");
      }
    }
    return desc.help_decide(/*as_owner=*/true);
  }

  // One transaction-read witness, recorded by Transaction::get via
  // txn_read. `cell` is null when the key had no cell at read time.
  struct TxnRead {
    K key;
    Cell* cell;
    bool witnessed_present;
  };

  // Snapshot read at the transaction's handle, recording a witness (first
  // read of a key stands; the handle makes re-reads identical anyway).
  std::optional<V> txn_read(const K& key, Timestamp ts,
                            std::vector<TxnRead>& reads) {
    Shard& shard = shard_for(key);
    bool present = false;
    std::optional<V> out;
    // Value: resolve only through a cell that already existed at the
    // handle (find_at, exactly like get_at) — a cell born after the
    // snapshot has no version at or below ts, so resolving it would walk
    // past its seed; the key simply read as absent at the handle.
    if (std::optional<Cell*> at = shard.map.find_at(ts, key)) {
      const Record& r = resolve_at(*at, ts);
      present = r.present;
      if (present) out = r.value;
    }
    for (const TxnRead& w : reads) {
      if (w.key == key) return out;  // already witnessed
    }
    // Witness: the key's CURRENT cell (if any; null = witnessed "no cell")
    // so validation also judges writes that created the cell after the
    // snapshot.
    reads.push_back(
        TxnRead{key, shard.map.find(key).value_or(nullptr), present});
    return out;
  }

  // Commit a transaction's buffered writes conditioned on its read set.
  // Returns the commit stamp, or nullopt when the transaction ABORTED
  // (some read key changed between the snapshot and the commit stamp).
  // Caller (Transaction::commit) holds the snapshot guard's EBR pin.
  std::optional<Timestamp> commit_transaction(
      Timestamp handle, const Batch& writes,
      const std::vector<TxnRead>& reads) {
    if (writes.ops().empty()) {
      // Read-only transaction: its snapshot reads were already atomic at
      // the handle; it commits there, nothing to validate or install.
      return handle;
    }
    auto desc = std::make_shared<TxnDescriptor>(&camera_, this, handle,
                                                make_planned(writes));
    // Publish the read witnesses (pointing into the descriptor's stable op
    // list for keys that are also written) before the first install makes
    // the descriptor reachable by helpers.
    auto* list = desc->ops();
    auto* read_set = desc->reads();
    read_set->reserve(reads.size());
    // Match read keys -> planned ops by cell identity (cells are unique
    // per key; a key we also wrote has its cell created by make_planned
    // even if it was absent when read). One hash pass keeps an n-read /
    // n-write commit linear.
    std::unordered_map<Cell*, const typename BatchDescriptor::PlannedOp*>
        op_by_cell(list->size() * 2);
    for (const auto& p : *list) {
      // Pre-publication: nobody can have re-resolved the cell yet.
      op_by_cell.emplace(p.cell.load(std::memory_order_relaxed), &p);
    }
    for (const TxnRead& w : reads) {
      const typename BatchDescriptor::PlannedOp* op = nullptr;
      if (Cell* cell = w.cell != nullptr ? w.cell : find_cell(w.key)) {
        if (auto it = op_by_cell.find(cell); it != op_by_cell.end()) {
          op = it->second;
        }
      }
      read_set->push_back(
          typename TxnDescriptor::ReadWitness{w.key, w.cell, op,
                                              w.witnessed_present});
    }
    if (run_descriptor(*desc) != Decision::kCommitted) return std::nullopt;
    return desc->commit_stamp();
  }

  // Coalesce the run of equal-stamped records directly below the freshly
  // installed plain record `mine`. try_coalesce_below's preconditions hold
  // here: the caller's ebr::Guard is in effect, every store read path pins
  // (point reads take a Guard, snapshot queries a SnapshotGuard), and
  // `mine` is a plain record — unconditionally visible to every
  // resolve/trim/validation predicate in the store, so no predicate-guided
  // walk can need to stop below it at an equal stamp. Ticketed records are
  // rejected by the droppable predicate: their nodes are addressed by
  // identity for the descriptor's lifetime (batch.h).
  // Post-install bookkeeping for single-key writes: clock-gated coalescing
  // below the fresh record, plus paced maintenance hints. A tombstone
  // hints its shard immediately — it is exactly what cell GC feeds on and
  // the horizon may already be past it; plain puts hint every
  // kHintChurn-th write per cell (racy counter, same contract as the
  // coalesce pacing: lost updates only delay a hint the periodic sweep
  // would cover anyway).
  void after_write(std::size_t shard, Cell* cell, VNode* mine,
                   bool tombstone) {
    coalesce_below(cell, mine);
    if (tombstone) {
      maint_hint(shard);
      return;
    }
    const std::uint32_t h =
        cell->hint_churn.load(std::memory_order_relaxed) + 1;
    if (h >= kHintChurn) {
      cell->hint_churn.store(0, std::memory_order_relaxed);
      maint_hint(shard);
    } else {
      cell->hint_churn.store(h, std::memory_order_relaxed);
    }
  }

  void coalesce_below(Cell* cell, VNode* mine) {
    if (!coalesce_.load(std::memory_order_relaxed)) return;
    const std::uint32_t every = coalesce_every_.load(std::memory_order_relaxed);
    if (every > 1) {
      const std::uint32_t c =
          cell->churn.load(std::memory_order_relaxed) + 1;
      cell->churn.store(c, std::memory_order_relaxed);
      if (c < every) return;  // let the backlog build; one splice drains it
      cell->churn.store(0, std::memory_order_relaxed);
    }
    cell->rec.try_coalesce_below(mine, [](const Record& r) {
      return !record_keeps_node_identity(r.ticket);
    });
  }

  // Head NODE with its batch (if any) decided. Writers must not install
  // over an undecided record: doing so could order their write before a
  // batch that commits later, tearing that batch. Instead of waiting for
  // the batch's writer to be rescheduled, drive the batch to its decision
  // ourselves from its descriptor — a preempted writer can no longer block
  // this key. Lock-free: every retry means some batch just got decided.
  static VNode* help_head_decided(Cell* cell) {
    for (;;) {
      VNode* head = cell->rec.vReadNode();
      const Record& r = head->val;
      if (r.ticket == nullptr || r.ticket->decided()) return head;
      r.ticket->help_decide();
    }
  }

  // Logical current record at or below a DECIDED head: skip aborted
  // records (they never happened) and DETACHED sentinels (invisible at
  // every handle; callers handle a detached HEAD before judging presence,
  // so this skip is defensive) down to the newest committed or unticketed
  // one. The walk never crosses a committed record, so it can never run
  // past a trim pivot.
  static const Record& logical_record(VNode* head) {
    VNode* node = head;
    while (node->val.detached ||
           (node->val.ticket != nullptr && !node->val.ticket->committed())) {
      node = node->nextv.load(std::memory_order_acquire);
      assert(node != nullptr &&
             "logical_record walked past the initial version");
    }
    return node->val;
  }

  // The key's state at handle ts: newest version installed at or before ts
  // whose batch (if any) COMMITTED at or before ts; aborted records are
  // invisible at every handle. An undecided ticket is helped to its
  // decision — not waited out — so equal handles always agree on the
  // batch's visibility and a stalled batch writer never blocks snapshot
  // queries (see batch.h). Returns a borrow: valid while the caller's EBR
  // pin is in effect.
  static const Record& resolve_at(Cell* cell, Timestamp ts) {
    return cell->rec
        .readSnapshotNodeWhere(ts,
                               [ts](const Record& r) {
                                 return !r.detached &&
                                        (r.ticket == nullptr ||
                                         r.ticket->help_visible_at(ts));
                               })
        ->val;
  }

  // The key's current committed state (point reads): newest record whose
  // batch, if any, committed. Never helps — an undecided batch simply
  // hasn't happened yet from this read's point of view, and an aborted one
  // never happens.
  static const Record& resolve_current(Cell* cell) {
    return cell->rec
        .readSnapshotNodeWhere(kNoSnapshot,
                               [](const Record& r) {
                                 return !r.detached &&
                                        (r.ticket == nullptr ||
                                         r.ticket->committed());
                               })
        ->val;
  }

  // K-way merge of disjoint sorted runs via repeated min-selection over run
  // cursors (N = shard count is small; a loser tree is overkill).
  static std::vector<std::pair<K, V>> merge_runs(
      std::vector<std::vector<std::pair<K, V>>> runs) {
    if (runs.size() == 1) return std::move(runs[0]);
    std::size_t total = 0;
    for (const auto& run : runs) total += run.size();
    std::vector<std::pair<K, V>> out;
    out.reserve(total);
    std::vector<std::size_t> cursor(runs.size(), 0);
    while (out.size() < total) {
      std::size_t best = runs.size();
      for (std::size_t i = 0; i < runs.size(); ++i) {
        if (cursor[i] < runs[i].size() &&
            (best == runs.size() ||
             runs[i][cursor[i]].first < runs[best][cursor[best]].first)) {
          best = i;
        }
      }
      out.push_back(std::move(runs[best][cursor[best]]));
      ++cursor[best];
    }
    return out;
  }

  static constexpr std::uint32_t kHintChurn = 64;

  // Lazily create the (stopped) pool so knobs like the watchdog deadline
  // can be set before the first enable and survive disable/enable cycles.
  void ensure_maint_pool() VCAS_REQUIRES(maint_mu_) {
    if (maint_pool_) return;
    maint_pool_ = std::make_unique<maint::MaintenancePool>(
        shards_.size(), [this](std::size_t shard) {
          return maint::CellJanitor<ShardedStore>::pass(
              *this, shard, cells_per_tick_.load(std::memory_order_relaxed));
        });
  }

  Camera camera_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> coalesce_{true};
  std::atomic<std::uint32_t> coalesce_every_{8};
  std::atomic<bool> node_pooling_{true};

  // Maintenance subsystem. The pool is created lazily (first enable) and
  // lives until the store dies — disable stops its workers but keeps the
  // object, so the lock-free hint path can hold a raw pointer. Cell-work
  // telemetry reports into the process-wide obs registry, so synchronous
  // maintain_* calls and pool passes land in one place. Declared LAST:
  // the pool's pass lambda captures `this`, so it must destruct (already
  // stopped by the dtor) before everything it references.
  mutable util::Mutex maint_mu_;
  std::atomic<std::size_t> cells_per_tick_{512};
  std::atomic<maint::MaintenancePool*> maint_hint_target_{nullptr};
  std::unique_ptr<maint::MaintenancePool> maint_pool_ VCAS_GUARDED_BY(maint_mu_);
};

}  // namespace vcas::store
