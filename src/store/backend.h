// Per-shard backend policies for ShardedStore.
//
// A shard is an ordered map from keys to heap-allocated value cells, backed
// by any of the repo's snapshottable vCAS structures. The three policies
// differ only in which structure they name; the SnapshotMap concept below
// is the uniform adapter surface the store compiles against, so adding a
// backend is: implement the concept, add a one-line policy struct.
//
// Backend trade-offs (see bench_store_scalability.cc):
//   ListBackend      — Harris list; O(n) point ops, cheapest constant
//                      factors; only sensible with many shards and small
//                      per-shard key counts.
//   BstBackend       — Ellen et al. BST; unbalanced, fast uniform updates.
//   ChromaticBackend — Brown et al. chromatic tree; balanced, the default
//                      for skewed or large shards.
#pragma once

#include <concepts>
#include <optional>
#include <utility>
#include <vector>

#include "ds/chromatic.h"
#include "ds/ellen_bst.h"
#include "ds/harris_list.h"
#include "vcas/camera.h"

namespace vcas::store {

namespace detail {
// Functor stand-in for the visitor passed to for_each_at (lambdas are
// awkward inside requires-expressions).
struct NoopVisit {
  template <typename K, typename M>
  void operator()(const K&, const M&) const {}
};
}  // namespace detail

// What the store needs from a shard structure: camera-shared construction,
// lock-free point updates on the live state, handle-explicit snapshot
// reads (the *_at family) for cross-shard atomic queries, and a
// conditional unlink hook — erase(k, v) removes the mapping iff the key
// currently maps to v — for the maintenance subsystem's tombstone cell GC
// (detached cells are never re-inserted, so a false return is a permanent
// "not mapped to v" and the cell may be retired).
template <typename MapT, typename K, typename M>
concept SnapshotMap =
    std::constructible_from<MapT, Camera*> &&
    requires(MapT m, const K& k, M v, Timestamp ts, detail::NoopVisit visit) {
      { m.insert(k, v) } -> std::same_as<bool>;
      { m.erase(k, v) } -> std::same_as<bool>;
      { m.find(k) } -> std::same_as<std::optional<M>>;
      { m.find_at(ts, k) } -> std::same_as<std::optional<M>>;
      { m.range_at(ts, k, k) } -> std::same_as<std::vector<std::pair<K, M>>>;
      { m.for_each_at(ts, visit) };
      { m.camera() } -> std::same_as<Camera&>;
    };

struct ListBackend {
  static constexpr const char* kName = "harris-list";
  template <typename K, typename M>
  using Map = ds::VcasHarrisList<K, M>;
};

struct BstBackend {
  static constexpr const char* kName = "ellen-bst";
  template <typename K, typename M>
  using Map = ds::VcasBST<K, M>;
};

struct ChromaticBackend {
  static constexpr const char* kName = "chromatic";
  template <typename K, typename M>
  using Map = ds::VcasChromaticTree<K, M>;
};

}  // namespace vcas::store
