// Write batches and their commit descriptors (store layer).
//
// The paper's camera gives atomic multi-point *queries*; the store layer
// extends the same clock into atomic multi-point *updates*. Every record a
// batch installs carries a shared BatchTicket whose commit stamp starts
// undecided (kTBD). The batch's records are installed first — each stamped
// by the underlying vCAS at install time — and only then is the commit
// stamp fixed from the camera clock. A snapshot query at handle h treats a
// ticketed record as written at its ticket's commit stamp, not its install
// stamp: visible iff commit <= h. Because the clock only moves forward,
// every record's install stamp is <= the commit stamp, so a query either
// sees all of a batch's records (h >= commit) or none (h < commit) — never
// a partially applied batch.
//
// Cooperative helping: the ticket is a full batch *descriptor* — it
// publishes the deduplicated per-key op list (via the store-side subclass
// implementing install_all), so ANY thread that encounters an undecided
// ticket — a snapshot reader resolving one of its records, a writer about
// to install over one, a conflicting batch, the trimmer — finishes the
// batch itself through help_commit() instead of waiting for the original
// writer to be rescheduled. This is the store-level analogue of the paper's
// initTS helping discipline and what keeps the batch protocol lock-free end
// to end; see "Progress" in store.h for the full argument.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "vcas/camera.h"

namespace vcas::store {

// Commit descriptor shared (via shared_ptr) by every record of one batch.
// The descriptor outlives the batch application: records in version lists
// keep it alive for as long as any snapshot might need the commit stamp to
// decide visibility. The op list itself (install targets and values) lives
// in the store-side subclass (ShardedStore::BatchDescriptor), which
// implements install_all(); this base carries the commit protocol.
struct BatchTicket : std::enable_shared_from_this<BatchTicket> {
  std::atomic<Timestamp> commit_ts{kTBD};

  explicit BatchTicket(Camera* camera) : camera_(camera) {}
  BatchTicket(const BatchTicket&) = delete;
  BatchTicket& operator=(const BatchTicket&) = delete;
  virtual ~BatchTicket() = default;

  bool committed() const {
    return commit_ts.load(std::memory_order_acquire) != kTBD;
  }

  // Finish this batch on behalf of its (possibly stalled) writer and return
  // the commit stamp. Idempotent and lock-free: completes every remaining
  // install from the published op list, then fixes the commit stamp with
  // one CAS. Exactly one caller's clock read wins, and every install stamp
  // is <= it: each install is stamped before install_all returns, the
  // stamping clock read happens-before this one (release/acquire on the
  // per-op install state), and the clock is monotone. Replaces the old
  // wait_commit() yield-spin — helpers make the batch's progress their own
  // instead of waiting for its writer to be rescheduled.
  Timestamp help_commit() {
    Timestamp c = commit_ts.load(std::memory_order_acquire);
    if (c != kTBD) return c;
    install_all();
    const Timestamp fresh = camera_->current();
    const Timestamp result =
        commit_ts.compare_exchange_strong(c, fresh, std::memory_order_seq_cst)
            ? fresh
            : c;  // lost the commit race; c was reloaded with the winner's stamp
    // The commit stamp is decided: the descriptor's install machinery (op
    // list, per-op state) is dead weight from here on, while the records
    // keep the descriptor itself alive for as long as any snapshot might
    // need the stamp. Every slow-path participant offers to free it; the
    // subclass makes the release exactly-once and EBR-safe.
    release_install_state();
    return result;
  }

 protected:
  // Idempotently complete every remaining install of the published op list,
  // in the batch's global (shard, key) order. Implemented by the store
  // (which knows the cell and record types). Must only return once every op
  // is installed or the batch is committed; processing ops in order keeps
  // the installed set a PREFIX of the op list, which is what bounds help
  // chains between conflicting batches (see store.h).
  virtual void install_all() = 0;

  // Drop whatever install_all needed, now that commit_ts is decided. Called
  // (possibly concurrently, possibly while stale helpers still iterate the
  // op list under their EBR pins) by every thread that ran the commit slow
  // path.
  virtual void release_install_state() {}

  Camera* camera_;
};

// An ordered list of puts/removes applied atomically by
// ShardedStore::applyBatch. Within one batch, later operations on a key win
// over earlier ones (read-modify-write batch semantics).
template <typename K, typename V>
class WriteBatch {
 public:
  struct Op {
    K key;
    V value;       // ignored when !is_put
    bool is_put;
  };

  void put(K key, V value) {
    ops_.push_back(Op{std::move(key), std::move(value), true});
  }

  void remove(K key) {
    ops_.push_back(Op{std::move(key), V{}, false});
  }

  bool empty() const { return ops_.empty(); }
  std::size_t size() const { return ops_.size(); }
  const std::vector<Op>& ops() const { return ops_; }
  void clear() { ops_.clear(); }

 private:
  std::vector<Op> ops_;
};

}  // namespace vcas::store
