// Write batches and their commit tickets (store layer).
//
// The paper's camera gives atomic multi-point *queries*; the store layer
// extends the same clock into atomic multi-point *updates*. Every record a
// batch installs carries a shared BatchTicket whose commit stamp starts
// undecided (kTBD). The writer installs all records first — each stamped by
// the underlying vCAS at install time — and only then fixes the commit
// stamp from the camera clock. A snapshot query at handle h treats a
// ticketed record as written at its ticket's commit stamp, not its install
// stamp: visible iff commit <= h. Because the clock only moves forward,
// every record's install stamp is <= the commit stamp, so a query either
// sees all of a batch's records (h >= commit) or none (h < commit) — never
// a partially applied batch. See store.h for the full protocol and its
// progress caveats.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

#include "vcas/camera.h"

namespace vcas::store {

// Commit ticket shared (via shared_ptr) by every record of one batch. The
// ticket outlives the batch application: records in version lists keep it
// alive for as long as any snapshot might need the commit stamp to decide
// visibility.
struct BatchTicket {
  std::atomic<Timestamp> commit_ts{kTBD};

  bool committed() const {
    return commit_ts.load(std::memory_order_acquire) != kTBD;
  }

  // Commit stamp, waiting out the (instruction-scale) window between the
  // writer finishing its installs and publishing the stamp. Waiting — not
  // guessing — is what keeps two queries with the same handle agreeing on
  // the batch's visibility; see "Progress" in store.h.
  Timestamp wait_commit() const {
    Timestamp c;
    while ((c = commit_ts.load(std::memory_order_acquire)) == kTBD) {
      std::this_thread::yield();
    }
    return c;
  }
};

// An ordered list of puts/removes applied atomically by
// ShardedStore::applyBatch. Within one batch, later operations on a key win
// over earlier ones (read-modify-write batch semantics).
template <typename K, typename V>
class WriteBatch {
 public:
  struct Op {
    K key;
    V value;       // ignored when !is_put
    bool is_put;
  };

  void put(K key, V value) {
    ops_.push_back(Op{std::move(key), std::move(value), true});
  }

  void remove(K key) {
    ops_.push_back(Op{std::move(key), V{}, false});
  }

  bool empty() const { return ops_.empty(); }
  std::size_t size() const { return ops_.size(); }
  const std::vector<Op>& ops() const { return ops_; }
  void clear() { ops_.clear(); }

 private:
  std::vector<Op> ops_;
};

}  // namespace vcas::store
