// Write batches, conditional batches, and their commit descriptors (store
// layer).
//
// The paper's camera gives atomic multi-point *queries*; the store layer
// extends the same clock into atomic multi-point *updates*. Every record a
// batch installs carries a shared BatchTicket whose fate starts undecided.
// The batch's records are installed first — each stamped by the underlying
// vCAS at install time — then a commit stamp is fixed from the camera
// clock, and finally a DECISION (committed or aborted) is published with
// one CAS. A snapshot query at handle h treats a ticketed record as written
// at its ticket's commit stamp, not its install stamp: visible iff the
// ticket committed and commit <= h; an aborted ticket's records are
// invisible at every handle, as if the batch never ran. Because the clock
// only moves forward, every record's install stamp is <= the commit stamp,
// so a query either sees all of a batch's records (committed, h >= commit)
// or none — never a partially applied batch.
//
// The decision phase is what turns blind batches into optimistic
// compare-and-batch TRANSACTIONS: a conditional descriptor validates its
// read set against the commit stamp between the stamp CAS and the decision
// CAS (see ShardedStore::TxnDescriptor in store.h), and the decision CAS
// publishes COMMITTED or ABORTED for everyone at once. Plain batches use
// the same state machine with a trivial always-commit validation.
//
// Cooperative helping: the ticket is a full batch *descriptor* — it
// publishes the per-key op list (via the store-side subclass implementing
// install_all) and the validation rule (decide), so ANY thread that
// encounters an undecided ticket — a snapshot reader resolving one of its
// records, a writer about to install over one, a conflicting batch, the
// trimmer — drives the batch to its decision itself through help_decide()
// instead of waiting for the original writer to be rescheduled. This is
// the store-level analogue of the paper's initTS helping discipline and
// what keeps the batch protocol lock-free end to end; see "Progress" in
// store.h for the full argument, including why helpers racing through
// decide() may reach different verdicts and only the decision CAS's winner
// counts.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "inject/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/annotations.h"
#include "vcas/camera.h"

namespace vcas::store {

// Fate of a batch/transaction. Exactly one transition ever happens:
// kPending -> kCommitted or kPending -> kAborted, via one CAS in
// help_decide (so the original writer and every helper agree).
enum class Decision : std::uint8_t {
  kPending = 0,
  kCommitted = 1,
  kAborted = 2,
};

// Commit descriptor shared (via shared_ptr) by every record of one batch.
// The descriptor outlives the batch application: records in version lists
// keep it alive for as long as any snapshot might need the commit stamp and
// decision to decide visibility. The op list itself (install targets and
// values) lives in the store-side subclass (ShardedStore::BatchDescriptor /
// TxnDescriptor), which implements install_all() and decide(); this base
// carries the commit protocol.
struct BatchTicket : std::enable_shared_from_this<BatchTicket> {
  // Stamp the batch linearizes at when it commits. Fixed (kTBD -> clock)
  // BEFORE the decision CAS, so validation is a property of the immutable
  // version history at stamps <= commit_ts, the same for every helper that
  // evaluates it (see TxnDescriptor::decide).
  std::atomic<Timestamp> commit_ts{kTBD};
  std::atomic<Decision> decision{Decision::kPending};

  explicit BatchTicket(Camera* camera) : camera_(camera) {}
  BatchTicket(const BatchTicket&) = delete;
  BatchTicket& operator=(const BatchTicket&) = delete;
  virtual ~BatchTicket() = default;

  bool decided() const {
    return decision.load(std::memory_order_acquire) != Decision::kPending;
  }

  // Decided AND committed. Point reads use this alone (no helping): an
  // undecided batch has not happened yet from their point of view, and an
  // aborted one never happens.
  bool committed() const {
    return decision.load(std::memory_order_acquire) == Decision::kCommitted;
  }

  // Meaningful once the stamp phase ran (always true once decided: the
  // stamp CAS happens-before the decision CAS, release/acquire on
  // `decision`).
  Timestamp commit_stamp() const {
    return commit_ts.load(std::memory_order_acquire);
  }

  // Drive this batch to its decision on behalf of its (possibly stalled)
  // writer and return the decision. Idempotent and lock-free; the batch's
  // state machine is
  //
  //     install_all  ->  stamp CAS  ->  decide(c)  ->  decision CAS
  //
  // and every phase tolerates any number of threads running it
  // concurrently: installs are per-op idempotent, exactly one stamp CAS
  // and one decision CAS win, and decide() is read-only on shared state.
  // Exactly one stamping thread's clock read wins, and every install stamp
  // is <= it: each install is stamped before install_all returns, the
  // stamping clock read happens-before this one (release/acquire on the
  // per-op install state), and the clock is monotone. Helpers make the
  // batch's progress their own instead of waiting for its writer to be
  // rescheduled.
  // `as_owner` is telemetry-only (the protocol is symmetric by design):
  // the original writer passes true from run_descriptor, every other
  // caller is a helper making someone else's progress its own. The
  // helper-vs-owner split is the "who finished whose operation" event
  // structure the observability layer surfaces.
  Decision help_decide(bool as_owner = false) {
    Decision d = decision.load(std::memory_order_acquire);
    if (d != Decision::kPending) return d;
    obs::TraceSpan span(as_owner ? obs::Ev::kBatchDrive : obs::Ev::kBatchHelp);
    if (as_owner) {
      obs::m::batch_drive_owner.add();
    } else {
      obs::m::batch_drive_helper.add();
    }
    install_all();
    // Death here = every record installed but no commit stamp yet: any
    // reader/writer that meets an undecided record must drive the rest.
    VCAS_FAILPOINT("batch.stamp");
    Timestamp c = commit_ts.load(std::memory_order_acquire);
    if (c == kTBD) {
      const Timestamp fresh = read_commit_clock();
      Timestamp expected = kTBD;
      c = commit_ts.compare_exchange_strong(expected, fresh,
                                            std::memory_order_seq_cst)
              VCAS_ORD("batch.commit-stamp")
              ? fresh
              : expected;  // lost the stamp race; reloaded with the winner's
    }
    // Helpers may reach DIFFERENT verdicts here (a conservative validator
    // can vote abort where a faster one proved commit); whichever verdict
    // wins the CAS below is the batch's fate, and both are safe — see the
    // soundness argument on TxnDescriptor::decide.
    const Decision verdict = decide(c);
    // Death here = stamped, validated, but unpublished verdict: the batch
    // stays helpable (stamped descriptors are legal help targets) and any
    // helper's own verdict can win the decision CAS instead.
    VCAS_FAILPOINT("batch.decide");
    Decision expected = Decision::kPending;
    if (decision.compare_exchange_strong(expected, verdict,
                                         std::memory_order_seq_cst)
            VCAS_ORD("batch.decision")) {
      d = verdict;
      // Count outcomes at the winning CAS only, so each batch's fate is
      // counted exactly once no matter how many helpers raced it.
      if (verdict == Decision::kCommitted) {
        obs::m::decide_committed.add();
      } else {
        obs::m::decide_aborted.add();
      }
    } else {
      d = expected;  // lost the decision race; the winner's verdict
    }
    // The fate is decided: the descriptor's install/validation machinery
    // (op list, read set, per-op state) is dead weight from here on, while
    // the records keep the descriptor itself alive for as long as any
    // snapshot might need the stamp + decision. Every slow-path participant
    // offers to free it; the subclass makes the release exactly-once and
    // EBR-safe.
    release_install_state();
    return d;
  }

  // Visibility of this ticket's records at handle ts, helping to a
  // decision first. Used by snapshot reads and the trimmer.
  bool help_visible_at(Timestamp ts) {
    return help_decide() == Decision::kCommitted && commit_stamp() <= ts;
  }

 protected:
  // Idempotently complete every remaining install of the published op list,
  // in the batch's global (shard, key) order. Implemented by the store
  // (which knows the cell and record types). Must only return once every op
  // is installed or the batch is decided; processing ops in order keeps
  // the installed set a PREFIX of the op list, which is what bounds help
  // chains between conflicting batches (see store.h).
  virtual void install_all() = 0;

  // Clock read for the stamp phase. Plain batches read the current clock;
  // conditional batches (transactions) take a snapshot instead, whose
  // "clock > returned stamp" postcondition is what makes the validation in
  // decide() stable: any record installed or any ticket stamped after the
  // stamp phase necessarily lands at a timestamp ABOVE the commit stamp.
  virtual Timestamp read_commit_clock() { return camera_->current(); }

  // The verdict this helper would publish, given the (already fixed)
  // commit stamp. Read-only on shared state; called only while the
  // decision might still be pending, possibly by many threads at once.
  // Plain batches always commit; transactions validate their read set.
  virtual Decision decide(Timestamp /*commit_stamp*/) {
    return Decision::kCommitted;
  }

  // Drop whatever install_all/decide needed, now that the fate is decided.
  // Called (possibly concurrently, possibly while stale helpers still
  // iterate the op list or read set under their EBR pins) by every thread
  // that ran the decision slow path.
  virtual void release_install_state() {}

  Camera* camera_;
};

// Coalescing eligibility (ISSUE 4): may a version node holding this record
// be unlinked by clock-gated coalescing (VersionedCAS::try_coalesce_below)
// once an equal-stamped plain record sits above it? Ticketed records NEVER
// coalesce, decided or not: the helper protocol addresses them by node
// identity — install_one witnesses the exact installed node in
// PlannedOp::installed, and transaction validation walks onward from that
// witnessed node — so their nodes must keep their place in the chain for
// as long as the descriptor can be re-entered. A PENDING record could not
// even reach the eligibility check (writers help an undecided head to its
// decision before installing over it), but the predicate rejects it
// outright rather than lean on that; coalescing_test.cc pins the behavior.
// Plain single-key records carry no descriptor and nobody holds their node
// identity across an install, so they are fair game.
template <typename Ticket>
inline bool record_keeps_node_identity(const std::shared_ptr<Ticket>& ticket) {
  return ticket != nullptr;
}

// Abort-chain cleanup eligibility (ISSUE 5): is a version node holding this
// record dead at EVERY handle — decided ABORTED, so the batch it belonged
// to logically never happened? This is the inverse carve-out from
// record_keeps_node_identity above: a LIVE ticketed record's node must keep
// its chain position because helpers address it by identity, but once the
// decision CAS lands ABORTED that machinery is over — help_decide returns
// at the decision load without touching the op list, and every
// resolve/validation predicate in the store SKIPS decided-aborted records
// rather than stopping at them. Stale helpers pinned mid-decide may still
// LOAD the node through the descriptor's (EBR-retired, pin-protected) op
// list, but they only read its fields, which structural unlinking
// preserves. So the maintenance pass may splice aborted records capping a
// chain (VersionedCAS::try_unlink_head_run) exactly when this returns
// true. The decision is immutable once published, so the predicate is
// stable — required by the splice protocol.
template <typename Ticket>
inline bool record_is_aborted_cap(const std::shared_ptr<Ticket>& ticket) {
  return ticket != nullptr && ticket->decided() && !ticket->committed();
}

// An ordered list of puts/removes applied atomically by
// ShardedStore::applyBatch. Within one batch, later operations on a key win
// over earlier ones (read-modify-write batch semantics).
template <typename K, typename V>
class WriteBatch {
 public:
  struct Op {
    K key;
    V value;       // ignored when !is_put
    bool is_put;
  };

  void put(K key, V value) {
    ops_.push_back(Op{std::move(key), std::move(value), true});
  }

  void remove(K key) {
    ops_.push_back(Op{std::move(key), V{}, false});
  }

  bool empty() const { return ops_.empty(); }
  std::size_t size() const { return ops_.size(); }
  const std::vector<Op>& ops() const { return ops_; }
  void clear() { ops_.clear(); }

 private:
  std::vector<Op> ops_;
};

}  // namespace vcas::store
