// Lock-free metrics registry (ISSUE 6).
//
// The store's whole pitch is BOUNDED overhead — O(1) snapshots, write
// costs that track snapshots — and this registry is how the live system
// demonstrates it without giving any of it back:
//
//   * Hot-path writes are per-thread-slot relaxed stores. Every metric
//     shards its state across util::kMaxThreads cache-line-padded slots
//     indexed by util::thread_slot(); a slot is written only by its
//     owning thread (util::bump_counter's contract), so increments are a
//     relaxed load+store — no shared RMW, no fence, no cache-line
//     ping-pong. Slot recycling is safe for the same reason it is safe
//     for EBR reservations: a recycled slot accumulates on top of the
//     dead thread's tally, and aggregation sums slots, so nothing is
//     lost or double-counted.
//
//   * Reads aggregate over util::slot_high_water() — the same bounded
//     scan EBR's reservation sweep and Camera::min_active use — so a
//     process that peaked at 8 threads sums 8 slots, not 192. Reads are
//     racy-by-design snapshots (each slot load is atomic, the sum is
//     not); a counter read concurrent with writers is a lower bound that
//     was exact at some point during the scan, which is all telemetry
//     needs.
//
//   * The whole substrate sits behind VCAS_STATS (CMake option, default
//     ON). Compiled out, every metric type is an empty struct whose
//     methods are no-op inlines — call sites need no #ifdefs and the
//     optimizer deletes them. Sites whose ARGUMENT is expensive to
//     compute (a chain walk feeding a histogram sample) wrap the whole
//     statement in VCAS_OBS(...) so the argument evaluation compiles out
//     too.
//
// Metrics self-register (lock-free intrusive push) into a process-wide
// list so dumps can enumerate them generically; see registry_json().
// Metric objects must have static storage duration — the registry keeps
// raw pointers forever (the inline instances at the bottom of this
// header are the intended usage; tests that construct their own use
// function-local statics).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/annotations.h"
#include "util/padded.h"
#include "util/threading.h"

#ifndef VCAS_STATS
#define VCAS_STATS 1
#endif

#if VCAS_STATS
// Statement-level gate: compiles the statement (INCLUDING its argument
// evaluation) out entirely when the stats substrate is disabled.
#define VCAS_OBS(stmt)  \
  do {                  \
    stmt;               \
  } while (0)
#else
#define VCAS_OBS(stmt) \
  do {                 \
  } while (0)
#endif

namespace vcas::obs {

inline constexpr bool kStatsEnabled = VCAS_STATS != 0;

// Plain-value aggregate of a Histogram at one instant (or a delta between
// two instants, via minus()). Always a real struct, even when the
// substrate is compiled out — snapshot consumers (maint::Stats, bench
// telemetry rows) keep one layout in both modes and simply see zeros when
// disabled.
struct HistogramSnapshot {
  static constexpr int kBuckets = 64;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::uint64_t buckets[kBuckets] = {};

  // Log2 bucketing: bucket 0 holds the value 0, bucket b >= 1 holds
  // [2^(b-1), 2^b - 1]; the top bucket absorbs everything above 2^62.
  static int bucket_of(std::uint64_t v) {
    if (v == 0) return 0;
    const int b = 64 - __builtin_clzll(v);
    return b < kBuckets ? b : kBuckets - 1;
  }

  // Inclusive upper bound of bucket b (what percentile() reports): the
  // worst value that could have landed there.
  static std::uint64_t bucket_upper_bound(int b) {
    if (b <= 0) return 0;
    if (b >= kBuckets - 1) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  // Value at quantile q in [0, 1], resolved to the containing bucket's
  // upper bound (conservative: the true value is <= the report, within
  // one power of two). The top bucket reports the observed max instead
  // of its unbounded edge.
  std::uint64_t percentile(double q) const {
    if (count == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(count));
    if (rank == 0) rank = 1;
    if (rank > count) rank = count;
    std::uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
      cum += buckets[b];
      if (cum >= rank) {
        const std::uint64_t edge = bucket_upper_bound(b);
        return (max != 0 && max < edge) ? max : edge;
      }
    }
    return max;
  }

  // Delta between two snapshots of one histogram (now - before).
  // `max` cannot be delta'd (it is a running maximum); the later
  // snapshot's value carries over, same convention as the bench rows'
  // task_us_max field.
  HistogramSnapshot minus(const HistogramSnapshot& before) const {
    HistogramSnapshot d;
    d.count = count - before.count;
    d.sum = sum - before.sum;
    d.max = max;
    for (int b = 0; b < kBuckets; ++b) {
      d.buckets[b] = buckets[b] - before.buckets[b];
    }
    return d;
  }
};

#if VCAS_STATS

enum class MetricKind : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

// Registry node. Registration is a lock-free intrusive push at
// construction; the list is never unlinked from (metrics are immortal by
// contract), so enumeration needs no synchronization beyond the acquire
// head load.
class Metric {
 public:
  Metric(const Metric&) = delete;
  Metric& operator=(const Metric&) = delete;

  const char* name() const { return name_; }
  MetricKind kind() const { return kind_; }
  Metric* next() const { return next_; }

  static Metric* head() {
    return head_ref().load(std::memory_order_acquire);
  }

  // Append `"name":<value-json>` to `out` (no surrounding braces).
  virtual void append_json(std::string& out) const = 0;

 protected:
  Metric(const char* name, MetricKind kind) : name_(name), kind_(kind) {
    std::atomic<Metric*>& h = head_ref();
    next_ = h.load(std::memory_order_relaxed);
    while (!h.compare_exchange_weak(next_, this, std::memory_order_acq_rel)
               VCAS_ORD("obs.registry.push")) {
    }
  }
  virtual ~Metric() = default;

 private:
  static std::atomic<Metric*>& head_ref() {
    static std::atomic<Metric*> head{nullptr};
    return head;
  }

  const char* name_;
  MetricKind kind_;
  Metric* next_;
};

// Monotone event counter. add() is two relaxed accesses to a slot only
// the calling thread writes; read() is exact once writers quiesce and a
// live lower bound otherwise.
class Counter final : public Metric {
 public:
  explicit Counter(const char* name) : Metric(name, MetricKind::kCounter) {}

  void add(std::uint64_t n = 1) {
    util::bump_counter(slots_[util::thread_slot()].value, n);
  }

  std::uint64_t read() const {
    std::uint64_t sum = 0;
    const int live = util::slot_high_water();
    for (int i = 0; i < live; ++i) {
      sum += slots_[i].value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void append_json(std::string& out) const override {
    out += '"';
    out += name();
    out += "\":";
    out += std::to_string(read());
  }

 private:
  util::Padded<std::atomic<std::uint64_t>> slots_[util::kMaxThreads];
};

// Signed up/down gauge (e.g. currently-live snapshot guards). Per-slot
// partial sums may be negative (a guard created on one thread could in
// principle be released on another); only the aggregate is meaningful.
class Gauge final : public Metric {
 public:
  explicit Gauge(const char* name) : Metric(name, MetricKind::kGauge) {}

  void add(std::int64_t n) {
    std::atomic<std::int64_t>& s = slots_[util::thread_slot()].value;
    s.store(s.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }

  std::int64_t read() const {
    std::int64_t sum = 0;
    const int live = util::slot_high_water();
    for (int i = 0; i < live; ++i) {
      sum += slots_[i].value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void append_json(std::string& out) const override {
    out += '"';
    out += name();
    out += "\":";
    out += std::to_string(read());
  }

 private:
  util::Padded<std::atomic<std::int64_t>> slots_[util::kMaxThreads];
};

// Log2-bucketed histogram (latencies, chain lengths, run sizes). One
// record() is four relaxed slot-local accesses; the per-slot max needs no
// RMW because the slot has one writer.
class Histogram final : public Metric {
 public:
  explicit Histogram(const char* name)
      : Metric(name, MetricKind::kHistogram) {}

  void record(std::uint64_t v) {
    Slot& s = slots_[util::thread_slot()];
    util::bump_counter(s.buckets[HistogramSnapshot::bucket_of(v)]);
    util::bump_counter(s.sum, v);
    util::bump_counter(s.count);
    if (v > s.max.load(std::memory_order_relaxed)) {
      s.max.store(v, std::memory_order_relaxed);
    }
  }

  HistogramSnapshot snapshot() const {
    HistogramSnapshot out;
    const int live = util::slot_high_water();
    for (int i = 0; i < live; ++i) {
      const Slot& s = slots_[i];
      out.count += s.count.load(std::memory_order_relaxed);
      out.sum += s.sum.load(std::memory_order_relaxed);
      const std::uint64_t m = s.max.load(std::memory_order_relaxed);
      if (m > out.max) out.max = m;
      for (int b = 0; b < HistogramSnapshot::kBuckets; ++b) {
        out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
      }
    }
    return out;
  }

  void append_json(std::string& out) const override {
    const HistogramSnapshot s = snapshot();
    out += '"';
    out += name();
    out += "\":{\"count\":";
    out += std::to_string(s.count);
    out += ",\"sum\":";
    out += std::to_string(s.sum);
    out += ",\"max\":";
    out += std::to_string(s.max);
    out += ",\"p50\":";
    out += std::to_string(s.percentile(0.50));
    out += ",\"p99\":";
    out += std::to_string(s.percentile(0.99));
    out += '}';
  }

 private:
  struct alignas(util::kCacheLine) Slot {
    std::atomic<std::uint64_t> buckets[HistogramSnapshot::kBuckets];
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> max{0};
  };
  Slot slots_[util::kMaxThreads];
};

// Every registered metric as one flat JSON object (histograms as nested
// objects with count/sum/max/p50/p99). Enumeration order is reverse
// registration order; stable within one process run.
inline std::string registry_json() {
  std::string out = "{";
  for (const Metric* m = Metric::head(); m != nullptr; m = m->next()) {
    if (out.size() > 1) out += ',';
    m->append_json(out);
  }
  out += '}';
  return out;
}

#else  // !VCAS_STATS — the whole substrate compiles to nothing.

enum class MetricKind : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

class Counter {
 public:
  explicit Counter(const char*) {}
  void add(std::uint64_t = 1) {}
  std::uint64_t read() const { return 0; }
};

class Gauge {
 public:
  explicit Gauge(const char*) {}
  void add(std::int64_t) {}
  std::int64_t read() const { return 0; }
};

class Histogram {
 public:
  explicit Histogram(const char*) {}
  void record(std::uint64_t) {}
  HistogramSnapshot snapshot() const { return HistogramSnapshot{}; }
};

inline std::string registry_json() { return "{}"; }

#endif  // VCAS_STATS

// --- the store's named meters ------------------------------------------------
//
// One process-wide instance per metric (inline variables; every TU sees
// the same object). Process-wide, not per-store, deliberately: EBR and
// the slab pool are already process-global, multi-store processes share
// the write paths being measured, and all existing assertions are
// monotone (deltas or >=). ShardedStore::stats() combines these with the
// store's own live state (queue depth, camera lag).
namespace m {

// camera / snapshot lifetime
inline Counter snapshots_taken{"camera.snapshots_taken"};
inline Counter guards_taken{"camera.guards_taken"};
inline Gauge guards_active{"camera.guards_active"};
inline Histogram min_active_lag{"camera.min_active_lag"};  // clock ticks

// era-pinned snapshot protocol (replaced the announcement slot scan)
inline Counter pin_fastpath{"camera.pin_fastpath"};
// Pins that had to retry: structurally zero — the pin path is ONE
// unconditional fetch_add with no loop. The meter exists so
// bench_snapshot_scaling can assert wait-freedom stayed true.
inline Counter pin_retries{"camera.pin_retries"};
inline Counter era_rolls{"camera.era_rolls"};
inline Gauge eras_live{"camera.eras_live"};

// vcas version chains
inline Histogram chain_length{"vcas.chain_length"};    // sampled by janitor
inline Histogram coalesce_run{"vcas.coalesce_run"};    // run sizes unlinked
inline Histogram trim_run{"vcas.trim_run"};            // suffix sizes detached

// batch / txn protocol
inline Counter batch_drive_owner{"batch.drive_owner"};
inline Counter batch_drive_helper{"batch.drive_helper"};
inline Counter decide_committed{"batch.decide_committed"};
inline Counter decide_aborted{"batch.decide_aborted"};
inline Histogram txn_validate_walk{"txn.validate_walk"};  // nodes per witness

// ebr
inline Counter ebr_epoch_stalls{"ebr.epoch_stalls"};
// Slot id + 1 of the thread currently blamed for an epoch stall streak
// past the containment threshold; 0 = no contained stall. Published with
// the exchange-delta idiom (ebr.cc) so the per-slot sum reads as a single
// last-written value.
inline Gauge ebr_stalled_slot{"ebr.stalled_slot"};
inline Counter ebr_dead_slot_reclaims{"ebr.dead_slot_reclaims"};

// maintenance subsystem (replaces the former maint::Counters struct)
inline Counter maint_tasks_run{"maint.tasks_run"};
inline Counter maint_tasks_dropped{"maint.tasks_dropped"};
inline Counter maint_hints{"maint.hints"};
inline Counter maint_sweeps{"maint.sweeps"};
inline Counter maint_cells_visited{"maint.cells_visited"};
inline Counter maint_versions_trimmed{"maint.versions_trimmed"};
inline Counter maint_versions_coalesced{"maint.versions_coalesced"};
inline Counter maint_aborted_unlinked{"maint.aborted_unlinked"};
inline Counter maint_cells_detached{"maint.cells_detached"};
inline Histogram maint_task_latency{"maint.task_ns"};  // per-task ns
inline Counter maint_watchdog_fired{"maint.watchdog_fired"};
inline Counter maint_watchdog_requeues{"maint.watchdog_requeues"};

}  // namespace m

}  // namespace vcas::obs
