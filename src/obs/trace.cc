// Trace ring storage and binary dump. See trace.h for the contract.
#include "obs/trace.h"

#if VCAS_STATS

#include <atomic>
#include <cstdio>
#include <cstring>
#include <vector>

#include "util/annotations.h"
#include "util/threading.h"
#include "util/timing.h"

namespace vcas::obs {
namespace {

// One TSC read. On x86 RDTSC is a handful of cycles and invariant-rate on
// anything modern; elsewhere fall back to the generic counter / clock.
inline std::uint64_t read_tsc() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return static_cast<std::uint64_t>(util::now_nanos());
#endif
}

struct Ring {
  std::size_t cap;
  // Monotone write index; record i lives at recs[i % cap]. Relaxed atomic
  // so trace_summary() can read it mid-run; payloads are plain and only
  // read at quiesce.
  std::atomic<std::uint64_t> head{0};
  TraceRecord* recs;
};

std::atomic<Ring*> g_rings[util::kMaxThreads];
std::atomic<bool> g_tracing{false};
std::atomic<std::size_t> g_capacity{8192};

// (tsc, wall-ns) anchor captured when tracing first turns on; paired with
// a second anchor at dump time to recover the TSC rate.
std::atomic<std::uint64_t> g_anchor_tsc{0};
std::atomic<std::uint64_t> g_anchor_ns{0};

Ring* ring_for_slot(int slot) {
  Ring* r = g_rings[slot].load(std::memory_order_acquire);
  if (r != nullptr) return r;
  // First traced event on this slot. Slots are owned exclusively, so no
  // other thread races this allocation; the release store publishes it
  // for trace_summary()/dump readers.
  r = new Ring;
  r->cap = g_capacity.load(std::memory_order_relaxed);
  if (r->cap == 0) r->cap = 1;
  r->recs = new TraceRecord[r->cap]();
  g_rings[slot].store(r, std::memory_order_release);
  return r;
}

bool write_all(std::FILE* f, const void* p, std::size_t n) {
  return std::fwrite(p, 1, n, f) == n;
}

template <typename T>
bool write_pod(std::FILE* f, T v) {
  return write_all(f, &v, sizeof(v));
}

}  // namespace

bool tracing() { return g_tracing.load(std::memory_order_relaxed); }

void set_tracing(bool on) {
  if (on && g_anchor_tsc.load(std::memory_order_relaxed) == 0) {
    g_anchor_tsc.store(read_tsc(), std::memory_order_relaxed);
    g_anchor_ns.store(static_cast<std::uint64_t>(util::now_nanos()),
                      std::memory_order_relaxed);
  }
  g_tracing.store(on, std::memory_order_release);
}

void trace_event(Ev ev, char phase, std::uint32_t arg) {
  Ring* r = ring_for_slot(util::thread_slot());
  const std::uint64_t h = r->head.load(std::memory_order_relaxed);
  TraceRecord& rec = r->recs[h % r->cap];
  rec.tsc = read_tsc();
  rec.arg = arg;
  rec.event = static_cast<std::uint16_t>(ev);
  rec.phase = static_cast<std::uint8_t>(phase);
  rec.reserved = 0;
  r->head.store(h + 1, std::memory_order_relaxed);
}

TraceSummary trace_summary() {
  TraceSummary s;
  const int live = util::slot_high_water();
  for (int i = 0; i < live; ++i) {
    const Ring* r = g_rings[i].load(std::memory_order_acquire);
    if (r == nullptr) continue;
    const std::uint64_t h = r->head.load(std::memory_order_relaxed);
    s.records += h;
    if (h > r->cap) s.dropped += h - r->cap;
  }
  return s;
}

// Layout (all little-endian, fixed-width):
//   char[8]  magic "VCTRACE1"
//   u32      version (1)
//   u64 x4   anchor0 tsc, anchor0 ns, anchor1 tsc, anchor1 ns
//   u32      event-name count; per name: u16 length + bytes (no NUL)
//   u32      ring count; per ring:
//              u32 slot, u64 total written, u64 dropped, u64 kept,
//              TraceRecord[kept] oldest -> newest
bool dump_trace(const char* path) {
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr) return false;

  bool ok = write_all(f, "VCTRACE1", 8) && write_pod<std::uint32_t>(f, 1);
  ok = ok && write_pod(f, g_anchor_tsc.load(std::memory_order_relaxed));
  ok = ok && write_pod(f, g_anchor_ns.load(std::memory_order_relaxed));
  ok = ok && write_pod(f, read_tsc());
  ok = ok && write_pod(f,
                       static_cast<std::uint64_t>(util::now_nanos()));

  ok = ok && write_pod(f, static_cast<std::uint32_t>(Ev::kCount));
  for (int e = 0; ok && e < static_cast<int>(Ev::kCount); ++e) {
    const std::size_t len = std::strlen(kEvNames[e]);
    ok = write_pod(f, static_cast<std::uint16_t>(len)) &&
         write_all(f, kEvNames[e], len);
  }

  std::vector<std::pair<int, Ring*>> rings;
  const int live = util::slot_high_water();
  for (int i = 0; i < live; ++i) {
    Ring* r = g_rings[i].load(std::memory_order_acquire);
    if (r != nullptr && r->head.load(std::memory_order_relaxed) > 0) {
      rings.emplace_back(i, r);
    }
  }

  ok = ok && write_pod(f, static_cast<std::uint32_t>(rings.size()));
  for (const auto& [slot, r] : rings) {
    if (!ok) break;
    const std::uint64_t h = r->head.load(std::memory_order_relaxed);
    const std::uint64_t kept = h < r->cap ? h : r->cap;
    const std::uint64_t dropped = h - kept;
    ok = write_pod(f, static_cast<std::uint32_t>(slot)) &&
         write_pod(f, h) && write_pod(f, dropped) && write_pod(f, kept);
    // Oldest record is at h % cap once the ring has wrapped.
    const std::uint64_t start = dropped > 0 ? h % r->cap : 0;
    if (dropped > 0) {
      ok = ok && write_all(f, r->recs + start,
                           (r->cap - start) * sizeof(TraceRecord));
      ok = ok && write_all(f, r->recs, start * sizeof(TraceRecord));
    } else {
      ok = ok && write_all(f, r->recs, kept * sizeof(TraceRecord));
    }
  }

  ok = std::fclose(f) == 0 && ok;
  return ok;
}

void set_trace_capacity_for_tests(std::size_t records) {
  g_capacity.store(records == 0 ? 1 : records, std::memory_order_relaxed);
}

void reset_trace_for_tests() {
  for (auto& slot : g_rings) {
    Ring* r = slot.exchange(nullptr, std::memory_order_acq_rel)
        VCAS_ORD("obs.ring.reclaim");
    if (r != nullptr) {
      delete[] r->recs;
      delete r;
    }
  }
}

}  // namespace vcas::obs

#endif  // VCAS_STATS
