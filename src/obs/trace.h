// Per-thread binary event tracing (ISSUE 6).
//
// A fixed-size ring of 16-byte records per thread slot, written with two
// plain stores and an RDTSC read — cheap enough to leave compiled in on
// the slow paths (takeSnapshot, batch install/help, txn validate, janitor
// passes) and toggled at runtime with set_tracing(). Off (the default)
// costs one relaxed load per site; compiled out (VCAS_STATS=0) it costs
// nothing.
//
// Rings overwrite oldest records when full and count what they dropped,
// so tracing never blocks or allocates on the hot path (each slot's ring
// is heap-allocated once, on that thread's first traced event). Records
// carry raw TSC timestamps; dump_trace() writes the rings plus two
// (tsc, wall-ns) calibration anchors to a binary file that
// tools/trace_export.py converts to Chrome/Perfetto trace_event JSON.
//
// Concurrency contract: a ring is written only by its slot's owning
// thread. The write index and drop accounting are relaxed atomics so
// trace_summary() may run concurrently with writers (stats() calls it),
// but the record payloads are plain memory — dump_trace() must only run
// once writers are quiescent (after joining workers; join publishes the
// records). Benches and tests dump after joins.
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/metrics.h"

namespace vcas::obs {

// Event ids. Keep kEvNames in sync — trace_export.py reads names from the
// dump's embedded table, so renames never break old traces.
enum class Ev : std::uint16_t {
  kTakeSnapshot = 0,   // instant: a handle was issued (arg = low clock bits)
  kApplyBatchInstall,  // span: owner installing a batch's pending versions
  kBatchDrive,         // span: owner driving its own ticket to a decision
  kBatchHelp,          // span: helper driving someone else's ticket
  kTxnValidate,        // span: validating one txn witness (arg = key hash low bits)
  kJanitorPass,        // span: one janitor pass (arg = shard index)
  kTrimAll,            // span: store-wide synchronous trim
  kEbrScan,            // span: EBR reservation scan + limbo sweep
  kWatchdogFire,       // instant: maintenance watchdog blamed a stuck worker
                       //          (arg = shard index of the stuck task)
  kCount
};

inline constexpr const char* kEvNames[static_cast<int>(Ev::kCount)] = {
    "takeSnapshot", "applyBatch.install", "batch.drive",  "batch.help",
    "txn.validate", "janitor.pass",       "store.trimAll", "ebr.scan",
    "maint.watchdog",
};

struct TraceRecord {
  std::uint64_t tsc;
  std::uint32_t arg;
  std::uint16_t event;
  std::uint8_t phase;  // 'B' begin, 'E' end, 'I' instant
  std::uint8_t reserved;
};
static_assert(sizeof(TraceRecord) == 16, "dump format assumes 16B records");

struct TraceSummary {
  std::uint64_t records = 0;  // total records ever written (incl. overwritten)
  std::uint64_t dropped = 0;  // records overwritten before any dump
};

#if VCAS_STATS

bool tracing();
void set_tracing(bool on);

// Raw emit — callers use trace_instant / TraceSpan, which pre-check the
// flag so a disabled trace is one relaxed load.
void trace_event(Ev ev, char phase, std::uint32_t arg);

inline void trace_instant(Ev ev, std::uint32_t arg = 0) {
  if (tracing()) trace_event(ev, 'I', arg);
}

// Scoped span: B record at construction, E at destruction. Arms once —
// if tracing toggles mid-span the E still pairs its B.
class TraceSpan {
 public:
  explicit TraceSpan(Ev ev, std::uint32_t arg = 0)
      : ev_(ev), armed_(tracing()) {
    if (armed_) trace_event(ev_, 'B', arg);
  }
  ~TraceSpan() {
    if (armed_) trace_event(ev_, 'E', 0);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Ev ev_;
  bool armed_;
};

#define VCAS_OBS_CONCAT2(a, b) a##b
#define VCAS_OBS_CONCAT(a, b) VCAS_OBS_CONCAT2(a, b)
#define VCAS_TRACE_SPAN(...) \
  ::vcas::obs::TraceSpan VCAS_OBS_CONCAT(vcas_trace_span_, __LINE__) { \
    __VA_ARGS__                                                        \
  }

TraceSummary trace_summary();

// Write all rings to `path` (binary; see trace.cc for the layout and
// tools/trace_export.py for the reader). Quiesce writers first. Returns
// false if the file cannot be written.
bool dump_trace(const char* path);

// Test hooks. Capacity applies to rings allocated AFTER the call;
// reset frees every ring (callers guarantee no thread is tracing).
void set_trace_capacity_for_tests(std::size_t records);
void reset_trace_for_tests();

#else  // !VCAS_STATS

inline bool tracing() { return false; }
inline void set_tracing(bool) {}
inline void trace_event(Ev, char, std::uint32_t) {}
inline void trace_instant(Ev, std::uint32_t = 0) {}

class TraceSpan {
 public:
  explicit TraceSpan(Ev, std::uint32_t = 0) {}
};

#define VCAS_TRACE_SPAN(...) ((void)0)

inline TraceSummary trace_summary() { return TraceSummary{}; }
inline bool dump_trace(const char*) { return false; }
inline void set_trace_capacity_for_tests(std::size_t) {}
inline void reset_trace_for_tests() {}

#endif  // VCAS_STATS

}  // namespace vcas::obs
