// Structured one-shot view of every meter plus store-live state.
//
// obs::collect() reads the process-wide registry (aggregate-on-read over
// the per-thread slots) into a plain-value StatsSnapshot;
// ShardedStore::stats() adds the fields only a store instance knows
// (clock, min_active lag, live-pin occupancy, maintenance queue
// depth). The snapshot is coherent the way the registry is coherent:
// each field is an atomic aggregate taken at one instant, monotone
// across calls, exact once writers quiesce.
#pragma once

#include <cstdint>
#include <string>

#include "ebr/ebr.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vcas::obs {

struct StatsSnapshot {
  // camera / snapshot lifetime
  std::uint64_t snapshots_taken = 0;
  std::uint64_t guards_taken = 0;
  std::int64_t guards_active = 0;
  HistogramSnapshot min_active_lag;  // clock ticks, sampled at min_active()
  std::uint64_t clock = 0;           // store-live
  std::uint64_t min_active = 0;      // store-live
  std::uint64_t min_active_lag_now = 0;  // store-live: clock - min_active
  int live_pins = 0;                 // store-live: outstanding snapshot pins

  // vcas version chains
  HistogramSnapshot chain_length;
  HistogramSnapshot coalesce_run;
  HistogramSnapshot trim_run;

  // batch / txn protocol
  std::uint64_t batch_drive_owner = 0;
  std::uint64_t batch_drive_helper = 0;
  std::uint64_t decide_committed = 0;
  std::uint64_t decide_aborted = 0;
  HistogramSnapshot txn_validate_walk;

  // ebr
  std::uint64_t ebr_epoch = 0;
  std::uint64_t ebr_epoch_stalls = 0;
  std::uint64_t ebr_pending = 0;  // limbo depth (nodes awaiting reclamation)
  std::uint64_t ebr_freed = 0;

  // maintenance
  std::uint64_t maint_tasks_run = 0;
  std::uint64_t maint_tasks_dropped = 0;
  std::uint64_t maint_hints = 0;
  std::uint64_t maint_sweeps = 0;
  std::uint64_t maint_cells_visited = 0;
  std::uint64_t maint_versions_trimmed = 0;
  std::uint64_t maint_versions_coalesced = 0;
  std::uint64_t maint_aborted_unlinked = 0;
  std::uint64_t maint_cells_detached = 0;
  std::size_t maint_queue_depth = 0;  // store-live
  HistogramSnapshot maint_task_latency;  // ns

  // tracing
  std::uint64_t trace_records = 0;
  std::uint64_t trace_dropped = 0;
  bool trace_enabled = false;

  std::string to_text() const;
  std::string to_json() const;
};

// Registry-side fields only; store-live fields stay zero. Usable without
// a store (e.g. bench teardown dumps).
inline StatsSnapshot collect() {
  StatsSnapshot s;
#if VCAS_STATS
  s.snapshots_taken = m::snapshots_taken.read();
  s.guards_taken = m::guards_taken.read();
  s.guards_active = m::guards_active.read();
  s.min_active_lag = m::min_active_lag.snapshot();

  s.chain_length = m::chain_length.snapshot();
  s.coalesce_run = m::coalesce_run.snapshot();
  s.trim_run = m::trim_run.snapshot();

  s.batch_drive_owner = m::batch_drive_owner.read();
  s.batch_drive_helper = m::batch_drive_helper.read();
  s.decide_committed = m::decide_committed.read();
  s.decide_aborted = m::decide_aborted.read();
  s.txn_validate_walk = m::txn_validate_walk.snapshot();

  const ebr::Stats e = ebr::stats();
  s.ebr_epoch = e.epoch;
  s.ebr_pending = e.pending;
  s.ebr_freed = e.freed;
  s.ebr_epoch_stalls = m::ebr_epoch_stalls.read();

  s.maint_tasks_run = m::maint_tasks_run.read();
  s.maint_tasks_dropped = m::maint_tasks_dropped.read();
  s.maint_hints = m::maint_hints.read();
  s.maint_sweeps = m::maint_sweeps.read();
  s.maint_cells_visited = m::maint_cells_visited.read();
  s.maint_versions_trimmed = m::maint_versions_trimmed.read();
  s.maint_versions_coalesced = m::maint_versions_coalesced.read();
  s.maint_aborted_unlinked = m::maint_aborted_unlinked.read();
  s.maint_cells_detached = m::maint_cells_detached.read();
  s.maint_task_latency = m::maint_task_latency.snapshot();

  const TraceSummary t = trace_summary();
  s.trace_records = t.records;
  s.trace_dropped = t.dropped;
  s.trace_enabled = tracing();
#endif
  return s;
}

namespace detail {

inline void json_u64(std::string& out, const char* key, std::uint64_t v,
                     bool comma = true) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
  if (comma) out += ',';
}

inline void json_hist(std::string& out, const char* key,
                      const HistogramSnapshot& h, bool comma = true) {
  out += '"';
  out += key;
  out += "\":{\"count\":";
  out += std::to_string(h.count);
  out += ",\"sum\":";
  out += std::to_string(h.sum);
  out += ",\"max\":";
  out += std::to_string(h.max);
  out += ",\"p50\":";
  out += std::to_string(h.percentile(0.50));
  out += ",\"p99\":";
  out += std::to_string(h.percentile(0.99));
  out += '}';
  if (comma) out += ',';
}

inline void text_hist(std::string& out, const char* label,
                      const HistogramSnapshot& h) {
  out += label;
  out += ": n=";
  out += std::to_string(h.count);
  out += " mean=";
  out += std::to_string(static_cast<std::uint64_t>(h.mean()));
  out += " p50=";
  out += std::to_string(h.percentile(0.50));
  out += " p99=";
  out += std::to_string(h.percentile(0.99));
  out += " max=";
  out += std::to_string(h.max);
  out += '\n';
}

}  // namespace detail

inline std::string StatsSnapshot::to_json() const {
  using detail::json_hist;
  using detail::json_u64;
  std::string o = "{";
  json_u64(o, "snapshots_taken", snapshots_taken);
  json_u64(o, "guards_taken", guards_taken);
  o += "\"guards_active\":" + std::to_string(guards_active) + ",";
  json_hist(o, "min_active_lag", min_active_lag);
  json_u64(o, "clock", clock);
  json_u64(o, "min_active", min_active);
  json_u64(o, "min_active_lag_now", min_active_lag_now);
  o += "\"live_pins\":" + std::to_string(live_pins) + ",";
  json_hist(o, "chain_length", chain_length);
  json_hist(o, "coalesce_run", coalesce_run);
  json_hist(o, "trim_run", trim_run);
  json_u64(o, "batch_drive_owner", batch_drive_owner);
  json_u64(o, "batch_drive_helper", batch_drive_helper);
  json_u64(o, "decide_committed", decide_committed);
  json_u64(o, "decide_aborted", decide_aborted);
  json_hist(o, "txn_validate_walk", txn_validate_walk);
  json_u64(o, "ebr_epoch", ebr_epoch);
  json_u64(o, "ebr_epoch_stalls", ebr_epoch_stalls);
  json_u64(o, "ebr_pending", ebr_pending);
  json_u64(o, "ebr_freed", ebr_freed);
  json_u64(o, "maint_tasks_run", maint_tasks_run);
  json_u64(o, "maint_tasks_dropped", maint_tasks_dropped);
  json_u64(o, "maint_hints", maint_hints);
  json_u64(o, "maint_sweeps", maint_sweeps);
  json_u64(o, "maint_cells_visited", maint_cells_visited);
  json_u64(o, "maint_versions_trimmed", maint_versions_trimmed);
  json_u64(o, "maint_versions_coalesced", maint_versions_coalesced);
  json_u64(o, "maint_aborted_unlinked", maint_aborted_unlinked);
  json_u64(o, "maint_cells_detached", maint_cells_detached);
  json_u64(o, "maint_queue_depth", maint_queue_depth);
  json_hist(o, "maint_task_ns", maint_task_latency);
  json_u64(o, "trace_records", trace_records);
  json_u64(o, "trace_dropped", trace_dropped);
  o += "\"trace_enabled\":";
  o += trace_enabled ? "true" : "false";
  o += '}';
  return o;
}

inline std::string StatsSnapshot::to_text() const {
  using detail::text_hist;
  std::string o;
  o += "== camera ==\n";
  o += "snapshots_taken: " + std::to_string(snapshots_taken) + '\n';
  o += "guards: taken=" + std::to_string(guards_taken) +
       " active=" + std::to_string(guards_active) + '\n';
  o += "clock=" + std::to_string(clock) +
       " min_active=" + std::to_string(min_active) +
       " lag=" + std::to_string(min_active_lag_now) +
       " live_pins=" + std::to_string(live_pins) + '\n';
  text_hist(o, "min_active_lag(ticks)", min_active_lag);
  o += "== vcas ==\n";
  text_hist(o, "chain_length", chain_length);
  text_hist(o, "coalesce_run", coalesce_run);
  text_hist(o, "trim_run", trim_run);
  o += "== batch/txn ==\n";
  o += "drive: owner=" + std::to_string(batch_drive_owner) +
       " helper=" + std::to_string(batch_drive_helper) + '\n';
  o += "decide: committed=" + std::to_string(decide_committed) +
       " aborted=" + std::to_string(decide_aborted) + '\n';
  text_hist(o, "txn_validate_walk", txn_validate_walk);
  o += "== ebr ==\n";
  o += "epoch=" + std::to_string(ebr_epoch) +
       " stalls=" + std::to_string(ebr_epoch_stalls) +
       " pending=" + std::to_string(ebr_pending) +
       " freed=" + std::to_string(ebr_freed) + '\n';
  o += "== maint ==\n";
  o += "tasks: run=" + std::to_string(maint_tasks_run) +
       " dropped=" + std::to_string(maint_tasks_dropped) +
       " hints=" + std::to_string(maint_hints) +
       " sweeps=" + std::to_string(maint_sweeps) +
       " queue_depth=" + std::to_string(maint_queue_depth) + '\n';
  o += "gc: visited=" + std::to_string(maint_cells_visited) +
       " trimmed=" + std::to_string(maint_versions_trimmed) +
       " coalesced=" + std::to_string(maint_versions_coalesced) +
       " aborts_unlinked=" + std::to_string(maint_aborted_unlinked) +
       " cells_detached=" + std::to_string(maint_cells_detached) + '\n';
  text_hist(o, "task_latency(ns)", maint_task_latency);
  o += "== trace ==\n";
  o += std::string("enabled=") + (trace_enabled ? "yes" : "no") +
       " records=" + std::to_string(trace_records) +
       " dropped=" + std::to_string(trace_dropped) + '\n';
  return o;
}

}  // namespace vcas::obs
