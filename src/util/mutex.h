// std::mutex wrapped with clang thread-safety-analysis capabilities, so
// -Wthread-safety (CI's clang leg) can statically check the lock/guarded-
// field contracts declared with VCAS_GUARDED_BY. libstdc++'s std::mutex
// carries no capability attribute, hence the wrapper; under GCC (or any
// compiler without the attributes) this is byte-for-byte a std::mutex.
//
// CondVar rounds out the story: std::condition_variable's wait API is
// welded to std::unique_lock<std::mutex>, which would force any condvar-
// guarded state (maint/maintenance.h's stop flag) back onto a raw
// std::mutex outside the analysis. condition_variable_any only needs
// BasicLockable, which Mutex satisfies, so waiting through this wrapper
// keeps the guarded fields inside -Wthread-safety.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/annotations.h"

namespace vcas::util {

class VCAS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() VCAS_ACQUIRE() { mu_.lock(); }
  void unlock() VCAS_RELEASE() { mu_.unlock(); }
  bool try_lock() VCAS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// Condition variable over util::Mutex (condition_variable_any, which takes
// any BasicLockable). The wait entry points carry VCAS_REQUIRES(mu): the
// analysis checks the caller holds the mutex, exactly as the runtime
// contract demands; the internal unlock/relock inside the std wait is
// opaque to the analysis, which matches reality (the lock IS held again
// when the wait returns).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) VCAS_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& d)
      VCAS_REQUIRES(mu) {
    return cv_.wait_for(mu, d);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

// RAII guard, the annotated analogue of std::lock_guard<std::mutex>.
class VCAS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) VCAS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() VCAS_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace vcas::util
