// std::mutex wrapped with clang thread-safety-analysis capabilities, so
// -Wthread-safety (CI's clang leg) can statically check the lock/guarded-
// field contracts declared with VCAS_GUARDED_BY. libstdc++'s std::mutex
// carries no capability attribute, hence the wrapper; under GCC (or any
// compiler without the attributes) this is byte-for-byte a std::mutex.
//
// The condvar mutex in maint/maintenance.h stays a raw std::mutex: the
// std::condition_variable wait API is welded to std::unique_lock
// <std::mutex>, and its one guarded flag is documented in place.
#pragma once

#include <mutex>

#include "util/annotations.h"

namespace vcas::util {

class VCAS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() VCAS_ACQUIRE() { mu_.lock(); }
  void unlock() VCAS_RELEASE() { mu_.unlock(); }
  bool try_lock() VCAS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII guard, the annotated analogue of std::lock_guard<std::mutex>.
class VCAS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) VCAS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() VCAS_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace vcas::util
