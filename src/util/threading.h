// Process-wide thread slot registry.
//
// Lock-free memory reclamation and snapshot announcement both need a dense
// per-thread index into fixed-size shared arrays. A slot is claimed the
// first time a thread touches the library and recycled when the thread
// exits, so short-lived benchmark threads do not exhaust the table.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "util/padded.h"

namespace vcas::util {

// Upper bound on threads concurrently inside the library. The paper's
// machine exposes 144 hyperthreads; we leave headroom.
inline constexpr int kMaxThreads = 192;

namespace detail {

inline std::atomic<bool>& slot_in_use(int i) {
  static Padded<std::atomic<bool>> slots[kMaxThreads];
  return slots[i].value;
}

struct SlotHandle {
  int id = -1;
  SlotHandle() {
    // Slots only free up when a claiming thread exits, so a full sweep
    // finding nothing means the table is (at least momentarily) exhausted.
    // Sweep a generous bounded number of times — yielding between sweeps so
    // threads mid-exit can release — then fail LOUDLY: more than
    // kMaxThreads concurrent threads is a configuration error, and the old
    // unbounded loop livelocked here silently with no way to diagnose it.
    constexpr int kSweeps = 4096;
    for (int sweep = 0; sweep < kSweeps; ++sweep) {
      for (int i = 0; i < kMaxThreads; ++i) {
        bool expected = false;
        if (slot_in_use(i).compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
          id = i;
          return;
        }
      }
      std::this_thread::yield();
    }
    std::fprintf(stderr,
                 "vcas::util::thread_slot: all %d thread slots are in use; "
                 "more than kMaxThreads threads entered the library "
                 "concurrently (raise kMaxThreads in src/util/threading.h "
                 "or cap your thread count)\n",
                 kMaxThreads);
    std::abort();
  }
  ~SlotHandle() {
    if (id >= 0) slot_in_use(id).store(false, std::memory_order_release);
  }
};

}  // namespace detail

// Dense id in [0, kMaxThreads) for the calling thread, stable until exit.
// Aborts (loudly) if the registry is exhausted — see SlotHandle.
inline int thread_slot() {
  thread_local detail::SlotHandle handle;
  return handle.id;
}

}  // namespace vcas::util
