// Process-wide thread slot registry.
//
// Lock-free memory reclamation and snapshot announcement both need a dense
// per-thread index into fixed-size shared arrays. A slot is claimed the
// first time a thread touches the library and recycled when the thread
// exits, so short-lived benchmark threads do not exhaust the table.
//
// Tenure generations. Each occupancy of a slot is a TENURE, numbered by a
// per-slot generation counter that increments exactly once per tenure END.
// Ending a tenure is a CAS race (claim_tenure_end) between everything that
// may legitimately end it — the owning thread's exit destructors (EBR's
// ExitHook, then SlotHandle as fallback) and, new with fault-injection, a
// third party reclaiming the slot of a thread that declared itself dead
// mid-protocol (ebr::try_advance's stall containment). Exactly one claimant
// wins; it performs the slot's cleanup and then finish_tenure_end releases
// the slot for reuse. The generation check is what makes third-party
// reclamation safe against recycling: a reclaimer holding (slot, gen) from
// a dead thread's last tenure can never end the NEXT tenant's tenure —
// its CAS expects the old generation and fails.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "util/annotations.h"
#include "util/padded.h"

namespace vcas::util {

// Upper bound on threads concurrently inside the library. The paper's
// machine exposes 144 hyperthreads; we leave headroom.
inline constexpr int kMaxThreads = 192;

namespace detail {

inline std::atomic<bool>& slot_in_use(int i) {
  static Padded<std::atomic<bool>> slots[kMaxThreads];
  return slots[i].value;
}

// Per-slot tenure generation; see the header comment. Incremented exactly
// once per tenure end, by claim_tenure_end's winning CAS.
inline std::atomic<std::uint64_t>& slot_gen(int i) {
  static Padded<std::atomic<std::uint64_t>> gens[kMaxThreads];
  return gens[i].value;
}

// Highest slot index ever claimed, plus one. Lets the O(kMaxThreads) scans
// (EBR reservations, camera announcements) touch only slots that have ever
// been live instead of the full table — a process that peaks at 8 threads
// scans 8 slots, not 192.
inline std::atomic<int>& slot_high_water_atomic() {
  static std::atomic<int> hw{0};
  return hw;
}

// End-of-tenure arbitration (see header comment). The acq_rel CAS makes
// the winner's subsequent cleanup of the slot's shared state (EBR limbo,
// reservations) well-ordered against the NEXT tenant's first use: the next
// claim happens only after finish_tenure_end's release store, which the
// claiming CAS in SlotHandle acquires.
inline bool claim_tenure_end_impl(int slot, std::uint64_t gen) {
  std::uint64_t expected = gen;
  return slot_gen(slot).compare_exchange_strong(expected, gen + 1,
                                                std::memory_order_acq_rel)
      VCAS_ORD("slot.tenure");
}

inline void finish_tenure_end_impl(int slot) {
  slot_in_use(slot).store(false, std::memory_order_release);
}

struct SlotHandle {
  int id = -1;
  std::uint64_t gen = 0;
  SlotHandle() {
    // Slots only free up when a claiming thread exits, so a full sweep
    // finding nothing means the table is (at least momentarily) exhausted.
    // Sweep a generous bounded number of times — yielding between sweeps so
    // threads mid-exit can release — then fail LOUDLY: more than
    // kMaxThreads concurrent threads is a configuration error, and the old
    // unbounded loop livelocked here silently with no way to diagnose it.
    constexpr int kSweeps = 4096;
    for (int sweep = 0; sweep < kSweeps; ++sweep) {
      for (int i = 0; i < kMaxThreads; ++i) {
        bool expected = false;
        if (slot_in_use(i).compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)
                VCAS_ORD("slot.claim")) {
          id = i;
          // This tenure's generation: stable until the tenure-end CAS, and
          // the token every legitimate tenure-ender must present.
          gen = slot_gen(i).load(std::memory_order_acquire);
          // seq_cst RMW: the bump must precede, in the seq_cst total order,
          // everything this thread later publishes through its slot
          // (announcements, epoch reservations). Scanners exploit that: a
          // scan that misses this bump proves the slot's first publication
          // is ordered after the scan, which every scanner tolerates (see
          // Camera::min_active). One RMW per thread lifetime — not hot.
          std::atomic<int>& hw = slot_high_water_atomic();
          int seen = hw.load(std::memory_order_relaxed);
          while (seen < i + 1 &&
                 !hw.compare_exchange_weak(seen, i + 1,
                                           std::memory_order_seq_cst)
                     VCAS_ORD("slot.high-water")) {
          }
          return;
        }
      }
      std::this_thread::yield();
    }
    std::fprintf(stderr,
                 "vcas::util::thread_slot: all %d thread slots are in use; "
                 "more than kMaxThreads threads entered the library "
                 "concurrently (raise kMaxThreads in src/util/threading.h "
                 "or cap your thread count)\n",
                 kMaxThreads);
    std::abort();
  }
  ~SlotHandle() {
    // Fallback tenure-ender: EBR's ExitHook (destroyed before this handle —
    // thread_locals destruct in reverse construction order, and the hook is
    // armed after the handle exists) normally wins the claim and releases
    // the slot after orphaning the thread's limbo. This path only wins for
    // threads that never armed the hook, or loses harmlessly when a stall
    // reclaimer already ended a declared-dead tenure.
    if (id >= 0 && claim_tenure_end_impl(id, gen)) {
      finish_tenure_end_impl(id);
    }
  }
};

}  // namespace detail

// Increment for slot-local stats counters: written only by the slot's
// owning thread, read cross-thread by stats aggregators, so a relaxed
// load+store is race-free and keeps the hot path off shared RMWs. If a
// counter ever gains multiple writers, switch ITS call sites to
// fetch_add.
inline void bump_counter(std::atomic<std::uint64_t>& c, std::uint64_t by = 1) {
  c.store(c.load(std::memory_order_relaxed) + by, std::memory_order_relaxed);
}

namespace detail {
inline SlotHandle& slot_handle() {
  thread_local SlotHandle handle;
  return handle;
}
}  // namespace detail

// Dense id in [0, kMaxThreads) for the calling thread, stable until exit.
// Aborts (loudly) if the registry is exhausted — see SlotHandle.
inline int thread_slot() { return detail::slot_handle().id; }

// The calling thread's tenure generation for its own slot (see the tenure
// protocol in the header comment). Constant for the thread's lifetime.
inline std::uint64_t thread_slot_gen() { return detail::slot_handle().gen; }

// Tenure-end arbitration for slot `slot`'s tenure `gen` — the third-party
// entry point used by EBR's exit hook and its dead-thread stall reclaimer.
// True means the caller now OWNS the end of that tenure: it must clean up
// the slot's shared per-thread state and then call finish_tenure_end to
// release the slot. False means some other claimant ended it (or the slot
// already belongs to a later tenant); the caller must not touch the slot.
inline bool claim_tenure_end(int slot, std::uint64_t gen) {
  return detail::claim_tenure_end_impl(slot, gen);
}

inline void finish_tenure_end(int slot) { detail::finish_tenure_end_impl(slot); }

// Current tenure generation of `slot` (racy snapshot; exact only for the
// slot's own thread or a quiescent slot).
inline std::uint64_t slot_tenure(int slot) {
  return detail::slot_gen(slot).load(std::memory_order_acquire);
}

// Upper bound (exclusive) on every slot id ever handed out. Slot ids are
// claimed lowest-free-first and the mark never decreases, so scanning
// [0, slot_high_water()) covers every slot that can carry a published
// announcement or reservation; see the seq_cst note in SlotHandle for why
// a concurrent first-time claimant missed by the load is harmless.
inline int slot_high_water() {
  return detail::slot_high_water_atomic().load(std::memory_order_seq_cst)
      VCAS_ORD("slot.high-water");
}

}  // namespace vcas::util
