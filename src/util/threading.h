// Process-wide thread slot registry.
//
// Lock-free memory reclamation and snapshot announcement both need a dense
// per-thread index into fixed-size shared arrays. A slot is claimed the
// first time a thread touches the library and recycled when the thread
// exits, so short-lived benchmark threads do not exhaust the table.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "util/annotations.h"
#include "util/padded.h"

namespace vcas::util {

// Upper bound on threads concurrently inside the library. The paper's
// machine exposes 144 hyperthreads; we leave headroom.
inline constexpr int kMaxThreads = 192;

namespace detail {

inline std::atomic<bool>& slot_in_use(int i) {
  static Padded<std::atomic<bool>> slots[kMaxThreads];
  return slots[i].value;
}

// Highest slot index ever claimed, plus one. Lets the O(kMaxThreads) scans
// (EBR reservations, camera announcements) touch only slots that have ever
// been live instead of the full table — a process that peaks at 8 threads
// scans 8 slots, not 192.
inline std::atomic<int>& slot_high_water_atomic() {
  static std::atomic<int> hw{0};
  return hw;
}

struct SlotHandle {
  int id = -1;
  SlotHandle() {
    // Slots only free up when a claiming thread exits, so a full sweep
    // finding nothing means the table is (at least momentarily) exhausted.
    // Sweep a generous bounded number of times — yielding between sweeps so
    // threads mid-exit can release — then fail LOUDLY: more than
    // kMaxThreads concurrent threads is a configuration error, and the old
    // unbounded loop livelocked here silently with no way to diagnose it.
    constexpr int kSweeps = 4096;
    for (int sweep = 0; sweep < kSweeps; ++sweep) {
      for (int i = 0; i < kMaxThreads; ++i) {
        bool expected = false;
        if (slot_in_use(i).compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)
                VCAS_ORD("slot.claim")) {
          id = i;
          // seq_cst RMW: the bump must precede, in the seq_cst total order,
          // everything this thread later publishes through its slot
          // (announcements, epoch reservations). Scanners exploit that: a
          // scan that misses this bump proves the slot's first publication
          // is ordered after the scan, which every scanner tolerates (see
          // Camera::min_active). One RMW per thread lifetime — not hot.
          std::atomic<int>& hw = slot_high_water_atomic();
          int seen = hw.load(std::memory_order_relaxed);
          while (seen < i + 1 &&
                 !hw.compare_exchange_weak(seen, i + 1,
                                           std::memory_order_seq_cst)
                     VCAS_ORD("slot.high-water")) {
          }
          return;
        }
      }
      std::this_thread::yield();
    }
    std::fprintf(stderr,
                 "vcas::util::thread_slot: all %d thread slots are in use; "
                 "more than kMaxThreads threads entered the library "
                 "concurrently (raise kMaxThreads in src/util/threading.h "
                 "or cap your thread count)\n",
                 kMaxThreads);
    std::abort();
  }
  ~SlotHandle() {
    if (id >= 0) slot_in_use(id).store(false, std::memory_order_release);
  }
};

}  // namespace detail

// Increment for slot-local stats counters: written only by the slot's
// owning thread, read cross-thread by stats aggregators, so a relaxed
// load+store is race-free and keeps the hot path off shared RMWs. If a
// counter ever gains multiple writers, switch ITS call sites to
// fetch_add.
inline void bump_counter(std::atomic<std::uint64_t>& c, std::uint64_t by = 1) {
  c.store(c.load(std::memory_order_relaxed) + by, std::memory_order_relaxed);
}

// Dense id in [0, kMaxThreads) for the calling thread, stable until exit.
// Aborts (loudly) if the registry is exhausted — see SlotHandle.
inline int thread_slot() {
  thread_local detail::SlotHandle handle;
  return handle.id;
}

// Upper bound (exclusive) on every slot id ever handed out. Slot ids are
// claimed lowest-free-first and the mark never decreases, so scanning
// [0, slot_high_water()) covers every slot that can carry a published
// announcement or reservation; see the seq_cst note in SlotHandle for why
// a concurrent first-time claimant missed by the load is harmless.
inline int slot_high_water() {
  return detail::slot_high_water_atomic().load(std::memory_order_seq_cst)
      VCAS_ORD("slot.high-water");
}

}  // namespace vcas::util
