// Process-wide thread slot registry.
//
// Lock-free memory reclamation and snapshot announcement both need a dense
// per-thread index into fixed-size shared arrays. A slot is claimed the
// first time a thread touches the library and recycled when the thread
// exits, so short-lived benchmark threads do not exhaust the table.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/padded.h"

namespace vcas::util {

// Upper bound on threads concurrently inside the library. The paper's
// machine exposes 144 hyperthreads; we leave headroom.
inline constexpr int kMaxThreads = 192;

namespace detail {

inline std::atomic<bool>& slot_in_use(int i) {
  static Padded<std::atomic<bool>> slots[kMaxThreads];
  return slots[i].value;
}

struct SlotHandle {
  int id = -1;
  SlotHandle() {
    for (int i = 0;; i = (i + 1) % kMaxThreads) {
      bool expected = false;
      if (slot_in_use(i).compare_exchange_strong(expected, true,
                                                 std::memory_order_acq_rel)) {
        id = i;
        return;
      }
    }
  }
  ~SlotHandle() { slot_in_use(id).store(false, std::memory_order_release); }
};

}  // namespace detail

// Dense id in [0, kMaxThreads) for the calling thread, stable until exit.
inline int thread_slot() {
  thread_local detail::SlotHandle handle;
  return handle.id;
}

}  // namespace vcas::util
