// Zero-cost source annotations backing the concurrency contract that
// tools/vcas_lint.py machine-checks (see docs/memory_model.md).
//
// Two families live here:
//
//  1. VCAS_ORD("tag") — marks a *strong* atomic site (seq_cst, acq_rel, or
//     any atomic_thread_fence) and names the audit-manifest entry that
//     justifies it. The macro expands to nothing in every build; it exists
//     purely so the linter can resolve the tag, two-way, against
//     tools/lint/memory_order_audit.toml. Place it directly after the
//     strong expression, inside the same statement:
//
//         clock_.store(v, std::memory_order_seq_cst) VCAS_ORD("cam.clock");
//         if (head_.load(std::memory_order_seq_cst) VCAS_ORD("vc.head")) ...
//
//     Because it expands to nothing it is legal in any expression position
//     (trailing a call, inside a condition, in a for-init clause). The tag
//     must exist in the manifest, the manifest entry must list this file,
//     and every manifest tag/file pair must be used somewhere — orphans in
//     either direction fail `tools/vcas_lint.py src`.
//
//  2. Clang thread-safety-analysis attributes (-Wthread-safety), expanded
//     only where the attribute is supported so GCC builds are untouched.
//     Spelling follows the LLVM mutex.h reference header.
#pragma once

// --- memory-order audit tags -------------------------------------------------

// Expands to nothing; consumed by tools/vcas_lint.py. `tag` must be a string
// literal naming an entry in tools/lint/memory_order_audit.toml.
#define VCAS_ORD(tag)

// --- clang -Wthread-safety attributes ---------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define VCAS_TSA_HAS(x) __has_attribute(x)
#else
#define VCAS_TSA_HAS(x) 0
#endif

#if VCAS_TSA_HAS(guarded_by)
#define VCAS_TSA(x) __attribute__((x))
#else
#define VCAS_TSA(x)
#endif

// A type that can be held/released (std::mutex already carries these in
// libc++; we annotate our own wrappers and fields).
#define VCAS_CAPABILITY(name) VCAS_TSA(capability(name))
#define VCAS_SCOPED_CAPABILITY VCAS_TSA(scoped_lockable)

// Field annotations.
#define VCAS_GUARDED_BY(mu) VCAS_TSA(guarded_by(mu))
#define VCAS_PT_GUARDED_BY(mu) VCAS_TSA(pt_guarded_by(mu))

// Function annotations.
#define VCAS_REQUIRES(...) VCAS_TSA(requires_capability(__VA_ARGS__))
#define VCAS_ACQUIRE(...) VCAS_TSA(acquire_capability(__VA_ARGS__))
#define VCAS_RELEASE(...) VCAS_TSA(release_capability(__VA_ARGS__))
#define VCAS_TRY_ACQUIRE(...) VCAS_TSA(try_acquire_capability(__VA_ARGS__))
#define VCAS_EXCLUDES(...) VCAS_TSA(locks_excluded(__VA_ARGS__))
#define VCAS_NO_TSA VCAS_TSA(no_thread_safety_analysis)
