// Deterministic per-thread random number generation for workloads.
//
// Benchmarks need a generator that is (a) fast enough not to dominate the
// measured operation, (b) independently seedable per thread, and
// (c) reproducible across runs. xoshiro256** satisfies all three;
// std::mt19937 is too slow to sit inside a throughput loop.
#pragma once

#include <array>
#include <cstdint>
#include <cmath>
#include <vector>

namespace vcas::util {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding: decorrelates nearby seeds.
    std::uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      word = x ^ (x >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Lemire's multiply-shift rejection-free
  // approximation: a negligible modulo bias is acceptable for workloads.
  std::uint64_t next_in(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_in(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

// Zipfian generator over [1, n] with parameter theta, using the standard
// Gray/Jim Gray "quick zipf" transform. Precomputes the normalization
// constants once; draws are O(1).
class Zipf {
 public:
  Zipf(std::uint64_t n, double theta, std::uint64_t seed = 1)
      : n_(n), theta_(theta), rng_(seed) {
    zetan_ = zeta(n, theta);
    const double zeta2 = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / zetan_);
  }

  std::uint64_t next() {
    const double u = rng_.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 1;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 2;
    return 1 + static_cast<std::uint64_t>(
                   static_cast<double>(n_) *
                   std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  Xoshiro256 rng_;
};

}  // namespace vcas::util
