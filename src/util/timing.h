// Minimal wall-clock timing for benchmarks.
#pragma once

#include <chrono>
#include <cstdint>

namespace vcas::util {

inline std::int64_t now_nanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class Timer {
 public:
  Timer() : start_(now_nanos()) {}
  void reset() { start_ = now_nanos(); }
  std::int64_t elapsed_nanos() const { return now_nanos() - start_; }
  double elapsed_seconds() const {
    return static_cast<double>(elapsed_nanos()) * 1e-9;
  }

 private:
  std::int64_t start_;
};

}  // namespace vcas::util
