// Per-thread slab freelists for fixed-size blocks (the write-path recycling
// substrate; ISSUE 4).
//
// Every successful vCAS allocates one VNode and every trim/coalesce retires
// one, so under write-heavy load the old `new`/`delete` pair was a
// malloc/free round-trip per update. SlabPool turns that into pointer pops
// on a thread-local freelist:
//
//   allocate():  pop the calling thread's cache; refill from the shared
//                freelist; only when both are empty carve a fresh SLAB
//                (kBlocksPerSlab blocks in one operator-new call).
//   deallocate(): push onto the calling thread's cache; overflow and
//                thread exit flush to the shared freelist, so blocks freed
//                by one thread feed every other thread's allocations.
//
// Reclamation-safety contract: SlabPool recycles ADDRESSES immediately —
// it must only ever be fed blocks whose grace period has already passed.
// VersionedCAS routes every retired VNode through ebr::retire, whose
// 3-epoch rule guarantees no pinned reader still holds the pointer by the
// time the deleter pushes it here; that is what keeps install_over's
// pointer-identity (ABA) argument intact even though addresses recur.
// (Unpublished nodes — a lost CAS's scratch node — may be pushed directly:
// no other thread ever saw the address in its current life.)
//
// Slabs themselves are never returned to the OS mid-run; they are owned by
// a per-size-class registry and freed at process exit, so a long run's
// memory footprint is the high-water mark of LIVE blocks, not of total
// allocations.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "util/annotations.h"
#include "util/mutex.h"
#include "util/padded.h"
#include "util/threading.h"

namespace vcas::util {

// Aggregated over every block size class. Monotone counters; sample before
// and after a phase and diff (benches do exactly that).
struct PoolStats {
  std::uint64_t allocs;      // blocks handed out
  std::uint64_t frees;       // blocks returned (recycled for future allocs)
  std::uint64_t slabs;       // slabs carved from the OS allocator
  std::uint64_t slab_bytes;  // bytes obtained from the OS allocator
};

namespace detail {

// Counters are per thread slot, summed on read: alloc/free run once per
// WRITE on the store's hot path, and a shared fetch_add there would put a
// contended cache line in every writer's critical path (measured as a
// multi-writer throughput collapse in bench_write_churn). Each slot is
// written by its owning thread only (relaxed atomics make the cross-thread
// sum race-free); slot recycling keeps the totals exact because counters
// are cumulative per slot, not per thread.
struct PoolCounterSlot {
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> frees{0};
  std::atomic<std::uint64_t> slabs{0};
  std::atomic<std::uint64_t> slab_bytes{0};
};

inline Padded<PoolCounterSlot>* pool_counters() {
  static Padded<PoolCounterSlot> counters[kMaxThreads];
  return counters;
}

inline PoolCounterSlot& my_pool_counter() {
  return pool_counters()[thread_slot()].value;
}

}  // namespace detail

inline PoolStats pool_stats() {
  PoolStats s{0, 0, 0, 0};
  const Padded<detail::PoolCounterSlot>* counters = detail::pool_counters();
  const int live = slot_high_water();
  for (int i = 0; i < live; ++i) {
    s.allocs += counters[i].value.allocs.load(std::memory_order_relaxed);
    s.frees += counters[i].value.frees.load(std::memory_order_relaxed);
    s.slabs += counters[i].value.slabs.load(std::memory_order_relaxed);
    s.slab_bytes +=
        counters[i].value.slab_bytes.load(std::memory_order_relaxed);
  }
  return s;
}

// One pool per (BlockSize, Align) pair; all VersionedCAS<T> instantiations
// with equal VNode size share a pool.
//
// Free blocks are tracked as POINTER VECTORS, not intrusive linked lists:
// pushing and popping never touches the block itself, so a cold block
// (retired an epoch-stall ago and long evicted) costs no cache miss until
// the caller actually constructs in it — and the pop path prefetches the
// next block's line one allocation ahead, hiding even that. An intrusive
// list, by contrast, takes a dependent-load miss per hop the moment the
// freelist goes cold (measured as most of the coalescing write path's
// overhead in bench_write_churn).
template <std::size_t BlockSize, std::size_t Align = alignof(std::max_align_t)>
class SlabPool {
  static constexpr std::size_t kPayload = BlockSize > 1 ? BlockSize : 1;
  static constexpr std::size_t kStride = (kPayload + Align - 1) / Align * Align;
  static constexpr std::size_t kBlocksPerSlab = 64;
  // Local-cache overflow threshold; donating the COLD half (the bottom of
  // the LIFO) keeps recently freed, still-warm blocks local while feeding
  // cross-thread consumers.
  static constexpr std::size_t kLocalMax = 512;

 public:
  static void* allocate() {
    LocalCache& c = local();
    if (c.blocks.empty()) refill(c);
    void* b = c.blocks.back();
    c.blocks.pop_back();
    // Warm the next pop's target while the caller works on this one.
    if (!c.blocks.empty()) __builtin_prefetch(c.blocks.back(), 1);
    bump_counter(detail::my_pool_counter().allocs);
    return b;
  }

  static void deallocate(void* p) {
    LocalCache& c = local();
    c.blocks.push_back(p);
    if (c.blocks.size() > kLocalMax) flush_cold_half(c);
    bump_counter(detail::my_pool_counter().frees);
  }

  // Test/bench introspection: blocks sitting idle in this thread's cache.
  static std::size_t local_cached_for_tests() { return local().blocks.size(); }

 private:
  struct Global {
    Mutex mu;
    std::vector<void*> blocks VCAS_GUARDED_BY(mu);
    std::vector<void*> slabs VCAS_GUARDED_BY(mu);

    // Lock-free by construction, not by locking: static destruction is
    // single-threaded, so the analysis is waived here.
    ~Global() VCAS_NO_TSA {
      // Process exit; every thread_local cache has flushed (thread-local
      // destructors run before static destructors). Freeing the slabs here
      // keeps ASan/LSan output clean without tracking per-block liveness.
      for (void* s : slabs) {
        if constexpr (Align > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
          ::operator delete(s, std::align_val_t{Align});
        } else {
          ::operator delete(s);
        }
      }
    }
  };

  struct LocalCache {
    std::vector<void*> blocks;  // LIFO: back = most recently freed

    ~LocalCache() {
      // Thread exit: hand every cached block to the shared freelist so a
      // short-lived thread's slabs are adopted instead of stranded
      // (recycling_test.cc: ThreadExitOrphanedBlocksAreAdopted).
      if (blocks.empty()) return;
      Global& g = global();
      MutexLock lock(g.mu);
      g.blocks.insert(g.blocks.end(), blocks.begin(), blocks.end());
      blocks.clear();
      blocks.shrink_to_fit();
    }
  };

  static Global& global() {
    static Global g;
    return g;
  }

  static LocalCache& local() {
    thread_local LocalCache c;
    return c;
  }

  // Grab a batch from the shared freelist, or carve a fresh slab. Fresh
  // slabs enter the cache in address order, so first use walks memory
  // sequentially (hardware-prefetch friendly), exactly like a bump
  // allocator would.
  static void refill(LocalCache& c) {
    Global& g = global();
    {
      MutexLock lock(g.mu);
      if (!g.blocks.empty()) {
        const std::size_t take =
            g.blocks.size() < kBlocksPerSlab ? g.blocks.size()
                                             : kBlocksPerSlab;
        c.blocks.insert(c.blocks.end(), g.blocks.end() - take,
                        g.blocks.end());
        g.blocks.resize(g.blocks.size() - take);
        return;
      }
    }
    void* slab;
    if constexpr (Align > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      slab = ::operator new(kStride * kBlocksPerSlab, std::align_val_t{Align});
    } else {
      slab = ::operator new(kStride * kBlocksPerSlab);
    }
    bump_counter(detail::my_pool_counter().slabs);
    bump_counter(detail::my_pool_counter().slab_bytes,
                 kStride * kBlocksPerSlab);
    {
      MutexLock lock(g.mu);
      g.slabs.push_back(slab);
    }
    char* base = static_cast<char*>(slab);
    // Reverse order: back() pops lowest address first, ascending from there.
    for (std::size_t i = kBlocksPerSlab; i-- > 0;) {
      c.blocks.push_back(base + i * kStride);
    }
  }

  static void flush_cold_half(LocalCache& c) {
    // Donate the BOTTOM half — the blocks that have sat longest and are
    // least likely to still be cached here.
    const std::size_t donate = c.blocks.size() / 2;
    Global& g = global();
    {
      MutexLock lock(g.mu);
      g.blocks.insert(g.blocks.end(), c.blocks.begin(),
                      c.blocks.begin() + static_cast<std::ptrdiff_t>(donate));
    }
    c.blocks.erase(c.blocks.begin(),
                   c.blocks.begin() + static_cast<std::ptrdiff_t>(donate));
  }
};

}  // namespace vcas::util
