// Sense-reversing spin barrier.
//
// Benchmarks must release all worker threads at the same instant; a mutex +
// condvar barrier adds scheduler wakeup jitter that skews short runs. On an
// oversubscribed machine pure spinning deadlocks-by-starvation, so the wait
// loop yields.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "util/annotations.h"

namespace vcas::util {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t parties)
      : parties_(parties), remaining_(parties) {}

  void arrive_and_wait() {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel)
            VCAS_ORD("util.barrier.arrive") == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        std::this_thread::yield();
      }
    }
  }

 private:
  const std::uint32_t parties_;
  std::atomic<std::uint32_t> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace vcas::util
