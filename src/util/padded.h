// Cache-line padding helpers.
//
// Per-thread slots that live in shared arrays (epoch reservations, snapshot
// era pins, throughput counters) must not share cache lines, or the
// coherence traffic from one thread's writes slows every other thread's
// reads. `Padded<T>` rounds a value up to one cache line.
#pragma once

#include <cstddef>


namespace vcas::util {

// Fixed 64 rather than std::hardware_destructive_interference_size: the
// trait's value shifts with -mtune, which would make the struct layout part
// of an unstable ABI (and gcc warns accordingly). All targets here are
// x86-64/aarch64 with 64-byte lines.
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
struct alignas(kCacheLine) Padded {
  T value{};

  Padded() = default;
  explicit Padded(const T& v) : value(v) {}

  T& operator*() { return value; }
  const T& operator*() const { return value; }
  T* operator->() { return &value; }
  const T* operator->() const { return &value; }

 private:
  // Ensure the struct occupies at least a full line even when T is small.
  char pad_[kCacheLine > sizeof(T) ? kCacheLine - sizeof(T) : 1]{};
};

}  // namespace vcas::util
