// Low-bit pointer marking, as used by Harris's linked list (the delete mark
// lives in bit 0 of the successor pointer so that mark+pointer are a single
// CAS-able word).
#pragma once

#include <cstdint>

namespace vcas::util {

template <typename T>
inline bool is_marked(T* p) {
  return (reinterpret_cast<std::uintptr_t>(p) & 1u) != 0;
}

template <typename T>
inline T* with_mark(T* p) {
  return reinterpret_cast<T*>(reinterpret_cast<std::uintptr_t>(p) | 1u);
}

template <typename T>
inline T* without_mark(T* p) {
  return reinterpret_cast<T*>(reinterpret_cast<std::uintptr_t>(p) & ~std::uintptr_t{1});
}

}  // namespace vcas::util
