#!/usr/bin/env python3
"""Convert a VCTRACE1 binary ring dump into Chrome/Perfetto trace JSON.

The binary format is produced by vcas::obs::dump_trace() (src/obs/trace.cc):

    char[8]  magic "VCTRACE1"
    u32      version (1)
    u64 x4   anchor0 tsc, anchor0 ns, anchor1 tsc, anchor1 ns
    u32      event-name count; per name: u16 length + bytes (no NUL)
    u32      ring count; per ring:
               u32 slot, u64 total written, u64 dropped, u64 kept,
               16-byte records[kept] oldest -> newest
    record:  u64 tsc, u32 arg, u16 event id, u8 phase ('B'/'E'/'I'), u8 pad

All integers are little-endian. The two (tsc, wall-ns) anchors -- one taken
when tracing first turned on, one at dump time -- recover the TSC rate so
timestamps come out in microseconds, which is what the trace_event format
expects. Output loads directly in https://ui.perfetto.dev or
chrome://tracing.

Usage:
    tools/trace_export.py trace.bin trace.json
    tools/trace_export.py trace.bin -          # JSON to stdout

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import struct
import sys

MAGIC = b"VCTRACE1"
RECORD = struct.Struct("<QIHBB")


class ParseError(Exception):
    pass


class Reader:
    def __init__(self, data):
        self.data = data
        self.off = 0

    def take(self, n):
        if self.off + n > len(self.data):
            raise ParseError(
                "truncated dump: wanted %d bytes at offset %d, have %d"
                % (n, self.off, len(self.data) - self.off)
            )
        b = self.data[self.off : self.off + n]
        self.off += n
        return b

    def u16(self):
        return struct.unpack("<H", self.take(2))[0]

    def u32(self):
        return struct.unpack("<I", self.take(4))[0]

    def u64(self):
        return struct.unpack("<Q", self.take(8))[0]


def parse(data):
    r = Reader(data)
    if r.take(8) != MAGIC:
        raise ParseError("bad magic; not a VCTRACE1 dump")
    version = r.u32()
    if version != 1:
        raise ParseError("unsupported version %d" % version)

    anchor0_tsc, anchor0_ns = r.u64(), r.u64()
    anchor1_tsc, anchor1_ns = r.u64(), r.u64()

    names = []
    for _ in range(r.u32()):
        names.append(r.take(r.u16()).decode("utf-8", "replace"))

    rings = []
    for _ in range(r.u32()):
        slot = r.u32()
        written = r.u64()
        dropped = r.u64()
        kept = r.u64()
        recs = [RECORD.unpack_from(r.take(RECORD.size)) for _ in range(kept)]
        rings.append(
            {"slot": slot, "written": written, "dropped": dropped, "recs": recs}
        )

    # TSC ticks per nanosecond from the two anchors. A dump taken
    # immediately after enabling (or with zeroed anchors) can't recover a
    # rate; fall back to 1 tick == 1 ns so the export still loads.
    dt_tsc = anchor1_tsc - anchor0_tsc
    dt_ns = anchor1_ns - anchor0_ns
    ticks_per_ns = (dt_tsc / dt_ns) if dt_tsc > 0 and dt_ns > 0 else 1.0

    return {
        "names": names,
        "rings": rings,
        "anchor_tsc": anchor0_tsc,
        "ticks_per_ns": ticks_per_ns,
    }


def to_trace_events(parsed):
    names = parsed["names"]
    ticks_per_ns = parsed["ticks_per_ns"]

    all_recs = [rec for ring in parsed["rings"] for rec in ring["recs"]]
    base_tsc = min((rec[0] for rec in all_recs), default=parsed["anchor_tsc"])

    def us(tsc):
        return (tsc - base_tsc) / ticks_per_ns / 1000.0

    events = []
    for ring in parsed["rings"]:
        tid = ring["slot"]
        # Ring wraparound can strand 'E' records whose matching 'B' was
        # overwritten; an unmatched 'E' makes viewers misnest everything
        # after it, so track span depth and drop leading orphans.
        depth = 0
        for tsc, arg, event_id, phase, _ in ring["recs"]:
            name = (
                names[event_id] if event_id < len(names) else "ev%d" % event_id
            )
            ph = chr(phase)
            if ph == "B":
                depth += 1
            elif ph == "E":
                if depth == 0:
                    continue
                depth -= 1
            ev = {
                "name": name,
                "ph": "i" if ph == "I" else ph,
                "ts": us(tsc),
                "pid": 0,
                "tid": tid,
            }
            if ph == "I":
                ev["s"] = "t"
            if arg != 0:
                ev["args"] = {"arg": arg}
            events.append(ev)
        # Close any spans still open at dump time so the JSON is balanced.
        if ring["recs"]:
            end_ts = us(ring["recs"][-1][0])
            for _ in range(depth):
                events.append(
                    {
                        "name": "unclosed",
                        "ph": "E",
                        "ts": end_ts,
                        "pid": 0,
                        "tid": tid,
                    }
                )
    return events


def main():
    ap = argparse.ArgumentParser(
        description="Convert a vcas trace ring dump to Chrome/Perfetto JSON."
    )
    ap.add_argument("input", help="binary dump from VCAS_TRACE_OUT")
    ap.add_argument("output", help="output JSON path, or - for stdout")
    args = ap.parse_args()

    with open(args.input, "rb") as f:
        data = f.read()
    try:
        parsed = parse(data)
    except ParseError as e:
        print("error: %s" % e, file=sys.stderr)
        return 1

    events = to_trace_events(parsed)
    doc = {"traceEvents": events, "displayTimeUnit": "ns"}

    out = sys.stdout if args.output == "-" else open(args.output, "w")
    try:
        json.dump(doc, out)
        out.write("\n")
    except BrokenPipeError:
        return 0  # stdout consumer (head, less) closed early; not an error
    finally:
        if out is not sys.stdout:
            out.close()

    total_dropped = sum(r["dropped"] for r in parsed["rings"])
    print(
        "exported %d events from %d rings (%d dropped at capture)"
        % (len(events), len(parsed["rings"]), total_dropped),
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
