#!/usr/bin/env python3
"""vcas_lint — machine-checked concurrency contract for src/.

Stdlib-only (like trace_export.py). Lexes C++ well enough to reason about
tokens (comments/strings/preprocessor stripped or marked) and enforces the
repo's concurrency contract:

  explicit-order         every atomic load/store/exchange/fetch_*/CAS names an
                         explicit std::memory_order argument
  atomic-plain-op        no ++/--/compound-assign/plain = on declared atomics
  atomic-implicit-read   no implicit-conversion reads of declared atomics in
                         comparisons / boolean contexts (use .load(order))
  untagged-strong-site   every seq_cst / acq_rel / atomic_thread_fence site
                         carries VCAS_ORD("tag") in the same statement
  unknown-ord-tag        VCAS_ORD tag missing from memory_order_audit.toml
  ord-tag-wrong-file     tag used in a file its manifest entry does not list
  ord-tag-not-literal    VCAS_ORD argument is not a string literal
  ord-without-strong-site VCAS_ORD annotation with no strong site around it
  orphan-manifest-tag    manifest tag never used in the linted tree
  manifest-file-unused   manifest entry lists a file that never uses the tag
  protected-new          new of an EBR-retired/pooled type outside whitelist
  unwhitelisted-delete   raw delete statement not in the reclamation whitelist
  stale-delete-whitelist whitelist entry whose (file, stmt, count) no longer
                         matches the tree
  banned-volatile        volatile outside `asm volatile` / whitelist
  banned-sleep           sleeping primitives in src/ hot paths
  failpoint-not-literal  VCAS_FAILPOINT(_SKIP) argument is not a string literal
  unknown-failpoint-tag  failpoint tag missing from failpoints.toml
  failpoint-wrong-file   tag used in a file its manifest entry does not list
  orphan-failpoint-tag   failpoints.toml tag never used in the linted tree
  failpoint-manifest-file-unused
                         failpoints.toml entry lists a file that never uses
                         the tag

Suppress a diagnostic with `// vcas-lint: allow(rule-id)` on the same line or
on a comment line directly above.

Usage:
  tools/vcas_lint.py [options] PATH...
  tools/vcas_lint.py --emit-doc docs/memory_model.md src
  tools/vcas_lint.py --check-doc docs/memory_model.md src
  tools/vcas_lint.py --emit-fp-doc docs/failpoints.md src
  tools/vcas_lint.py --check-fp-doc docs/failpoints.md src

Options:
  --config-dir DIR      config root (default: tools/lint next to this script)
  --no-manifest-sync    skip the two-way manifest/whitelist completeness
                        checks (used by the negative-fixture harness, which
                        lints single files out of tree)
  --list-strong         report every strong site and its tags, then exit 0
"""

import argparse
import os
import sys
import tomllib

# --- lexer -------------------------------------------------------------------

MULTI_PUNCT = sorted(
    ["<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>",
     "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
     "&=", "|=", "^=", "##"],
    key=len, reverse=True)

ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
ID_CONT = ID_START | set("0123456789")


class Tok:
    __slots__ = ("kind", "val", "line", "pp")

    def __init__(self, kind, val, line, pp):
        self.kind = kind    # 'id' | 'num' | 'str' | 'char' | 'punct'
        self.val = val
        self.line = line
        self.pp = pp        # True if inside a preprocessor directive

    def __repr__(self):
        return f"{self.kind}:{self.val!r}@{self.line}"


def lex(text):
    """Returns (tokens, comments) where comments maps line -> comment text."""
    toks = []
    comments = {}
    i, n, line = 0, len(text), 1
    in_pp = False
    line_has_token = False

    def add_comment(ln, s):
        comments[ln] = comments.get(ln, "") + s

    while i < n:
        c = text[i]
        if c == "\n":
            if in_pp and (i == 0 or text[i - 1] != "\\"):
                in_pp = False
            line += 1
            line_has_token = False
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            add_comment(line, text[i:j])
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            seg = text[i:j]
            for k, part in enumerate(seg.split("\n")):
                add_comment(line + k, part)
            line += seg.count("\n")
            i = j
            continue
        if c == "#" and not line_has_token:
            in_pp = True
            toks.append(Tok("punct", "#", line, True))
            line_has_token = True
            i += 1
            continue
        # Raw string literal: R"delim( ... )delim"
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            j = text.find("(", i + 2)
            if j > 0:
                delim = text[i + 2:j]
                close = ")" + delim + '"'
                k = text.find(close, j + 1)
                k = n if k < 0 else k + len(close)
                seg = text[i:k]
                toks.append(Tok("str", seg, line, in_pp))
                line += seg.count("\n")
                line_has_token = True
                i = k
                continue
        if c == '"' or c == "'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            toks.append(Tok("str" if c == '"' else "char", text[i:j], line,
                            in_pp))
            line_has_token = True
            i = j
            continue
        if c in ID_START:
            j = i + 1
            while j < n and text[j] in ID_CONT:
                j += 1
            toks.append(Tok("id", text[i:j], line, in_pp))
            line_has_token = True
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j] in ID_CONT or text[j] in ".'"
                             or (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            toks.append(Tok("num", text[i:j], line, in_pp))
            line_has_token = True
            i = j
            continue
        for m in MULTI_PUNCT:
            if text.startswith(m, i):
                toks.append(Tok("punct", m, line, in_pp))
                i += len(m)
                break
        else:
            toks.append(Tok("punct", c, line, in_pp))
            i += 1
        line_has_token = True
    return toks, comments


def join_tokens(toks):
    """Pretty-print a token slice as compact C++ (whitelist stmt keys)."""
    out = []
    for t in toks:
        if out and (out[-1][-1] in ID_CONT and t.val[0] in ID_CONT):
            out.append(" ")
        out.append(t.val)
        if t.val == ",":
            out.append(" ")
    return "".join(out).strip()


# --- per-file analysis -------------------------------------------------------

ATOMIC_METHODS = {
    "load", "store", "exchange", "compare_exchange_weak",
    "compare_exchange_strong", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "test_and_set",
}
STRONG_ORDERS = {"memory_order_seq_cst", "memory_order_acq_rel"}
COMPOUND_ASSIGN = {"+=", "-=", "&=", "|=", "^=", "*=", "/=", "%=", "<<=",
                   ">>="}
SLEEP_IDS = {"sleep_for", "sleep_until", "usleep", "nanosleep", "sleep"}
FAILPOINT_IDS = {"VCAS_FAILPOINT", "VCAS_FAILPOINT_SKIP"}
BOUNDARY = {";", "{", "}"}


class FileReport:
    def __init__(self, path):
        self.path = path
        self.diags = []          # (line, rule, msg)
        self.ord_tags = []       # (tag, line)
        self.fp_tags = []        # (tag, line, macro)
        self.deletes = {}        # stmt text -> [lines]
        self.news = {}           # (type, stmt) -> [lines]
        self.strong_sites = []   # (line, kind, tags)


def match_paren_span(toks, i):
    """toks[i] == '('; returns index one past the matching ')'."""
    depth = 0
    j = i
    while j < len(toks):
        v = toks[j].val
        if toks[j].kind == "punct":
            if v == "(":
                depth += 1
            elif v == ")":
                depth -= 1
                if depth == 0:
                    return j + 1
        j += 1
    return len(toks)


def collect_atomic_names(toks):
    """Identifiers declared in this file as std::atomic<...> / atomic_flag.

    Returns {name: set(decl token indices)} so declaration sites themselves
    are exempt from the usage rules.
    """
    names = {}
    i = 0
    while i < len(toks):
        t = toks[i]
        if t.kind == "id" and (t.val == "atomic" or t.val == "atomic_flag"
                               or t.val.startswith("atomic_")):
            j = i + 1
            if t.val == "atomic":
                if j < len(toks) and toks[j].val == "<":
                    depth = 0
                    while j < len(toks):
                        if toks[j].val == "<":
                            depth += 1
                        elif toks[j].val == ">":
                            depth -= 1
                            if depth == 0:
                                j += 1
                                break
                        elif toks[j].val == ">>":
                            depth -= 2
                            if depth <= 0:
                                j += 1
                                break
                        j += 1
                else:
                    i += 1
                    continue
            # declarator list: id [, id]* terminated by ; = { ( [
            while j < len(toks) and toks[j].kind == "id":
                name_idx = j
                names.setdefault(toks[j].val, set()).add(name_idx)
                j += 1
                # skip array extents / initializers up to a comma
                depth = 0
                while j < len(toks):
                    v = toks[j].val
                    if v in "([{" or v == "<":
                        depth += 1
                    elif v in ")]}" or v == ">":
                        depth -= 1
                    elif depth == 0 and v in {",", ";"}:
                        break
                    elif depth < 0:
                        break
                    j += 1
                if j < len(toks) and toks[j].val == ",":
                    j += 1
                else:
                    break
            i = j
        else:
            i += 1
    return names


def stmt_window(toks, i):
    """[lo, hi) token span of the statement-ish region around index i."""
    lo = i
    while lo > 0:
        t = toks[lo - 1]
        if t.kind == "punct" and t.val in BOUNDARY and not t.pp:
            break
        lo -= 1
    hi = i
    while hi < len(toks):
        t = toks[hi]
        if t.kind == "punct" and t.val in BOUNDARY and not t.pp:
            hi += 1
            break
        hi += 1
    return lo, hi


def analyze_file(path, rel, text, cfg):
    toks, comments = lex(text)
    rep = FileReport(rel)
    allowed = cfg.get("_allow_lines", {})  # filled below

    def allow(line, rule):
        for ln in (line, line - 1):
            c = comments.get(ln, "")
            if "vcas-lint:" in c and f"allow({rule})" in c.replace(" ", ""):
                # only a standalone comment line may vouch for the next line
                if ln == line or not line_has_code(ln):
                    return True
        return False

    code_lines = {t.line for t in toks}

    def line_has_code(ln):
        return ln in code_lines

    def diag(line, rule, msg):
        if not allow(line, rule):
            rep.diags.append((line, rule, msg))

    # ---- VCAS_ORD annotations ----
    ord_at = {}  # token index -> tag
    for i, t in enumerate(toks):
        if t.kind == "id" and t.val == "VCAS_ORD" and not t.pp:
            if (i + 2 < len(toks) and toks[i + 1].val == "("
                    and toks[i + 2].kind == "str"):
                tag = toks[i + 2].val.strip('"')
                ord_at[i] = tag
                rep.ord_tags.append((tag, t.line))
            else:
                diag(t.line, "ord-tag-not-literal",
                     "VCAS_ORD argument must be a string literal tag")

    # ---- failpoint sites (VCAS_FAILPOINT / VCAS_FAILPOINT_SKIP) ----
    #
    # pp tokens are skipped, which exempts the macro definitions in
    # inject/failpoint.h themselves; expansion sites are ordinary code.
    fp_manifest = cfg.get("failpoints", {})
    for i, t in enumerate(toks):
        if t.pp or t.kind != "id" or t.val not in FAILPOINT_IDS:
            continue
        if (i + 2 < len(toks) and toks[i + 1].val == "("
                and toks[i + 2].kind == "str"):
            tag = toks[i + 2].val.strip('"')
            rep.fp_tags.append((tag, t.line, t.val))
            if tag not in fp_manifest:
                diag(t.line, "unknown-failpoint-tag",
                     f"tag \"{tag}\" not in failpoints.toml")
            elif rel not in fp_manifest[tag].get("files", []):
                diag(t.line, "failpoint-wrong-file",
                     f"tag \"{tag}\" does not list {rel} in its files")
        else:
            diag(t.line, "failpoint-not-literal",
                 f"{t.val} argument must be a string literal tag")

    # ---- strong sites need a tag in the same statement ----
    strong_idx = []
    for i, t in enumerate(toks):
        if t.pp or t.kind != "id":
            continue
        if t.val in STRONG_ORDERS or t.val == "atomic_thread_fence":
            strong_idx.append(i)
    covered_ord = set()
    seen_windows = []
    for i in strong_idx:
        lo, hi = stmt_window(toks, i)
        tags = [ord_at[j] for j in range(lo, hi) if j in ord_at]
        for j in range(lo, hi):
            if j in ord_at:
                covered_ord.add(j)
        kind = toks[i].val
        rep.strong_sites.append((toks[i].line, kind, tags))
        if (lo, hi) in seen_windows:
            continue  # one diagnostic per statement, not per order token
        seen_windows.append((lo, hi))
        if not tags:
            diag(toks[i].line, "untagged-strong-site",
                 f"{kind} site has no VCAS_ORD(\"tag\") in its statement")
        else:
            manifest = cfg["manifest"]
            for tag in tags:
                if tag not in manifest:
                    diag(toks[i].line, "unknown-ord-tag",
                         f"tag \"{tag}\" not in memory_order_audit.toml")
                elif rel not in manifest[tag].get("files", []):
                    diag(toks[i].line, "ord-tag-wrong-file",
                         f"tag \"{tag}\" does not list {rel} in its files")
    for j, tag in ord_at.items():
        if j not in covered_ord:
            diag(toks[j].line, "ord-without-strong-site",
                 f"VCAS_ORD(\"{tag}\") has no seq_cst/acq_rel/fence site in "
                 "its statement")

    # ---- explicit memory order on every atomic method call ----
    for i, t in enumerate(toks):
        if t.pp or t.kind != "id" or t.val not in ATOMIC_METHODS:
            continue
        if i == 0 or toks[i - 1].val not in {".", "->"}:
            continue
        if i + 1 >= len(toks) or toks[i + 1].val != "(":
            continue
        end = match_paren_span(toks, i + 1)
        has_order = any(
            toks[j].kind == "id" and toks[j].val.startswith("memory_order")
            for j in range(i + 1, end))
        if not has_order:
            diag(t.line, "explicit-order",
                 f".{t.val}(...) must name an explicit std::memory_order")

    # ---- operator / implicit-conversion use of declared atomics ----
    #
    # Lexer-level, so scope resolution is a naming-convention bargain:
    # bare identifiers are checked only when they follow the `name_` class-
    # member convention (bare `ts` / `cell` locals routinely shadow atomic
    # struct members of the same name); unqualified struct members are
    # covered at their qualified `obj->name` access sites instead.
    atomics = collect_atomic_names(toks)
    # Names that ALSO have a plausible plain declaration in this file
    # (mirror/snapshot structs reuse their atomic counterpart's field names
    # by design); qualified accesses to those are ambiguous, so they are
    # exempt. Underapproximates, never false-positives.
    plain_decls = set()
    for i, t in enumerate(toks):
        if t.kind != "id" or t.val not in atomics or t.pp:
            continue
        if i in atomics[t.val]:
            continue
        prev = toks[i - 1] if i > 0 else None
        nxt = toks[i + 1] if i + 1 < len(toks) else None
        if (prev and (prev.kind == "id" or prev.val in {"*", "&", ">"})
                and nxt and nxt.val in {";", "=", "{", "[", ",", ")"}):
            plain_decls.add(t.val)
    for name, decl_idxs in atomics.items():
        for i, t in enumerate(toks):
            if t.kind != "id" or t.val != name or t.pp or i in decl_idxs:
                continue
            prev = toks[i - 1] if i > 0 else None
            nxt = toks[i + 1] if i + 1 < len(toks) else None
            qualified = prev is not None and prev.val in {".", "->"}
            if prev and prev.val == "::":
                continue
            if not qualified and not name.endswith("_"):
                continue  # indistinguishable from a shadowing local
            if qualified and name in plain_decls:
                continue  # a plain field of the same name exists in-file
            if nxt and nxt.val in {".", "->", "[", "("}:
                continue  # explicit method call / element access / ctor-init
            if (nxt and nxt.val in {"++", "--"}) or \
                    (not qualified and prev and prev.val in {"++", "--"}):
                diag(t.line, "atomic-plain-op",
                     f"++/-- on atomic '{name}' is an implicit seq_cst RMW; "
                     "use fetch_add/fetch_sub with an explicit order")
            elif nxt and nxt.val in COMPOUND_ASSIGN:
                diag(t.line, "atomic-plain-op",
                     f"compound assignment on atomic '{name}'; use an "
                     "explicit fetch_* with a named order")
            elif nxt and nxt.val == "=":
                diag(t.line, "atomic-plain-op",
                     f"plain assignment to atomic '{name}' is an implicit "
                     "seq_cst store; use .store(v, order)")
            elif (nxt and nxt.val in {"==", "!=", "&&", "||", "?"}) or \
                 (not qualified and prev and prev.val == "!"):
                diag(t.line, "atomic-implicit-read",
                     f"implicit-conversion read of atomic '{name}'; use "
                     ".load(order)")

    # ---- reclamation: new / delete discipline ----
    protected = set(cfg["reclaim"].get("protected_types", []))
    for i, t in enumerate(toks):
        if t.pp or t.kind != "id":
            continue
        if t.val == "delete":
            if i > 0 and toks[i - 1].val == "=":
                continue  # deleted special member
            lo = i
            hi = i
            while hi < len(toks) and not (toks[hi].kind == "punct"
                                          and toks[hi].val in BOUNDARY):
                hi += 1
            stmt = join_tokens(toks[lo:hi])
            rep.deletes.setdefault(stmt, []).append(t.line)
        elif t.val == "new":
            j = i + 1
            # type name: id (:: id)* < ... >?
            ty = None
            while j < len(toks) and toks[j].kind == "id":
                ty = toks[j].val
                j += 1
                if j < len(toks) and toks[j].val == "::":
                    j += 1
                else:
                    break
            if ty is None:
                continue
            hi = j
            if hi < len(toks) and toks[hi].val == "<":
                depth = 0
                while hi < len(toks):
                    if toks[hi].val == "<":
                        depth += 1
                    elif toks[hi].val in {">", ">>"}:
                        depth -= 1 if toks[hi].val == ">" else 2
                        if depth <= 0:
                            hi += 1
                            break
                    hi += 1
            if hi < len(toks) and toks[hi].val in {"(", "{"}:
                opener, closer = toks[hi].val, {"(": ")", "{": "}"}[
                    toks[hi].val]
                depth = 0
                while hi < len(toks):
                    if toks[hi].val == opener:
                        depth += 1
                    elif toks[hi].val == closer:
                        depth -= 1
                        if depth == 0:
                            hi += 1
                            break
                    hi += 1
            if ty in protected:
                stmt = join_tokens(toks[i:hi])
                rep.news.setdefault((ty, stmt), []).append(t.line)

    # ---- volatile / sleeps ----
    vol_ok = set(cfg["reclaim"].get("volatile_allowed_files", []))
    sleep_ok = set(cfg["reclaim"].get("sleep_allowed_files", []))
    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        if t.val in {"volatile", "__volatile__"} and rel not in vol_ok:
            prev = toks[i - 1] if i > 0 else None
            if prev and prev.val in {"asm", "__asm__", "__asm"}:
                continue  # inline-asm clobber spelling, not a memory model
            diag(t.line, "banned-volatile",
                 "volatile is not a concurrency primitive; use std::atomic "
                 "with an explicit order")
        elif t.val in SLEEP_IDS and rel not in sleep_ok and not t.pp:
            diag(t.line, "banned-sleep",
                 f"{t.val} in src/ hot paths; block on a condition variable "
                 "or yield in a bounded helping loop instead")

    return rep


# --- whole-tree checks -------------------------------------------------------

def load_config(config_dir):
    with open(os.path.join(config_dir, "memory_order_audit.toml"),
              "rb") as f:
        audit = tomllib.load(f)
    with open(os.path.join(config_dir, "reclamation.toml"), "rb") as f:
        reclaim = tomllib.load(f)
    # Tolerate a missing failpoints.toml (older fixture config dirs): the
    # tree-wide run always has one, and an absent manifest simply means
    # every failpoint tag is unknown — which a tree without failpoints
    # vacuously satisfies.
    fp = {}
    fp_path = os.path.join(config_dir, "failpoints.toml")
    if os.path.exists(fp_path):
        with open(fp_path, "rb") as f:
            fp = tomllib.load(f)
    return {"manifest": audit.get("tags", {}), "reclaim": reclaim,
            "failpoints": fp.get("tags", {})}


def iter_source_files(paths):
    exts = {".h", ".hpp", ".cc", ".cpp", ".cxx"}
    for p in paths:
        if os.path.isfile(p):
            yield p
        else:
            for root, dirs, files in os.walk(p):
                dirs.sort()
                for f in sorted(files):
                    if os.path.splitext(f)[1] in exts:
                        yield os.path.join(root, f)


def relpath(p, repo_root):
    rp = os.path.relpath(os.path.abspath(p), repo_root)
    return rp.replace(os.sep, "/")


def cross_checks(reports, cfg, diags):
    manifest = cfg["manifest"]
    # two-way tag resolution
    used_by_tag = {}
    for rep in reports:
        for tag, _line in rep.ord_tags:
            used_by_tag.setdefault(tag, set()).add(rep.path)
    for tag, entry in manifest.items():
        files = entry.get("files", [])
        if tag not in used_by_tag:
            diags.append(("memory_order_audit.toml", 0, "orphan-manifest-tag",
                          f"tag \"{tag}\" is never used in the linted tree"))
            continue
        for f in files:
            if f not in used_by_tag[tag]:
                diags.append(("memory_order_audit.toml", 0,
                              "manifest-file-unused",
                              f"tag \"{tag}\" lists {f} but that file never "
                              "uses it"))
    # two-way failpoint tag resolution (same shape as VCAS_ORD tags)
    fp_used = {}
    for rep in reports:
        for tag, _line, _macro in rep.fp_tags:
            fp_used.setdefault(tag, set()).add(rep.path)
    for tag, entry in cfg.get("failpoints", {}).items():
        files = entry.get("files", [])
        if tag not in fp_used:
            diags.append(("failpoints.toml", 0, "orphan-failpoint-tag",
                          f"tag \"{tag}\" is never used in the linted tree"))
            continue
        for f in files:
            if f not in fp_used[tag]:
                diags.append(("failpoints.toml", 0,
                              "failpoint-manifest-file-unused",
                              f"tag \"{tag}\" lists {f} but that file never "
                              "uses it"))
    # reclamation whitelist, exact two-way
    wl = {}
    for e in cfg["reclaim"].get("delete", []):
        wl[(e["file"], e["stmt"])] = e
    seen = {}
    for rep in reports:
        for stmt, lines in rep.deletes.items():
            seen[(rep.path, stmt)] = lines
    for (f, stmt), lines in sorted(seen.items()):
        e = wl.get((f, stmt))
        if e is None:
            diags.append((f, lines[0], "unwhitelisted-delete",
                          f"`{stmt}` not in reclamation.toml — every raw "
                          "delete needs a whitelist entry with a reason "
                          "(EBR-visible nodes must die via retire())"))
        elif e.get("count", 1) != len(lines):
            diags.append((f, lines[0], "stale-delete-whitelist",
                          f"`{stmt}` occurs {len(lines)}x but whitelist says "
                          f"{e.get('count', 1)}"))
    for (f, stmt), e in wl.items():
        if (f, stmt) not in seen:
            diags.append(("reclamation.toml", 0, "stale-delete-whitelist",
                          f"entry for {f}: `{stmt}` matches nothing"))
    # protected-type new sites
    nwl = {}
    for e in cfg["reclaim"].get("new", []):
        nwl[(e["file"], e["stmt"])] = e
    nseen = {}
    for rep in reports:
        for (ty, stmt), lines in rep.news.items():
            nseen[(rep.path, stmt)] = (ty, lines)
    for (f, stmt), (ty, lines) in sorted(nseen.items()):
        e = nwl.get((f, stmt))
        if e is None:
            diags.append((f, lines[0], "protected-new",
                          f"`{stmt}`: {ty} is EBR-retired/pooled; allocate "
                          "through the sanctioned factory or whitelist with "
                          "a reason"))
        elif e.get("count", 1) != len(lines):
            diags.append((f, lines[0], "protected-new",
                          f"`{stmt}` occurs {len(lines)}x but whitelist says "
                          f"{e.get('count', 1)}"))
    for (f, stmt), e in nwl.items():
        if (f, stmt) not in nseen:
            diags.append(("reclamation.toml", 0, "stale-delete-whitelist",
                          f"new-entry for {f}: `{stmt}` matches nothing"))


def per_file_checks(reports, cfg, diags, manifest_sync):
    for rep in reports:
        for line, rule, msg in rep.diags:
            if not manifest_sync and rule in {"unknown-ord-tag",
                                              "ord-tag-wrong-file",
                                              "unknown-failpoint-tag",
                                              "failpoint-wrong-file"}:
                continue
            diags.append((rep.path, line, rule, msg))


# --- doc generation ----------------------------------------------------------

DOC_HEADER = """\
# Memory-order audit

<!-- GENERATED by tools/vcas_lint.py --emit-doc — do not hand-edit.
     Regenerate with: python3 tools/vcas_lint.py --emit-doc docs/memory_model.md src -->

The canonical record of every *strong* atomic site in `src/` — all
`memory_order_seq_cst`, `memory_order_acq_rel`, and `atomic_thread_fence`
uses — and the invariant each upholds. Every such site carries a
`VCAS_ORD("tag")` annotation (`src/util/annotations.h`) naming an entry
below; `tools/vcas_lint.py src` fails the build if a strong site is
untagged, a tag is unknown, or an entry here goes unused (two-way sync).

Relaxed and acquire/release sites are the default and are not tagged; the
contract is that *strength above acq/rel must be justified in writing*.
What "breaks if weakened" describes the concrete failure if the site were
downgraded one level.

"""


def build_doc(reports, cfg):
    manifest = cfg["manifest"]
    counts = {}
    for rep in reports:
        for tag, _line in rep.ord_tags:
            counts.setdefault(tag, {}).setdefault(rep.path, 0)
            counts[tag][rep.path] += 1
    strong_total = sum(len(r.strong_sites) for r in reports)
    out = [DOC_HEADER]
    out.append(f"**{strong_total} strong order tokens** across "
               f"{sum(1 for r in reports if r.strong_sites)} files resolve "
               f"to **{len(manifest)} audited invariants**.\n\n")
    by_area = {}
    for tag in sorted(manifest):
        area = tag.split(".", 1)[0]
        by_area.setdefault(area, []).append(tag)
    for area in sorted(by_area):
        out.append(f"## {area}\n\n")
        for tag in by_area[area]:
            e = manifest[tag]
            out.append(f"### `{tag}`\n\n")
            use = counts.get(tag, {})
            for f in e.get("files", []):
                out.append(f"- `{f}` — {use.get(f, 0)} annotation(s)\n")
            out.append(f"\n**Invariant.** {e.get('invariant', '').strip()}\n\n")
            out.append("**Breaks if weakened.** "
                       f"{e.get('breaks_if_weakened', '').strip()}\n\n")
    return "".join(out)


FP_DOC_HEADER = """\
# Failpoint catalog

<!-- GENERATED by tools/vcas_lint.py --emit-fp-doc — do not hand-edit.
     Regenerate with: python3 tools/vcas_lint.py --emit-fp-doc docs/failpoints.md src -->

The canonical record of every fault-injection site in `src/` — all
`VCAS_FAILPOINT("tag")` / `VCAS_FAILPOINT_SKIP("tag")` expansions
(`src/inject/failpoint.h`, compiled out unless `-DVCAS_INJECT=ON`) — and
the recovery argument each one rests on. Every site names an entry in
`tools/lint/failpoints.toml`; `tools/vcas_lint.py src` fails the build if
a site's tag is unknown or an entry here goes unused (two-way sync).

A failpoint marks a between-steps point of a helping protocol where a
thread may be parked, yield-stormed, or abandoned mid-flight. "If the
thread dies here" is the containment story: who completes or safely
forgoes the stranded work. Sites marked *skip* are `VCAS_FAILPOINT_SKIP`
expressions guarding skip-legal maintenance steps.

"""


def build_fp_doc(reports, cfg):
    manifest = cfg.get("failpoints", {})
    counts = {}
    for rep in reports:
        for tag, _line, _macro in rep.fp_tags:
            counts.setdefault(tag, {}).setdefault(rep.path, 0)
            counts[tag][rep.path] += 1
    site_total = sum(len(r.fp_tags) for r in reports)
    out = [FP_DOC_HEADER]
    out.append(f"**{site_total} failpoint sites** across "
               f"{sum(1 for r in reports if r.fp_tags)} files resolve to "
               f"**{len(manifest)} catalogued tags**.\n\n")
    by_area = {}
    for tag in sorted(manifest):
        area = tag.split(".", 1)[0]
        by_area.setdefault(area, []).append(tag)
    for area in sorted(by_area):
        out.append(f"## {area}\n\n")
        for tag in by_area[area]:
            e = manifest[tag]
            kind = " *(skip)*" if e.get("kind") == "skip" else ""
            out.append(f"### `{tag}`{kind}\n\n")
            use = counts.get(tag, {})
            for f in e.get("files", []):
                out.append(f"- `{f}` — {use.get(f, 0)} site(s)\n")
            out.append(f"\n**Where.** {e.get('where', '').strip()}\n\n")
            out.append("**If the thread dies here.** "
                       f"{e.get('on_death', '').strip()}\n\n")
    return "".join(out)


# --- main --------------------------------------------------------------------

def main(argv):
    ap = argparse.ArgumentParser(prog="vcas_lint.py", add_help=True)
    ap.add_argument("paths", nargs="+")
    ap.add_argument("--config-dir", default=None)
    ap.add_argument("--no-manifest-sync", action="store_true")
    ap.add_argument("--list-strong", action="store_true")
    ap.add_argument("--emit-doc", metavar="PATH")
    ap.add_argument("--check-doc", metavar="PATH")
    ap.add_argument("--emit-fp-doc", metavar="PATH")
    ap.add_argument("--check-fp-doc", metavar="PATH")
    args = ap.parse_args(argv)

    script_dir = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(script_dir)
    config_dir = args.config_dir or os.path.join(script_dir, "lint")
    cfg = load_config(config_dir)

    reports = []
    for p in iter_source_files(args.paths):
        rel = relpath(p, repo_root)
        with open(p, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
        reports.append(analyze_file(p, rel, text, cfg))

    if args.list_strong:
        for rep in reports:
            for line, kind, tags in rep.strong_sites:
                print(f"{rep.path}:{line}: {kind} tags={tags}")
        return 0

    if args.emit_doc:
        doc = build_doc(reports, cfg)
        with open(args.emit_doc, "w", encoding="utf-8") as f:
            f.write(doc)
        print(f"wrote {args.emit_doc}")
        return 0

    if args.emit_fp_doc:
        doc = build_fp_doc(reports, cfg)
        with open(args.emit_fp_doc, "w", encoding="utf-8") as f:
            f.write(doc)
        print(f"wrote {args.emit_fp_doc}")
        return 0

    diags = []
    per_file_checks(reports, cfg, diags, not args.no_manifest_sync)
    if not args.no_manifest_sync:
        cross_checks(reports, cfg, diags)

    if args.check_doc:
        want = build_doc(reports, cfg)
        try:
            with open(args.check_doc, "r", encoding="utf-8") as f:
                have = f.read()
        except OSError:
            have = ""
        if want != have:
            diags.append((args.check_doc, 0, "doc-out-of-sync",
                          "regenerate with: python3 tools/vcas_lint.py "
                          "--emit-doc docs/memory_model.md src"))

    if args.check_fp_doc:
        want = build_fp_doc(reports, cfg)
        try:
            with open(args.check_fp_doc, "r", encoding="utf-8") as f:
                have = f.read()
        except OSError:
            have = ""
        if want != have:
            diags.append((args.check_fp_doc, 0, "doc-out-of-sync",
                          "regenerate with: python3 tools/vcas_lint.py "
                          "--emit-fp-doc docs/failpoints.md src"))

    for f, line, rule, msg in sorted(diags):
        print(f"{f}:{line}: error: [{rule}] {msg}")
    if diags:
        print(f"vcas_lint: {len(diags)} error(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
