// Single translation unit including every public header, built as a real
// target so each header lands in compile_commands.json and clang-tidy's
// --header-filter sweep analyzes all of them (headers with no .cc of their
// own would otherwise be invisible to the gate). Also proves every header
// is self-contained under every VCAS_STATS / VCAS_INJECT configuration.
#include "baselines/cow_tree.h"
#include "baselines/epoch_bst.h"
#include "ds/chromatic.h"
#include "ds/ellen_bst.h"
#include "ds/harris_list.h"
#include "ds/msqueue.h"
#include "ebr/ebr.h"
#include "inject/failpoint.h"
#include "maint/janitor.h"
#include "maint/maintenance.h"
#include "obs/metrics.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "store/backend.h"
#include "store/batch.h"
#include "store/store.h"
#include "store/view.h"
#include "util/annotations.h"
#include "util/barrier.h"
#include "util/marked_ptr.h"
#include "util/padded.h"
#include "util/rng.h"
#include "util/slab_pool.h"
#include "util/threading.h"
#include "util/timing.h"
#include "vcas/camera.h"
#include "vcas/era.h"
#include "vcas/snapshot.h"
#include "vcas/versioned_cas.h"
#include "vcas/versioned_ptr.h"

// Instantiate the store template so clang-tidy sees the dependent code
// paths, not just the uninstantiated template tokens.
namespace {
[[maybe_unused]] void instantiate() {
  vcas::store::ShardedStore<long, long> store(1);
  (void)store.get(0);
}
}  // namespace
