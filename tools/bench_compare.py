#!/usr/bin/env python3
"""Compare freshly produced BENCH_*.json files against a committed baseline.

Usage: tools/bench_compare.py <baseline_dir> [<current_dir>]

For every BENCH_<name>.json present in BOTH directories, rows are matched
by their identity fields (every string-valued field, e.g. mix/backend/
write_path, plus thread/shard counts) and the throughput-like metrics are
compared. A current value more than --threshold (default 20%) below the
baseline prints a warning. Latency percentile fields (any *_p50/*_p99,
e.g. maint_task_us_p99 from the obs histograms) are compared the other
way around — a warning fires when the current value EXCEEDS the baseline
by the threshold. Fields absent from one side are skipped, so baselines
recorded before a metric existed keep working. On GitHub Actions each
warning becomes a ::warning:: annotation. By default ALWAYS exits 0 —
bench boxes are noisy, so this step informs, it does not gate. Machine-shape differences between the
baseline recording machine and CI runners are expected; watch trends, not
absolutes.

--strict flips the exit code: any warning exits 1. Meant for a SEPARATE,
non-blocking CI step (continue-on-error) so regressions in the targeted
benches are visible as a red step without failing the build. Combine with
--benches to restrict the strict gate to specific bench names (substring
match on the BENCH_<name>.json stem), e.g.:

    tools/bench_compare.py bench/baseline . --strict --benches write_churn
"""

import argparse
import json
import os
import sys

# Higher-is-better metrics worth flagging. Anything else (counts, bytes,
# versions) is context, not a gate.
THROUGHPUT_KEYS = (
    "put_mops",
    "write_mops",
    "burst_mops",
    "total_mops",
    "update_mops",
    "mops",
    "rq_per_sec",
    "commits_per_sec",
    "ops_per_sec",
)

# Lower-is-better percentile fields (emitted by the harness from obs
# histograms, e.g. maint_task_us_p50/maint_task_us_p99). Matched by
# suffix so new histograms join the comparison without edits here. These
# warn when the CURRENT value exceeds the baseline by --threshold.
LATENCY_SUFFIXES = ("_p50", "_p99")

# Row fields that identify a configuration (ints that are knobs, not
# results).
IDENTITY_INT_KEYS = ("threads", "writers", "shards", "rq_size", "size")


def load(path):
    with open(path) as f:
        return json.load(f)


def row_key(row):
    parts = []
    for k in sorted(row):
        v = row[k]
        if isinstance(v, str) or k in IDENTITY_INT_KEYS:
            parts.append(f"{k}={v}")
    return ",".join(parts)


def warn(msg):
    if os.environ.get("GITHUB_ACTIONS"):
        print(f"::warning title=bench regression::{msg}")
    else:
        print(f"WARNING: {msg}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline_dir")
    ap.add_argument("current_dir", nargs="?", default=".")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="relative drop that triggers a warning")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 when any warning fired (default: inform "
                         "only, always exit 0)")
    ap.add_argument("--benches", nargs="*", default=None,
                    help="restrict to benches whose name contains any of "
                         "these substrings")
    args = ap.parse_args()

    names = sorted(
        n for n in os.listdir(args.baseline_dir)
        if n.startswith("BENCH_") and n.endswith(".json"))
    if args.benches:
        names = [n for n in names
                 if any(b in n for b in args.benches)]
    if not names:
        print(f"no BENCH_*.json baselines under {args.baseline_dir}")
        return 0

    warned = compared = 0
    for name in names:
        cur_path = os.path.join(args.current_dir, name)
        if not os.path.exists(cur_path):
            print(f"{name}: no current run (skipped)")
            continue
        try:
            base = load(os.path.join(args.baseline_dir, name))
            cur = load(cur_path)
        except (json.JSONDecodeError, OSError) as e:
            warn(f"{name}: unreadable ({e})")
            continue
        base_rows = {row_key(r): r for r in base.get("rows", [])}
        for row in cur.get("rows", []):
            b = base_rows.get(row_key(row))
            if b is None:
                continue
            latency_keys = tuple(
                k for k in row
                if any(k.endswith(s) for s in LATENCY_SUFFIXES))
            for key in THROUGHPUT_KEYS + latency_keys:
                if key not in row or key not in b:
                    continue
                try:
                    bv, cv = float(b[key]), float(row[key])
                except (TypeError, ValueError):
                    continue
                if bv <= 0:
                    continue
                compared += 1
                if key in THROUGHPUT_KEYS:
                    drop = (bv - cv) / bv
                    if drop > args.threshold:
                        warned += 1
                        warn(f"{name} [{row_key(row)}] {key}: "
                             f"{cv:.3g} vs baseline {bv:.3g} "
                             f"({drop * 100:.0f}% drop)")
                else:
                    rise = (cv - bv) / bv
                    if rise > args.threshold:
                        warned += 1
                        warn(f"{name} [{row_key(row)}] {key}: "
                             f"{cv:.3g} vs baseline {bv:.3g} "
                             f"({rise * 100:.0f}% slower)")
    print(f"bench_compare: {compared} metrics compared, {warned} warnings")
    if args.strict and warned > 0:
        print("bench_compare: --strict and warnings fired -> exit 1")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
