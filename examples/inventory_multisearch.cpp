// Inventory multi-search: the versioned Harris linked list (paper
// Section 4 / Appendix F) as a small ordered inventory, plus VcasBST for
// the same queries at tree scale.
//
// The invariant: a "bundle" is sold or restocked as a unit — SKUs
// {b, b+100, b+200} are always inserted low-to-high and removed
// high-to-low. An atomic multisearch can therefore never observe the top
// SKU of a bundle without its base SKU; interleaved point lookups could.
//
// Build & run:  ./build/examples/inventory_multisearch
#include <atomic>
#include <cstdio>
#include <thread>

#include "ds/ellen_bst.h"
#include "ds/harris_list.h"
#include "util/rng.h"

int main() {
  vcas::ds::VcasHarrisList<std::int64_t, std::int64_t> shelf;
  vcas::ds::VcasBST<std::int64_t, std::int64_t> warehouse;

  constexpr std::int64_t kBundles = 20;
  std::atomic<bool> stop{false};

  std::thread restocker([&] {
    vcas::util::Xoshiro256 rng(9);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::int64_t b = static_cast<std::int64_t>(rng.next_in(kBundles));
      if (rng.next_in(2) == 0) {
        shelf.insert(b, 1);
        shelf.insert(b + 100, 1);
        shelf.insert(b + 200, 1);
        warehouse.insert(b, 1);
        warehouse.insert(b + 100, 1);
        warehouse.insert(b + 200, 1);
      } else {
        shelf.remove(b + 200);
        shelf.remove(b + 100);
        shelf.remove(b);
        warehouse.remove(b + 200);
        warehouse.remove(b + 100);
        warehouse.remove(b);
      }
    }
  });

  bool ok = true;
  vcas::util::Xoshiro256 rng(10);
  for (int i = 0; i < 3000; ++i) {
    const std::int64_t b = static_cast<std::int64_t>(rng.next_in(kBundles));
    // Atomic multisearch on the list: top SKU present => base present.
    auto list_hits = shelf.multisearch({b, b + 100, b + 200});
    if (list_hits[2].has_value() && !list_hits[0].has_value()) ok = false;
    // Same check against the tree.
    auto tree_hits = warehouse.multisearch({b, b + 100, b + 200});
    if (tree_hits[2].has_value() && !tree_hits[0].has_value()) ok = false;
    // Range over a whole bundle: must be 0, 1, 2 or 3 SKUs, but if the
    // +200 SKU is in the range result, the base must be too.
    auto range = shelf.range(b, b + 200);
    bool base = false, top = false;
    for (auto& [k, v] : range) {
      if (k == b) base = true;
      if (k == b + 200) top = true;
    }
    if (top && !base) ok = false;
  }
  stop = true;
  restocker.join();

  std::printf("3000 atomic bundle checks against a concurrent restocker on "
              "both the list and the tree: %s\n",
              ok ? "no torn bundle ever observed"
                 : "TORN BUNDLE OBSERVED — this is a bug");
  vcas::ebr::drain_for_tests();
  return ok ? 0 : 1;
}
