// Quickstart: the core camera / versioned-CAS API (paper Algorithm 1).
//
//   1. Create a Camera (the global clock) and some VersionedCAS objects.
//   2. Update them with vCAS, read them with vRead.
//   3. takeSnapshot() returns an O(1) handle; readSnapshot(handle) then
//      reconstructs every object's value at that instant, even while
//      updates continue.
//
// Build & run:  ./build/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "util/rng.h"
#include "vcas/camera.h"
#include "vcas/snapshot.h"
#include "vcas/versioned_cas.h"

int main() {
  vcas::Camera camera;

  // Three accounts whose sum is conserved at 300. A transfer is two
  // separate vCAS ops (withdraw, then deposit), so the sequential history
  // only ever contains states summing to 300 or — for the instant between
  // the two CASes — 299. A snapshot shows exactly one such state, so its
  // sum is always 299 or 300. Racy point reads span many states and can
  // add up to sums no state ever had (298, 301, ...).
  vcas::VersionedCAS<long> accounts[3] = {
      {100, &camera}, {100, &camera}, {100, &camera}};

  std::printf("initial: %ld %ld %ld\n", accounts[0].vRead(),
              accounts[1].vRead(), accounts[2].vRead());

  // A writer shuffling money around.
  std::thread writer([&] {
    vcas::util::Xoshiro256 rng(7);
    for (int i = 0; i < 100000; ++i) {
      const int from = static_cast<int>(rng.next_in(3));
      const int to = static_cast<int>(rng.next_in(3));
      if (from == to) continue;
      for (;;) {
        long v = accounts[from].vRead();
        if (v == 0) break;
        if (accounts[from].vCAS(v, v - 1)) {
          for (;;) {
            long w = accounts[to].vRead();
            if (accounts[to].vCAS(w, w + 1)) break;
          }
          break;
        }
      }
    }
  });

  // An auditor comparing atomic snapshots against racy point reads.
  long snap_min = 1 << 30, snap_max = 0;
  long racy_outside_envelope = 0;
  for (int audit = 0; audit < 50000; ++audit) {
    {
      vcas::SnapshotGuard snap(camera);  // O(1); wait-free reads afterwards
      long sum = 0;
      for (auto& account : accounts) sum += account.readSnapshot(snap.ts());
      if (sum < snap_min) snap_min = sum;
      if (sum > snap_max) snap_max = sum;
    }
    long racy = 0;
    for (auto& account : accounts) racy += account.vRead();
    if (racy < 299 || racy > 300) ++racy_outside_envelope;
  }
  writer.join();

  std::printf("across 50000 snapshots: min sum %ld, max sum %ld\n", snap_min,
              snap_max);
  std::printf("racy point-read sums outside {299,300}: %ld times\n",
              racy_outside_envelope);
  const bool ok = snap_min >= 299 && snap_max <= 300;
  std::printf("%s\n", ok ? "every snapshot showed a real state (sum 299 "
                           "mid-transfer or 300)"
                         : "TORN SNAPSHOT DETECTED — this is a bug");
  return ok ? 0 : 1;
}
