// Quickstart: the core camera / versioned-CAS API (paper Algorithm 1).
//
//   1. Create a Camera (the global clock) and some VersionedCAS objects.
//   2. Update them with vCAS, read them with vRead.
//   3. takeSnapshot() returns an O(1) handle; readSnapshot(handle) then
//      reconstructs every object's value at that instant, even while
//      updates continue.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "util/rng.h"
#include "vcas/camera.h"
#include "vcas/snapshot.h"
#include "vcas/versioned_cas.h"

int main() {
  vcas::Camera camera;

  // Three accounts that must always sum to 300 — transfers move money
  // between them with individual CASes, so *point* reads can tear, but a
  // snapshot never does.
  vcas::VersionedCAS<long> accounts[3] = {
      {100, &camera}, {100, &camera}, {100, &camera}};

  std::printf("initial: %ld %ld %ld\n", accounts[0].vRead(),
              accounts[1].vRead(), accounts[2].vRead());

  // A writer shuffling money around.
  std::thread writer([&] {
    vcas::util::Xoshiro256 rng(7);
    for (int i = 0; i < 100000; ++i) {
      const int from = static_cast<int>(rng.next_in(3));
      const int to = static_cast<int>(rng.next_in(3));
      if (from == to) continue;
      // Withdraw then deposit: between the two vCASes the global sum is
      // briefly 299 — visible to racy readers, invisible to snapshots.
      for (;;) {
        long v = accounts[from].vRead();
        if (v == 0) break;
        if (accounts[from].vCAS(v, v - 1)) {
          for (;;) {
            long w = accounts[to].vRead();
            if (accounts[to].vCAS(w, w + 1)) break;
          }
          break;
        }
      }
    }
  });

  // An auditor taking atomic snapshots of all three accounts.
  long min_sum = 1 << 30, max_sum = 0;
  for (int audit = 0; audit < 50000; ++audit) {
    vcas::SnapshotGuard snap(camera);  // O(1), wait-free reads afterwards
    long sum = 0;
    for (auto& account : accounts) sum += account.readSnapshot(snap.ts());
    if (sum < min_sum) min_sum = sum;
    if (sum > max_sum) max_sum = sum;
  }
  writer.join();

  std::printf("across 50000 snapshots: min sum %ld, max sum %ld\n", min_sum,
              max_sum);
  std::printf("%s\n", (min_sum == 300 && max_sum == 300)
                          ? "every snapshot was atomic (sum always 300)"
                          : "TORN SNAPSHOT DETECTED — this is a bug");
  return min_sum == 300 && max_sum == 300 ? 0 : 1;
}
