// Analytics dashboard: the paper's motivating scenario — a concurrent
// key-value map (VcasCT, the balanced snapshottable tree) ingesting a
// write-heavy event stream while dashboard queries run atomic multi-point
// reads: range scans per shard, top-k successors, and predicate searches.
//
// Every query is linearizable despite running concurrently with the
// ingest threads, because each one executes against an O(1) snapshot.
//
// Build & run:  ./build/examples/analytics_dashboard
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "ds/chromatic.h"
#include "util/rng.h"

using Tree = vcas::ds::VcasChromaticTree<std::int64_t, std::int64_t>;

int main() {
  Tree metrics;  // key: (shard << 20 | metric id), value: reading

  // Seed each of 4 shards with a fixed population of 1000 metrics.
  constexpr std::int64_t kShards = 4;
  constexpr std::int64_t kPerShard = 1000;
  for (std::int64_t s = 0; s < kShards; ++s) {
    for (std::int64_t m = 0; m < kPerShard; ++m) {
      metrics.insert((s << 20) | m, 0);
    }
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> ingest;
  for (int t = 0; t < 2; ++t) {
    ingest.emplace_back([&, t] {
      vcas::util::Xoshiro256 rng(100 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::int64_t shard = static_cast<std::int64_t>(rng.next_in(kShards));
        const std::int64_t metric = static_cast<std::int64_t>(rng.next_in(kPerShard));
        const std::int64_t key = (shard << 20) | metric;
        // Updates are remove+insert (fresh reading); the shard population
        // is fixed, so an atomic per-shard scan always sees kPerShard keys.
        metrics.remove(key);
        metrics.insert(key, static_cast<std::int64_t>(rng.next_in(1000)));
      }
    });
  }

  // Each ingest thread refreshes a metric with remove-then-insert, so at
  // any instant at most kIngest keys are "in flight" (absent). An atomic
  // scan therefore sees between kPerShard - kIngest and kPerShard rows per
  // shard — a torn (non-atomic) scan could see fewer or see duplicates.
  constexpr std::int64_t kIngest = 2;
  bool all_consistent = true;
  for (int refresh = 0; refresh < 200; ++refresh) {
    // Dashboard panel 1: per-shard row counts via atomic range queries.
    std::size_t total = 0;
    for (std::int64_t s = 0; s < kShards; ++s) {
      auto rows = metrics.range(s << 20, (s << 20) | (kPerShard - 1));
      total += rows.size();
      if (rows.size() > kPerShard || rows.size() + kIngest < kPerShard) {
        std::printf("shard %lld: torn scan saw %zu rows!\n",
                    static_cast<long long>(s), rows.size());
        all_consistent = false;
      }
      for (std::size_t j = 1; j < rows.size(); ++j) {
        if (!(rows[j - 1].first < rows[j].first)) all_consistent = false;
      }
    }
    if (total > kShards * kPerShard ||
        total + kIngest < kShards * kPerShard) {
      all_consistent = false;
    }
    // Dashboard panel 2: the 5 metrics after a cursor (pagination) —
    // strictly ascending keys from one snapshot.
    auto page = metrics.succ((1 << 20) | 500, 5);
    for (std::size_t j = 1; j < page.size(); ++j) {
      if (!(page[j - 1].first < page[j].first)) all_consistent = false;
    }
    // Dashboard panel 3: first metric id divisible by 128 in shard 2; the
    // result, if any, must satisfy the predicate and the bounds.
    auto hit = metrics.find_if(2 << 20, (2 << 20) + kPerShard,
                               [](const std::int64_t& k) {
                                 return (k & ((1 << 20) - 1)) % 128 == 0;
                               });
    if (hit.has_value() &&
        ((hit->first >> 20) != 2 || (hit->first & ((1 << 20) - 1)) % 128)) {
      all_consistent = false;
    }
    // Dashboard panel 4: four specific metrics, read atomically together;
    // readings are always in [0, 1000).
    auto vals = metrics.multisearch(
        {(0 << 20) | 1, (1 << 20) | 1, (2 << 20) | 1, (3 << 20) | 1});
    for (auto& v : vals) {
      if (v.has_value() && (*v < 0 || *v >= 1000)) all_consistent = false;
    }
  }
  stop = true;
  for (auto& th : ingest) th.join();

  std::printf("200 dashboard refreshes against 2 ingest threads: %s\n",
              all_consistent ? "all panels consistent"
                             : "INCONSISTENT PANEL — this is a bug");
  vcas::ebr::drain_for_tests();
  return all_consistent ? 0 : 1;
}
