// Queue audit: the versioned Michael-Scott queue (paper Section 4 /
// Appendix E) as a task pipeline with a live auditor.
//
// Producers enqueue monotonically increasing ticket ids; consumers dequeue
// them. The auditor concurrently runs the snapshot queries — scan(),
// peek_end_points(), ith(), size_snapshot() — and checks properties that
// only hold if each query is atomic: a scan must be a contiguous interval
// of ids, and both ends must agree with it.
//
// Build & run:  ./build/examples/queue_audit
#include <atomic>
#include <cstdio>
#include <thread>

#include "ds/msqueue.h"

int main() {
  vcas::ds::VcasMSQueue<std::int64_t> queue;
  constexpr std::int64_t kTickets = 150000;
  constexpr std::int64_t kMaxBacklog = 4096;  // keep scans cheap
  std::atomic<std::int64_t> dequeued_count{0};

  std::thread producer([&] {
    for (std::int64_t ticket = 0; ticket < kTickets; ++ticket) {
      while (ticket - dequeued_count.load(std::memory_order_relaxed) >
             kMaxBacklog) {
        std::this_thread::yield();  // throttle so the backlog stays bounded
      }
      queue.enqueue(ticket);
    }
  });
  std::thread consumer([&] {
    std::int64_t expect = 0;
    while (expect < kTickets) {
      auto t = queue.dequeue();
      if (t.has_value()) {
        if (*t != expect++) {
          std::printf("FIFO order broken!\n");
          std::abort();
        }
        dequeued_count.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::this_thread::yield();
      }
    }
  });

  bool ok = true;
  std::size_t audits = 0;
  std::size_t max_backlog = 0;
  for (int i = 0; i < 400 && dequeued_count.load() < kTickets; ++i) {
    auto snap = queue.scan();
    ++audits;
    max_backlog = std::max(max_backlog, snap.size());
    for (std::size_t j = 1; j < snap.size(); ++j) {
      if (snap[j] != snap[j - 1] + 1) ok = false;  // not one atomic instant
    }
    auto [front, back] = queue.peek_end_points();
    if (front.has_value() != back.has_value()) ok = false;
    if (front.has_value() && back.has_value() && *front > *back) ok = false;
    if (snap.size() >= 3) {
      auto third = queue.ith(2);
      // ith runs on its own (later) snapshot; the head can only advance,
      // so the 3rd element id can only be >= the one in our scan.
      if (third.has_value() && *third < snap[2]) ok = false;
    }
  }
  producer.join();
  consumer.join();

  std::printf("%zu audits while producing/consuming; deepest backlog seen "
              "%zu tickets; %lld consumed\n",
              audits, max_backlog,
              static_cast<long long>(dequeued_count.load()));
  std::printf("%s\n", ok ? "every scan was a contiguous id interval (atomic)"
                         : "NON-ATOMIC SCAN — this is a bug");
  vcas::ebr::drain_for_tests();
  return ok ? 0 : 1;
}
