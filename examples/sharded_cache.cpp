// Sharded store walkthrough: an "account cache" sharded 16 ways, writers
// moving money between accounts with optimistic TRANSACTIONS, and an
// analytics thread running store-wide consistent scans at the same time.
//
// The invariant: every transfer is one compare-and-batch transaction
// (read both balances at a snapshot, write debit + credit conditioned on
// neither account changing), so the sum over ALL accounts never changes.
// Writers are FULLY OVERLAPPING — any writer may touch any account, no
// key partitioning — which blind batches cannot support (the pre-
// transaction version of this example had to give each writer a private
// slice; the store validates the read set at commit now, so conflicting
// transfers abort and retry instead of stomping each other's reads).
//
// Point reads can't check the invariant — they tear between the debit and
// the credit, and between shards. A StoreView (one O(1) snapshot handle
// over every shard) audits it exactly, even with the background version
// trimmer running.
//
// Build & run:  ./build/sharded_cache
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "store/backend.h"
#include "store/store.h"
#include "util/rng.h"

int main() {
  using Store = vcas::store::ShardedStore<std::int64_t, std::int64_t,
                                          vcas::store::ChromaticBackend>;
  constexpr std::int64_t kAccounts = 512;
  constexpr std::int64_t kInitialBalance = 1000;
  constexpr std::int64_t kExpectedTotal = kAccounts * kInitialBalance;
  constexpr int kWriters = 4;

  Store store(16);
  store.enable_background_trim(std::chrono::milliseconds(5));
  {
    Store::Batch init;
    for (std::int64_t a = 0; a < kAccounts; ++a) {
      init.put(a, kInitialBalance);
    }
    store.applyBatch(init);
  }
  std::printf("accounts=%lld shards=%zu backend=%s expected total=%lld\n",
              static_cast<long long>(kAccounts), store.shard_count(),
              Store::backend_name(), static_cast<long long>(kExpectedTotal));

  // Writers: pick ANY two accounts (no partitioning), move a random amount
  // in one read-validated transaction. transact() hides the abort-retry
  // loop; commit/abort tallies come from explicit begin/commit.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> commits{0}, aborts{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      vcas::util::Xoshiro256 rng(41 + w);
      std::uint64_t my_commits = 0, my_aborts = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::int64_t from =
            static_cast<std::int64_t>(rng.next_in(kAccounts));
        const std::int64_t to =
            static_cast<std::int64_t>(rng.next_in(kAccounts));
        if (from == to) continue;
        const std::int64_t amount =
            1 + static_cast<std::int64_t>(rng.next_in(50));
        for (;;) {
          auto txn = store.beginTransaction();
          const std::int64_t from_bal = txn.get(from).value_or(0);
          if (from_bal < amount) break;  // nothing to move: drop the txn
          const std::int64_t to_bal = txn.get(to).value_or(0);
          txn.put(from, from_bal - amount);
          txn.put(to, to_bal + amount);
          if (txn.commit().has_value()) {
            ++my_commits;
            break;
          }
          ++my_aborts;  // a witnessed account changed: retry from scratch
        }
      }
      commits.fetch_add(my_commits, std::memory_order_relaxed);
      aborts.fetch_add(my_aborts, std::memory_order_relaxed);
    });
  }

  // Analytics: snapshot scans must see the conserved sum every time; the
  // torn per-account point-read loop usually doesn't.
  std::int64_t snapshot_bad = 0, torn_off = 0;
  for (int audit = 0; audit < 200; ++audit) {
    {
      auto view = store.snapshotAll();  // one instant, all 16 shards
      std::int64_t total = 0;
      for (const auto& [account, balance] : view.range(0, kAccounts - 1)) {
        (void)account;
        total += balance;
      }
      if (total != kExpectedTotal ||
          view.size() != static_cast<std::size_t>(kAccounts)) {
        ++snapshot_bad;
      }
    }
    std::int64_t torn_total = 0;  // point reads spread over time: tears
    for (std::int64_t a = 0; a < kAccounts; ++a) {
      torn_total += store.get(a).value_or(0);
    }
    if (torn_total != kExpectedTotal) ++torn_off;
  }
  stop = true;
  for (auto& w : writers) w.join();

  std::int64_t final_total = 0;
  for (const auto& [account, balance] : store.rangeQuery(0, kAccounts - 1)) {
    (void)account;
    final_total += balance;
  }
  store.disable_background_trim();
  store.camera().takeSnapshot();
  const std::size_t trimmed = store.trim_all();

  const std::uint64_t total_commits = commits.load();
  const std::uint64_t total_aborts = aborts.load();
  std::printf("audits: %lld/200 snapshot scans inconsistent (must be 0);"
              " torn point-read sums off %lld/200 times\n",
              static_cast<long long>(snapshot_bad),
              static_cast<long long>(torn_off));
  std::printf("transfers: %llu committed, %llu aborted-and-retried "
              "(overlapping writers, zero partitioning)\n",
              static_cast<unsigned long long>(total_commits),
              static_cast<unsigned long long>(total_aborts));
  std::printf("final total = %lld (expected %lld)\n",
              static_cast<long long>(final_total),
              static_cast<long long>(kExpectedTotal));
  std::printf("trimmed %zu stale versions at shutdown; %zu live versions "
              "remain\n",
              trimmed, store.total_versions());
  // One-call observability dump: every obs-registry meter plus store-live
  // state (all zeros for the registry side under -DVCAS_STATS=OFF).
  std::printf("\n-- store.stats() --\n%s", store.stats().to_text().c_str());
  return final_total == kExpectedTotal && snapshot_bad == 0 ? 0 : 1;
}
