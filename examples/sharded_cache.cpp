// Sharded store walkthrough: an "account cache" sharded 16 ways, writers
// moving money between accounts with atomic cross-shard batches, and an
// analytics thread running store-wide consistent scans at the same time.
//
// The invariant: every transfer is one batch (debit + credit), so the sum
// over ALL accounts never changes. Point reads can't check that — they
// tear between the debit and the credit, and between shards. A StoreView
// (one O(1) snapshot handle over every shard) audits it exactly, even with
// the background version trimmer running.
//
// Each writer owns a disjoint slice of accounts (the store has atomic
// batches, not read-modify-write transactions — see ROADMAP open items),
// so the conserved sum holds at every batch boundary.
//
// Build & run:  ./build/sharded_cache
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "store/backend.h"
#include "store/store.h"
#include "util/rng.h"

int main() {
  using Store = vcas::store::ShardedStore<std::int64_t, std::int64_t,
                                          vcas::store::ChromaticBackend>;
  constexpr std::int64_t kAccounts = 512;
  constexpr std::int64_t kInitialBalance = 1000;
  constexpr std::int64_t kExpectedTotal = kAccounts * kInitialBalance;
  constexpr int kWriters = 4;
  constexpr std::int64_t kSlice = kAccounts / kWriters;

  Store store(16);
  store.enable_background_trim(std::chrono::milliseconds(5));
  {
    Store::Batch init;
    for (std::int64_t a = 0; a < kAccounts; ++a) {
      init.put(a, kInitialBalance);
    }
    store.applyBatch(init);
  }
  std::printf("accounts=%lld shards=%zu backend=%s expected total=%lld\n",
              static_cast<long long>(kAccounts), store.shard_count(),
              Store::backend_name(), static_cast<long long>(kExpectedTotal));

  // Writers: pick two accounts in their own slice, move a random amount in
  // ONE atomic cross-shard batch.
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      vcas::util::Xoshiro256 rng(41 + w);
      const std::int64_t base = w * kSlice;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::int64_t from = base + static_cast<std::int64_t>(rng.next_in(kSlice));
        const std::int64_t to = base + static_cast<std::int64_t>(rng.next_in(kSlice));
        if (from == to) continue;
        const std::int64_t amount =
            1 + static_cast<std::int64_t>(rng.next_in(50));
        const std::int64_t from_bal = store.get(from).value_or(0);
        if (from_bal < amount) continue;
        Store::Batch transfer;
        transfer.put(from, from_bal - amount);
        transfer.put(to, store.get(to).value_or(0) + amount);
        store.applyBatch(transfer);
      }
    });
  }

  // Analytics: snapshot scans must see the conserved sum every time; the
  // torn per-account point-read loop usually doesn't.
  std::int64_t snapshot_bad = 0, torn_off = 0;
  for (int audit = 0; audit < 200; ++audit) {
    {
      auto view = store.snapshotAll();  // one instant, all 16 shards
      std::int64_t total = 0;
      for (const auto& [account, balance] : view.range(0, kAccounts - 1)) {
        (void)account;
        total += balance;
      }
      if (total != kExpectedTotal ||
          view.size() != static_cast<std::size_t>(kAccounts)) {
        ++snapshot_bad;
      }
    }
    std::int64_t torn_total = 0;  // point reads spread over time: tears
    for (std::int64_t a = 0; a < kAccounts; ++a) {
      torn_total += store.get(a).value_or(0);
    }
    if (torn_total != kExpectedTotal) ++torn_off;
  }
  stop = true;
  for (auto& w : writers) w.join();

  std::int64_t final_total = 0;
  for (const auto& [account, balance] : store.rangeQuery(0, kAccounts - 1)) {
    (void)account;
    final_total += balance;
  }
  store.disable_background_trim();
  store.camera().takeSnapshot();
  const std::size_t trimmed = store.trim_all();

  std::printf("audits: %lld/200 snapshot scans inconsistent (must be 0);"
              " torn point-read sums off %lld/200 times\n",
              static_cast<long long>(snapshot_bad),
              static_cast<long long>(torn_off));
  std::printf("final total = %lld (expected %lld)\n",
              static_cast<long long>(final_total),
              static_cast<long long>(kExpectedTotal));
  std::printf("trimmed %zu stale versions at shutdown; %zu live versions "
              "remain\n",
              trimmed, store.total_versions());
  return final_total == kExpectedTotal && snapshot_bad == 0 ? 0 : 1;
}
