// Chromatic tree tests: set semantics (typed over both flavors), the
// relaxed red-black safety property (all real root-to-leaf weighted path
// sums equal, at all times), rebalancing quality, and snapshot queries on
// the versioned flavor.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "ds/chromatic.h"
#include "ebr/ebr.h"
#include "util/barrier.h"
#include "util/rng.h"

namespace {

using vcas::ds::ChromaticTree;
using vcas::ds::VcasChromaticTree;

template <typename Tree>
class ChromaticTest : public ::testing::Test {};

using TreeTypes =
    ::testing::Types<ChromaticTree<std::int64_t, std::int64_t>,
                     VcasChromaticTree<std::int64_t, std::int64_t>>;

class TreeNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    if (std::is_same_v<T, ChromaticTree<std::int64_t, std::int64_t>>)
      return "CT";
    return "VcasCT";
  }
};

TYPED_TEST_SUITE(ChromaticTest, TreeTypes, TreeNames);

template <typename Tree>
void expect_equal_path_weights(const Tree& tree) {
  auto sums = tree.leaf_path_weights_unsynchronized();
  for (std::size_t i = 1; i < sums.size(); ++i) {
    ASSERT_EQ(sums[i], sums[0]) << "path weight sums diverged at leaf " << i;
  }
}

TYPED_TEST(ChromaticTest, BasicSetSemantics) {
  TypeParam tree;
  EXPECT_FALSE(tree.contains(3));
  EXPECT_TRUE(tree.insert(3, 30));
  EXPECT_FALSE(tree.insert(3, 31));
  EXPECT_EQ(tree.find(3), 30);
  EXPECT_TRUE(tree.insert(1, 10));
  EXPECT_TRUE(tree.insert(5, 50));
  EXPECT_TRUE(tree.remove(3));
  EXPECT_FALSE(tree.remove(3));
  EXPECT_FALSE(tree.contains(3));
  EXPECT_EQ(tree.size_unsynchronized(), 2u);
  expect_equal_path_weights(tree);
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(ChromaticTest, EmptyAfterInsertRemoveCycles) {
  TypeParam tree;
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(tree.insert(round, round));
    EXPECT_TRUE(tree.remove(round));
    EXPECT_EQ(tree.size_unsynchronized(), 0u);
  }
  expect_equal_path_weights(tree);
  vcas::ebr::drain_for_tests();
}

// The core property test for the transformation algebra: after ANY
// single-threaded history, (a) the key set matches std::set, (b) every real
// root-to-leaf path has the same weight sum, (c) cleanup has removed every
// violation (single-threaded cleanup runs to completion).
TYPED_TEST(ChromaticTest, RandomHistoryPreservesWeightInvariant) {
  vcas::util::Xoshiro256 seeds(2024);
  for (int trial = 0; trial < 5; ++trial) {
    TypeParam tree;
    std::set<std::int64_t> model;
    vcas::util::Xoshiro256 rng(seeds.next());
    for (int i = 0; i < 4000; ++i) {
      const std::int64_t key = static_cast<std::int64_t>(rng.next_in(400));
      if (rng.next_in(2) == 0) {
        ASSERT_EQ(tree.insert(key, key), model.insert(key).second);
      } else {
        ASSERT_EQ(tree.remove(key), model.erase(key) > 0);
      }
      if (i % 512 == 0) expect_equal_path_weights(tree);
    }
    auto keys = tree.keys_unsynchronized();
    std::vector<std::int64_t> expect(model.begin(), model.end());
    ASSERT_EQ(keys, expect);
    expect_equal_path_weights(tree);
    EXPECT_EQ(tree.violations_unsynchronized(), 0u);
  }
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(ChromaticTest, SortedInsertionStaysBalanced) {
  TypeParam tree;
  constexpr std::int64_t kKeys = 16384;
  for (std::int64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(tree.insert(k, k));
  const double log2n = std::log2(static_cast<double>(kKeys));
  // A proper red-black tree has height <= 2*log2(n+1); allow slack for the
  // external-tree encoding and the sentinel level.
  EXPECT_LE(tree.height_unsynchronized(),
            static_cast<std::size_t>(2 * log2n + 6))
      << "chromatic rebalancing failed to balance a sorted insertion";
  expect_equal_path_weights(tree);
  EXPECT_EQ(tree.violations_unsynchronized(), 0u);
  auto stats = tree.rebalance_stats();
  EXPECT_GT(stats.blk + stats.rb1 + stats.rb2, 0u);
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(ChromaticTest, DeleteHeavyRebalances) {
  TypeParam tree;
  constexpr std::int64_t kKeys = 8192;
  for (std::int64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(tree.insert(k, k));
  // Remove three quarters of the keys, skewed to one side.
  for (std::int64_t k = 0; k < (3 * kKeys) / 4; ++k) {
    ASSERT_TRUE(tree.remove(k));
  }
  const double log2n = std::log2(static_cast<double>(kKeys / 4));
  EXPECT_LE(tree.height_unsynchronized(),
            static_cast<std::size_t>(2 * log2n + 8));
  expect_equal_path_weights(tree);
  EXPECT_EQ(tree.violations_unsynchronized(), 0u);
  auto stats = tree.rebalance_stats();
  EXPECT_GT(stats.push + stats.rotate, 0u);  // overweight machinery ran
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(ChromaticTest, DisjointStripesConcurrently) {
  TypeParam tree;
  constexpr int kThreads = 4;
  constexpr std::int64_t kPerThread = 1500;
  vcas::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      const std::int64_t base = t * 1000000;
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(tree.insert(base + i, i));
      }
      for (std::int64_t i = 0; i < kPerThread; i += 2) {
        ASSERT_TRUE(tree.remove(base + i));
      }
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        ASSERT_EQ(tree.contains(base + i), i % 2 == 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tree.size_unsynchronized(),
            static_cast<std::size_t>(kThreads) * (kPerThread / 2));
  expect_equal_path_weights(tree);
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(ChromaticTest, ContendedHelpingStress) {
  TypeParam tree;
  constexpr int kThreads = 8;
  constexpr int kOps = 3000;
  constexpr std::int64_t kKeyRange = 24;
  vcas::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      vcas::util::Xoshiro256 rng(700 + t);
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const std::int64_t key =
            static_cast<std::int64_t>(rng.next_in(kKeyRange));
        if (rng.next_in(2) == 0) {
          tree.insert(key, t);
        } else {
          tree.remove(key);
        }
        if (i % 64 == 0) tree.contains(key);
      }
    });
  }
  for (auto& th : threads) th.join();
  auto keys = tree.keys_unsynchronized();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_TRUE(std::adjacent_find(keys.begin(), keys.end()) == keys.end());
  for (std::int64_t k = 0; k < kKeyRange; ++k) {
    EXPECT_EQ(tree.contains(k),
              std::binary_search(keys.begin(), keys.end(), k));
  }
  expect_equal_path_weights(tree);
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(ChromaticTest, ExactlyOneWinnerPerKey) {
  TypeParam tree;
  constexpr int kThreads = 6;
  constexpr std::int64_t kKeys = 400;
  std::atomic<int> insert_wins{0};
  vcas::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      for (std::int64_t k = 0; k < kKeys; ++k) {
        if (tree.insert(k, k)) insert_wins.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(insert_wins.load(), kKeys);
  EXPECT_EQ(tree.size_unsynchronized(), static_cast<std::size_t>(kKeys));
  expect_equal_path_weights(tree);
  vcas::ebr::drain_for_tests();
}

// --- versioned-flavor snapshot queries ------------------------------------

using VTree = VcasChromaticTree<std::int64_t, std::int64_t>;

TEST(VcasCtQueries, RangeMatchesModel) {
  VTree tree;
  std::set<std::int64_t> model;
  vcas::util::Xoshiro256 rng(9);
  for (int i = 0; i < 3000; ++i) {
    const std::int64_t k = static_cast<std::int64_t>(rng.next_in(1000));
    tree.insert(k, k * 7);
    model.insert(k);
  }
  for (int i = 0; i < 40; ++i) {
    const std::int64_t lo = static_cast<std::int64_t>(rng.next_in(1000));
    const std::int64_t hi = lo + static_cast<std::int64_t>(rng.next_in(300));
    auto got = tree.range(lo, hi);
    std::vector<std::int64_t> expect;
    for (auto it = model.lower_bound(lo); it != model.end() && *it <= hi; ++it)
      expect.push_back(*it);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t j = 0; j < got.size(); ++j) {
      EXPECT_EQ(got[j].first, expect[j]);
      EXPECT_EQ(got[j].second, expect[j] * 7);
    }
  }
  vcas::ebr::drain_for_tests();
}

TEST(VcasCtQueries, SuccAndFindIfAndMultisearch) {
  VTree tree;
  for (std::int64_t k = 0; k < 1000; k += 10) tree.insert(k, k);
  auto s = tree.succ(25, 3);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].first, 30);
  EXPECT_EQ(s[2].first, 50);
  auto f = tree.find_if(100, 1000,
                        [](const std::int64_t& k) { return k % 130 == 0; });
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->first, 130);
  auto m = tree.multisearch({0, 5, 990, 995});
  EXPECT_EQ(m[0], 0);
  EXPECT_EQ(m[1], std::nullopt);
  EXPECT_EQ(m[2], 990);
  EXPECT_EQ(m[3], std::nullopt);
  vcas::ebr::drain_for_tests();
}

TEST(VcasCtQueries, RangeSeesPairInvariantUnderChurnWithRebalancing) {
  VTree tree;
  // Prefill densely so deletes trigger overweight machinery during the
  // check phase.
  for (std::int64_t k = 0; k < 512; ++k) tree.insert(k * 2, k);
  constexpr std::int64_t kPairs = 64;
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};

  std::thread updater([&] {
    vcas::util::Xoshiro256 rng(31);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::int64_t k =
          2000 + static_cast<std::int64_t>(rng.next_in(kPairs));
      if (rng.next_in(2) == 0) {
        tree.insert(k, k);
        tree.insert(k + 1000, k);
      } else {
        tree.remove(k + 1000);
        tree.remove(k);
      }
    }
  });
  std::thread churner([&] {
    vcas::util::Xoshiro256 rng(32);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::int64_t k = static_cast<std::int64_t>(rng.next_in(1024));
      if (rng.next_in(2) == 0) {
        tree.insert(k, k);
      } else {
        tree.remove(k);
      }
    }
  });

  for (int iter = 0; iter < 2000; ++iter) {
    auto snap = tree.range(2000, 4000);
    std::set<std::int64_t> keys;
    for (auto& [k, v] : snap) {
      if (!keys.insert(k).second) ok = false;  // duplicates
    }
    for (std::int64_t k = 2000; k < 2000 + kPairs; ++k) {
      if (keys.count(k + 1000) && !keys.count(k)) ok = false;
    }
  }
  stop = true;
  updater.join();
  churner.join();
  EXPECT_TRUE(ok.load());
  expect_equal_path_weights(tree);
  vcas::ebr::drain_for_tests();
}

TEST(VcasCtQueries, SizeSnapshotStableWhileRotationsRun) {
  VTree tree;
  constexpr std::int64_t kKeys = 1024;
  for (std::int64_t k = 0; k < kKeys; ++k) tree.insert(k, k);
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};

  // Each churner removes and reinserts its own parity class; membership of
  // the other parity class never changes, so any snapshot size is within
  // [kKeys/2, kKeys] and even keys at indices 0 mod 4 are permanent.
  std::thread churner([&] {
    vcas::util::Xoshiro256 rng(77);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::int64_t k =
          static_cast<std::int64_t>(rng.next_in(kKeys / 2)) * 2 + 1;
      tree.remove(k);
      tree.insert(k, k);
    }
  });

  for (int iter = 0; iter < 400; ++iter) {
    const std::size_t n = tree.size_snapshot();
    if (n < kKeys / 2 || n > kKeys) ok = false;
  }
  stop = true;
  churner.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

}  // namespace
