// Set semantics and concurrency tests shared by both BST flavors (original
// NBBST and the versioned VcasBST), via typed tests: the versioned build
// must preserve the original's behavior exactly (paper Section 4: "our
// snapshot approach maintains the time bounds of all the operations
// supported by the original data structure" — and its semantics).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "ds/ellen_bst.h"
#include "ebr/ebr.h"
#include "util/barrier.h"
#include "util/rng.h"

namespace {

using vcas::ds::NBBST;
using vcas::ds::VcasBST;
using vcas::ds::VcasBSTIndirect;

template <typename Tree>
class EllenBstTest : public ::testing::Test {};

using TreeTypes =
    ::testing::Types<NBBST<std::int64_t, std::int64_t>,
                     VcasBST<std::int64_t, std::int64_t>,
                     VcasBSTIndirect<std::int64_t, std::int64_t>>;

class TreeNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    if (std::is_same_v<T, NBBST<std::int64_t, std::int64_t>>) return "NBBST";
    if (std::is_same_v<T, VcasBST<std::int64_t, std::int64_t>>)
      return "VcasBST";
    return "VcasBSTIndirect";
  }
};

TYPED_TEST_SUITE(EllenBstTest, TreeTypes, TreeNames);

TYPED_TEST(EllenBstTest, EmptyTreeFindsNothing) {
  TypeParam tree;
  EXPECT_FALSE(tree.contains(0));
  EXPECT_FALSE(tree.contains(42));
  EXPECT_EQ(tree.find(1), std::nullopt);
  EXPECT_FALSE(tree.remove(1));
  EXPECT_EQ(tree.size_unsynchronized(), 0u);
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(EllenBstTest, InsertFindRemoveRoundTrip) {
  TypeParam tree;
  EXPECT_TRUE(tree.insert(10, 100));
  EXPECT_FALSE(tree.insert(10, 999));  // duplicate
  EXPECT_EQ(tree.find(10), 100);
  EXPECT_TRUE(tree.insert(5, 50));
  EXPECT_TRUE(tree.insert(15, 150));
  EXPECT_TRUE(tree.remove(10));
  EXPECT_FALSE(tree.remove(10));
  EXPECT_FALSE(tree.contains(10));
  EXPECT_EQ(tree.find(5), 50);
  EXPECT_EQ(tree.find(15), 150);
  EXPECT_EQ(tree.size_unsynchronized(), 2u);
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(EllenBstTest, ReinsertAfterRemove) {
  TypeParam tree;
  for (int round = 0; round < 5; ++round) {
    EXPECT_TRUE(tree.insert(7, round));
    EXPECT_EQ(tree.find(7), round);
    EXPECT_TRUE(tree.remove(7));
  }
  EXPECT_FALSE(tree.contains(7));
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(EllenBstTest, RandomOpsMatchStdSet) {
  TypeParam tree;
  std::set<std::int64_t> model;
  vcas::util::Xoshiro256 rng(17);
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t key = static_cast<std::int64_t>(rng.next_in(300));
    if (rng.next_in(2) == 0) {
      EXPECT_EQ(tree.insert(key, key * 2), model.insert(key).second);
    } else {
      EXPECT_EQ(tree.remove(key), model.erase(key) > 0);
    }
  }
  for (std::int64_t k = 0; k < 300; ++k) {
    EXPECT_EQ(tree.contains(k), model.count(k) > 0) << "key " << k;
  }
  auto keys = tree.keys_unsynchronized();
  std::vector<std::int64_t> expect(model.begin(), model.end());
  EXPECT_EQ(keys, expect);  // in-order traversal is sorted and exact
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(EllenBstTest, AscendingAndDescendingInsertions) {
  TypeParam tree;
  for (std::int64_t k = 0; k < 500; ++k) EXPECT_TRUE(tree.insert(k, k));
  for (std::int64_t k = 999; k >= 500; --k) EXPECT_TRUE(tree.insert(k, k));
  EXPECT_EQ(tree.size_unsynchronized(), 1000u);
  auto keys = tree.keys_unsynchronized();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  // Unbalanced tree: sorted insertion degenerates toward a path.
  EXPECT_GE(tree.height_unsynchronized(), 499u);
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(EllenBstTest, DisjointStripesConcurrently) {
  TypeParam tree;
  constexpr int kThreads = 4;
  constexpr std::int64_t kPerThread = 2000;
  vcas::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      const std::int64_t base = t * 1000000;
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(tree.insert(base + i, i));
      }
      for (std::int64_t i = 0; i < kPerThread; i += 2) {
        ASSERT_TRUE(tree.remove(base + i));
      }
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        ASSERT_EQ(tree.contains(base + i), i % 2 == 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tree.size_unsynchronized(),
            static_cast<std::size_t>(kThreads) * (kPerThread / 2));
  vcas::ebr::drain_for_tests();
}

// Heavy contention on a tiny key range drives the helping machinery: flag
// conflicts, backtracked deletes, helped inserts. The final structure must
// still be a valid leaf-oriented BST consistent with point lookups.
TYPED_TEST(EllenBstTest, ContendedHelpingStress) {
  TypeParam tree;
  constexpr int kThreads = 8;  // oversubscribed on small machines: good
  constexpr int kOps = 4000;
  constexpr std::int64_t kKeyRange = 16;
  vcas::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      vcas::util::Xoshiro256 rng(900 + t);
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const std::int64_t key =
            static_cast<std::int64_t>(rng.next_in(kKeyRange));
        if (rng.next_in(2) == 0) {
          tree.insert(key, t);
        } else {
          tree.remove(key);
        }
        if (i % 64 == 0) tree.contains(key);
      }
    });
  }
  for (auto& th : threads) th.join();
  auto keys = tree.keys_unsynchronized();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_TRUE(std::adjacent_find(keys.begin(), keys.end()) == keys.end());
  for (std::int64_t k = 0; k < kKeyRange; ++k) {
    const bool in_list =
        std::binary_search(keys.begin(), keys.end(), k);
    EXPECT_EQ(tree.contains(k), in_list);
  }
  vcas::ebr::drain_for_tests();
}

// Concurrent inserts of the same keys: exactly one winner per key.
TYPED_TEST(EllenBstTest, ExactlyOneInsertWinnerPerKey) {
  TypeParam tree;
  constexpr int kThreads = 6;
  constexpr std::int64_t kKeys = 500;
  std::atomic<int> wins{0};
  vcas::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      for (std::int64_t k = 0; k < kKeys; ++k) {
        if (tree.insert(k, k)) wins.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), kKeys);
  EXPECT_EQ(tree.size_unsynchronized(), static_cast<std::size_t>(kKeys));
  vcas::ebr::drain_for_tests();
}

// Concurrent removes of the same keys: exactly one winner per key.
TYPED_TEST(EllenBstTest, ExactlyOneRemoveWinnerPerKey) {
  TypeParam tree;
  constexpr std::int64_t kKeys = 500;
  for (std::int64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(tree.insert(k, k));
  constexpr int kThreads = 6;
  std::atomic<int> wins{0};
  vcas::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      for (std::int64_t k = 0; k < kKeys; ++k) {
        if (tree.remove(k)) wins.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), kKeys);
  EXPECT_EQ(tree.size_unsynchronized(), 0u);
  vcas::ebr::drain_for_tests();
}

}  // namespace
