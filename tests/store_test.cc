// ShardedStore: sharding, cross-shard atomic queries, atomic write batches,
// store-wide views, and camera-driven version trimming.
//
// The concurrency tests run over >= 4 shards and assert the store-level
// atomicity contract: no multiGet / rangeQuery / size ever observes a
// partially applied batch, and no announced view is ever broken by
// trimming. Typed over all three shard backends.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "ebr/ebr.h"
#include "store/backend.h"
#include "store/batch.h"
#include "store/store.h"
#include "util/rng.h"
#include "vcas/camera.h"

namespace {

using K = std::int64_t;
using V = std::int64_t;

template <typename Backend>
class StoreTest : public ::testing::Test {
 public:
  using Store = vcas::store::ShardedStore<K, V, Backend>;
};

using Backends =
    ::testing::Types<vcas::store::ListBackend, vcas::store::BstBackend,
                     vcas::store::ChromaticBackend>;
TYPED_TEST_SUITE(StoreTest, Backends);

// Pick `count` keys that land in pairwise distinct shards, so multi-key
// tests genuinely cross shard boundaries.
template <typename Store>
std::vector<K> distinct_shard_keys(const Store& store, std::size_t count) {
  std::vector<K> keys;
  std::vector<bool> used(store.shard_count(), false);
  for (K k = 0; keys.size() < count; ++k) {
    const std::size_t s = store.shard_index(k);
    if (!used[s]) {
      used[s] = true;
      keys.push_back(k);
    }
  }
  return keys;
}

TYPED_TEST(StoreTest, PutGetRemoveBasics) {
  typename TestFixture::Store store(8);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.get(1).has_value());

  EXPECT_TRUE(store.put(1, 10));
  EXPECT_FALSE(store.put(1, 11));  // upsert over present key
  EXPECT_EQ(store.get(1), std::optional<V>(11));
  EXPECT_TRUE(store.contains(1));

  EXPECT_TRUE(store.remove(1));
  EXPECT_FALSE(store.remove(1));
  EXPECT_FALSE(store.get(1).has_value());

  EXPECT_TRUE(store.put(1, 12));  // reinsert over the tombstone
  EXPECT_EQ(store.get(1), std::optional<V>(12));
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(StoreTest, RangeQueryMergesShardsInKeyOrder) {
  typename TestFixture::Store store(8);
  for (K k = 0; k < 200; ++k) ASSERT_TRUE(store.put(k, k * 2));
  for (K k = 0; k < 200; k += 3) ASSERT_TRUE(store.remove(k));

  const auto out = store.rangeQuery(50, 149);
  std::size_t expect = 0;
  for (K k = 50; k <= 149; ++k) {
    if (k % 3 != 0) ++expect;
  }
  ASSERT_EQ(out.size(), expect);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].second, out[i].first * 2);
    if (i > 0) {
      EXPECT_LT(out[i - 1].first, out[i].first);  // globally sorted
    }
    EXPECT_NE(out[i].first % 3, 0);
  }
  EXPECT_EQ(store.size(), 200u - 67u);  // 67 multiples of 3 in [0, 200)
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(StoreTest, MultiGetAnswersInInputOrder) {
  typename TestFixture::Store store(4);
  store.put(5, 50);
  store.put(7, 70);
  const auto out = store.multiGet({7, 6, 5});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], std::optional<V>(70));
  EXPECT_FALSE(out[1].has_value());
  EXPECT_EQ(out[2], std::optional<V>(50));
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(StoreTest, ViewIsFrozenWhileWritesContinue) {
  typename TestFixture::Store store(4);
  for (K k = 0; k < 32; ++k) store.put(k, 1);
  {
    auto view = store.snapshotAll();
    for (K k = 0; k < 32; ++k) store.put(k + 100, 1);
    for (K k = 0; k < 16; ++k) store.remove(k);
    EXPECT_EQ(view.size(), 32u);
    EXPECT_EQ(view.range(0, 1000).size(), 32u);
    EXPECT_EQ(view.get(0), std::optional<V>(1));
    EXPECT_FALSE(view.get(100).has_value());
  }
  EXPECT_EQ(store.size(), 48u);
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(StoreTest, BatchAppliesAllOpsAndLastOpWins) {
  typename TestFixture::Store store(8);
  store.put(3, 30);

  typename TestFixture::Store::Batch batch;
  batch.put(1, 7);
  batch.put(2, 8);
  batch.remove(3);
  batch.put(1, 9);  // later op on the same key wins
  store.applyBatch(batch);

  EXPECT_EQ(store.get(1), std::optional<V>(9));
  EXPECT_EQ(store.get(2), std::optional<V>(8));
  EXPECT_FALSE(store.get(3).has_value());
  EXPECT_EQ(store.size(), 2u);
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(StoreTest, ViewTakenBeforeBatchSeesNoneOfIt) {
  typename TestFixture::Store store(8);
  store.put(1, 1);
  auto view = store.snapshotAll();

  typename TestFixture::Store::Batch batch;
  batch.put(1, 100);
  batch.put(2, 200);
  store.applyBatch(batch);

  EXPECT_EQ(view.get(1), std::optional<V>(1));
  EXPECT_FALSE(view.get(2).has_value());
  EXPECT_EQ(store.get(1), std::optional<V>(100));
  vcas::ebr::drain_for_tests();
}

// The headline contract: a writer updates 4 keys in 4 distinct shards only
// through atomic batches that keep them EQUAL; concurrent multiGet /
// rangeQuery snapshots must never see two of the keys differ — a torn
// (partially applied) batch would show exactly that.
TYPED_TEST(StoreTest, ConcurrentBatchesAreNeverSeenPartiallyApplied) {
  typename TestFixture::Store store(8);
  const std::vector<K> keys = distinct_shard_keys(store, 4);
  {
    typename TestFixture::Store::Batch init;
    for (K k : keys) init.put(k, 0);
    store.applyBatch(init);
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::thread writer([&] {
    for (V round = 1; !stop.load(std::memory_order_relaxed); ++round) {
      typename TestFixture::Store::Batch batch;
      for (K k : keys) batch.put(k, round);
      store.applyBatch(batch);
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      for (int i = 0; i < 1500; ++i) {
        if (r == 0) {
          const auto vals = store.multiGet(keys);
          for (std::size_t j = 1; j < vals.size(); ++j) {
            if (!vals[j].has_value() || *vals[j] != *vals[0]) ok = false;
          }
        } else {
          const auto pairs = store.rangeQuery(keys.front(), keys.back());
          V first = -1;
          for (const auto& [k, v] : pairs) {
            (void)k;
            if (first == -1) first = v;
            if (v != first) ok = false;
          }
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  stop = true;
  writer.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

// size()/rangeQuery cardinality atomicity: batches insert or remove a PAIR
// of keys (distinct shards) per application, so the number of present keys
// is always even at every batch boundary. An odd count means a snapshot
// caught half a batch.
TYPED_TEST(StoreTest, SizeAndRangeNeverCatchHalfABatch) {
  typename TestFixture::Store store(8);
  const std::vector<K> keys = distinct_shard_keys(store, 6);

  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::thread writer([&] {
    vcas::util::Xoshiro256 rng(11);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t i = 2 * rng.next_in(keys.size() / 2);
      typename TestFixture::Store::Batch batch;
      if (rng.next_in(2) == 0) {
        batch.put(keys[i], 1);
        batch.put(keys[i + 1], 1);
      } else {
        batch.remove(keys[i]);
        batch.remove(keys[i + 1]);
      }
      store.applyBatch(batch);
    }
  });

  for (int i = 0; i < 1500; ++i) {
    const std::size_t n = (i % 2 == 0)
                              ? store.size()
                              : store.rangeQuery(keys.front(), keys.back()).size();
    if (n % 2 != 0) ok = false;
  }
  stop = true;
  writer.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

// Two writers batching over OVERLAPPING key sets (worst case for the
// ordered-acquisition wait path): must not deadlock, and each batch must
// still be all-or-nothing.
TYPED_TEST(StoreTest, OverlappingConcurrentBatchesStayAtomic) {
  typename TestFixture::Store store(8);
  const std::vector<K> keys = distinct_shard_keys(store, 4);
  {
    typename TestFixture::Store::Batch init;
    for (K k : keys) init.put(k, 0);
    store.applyBatch(init);
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      // Writer 0 walks keys forward, writer 1 backward: conflicting
      // install orders at the op level, serialized by (shard, key) sort.
      for (V round = 1; !stop.load(std::memory_order_relaxed); ++round) {
        typename TestFixture::Store::Batch batch;
        const V stamp = round * 2 + w;
        if (w == 0) {
          for (std::size_t i = 0; i < keys.size(); ++i) {
            batch.put(keys[i], stamp);
          }
        } else {
          for (std::size_t i = keys.size(); i-- > 0;) {
            batch.put(keys[i], stamp);
          }
        }
        store.applyBatch(batch);
      }
    });
  }

  for (int i = 0; i < 2000; ++i) {
    const auto vals = store.multiGet(keys);
    for (std::size_t j = 1; j < vals.size(); ++j) {
      if (!vals[j].has_value() || *vals[j] != *vals[0]) ok = false;
    }
  }
  stop = true;
  for (auto& th : writers) th.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

// --- trimming -------------------------------------------------------------

TYPED_TEST(StoreTest, TrimAllDropsHistoryNoReaderNeeds) {
  typename TestFixture::Store store(4);
  // This test exercises trim on long per-key chains, so the history must
  // actually accumulate: pin write-path coalescing off (with it on, these
  // equal-stamped rounds would collapse as they are written — that shape
  // is covered by coalescing_test.cc).
  store.set_coalescing(false);
  for (int round = 0; round < 50; ++round) {
    for (K k = 0; k < 8; ++k) store.put(k, round);
  }
  const std::size_t before = store.total_versions();
  EXPECT_GT(before, 8u * 40u);
  store.camera().takeSnapshot();  // move the clock past the last write
  EXPECT_GT(store.trim_all(), 0u);
  // One pivot version per cell may remain.
  EXPECT_LE(store.total_versions(), 8u);
  for (K k = 0; k < 8; ++k) EXPECT_EQ(store.get(k), std::optional<V>(49));
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(StoreTest, TrimPreservesEverythingAnAnnouncedViewCanRead) {
  typename TestFixture::Store store(4);
  for (K k = 0; k < 8; ++k) store.put(k, -1);
  auto view = std::make_unique<typename TestFixture::Store::View>(store);
  for (int round = 0; round < 30; ++round) {
    for (K k = 0; k < 8; ++k) store.put(k, round);
  }
  store.trim_all();
  for (K k = 0; k < 8; ++k) {
    EXPECT_EQ(view->get(k), std::optional<V>(-1));  // view intact
    EXPECT_EQ(store.get(k), std::optional<V>(29));
  }
  view.reset();
  store.camera().takeSnapshot();
  store.trim_all();
  EXPECT_LE(store.total_versions(), 8u);
  vcas::ebr::drain_for_tests();
}

// The satellite stress: one thread trims ALL shards off min_active() while
// announced snapshot readers scan the store — the cross-structure version
// of versioned_cas_test.cc's single-object trim races. Views must stay
// stable (same answer on re-read) and internally consistent (batch-equal
// keys never differ).
TYPED_TEST(StoreTest, TrimRacesAnnouncedCrossShardReaders) {
  typename TestFixture::Store store(8);
  const std::vector<K> keys = distinct_shard_keys(store, 4);
  {
    typename TestFixture::Store::Batch init;
    for (K k : keys) init.put(k, 0);
    store.applyBatch(init);
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::thread writer([&] {
    for (V round = 1; !stop.load(std::memory_order_relaxed); ++round) {
      typename TestFixture::Store::Batch batch;
      for (K k : keys) batch.put(k, round);
      store.applyBatch(batch);
    }
  });
  std::thread trimmer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      store.trim_all();
    }
  });

  for (int i = 0; i < 1200; ++i) {
    auto view = store.snapshotAll();
    const auto first = view.multiGet(keys);
    for (std::size_t j = 1; j < first.size(); ++j) {
      if (!first[j].has_value() || *first[j] != *first[0]) ok = false;
    }
    // Re-reads through the same view must be byte-identical even while the
    // trimmer concurrently detaches versions.
    const auto again = view.multiGet(keys);
    if (again != first) ok = false;
  }
  stop = true;
  writer.join();
  trimmer.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(StoreTest, BackgroundTrimmerRunsAndStops) {
  typename TestFixture::Store store(4);
  store.enable_background_trim(std::chrono::milliseconds(1));
  store.enable_background_trim(std::chrono::milliseconds(1));  // idempotent
  for (int round = 0; round < 40; ++round) {
    for (K k = 0; k < 8; ++k) store.put(k, round);
  }
  store.disable_background_trim();
  // Deterministic check after the trimmer is quiesced: history written
  // above is trimmable once the clock passes it.
  store.camera().takeSnapshot();
  store.trim_all();
  EXPECT_LE(store.total_versions(), 8u);
  for (K k = 0; k < 8; ++k) EXPECT_EQ(store.get(k), std::optional<V>(39));
  vcas::ebr::drain_for_tests();
}

}  // namespace
