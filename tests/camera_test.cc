#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "ebr/ebr.h"
#include "util/barrier.h"
#include "vcas/camera.h"
#include "vcas/era.h"
#include "vcas/snapshot.h"

namespace {

using vcas::Camera;
using vcas::Era;
using vcas::Timestamp;

TEST(Camera, HandlesAreMonotonicNonDecreasing) {
  Camera cam;
  Timestamp prev = cam.takeSnapshot();
  for (int i = 0; i < 1000; ++i) {
    Timestamp t = cam.takeSnapshot();
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Camera, SoloSnapshotsIncrementByOne) {
  Camera cam;
  // With no contention the CAS always succeeds, so handles are 0,1,2,...
  // (era rolls piggyback on the path but never touch the clock).
  for (Timestamp expect = 0; expect < 100; ++expect) {
    EXPECT_EQ(cam.takeSnapshot(), expect);
  }
  EXPECT_EQ(cam.current(), 100);
}

TEST(Camera, ConcurrentSnapshotsNeverExceedOneIncrementEach) {
  Camera cam;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  vcas::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  std::vector<Timestamp> maxima(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      Timestamp prev = -1;
      for (int i = 0; i < kPerThread; ++i) {
        Timestamp ts = cam.takeSnapshot();
        EXPECT_GE(ts, prev);  // per-thread monotone
        prev = ts;
      }
      maxima[t] = prev;
    });
  }
  for (auto& th : threads) th.join();
  // Failed CASes return without retrying, so the counter advances at most
  // once per takeSnapshot and at least once per "round" of them.
  const Timestamp final = cam.current();
  EXPECT_LE(final, static_cast<Timestamp>(kThreads) * kPerThread);
  EXPECT_GE(final, kPerThread);  // at least one thread's worth of progress
  EXPECT_EQ(*std::max_element(maxima.begin(), maxima.end()) + 1, final);
}

TEST(Camera, MinActiveTracksPins) {
  Camera cam;
  for (int i = 0; i < 10; ++i) cam.takeSnapshot();
  EXPECT_EQ(cam.min_active(), cam.current());  // nothing pinned

  Camera::PinnedSnapshot ps = cam.pin_and_snapshot();
  EXPECT_GE(ps.ts, 10);
  EXPECT_LE(cam.min_active(), ps.ts);
  for (int i = 0; i < 10; ++i) cam.takeSnapshot();
  EXPECT_LE(cam.min_active(), ps.ts);  // held down by our pin
  cam.unpin(ps.pin);
  EXPECT_EQ(cam.min_active(), cam.current());
}

TEST(Camera, PinnedHandleIsAtLeastEraLowerBound) {
  // Safety property trimming relies on: the handle a query actually uses
  // is >= the lower bound its pinned era contributes to min_active.
  Camera cam;
  constexpr int kThreads = 6;
  std::atomic<bool> ok{true};
  vcas::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < 3000; ++i) {
        Timestamp floor = cam.current();
        Camera::PinnedSnapshot ps = cam.pin_and_snapshot();
        if (ps.ts < floor) ok = false;
        cam.unpin(ps.pin);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

TEST(Camera, ErasRollAndBalancedErasRetire) {
  Camera cam;
  EXPECT_EQ(cam.eras_live(), 1);
  // 300 ticks crosses the roll cadence several times; every closed era is
  // balanced immediately (no pins), so sweeps keep the chain short.
  for (int i = 0; i < 300; ++i) cam.takeSnapshot();
  EXPECT_GE(cam.current(), 300);
  EXPECT_LE(cam.eras_live(), 2);
  EXPECT_EQ(cam.min_active(), cam.current());
  vcas::ebr::drain_for_tests();
}

TEST(Camera, PinHoldsItsEraAcrossRolls) {
  Camera cam;
  Camera::PinnedSnapshot ps = cam.pin_and_snapshot();
  for (int i = 0; i < 300; ++i) cam.takeSnapshot();
  // The pinned era closed long ago but cannot retire: its gap is nonzero,
  // and min_active stays bounded by the pin.
  EXPECT_LE(cam.min_active(), ps.ts);
  EXPECT_GE(cam.eras_live(), 2);
  cam.unpin(ps.pin);  // balances the closed era -> releaser retires it
  EXPECT_EQ(cam.min_active(), cam.current());
  for (int i = 0; i < 300; ++i) cam.takeSnapshot();
  EXPECT_LE(cam.eras_live(), 2);
  vcas::ebr::drain_for_tests();
}

TEST(Camera, EraWordPackRoundTrip) {
  // Pitfall guard #1 (vcas/era.h): the 48-bit address assumption. A real
  // heap pointer must survive the pack/unpack round trip at every outer
  // count, including the extremes.
  Era* e = new Era;
  for (std::uint32_t outer : {0u, 1u, 0x7FFFu, 0x8000u, 0xFFFFu}) {
    const std::uint64_t w = vcas::era_pack(e, static_cast<std::uint16_t>(outer));
    EXPECT_EQ(vcas::era_ptr(w), e);
    EXPECT_EQ(vcas::era_outer(w), outer);
  }
  // The pin increment's carry out of the count field must wrap the outer
  // count without disturbing the pointer bits.
  std::atomic<std::uint64_t> word{vcas::era_pack(e, 0xFFFF)};
  word.fetch_add(vcas::kEraPinIncrement);
  EXPECT_EQ(vcas::era_outer(word.load()), 0);
  EXPECT_EQ(vcas::era_ptr(word.load()), e);
  delete e;
}

TEST(Camera, OuterInnerGapSurvivesUint16Wraparound) {
  // Pitfall guard #2 (vcas/era.h): sustained acquire/release traffic on
  // ONE era wraps the 16-bit outer count (no takeSnapshot here, so the
  // era never rolls). 70000 > 2^16 pin/unpin pairs later, the mod-2^16
  // gap arithmetic must still read the era as unpinned...
  Camera cam;
  for (int i = 0; i < 70000; ++i) {
    Camera::Pin p = cam.pin();
    cam.unpin(p);
  }
  EXPECT_EQ(cam.min_active(), cam.current());
  // ...and as pinned again the moment one more pin lands past the wrap.
  Camera::Pin p = cam.pin();
  const Timestamp t = cam.takeSnapshot();
  EXPECT_LE(cam.min_active(), t);
  cam.unpin(p);
  EXPECT_EQ(cam.min_active(), cam.current());
  vcas::ebr::drain_for_tests();
}

TEST(SnapshotGuard, ReleasesPinOnDestruction) {
  Camera cam;
  cam.takeSnapshot();
  {
    vcas::SnapshotGuard guard(cam);
    EXPECT_LE(cam.min_active(), guard.ts());
  }
  EXPECT_EQ(cam.min_active(), cam.current());
}

TEST(Camera, HandleIsAlwaysStrictlyBelowClockAfterReturn) {
  // Regression for the compare_exchange write-back bug: a takeSnapshot
  // whose CAS lost to a concurrent bump must return the value it LOADED
  // (the clock is already past it), never the failure-updated CURRENT
  // value — a handle equal to the clock lets every in-flight write keep
  // stamping <= it, so the "snapshot" would absorb updates for as long as
  // the clock sat still (torn cross-object reads, unstable re-reads).
  // The postcondition clock > handle is exact, so any single violation
  // under contention fails the test.
  Camera cam;
  constexpr int kThreads = 4;
  vcas::util::SpinBarrier barrier(kThreads);
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < 20000; ++i) {
        const Timestamp h = cam.takeSnapshot();
        if (cam.current() <= h) ok = false;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

TEST(SnapshotGuard, NestedGuardsOnSameThreadKeepOldestPin) {
  Camera cam;
  vcas::SnapshotGuard outer(cam);
  Timestamp outer_ts = outer.ts();
  for (int i = 0; i < 5; ++i) cam.takeSnapshot();
  {
    // Nested guards are independent era pins (no depth array): the inner
    // guard cannot overwrite the outer pin, so min_active stays at or
    // below the outer handle for the outer guard's whole lifetime —
    // nested snapshots are safe even with version-list trimming running
    // concurrently.
    vcas::SnapshotGuard inner(cam);
    EXPECT_GE(inner.ts(), outer_ts);
    EXPECT_LE(cam.min_active(), outer_ts);
  }
  // Inner destruction releases only the inner pin; the outer era's gap
  // stays nonzero.
  EXPECT_LE(cam.min_active(), outer_ts);
}

TEST(SnapshotGuard, PinReleasedOnlyWhenOutermostGuardDies) {
  Camera cam;
  for (int i = 0; i < 3; ++i) cam.takeSnapshot();
  {
    vcas::SnapshotGuard outer(cam);
    const Timestamp outer_ts = outer.ts();
    for (int d = 0; d < 4; ++d) {
      vcas::SnapshotGuard inner(cam);
      (void)inner;
    }
    // Drive the clock across several roll cadences: the outer pin's era
    // closes but must survive every sweep.
    for (int i = 0; i < 300; ++i) cam.takeSnapshot();
    EXPECT_LE(cam.min_active(), outer_ts);
  }
  EXPECT_EQ(cam.min_active(), cam.current());
  vcas::ebr::drain_for_tests();
}

}  // namespace
