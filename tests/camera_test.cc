#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "util/barrier.h"
#include "vcas/camera.h"
#include "vcas/snapshot.h"

namespace {

using vcas::Camera;
using vcas::Timestamp;

TEST(Camera, HandlesAreMonotonicNonDecreasing) {
  Camera cam;
  Timestamp prev = cam.takeSnapshot();
  for (int i = 0; i < 1000; ++i) {
    Timestamp t = cam.takeSnapshot();
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Camera, SoloSnapshotsIncrementByOne) {
  Camera cam;
  // With no contention the CAS always succeeds, so handles are 0,1,2,...
  for (Timestamp expect = 0; expect < 100; ++expect) {
    EXPECT_EQ(cam.takeSnapshot(), expect);
  }
  EXPECT_EQ(cam.current(), 100);
}

TEST(Camera, ConcurrentSnapshotsNeverExceedOneIncrementEach) {
  Camera cam;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  vcas::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  std::vector<Timestamp> maxima(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      Timestamp prev = -1;
      for (int i = 0; i < kPerThread; ++i) {
        Timestamp ts = cam.takeSnapshot();
        EXPECT_GE(ts, prev);  // per-thread monotone
        prev = ts;
      }
      maxima[t] = prev;
    });
  }
  for (auto& th : threads) th.join();
  // Failed CASes return without retrying, so the counter advances at most
  // once per takeSnapshot and at least once per "round" of them.
  const Timestamp final = cam.current();
  EXPECT_LE(final, static_cast<Timestamp>(kThreads) * kPerThread);
  EXPECT_GE(final, kPerThread);  // at least one thread's worth of progress
  EXPECT_EQ(*std::max_element(maxima.begin(), maxima.end()) + 1, final);
}

TEST(Camera, MinActiveTracksAnnouncements) {
  Camera cam;
  for (int i = 0; i < 10; ++i) cam.takeSnapshot();
  EXPECT_EQ(cam.min_active(), cam.current());  // nothing announced

  Timestamp t = cam.announce_and_snapshot();
  EXPECT_GE(t, 10);
  EXPECT_LE(cam.min_active(), t);
  for (int i = 0; i < 10; ++i) cam.takeSnapshot();
  EXPECT_LE(cam.min_active(), t);  // pinned by our announcement
  cam.clear_announcement();
  EXPECT_EQ(cam.min_active(), cam.current());
}

TEST(Camera, AnnouncedHandleIsAtLeastAnnouncement) {
  // Safety property trimming relies on: the handle a query actually uses is
  // >= the value it announced.
  Camera cam;
  constexpr int kThreads = 6;
  std::atomic<bool> ok{true};
  vcas::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < 3000; ++i) {
        Timestamp announced_floor = cam.current();
        Timestamp handle = cam.announce_and_snapshot();
        if (handle < announced_floor) ok = false;
        cam.clear_announcement();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(ok.load());
}

TEST(SnapshotGuard, ClearsAnnouncementOnDestruction) {
  Camera cam;
  cam.takeSnapshot();
  {
    vcas::SnapshotGuard guard(cam);
    EXPECT_LE(cam.min_active(), guard.ts());
  }
  EXPECT_EQ(cam.min_active(), cam.current());
}

TEST(Camera, HandleIsAlwaysStrictlyBelowClockAfterReturn) {
  // Regression for the compare_exchange write-back bug: a takeSnapshot
  // whose CAS lost to a concurrent bump must return the value it LOADED
  // (the clock is already past it), never the failure-updated CURRENT
  // value — a handle equal to the clock lets every in-flight write keep
  // stamping <= it, so the "snapshot" would absorb updates for as long as
  // the clock sat still (torn cross-object reads, unstable re-reads).
  // The postcondition clock > handle is exact, so any single violation
  // under contention fails the test.
  Camera cam;
  constexpr int kThreads = 4;
  vcas::util::SpinBarrier barrier(kThreads);
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < 20000; ++i) {
        const Timestamp h = cam.takeSnapshot();
        if (cam.current() <= h) ok = false;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(ok.load());
}

TEST(SnapshotGuard, NestedGuardsOnSameThreadKeepOldestPin) {
  Camera cam;
  vcas::SnapshotGuard outer(cam);
  Timestamp outer_ts = outer.ts();
  for (int i = 0; i < 5; ++i) cam.takeSnapshot();
  {
    // The announcement slot is reference-counted: the inner guard must NOT
    // overwrite the outer pin, so min_active stays at or below the outer
    // handle for the outer guard's whole lifetime — nested snapshots are
    // safe even with version-list trimming running concurrently.
    vcas::SnapshotGuard inner(cam);
    EXPECT_GE(inner.ts(), outer_ts);
    EXPECT_LE(cam.min_active(), outer_ts);
  }
  // Inner destruction keeps the outer pin (depth 2 -> 1, no clear).
  EXPECT_LE(cam.min_active(), outer_ts);
}

TEST(SnapshotGuard, PinReleasedOnlyWhenOutermostGuardDies) {
  Camera cam;
  for (int i = 0; i < 3; ++i) cam.takeSnapshot();
  {
    vcas::SnapshotGuard outer(cam);
    const Timestamp outer_ts = outer.ts();
    for (int d = 0; d < 4; ++d) {
      vcas::SnapshotGuard inner(cam);
      (void)inner;
    }
    for (int i = 0; i < 10; ++i) cam.takeSnapshot();
    EXPECT_LE(cam.min_active(), outer_ts);
  }
  EXPECT_EQ(cam.min_active(), cam.current());
}

}  // namespace
