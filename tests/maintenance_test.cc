// The maintenance subsystem (ISSUE 5): tombstone cell GC's DETACHED-seal
// race matrix, abort-chain cleanup vs live helpers, horizon-side
// coalescing, the incremental cursor, and pool lifecycle/teardown. Runs in
// the TSan and ASan CI jobs — the interesting assertions here are the ones
// the sanitizers make (no lost write, no use-after-free on a detached
// cell, no double-retire), the EXPECTs pin the semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "ebr/ebr.h"
#include "inject/failpoint.h"
#include "maint/maintenance.h"
#include "obs/metrics.h"
#include "store/backend.h"
#include "store/batch.h"
#include "store/store.h"

namespace {

using K = std::int64_t;
using V = std::int64_t;

template <typename Backend>
class MaintenanceTest : public ::testing::Test {
 public:
  using Store = vcas::store::ShardedStore<K, V, Backend>;

 protected:
  // Failpoint sites are process-global; never leak an armed site into the
  // next test.
  void TearDown() override {
    vcas::inject::disarm_all();
    vcas::inject::release_all();
  }
};

using Backends =
    ::testing::Types<vcas::store::ListBackend, vcas::store::BstBackend,
                     vcas::store::ChromaticBackend>;
TYPED_TEST_SUITE(MaintenanceTest, Backends);

// --- tombstone cell GC ------------------------------------------------------

TYPED_TEST(MaintenanceTest, TombstoneCellsAreStructurallyReclaimed) {
  typename TestFixture::Store store(4);
  constexpr K kKeys = 64;
  for (K k = 0; k < kKeys; ++k) store.put(k, k * 10);
  for (K k = 1; k < kKeys; k += 2) store.remove(k);
  EXPECT_EQ(store.total_cells(), static_cast<std::size_t>(kKeys));
  // Move the clock past the tombstones (GC requires the tombstone's stamp
  // strictly below min_active), then run the janitor to a fixed point.
  store.camera().takeSnapshot();
  store.maintain_all();
  EXPECT_EQ(store.total_cells(), static_cast<std::size_t>(kKeys / 2));
  // Counter assertions only hold when the obs registry is compiled in
  // (VCAS_STATS=OFF zeroes every meter); the structural checks around
  // them pin the behavior in both build modes.
  if (vcas::obs::kStatsEnabled) {
    EXPECT_GE(store.maintenance_stats().cells_detached,
              static_cast<std::uint64_t>(kKeys / 2));
  }
  for (K k = 0; k < kKeys; ++k) {
    if (k % 2 == 1) {
      EXPECT_FALSE(store.get(k).has_value());
    } else {
      EXPECT_EQ(store.get(k), std::optional<V>(k * 10));
    }
  }
  // Removed keys are writable again, through fresh cells.
  EXPECT_TRUE(store.put(1, 111));
  EXPECT_EQ(store.get(1), std::optional<V>(111));
  vcas::ebr::drain_for_tests();
}

// A view whose handle predates the tombstone pins the cell's history: the
// horizon sits at (or below) the view's handle, so GC must not touch the
// cell — the view still reads the pre-remove value through it.
TYPED_TEST(MaintenanceTest, PinnedOldHandleBlocksCellGc) {
  typename TestFixture::Store store(2);
  store.put(7, 70);
  {
    auto view = store.snapshotAll();
    store.remove(7);
    store.camera().takeSnapshot();
    store.maintain_all();
    EXPECT_EQ(store.total_cells(), 1u);  // still pinned by the view
    EXPECT_EQ(view.get(7), std::optional<V>(70));
    EXPECT_FALSE(store.get(7).has_value());
  }
  // View released: the tombstone ages out and the cell goes.
  store.camera().takeSnapshot();
  store.maintain_all();
  EXPECT_EQ(store.total_cells(), 0u);
  vcas::ebr::drain_for_tests();
}

// The issue's "get-at-old-handle observing a detached-but-pinned
// tombstone": a view whose handle is ABOVE the tombstone does not block
// GC (the key is absent at every announced handle), and its reads keep
// resolving through the sealed cell's intact memory — sentinel skipped,
// tombstone answers "absent" — while the cell sits in EBR limbo.
TYPED_TEST(MaintenanceTest, ViewAboveTombstoneReadsThroughDetachedCell) {
  typename TestFixture::Store store(2);
  store.put(1, 10);
  store.put(2, 20);
  store.remove(1);
  // Horizon precision is one era-roll cadence: cross a roll so the view
  // pins a fresh era whose lower bound sits above the tombstone's stamp
  // (a same-era view would conservatively hold the horizon at era open).
  for (int i = 0; i < 2 * vcas::kEraRollTicks; ++i) {
    store.camera().takeSnapshot();
  }
  auto view = store.snapshotAll();  // handle (and era) above the tombstone
  store.maintain_all();             // GC runs while the view is live
  EXPECT_EQ(store.total_cells(), 1u);
  EXPECT_FALSE(view.get(1).has_value());
  EXPECT_EQ(view.get(2), std::optional<V>(20));
  // A put after the detach creates a fresh cell; the view keeps seeing
  // the (absent) state at its handle.
  EXPECT_TRUE(store.put(1, 11));
  EXPECT_EQ(store.get(1), std::optional<V>(11));
  EXPECT_FALSE(view.get(1).has_value());
  EXPECT_EQ(store.total_cells(), 2u);
  vcas::ebr::drain_for_tests();
}

// A batch planned against a cell that GC seals before the install lands
// must re-resolve to a fresh cell instead of resurrecting the sealed one
// (= silently losing the write). The store.batch.install failpoint parks
// the owner after its first install; maintenance seals the second op's
// cell in the window.
TYPED_TEST(MaintenanceTest, BatchInstallReResolvesCellSealedMidFlight) {
  if (!vcas::inject::kInjectEnabled) {
    GTEST_SKIP() << "park failpoints require -DVCAS_INJECT=ON";
  }
  typename TestFixture::Store store(2);
  // Key B's cell exists, is absent-stable, and its seed has aged: sealable
  // the moment the janitor looks at it.
  store.put(100, 1);
  store.remove(100);
  store.put(200, 2);  // key A, a different cell
  store.camera().takeSnapshot();

  vcas::inject::Spec spec;
  spec.action = vcas::inject::Action::kPark;
  spec.trigger = 1;  // park after the FIRST install, before the second
  vcas::inject::arm("store.batch.install", spec);
  std::thread owner([&] {
    typename TestFixture::Store::Batch b;
    b.put(100, 111);
    b.put(200, 222);
    store.applyBatch(b);
  });
  while (vcas::inject::parked("store.batch.install") == 0) {
    std::this_thread::yield();
  }
  // Owner sits between its two installs; seal whatever absent-stable
  // cells the horizon allows (at least one of the batch's two, whichever
  // was not installed yet — install order is registry/shard dependent).
  store.maintain_all();
  vcas::inject::release("store.batch.install");
  owner.join();

  EXPECT_EQ(store.get(100), std::optional<V>(111));
  EXPECT_EQ(store.get(200), std::optional<V>(222));
  vcas::ebr::drain_for_tests();
}

// Serializability across a seal: a transaction that witnessed a key
// ABSENT through a cell that GC then seals must still detect a put that
// commits in its validation window — the put lands in a FRESH cell, so
// validation has to chase the key's live mapping instead of trusting the
// sealed witness cell's (absent-stable) history.
TYPED_TEST(MaintenanceTest, SealedWitnessCellStillDetectsConflicts) {
  typename TestFixture::Store store(2);
  store.put(1, 10);
  store.remove(1);
  // Age the tombstone below the horizon: the transaction's pin bounds the
  // horizon at its era's open, so cross a roll cadence to put that bound
  // above the tombstone's stamp.
  for (int i = 0; i < 2 * vcas::kEraRollTicks; ++i) {
    store.camera().takeSnapshot();
  }
  {
    auto txn = store.beginTransaction();
    EXPECT_FALSE(txn.get(1).has_value());  // witness absent via the old cell
    store.maintain_all();                  // seal + unmap the witnessed cell
    EXPECT_EQ(store.total_cells(), 0u);
    EXPECT_TRUE(store.put(1, 99));  // conflicting write, in a fresh cell
    txn.put(2, 1);                  // write-skew shape: "put 2 iff 1 absent"
    EXPECT_FALSE(txn.commit().has_value());  // must ABORT
  }
  EXPECT_FALSE(store.get(2).has_value());
  EXPECT_EQ(store.get(1), std::optional<V>(99));
  // Same shape with NO intervening write commits (absent == absent).
  store.remove(1);
  for (int i = 0; i < 2 * vcas::kEraRollTicks; ++i) {
    store.camera().takeSnapshot();
  }
  {
    auto txn = store.beginTransaction();
    EXPECT_FALSE(txn.get(1).has_value());
    store.maintain_all();
    EXPECT_EQ(store.total_cells(), 0u);
    txn.put(2, 2);
    EXPECT_TRUE(txn.commit().has_value());
  }
  EXPECT_EQ(store.get(2), std::optional<V>(2));
  vcas::ebr::drain_for_tests();
}

// Put-vs-GC stress: every writer owns disjoint keys and checks its own
// writes become visible — a put that landed in a sealed (unreachable)
// cell would read back absent. The maintenance thread seals/reclaims as
// aggressively as the clock allows.
TYPED_TEST(MaintenanceTest, RacingPutsNeverLoseWritesToCellGc) {
  typename TestFixture::Store store(4);
  constexpr int kThreads = 4;
  constexpr K kKeysPerThread = 8;
  constexpr int kIters = 400;
  std::atomic<bool> stop{false};
  std::thread janitor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      store.camera().takeSnapshot();
      store.maintain_all();
    }
  });
  std::vector<std::thread> writers;
  std::atomic<int> lost{0};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const K k = t * kKeysPerThread + (i % kKeysPerThread);
        store.put(k, i);
        if (store.get(k) != std::optional<V>(i)) lost.fetch_add(1);
        if (i % 3 == 0) {
          store.remove(k);
          if (store.get(k).has_value()) lost.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  janitor.join();
  EXPECT_EQ(lost.load(), 0);
  // Quiesce: final state = every key put once, then reclaim the rest.
  for (K k = 0; k < kThreads * kKeysPerThread; ++k) store.put(k, 7);
  store.camera().takeSnapshot();
  store.maintain_all();
  EXPECT_EQ(store.total_cells(),
            static_cast<std::size_t>(kThreads * kKeysPerThread));
  for (K k = 0; k < kThreads * kKeysPerThread; ++k) {
    EXPECT_EQ(store.get(k), std::optional<V>(7));
  }
  vcas::ebr::drain_for_tests();
}

// --- abort-chain cleanup ----------------------------------------------------

TYPED_TEST(MaintenanceTest, AbortedRecordsCappingAChainAreUnlinked) {
  typename TestFixture::Store store(1);
  store.put(1, 10);
  store.put(2, 20);
  // Two aborted transactions leave two decided-ABORTED records at key 1's
  // head (each conflict is forced by touching the witnessed key 2).
  for (int i = 0; i < 2; ++i) {
    auto txn = store.beginTransaction();
    ASSERT_TRUE(txn.get(2).has_value());
    store.put(2, 21 + i);
    txn.put(1, 900 + i);
    ASSERT_FALSE(txn.commit().has_value());
  }
  const std::size_t before = store.total_versions();
  store.camera().takeSnapshot();
  store.maintain_all();
  if (vcas::obs::kStatsEnabled) {
    EXPECT_GE(store.maintenance_stats().aborted_unlinked, 2u);
  }
  EXPECT_LT(store.total_versions(), before);
  // Semantics unchanged: the aborted writes never happened.
  EXPECT_EQ(store.get(1), std::optional<V>(10));
  EXPECT_FALSE(store.put(1, 11));  // "was present" judged below the old cap
  EXPECT_EQ(store.get(1), std::optional<V>(11));
  vcas::ebr::drain_for_tests();
}

// Abort-unlink vs helpers still resolving: overlapping transact()
// increments generate a stream of aborted records (and helpers walking
// them mid-validation) while the janitor splices; the conserved sum proves
// no increment was lost or doubled.
TYPED_TEST(MaintenanceTest, AbortUnlinkRacesHelpersConservedSum) {
  typename TestFixture::Store store(2);
  constexpr K kCounters = 4;
  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 150;
  for (K k = 0; k < kCounters; ++k) store.put(k, 0);
  std::atomic<bool> stop{false};
  std::thread janitor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      store.camera().takeSnapshot();
      store.maintain_all();
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        const K k = (t + i) % kCounters;
        store.transact([&](auto& txn) {
          const V v = txn.get(k).value_or(0);
          txn.put(k, v + 1);
        });
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  janitor.join();
  V sum = 0;
  for (K k = 0; k < kCounters; ++k) sum += store.get(k).value_or(0);
  EXPECT_EQ(sum, static_cast<V>(kThreads) * kIncrementsPerThread);
  vcas::ebr::drain_for_tests();
}

// --- horizon-side coalescing ------------------------------------------------

// History pinned ABOVE the horizon by a long-lived view: trim cannot touch
// it, write-path coalescing is paced away, but the janitor's
// maintain_coalesce collapses the equal-stamp run.
TYPED_TEST(MaintenanceTest, CoalescesEqualStampRunsAboveTheHorizon) {
  typename TestFixture::Store store(1);
  store.set_coalesce_every(1u << 30);  // keep the write path out of it
  store.put(1, 0);
  auto view = store.snapshotAll();  // pins the horizon at its handle
  for (V i = 1; i <= 64; ++i) store.put(1, i);  // one equal-stamp run
  const std::size_t before = store.total_versions();
  ASSERT_GT(before, 32u);  // the run really accumulated
  store.maintain_all();
  if (vcas::obs::kStatsEnabled) {
    EXPECT_GE(store.maintenance_stats().versions_coalesced, 32u);
  }
  EXPECT_LE(store.total_versions(), 4u);
  EXPECT_EQ(view.get(1), std::optional<V>(0));   // pinned read intact
  EXPECT_EQ(store.get(1), std::optional<V>(64)); // live value intact
  vcas::ebr::drain_for_tests();
}

// --- incremental cursor -----------------------------------------------------

TYPED_TEST(MaintenanceTest, CursorBoundsPerTaskWorkAndResumes) {
  typename TestFixture::Store store(1);
  constexpr K kCells = 100;
  for (K k = 0; k < kCells; ++k) store.put(k, k);
  store.set_cells_per_tick(10);
  const std::uint64_t visited_before =
      store.maintenance_stats().cells_visited;
  int passes = 0;
  while (!store.maintain_shard(0)) {
    ++passes;
    ASSERT_LT(passes, 200) << "cursor never wrapped";
  }
  ++passes;  // the wrapping pass
  EXPECT_GE(passes, static_cast<int>(kCells / 10));
  if (vcas::obs::kStatsEnabled) {
    const std::uint64_t visited =
        store.maintenance_stats().cells_visited - visited_before;
    EXPECT_GE(visited, static_cast<std::uint64_t>(kCells));
  }
  vcas::ebr::drain_for_tests();
}

// --- pool lifecycle, hints, and the compatibility shim ----------------------

TYPED_TEST(MaintenanceTest, PoolRunsHintsAndSurvivesLifecycleCycling) {
  typename TestFixture::Store store(4);
  store.enable_maintenance(2, std::chrono::milliseconds(1));
  store.enable_maintenance(2, std::chrono::milliseconds(1));  // idempotent
  constexpr K kKeys = 48;
  for (K k = 0; k < kKeys; ++k) store.put(k, k);
  for (K k = 0; k < kKeys; ++k) store.remove(k);  // hints fire per tombstone
  // The pool needs the clock past the tombstones; poll with fresh
  // snapshots until GC has reclaimed everything (bounded wait).
  for (int spin = 0; spin < 2000 && store.total_cells() != 0; ++spin) {
    store.camera().takeSnapshot();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(store.total_cells(), 0u);
  if (vcas::obs::kStatsEnabled) {
    const auto stats = store.maintenance_stats();
    EXPECT_GT(stats.tasks_run, 0u);
    EXPECT_GT(stats.hints, 0u);
    EXPECT_GE(stats.cells_detached, static_cast<std::uint64_t>(kKeys));
  }
  store.disable_maintenance();
  store.disable_maintenance();  // drain-and-join exactly once; idempotent
  store.enable_maintenance(1, std::chrono::milliseconds(1));  // restartable
  store.put(1, 1);
  store.disable_maintenance();
  EXPECT_EQ(store.get(1), std::optional<V>(1));
  vcas::ebr::drain_for_tests();
}

// --- watchdog ---------------------------------------------------------------

// A worker stuck in a pass past the deadline is blamed by a peer: the
// watchdog fires exactly once for the stuck instance, re-enqueues the
// shard, and a live worker covers it — all while the rest of the pool
// keeps serving hints. Uses a raw MaintenancePool (no store, no
// injection): the stuck pass is just a PassFn that blocks on a flag.
TEST(MaintWatchdogTest, StuckWorkerIsBlamedOnceAndPeersStayLive) {
  const std::uint64_t fired_before = vcas::obs::m::maint_watchdog_fired.read();
  std::atomic<bool> block{true};
  std::atomic<int> shard0_passes{0};
  std::atomic<int> shard1_passes{0};
  vcas::maint::MaintenancePool pool(2, [&](std::size_t shard) {
    if (shard == 0) {
      // Only the FIRST shard-0 pass sticks; the watchdog's requeue (and
      // any sweep) must complete instantly so the pool stays 1-stuck.
      if (shard0_passes.fetch_add(1) == 0) {
        while (block.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      }
    } else {
      shard1_passes.fetch_add(1);
    }
    return vcas::maint::PassStatus::kWrapped;
  });
  pool.set_task_deadline(std::chrono::milliseconds(20));
  pool.start(2, std::chrono::milliseconds(1));
  pool.hint(0);  // one worker walks in and never comes back

  // The shard the stuck worker claimed gets covered by a peer (watchdog
  // requeue, or the periodic sweep — either way the generation is not
  // lost), and other shards keep being served throughout.
  for (int spin = 0; spin < 5000 && shard0_passes.load() < 2; ++spin) {
    pool.hint(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(shard0_passes.load(), 2);
  EXPECT_GT(shard1_passes.load(), 0);
  if (vcas::obs::kStatsEnabled) {
    // The blame itself: at least one firing, observed via the registry.
    for (int spin = 0;
         spin < 5000 &&
         vcas::obs::m::maint_watchdog_fired.read() == fired_before;
         ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GT(vcas::obs::m::maint_watchdog_fired.read(), fired_before);
    // Dedup: one firing per stuck instance, not one per peer-scan tick.
    // Grace period long enough for thousands of scan iterations.
    const std::uint64_t after_fire = vcas::obs::m::maint_watchdog_fired.read();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_EQ(vcas::obs::m::maint_watchdog_fired.read(), after_fire);
    EXPECT_GE(vcas::obs::m::maint_watchdog_requeues.read(),
              after_fire - fired_before);
  }

  block.store(false, std::memory_order_release);
  pool.stop();
  vcas::ebr::drain_for_tests();
}

// Deadline unset (the default): the peer scan is off and a slow pass is
// never blamed — zero watchdog firings no matter how long it runs.
TEST(MaintWatchdogTest, DisabledDeadlineNeverFires) {
  const std::uint64_t fired_before = vcas::obs::m::maint_watchdog_fired.read();
  std::atomic<bool> block{true};
  std::atomic<bool> entered{false};
  vcas::maint::MaintenancePool pool(1, [&](std::size_t) {
    entered.store(true, std::memory_order_release);
    while (block.load(std::memory_order_acquire)) std::this_thread::yield();
    return vcas::maint::PassStatus::kWrapped;
  });
  pool.start(2, std::chrono::milliseconds(1));
  pool.hint(0);
  while (!entered.load(std::memory_order_acquire)) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(vcas::obs::m::maint_watchdog_fired.read(), fired_before);
  block.store(false, std::memory_order_release);
  pool.stop();
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(MaintenanceTest, BackgroundTrimShimStillTrimsAndTearsDown) {
  for (int iter = 0; iter < 10; ++iter) {
    typename TestFixture::Store store(2);
    store.enable_background_trim(std::chrono::milliseconds(0));
    for (int i = 0; i < 100; ++i) {
      store.put(i % 8, i);
      if (i % 10 == 0) store.remove(i % 8);
      if (i % 16 == 0) store.camera().takeSnapshot();
    }
    // Destruction with the 1-worker pool mid-pass: the dtor's
    // disable_maintenance joins it before the registry is freed.
  }
  vcas::ebr::drain_for_tests();
}

}  // namespace
