#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "ebr/ebr.h"
#include "util/barrier.h"

namespace {

std::atomic<int> g_live{0};

struct Tracked {
  Tracked() { g_live.fetch_add(1); }
  ~Tracked() { g_live.fetch_sub(1); }
  int payload = 0;
};

TEST(Ebr, DrainFreesRetiredObjects) {
  const int before = g_live.load();
  for (int i = 0; i < 100; ++i) vcas::ebr::retire(new Tracked);
  EXPECT_GE(g_live.load(), before);  // nothing freed synchronously for sure
  vcas::ebr::drain_for_tests();
  EXPECT_EQ(g_live.load(), before);
}

TEST(Ebr, GuardBlocksReclamationOfVisibleNodes) {
  vcas::ebr::drain_for_tests();
  std::atomic<Tracked*> shared{new Tracked};
  std::atomic<bool> reader_in{false};
  std::atomic<bool> release_reader{false};
  std::atomic<bool> reader_saw_valid{true};

  std::thread reader([&] {
    vcas::ebr::Guard g;
    Tracked* p = shared.load();
    reader_in.store(true);
    while (!release_reader.load()) std::this_thread::yield();
    // p must still be dereferenceable even though the writer retired it and
    // hammered the reclaimer with enough garbage to trigger many scans.
    if (p->payload != 0) reader_saw_valid.store(false);
  });

  while (!reader_in.load()) std::this_thread::yield();
  Tracked* old = shared.exchange(nullptr);
  {
    vcas::ebr::Guard g;
    vcas::ebr::retire(old);
    // Push well past the scan threshold so reclamation is attempted while
    // the reader is still pinned in the epoch that can see `old`.
    for (int i = 0; i < 5000; ++i) vcas::ebr::retire(new Tracked);
  }
  release_reader.store(true);
  reader.join();
  EXPECT_TRUE(reader_saw_valid.load());
  vcas::ebr::drain_for_tests();
  EXPECT_EQ(g_live.load(), 0);
}

TEST(Ebr, ReentrantPinning) {
  vcas::ebr::pin();
  vcas::ebr::pin();
  vcas::ebr::retire(new Tracked);
  vcas::ebr::unpin();
  // Still pinned once: epoch cannot advance past us, but retiring works.
  vcas::ebr::retire(new Tracked);
  vcas::ebr::unpin();
  vcas::ebr::drain_for_tests();
  EXPECT_EQ(g_live.load(), 0);
}

TEST(Ebr, EpochAdvancesWhenAllThreadsQuiescent) {
  const auto e0 = vcas::ebr::stats().epoch;
  for (int i = 0; i < 2000; ++i) vcas::ebr::retire(new Tracked);
  vcas::ebr::drain_for_tests();
  EXPECT_GT(vcas::ebr::stats().epoch, e0);
  EXPECT_EQ(g_live.load(), 0);
}

TEST(Ebr, ConcurrentRetireStress) {
  vcas::ebr::drain_for_tests();
  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 20000;
  vcas::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kOpsPerThread; ++i) {
        vcas::ebr::Guard g;
        auto* p = new Tracked;
        p->payload = i;
        vcas::ebr::retire(p);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Concurrent scans must have reclaimed the bulk; drain gets the rest.
  vcas::ebr::drain_for_tests();
  EXPECT_EQ(g_live.load(), 0);
  EXPECT_GE(vcas::ebr::stats().freed,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(Ebr, ExitingThreadOrphansItsBag) {
  vcas::ebr::drain_for_tests();
  std::thread([&] {
    for (int i = 0; i < 10; ++i) vcas::ebr::retire(new Tracked);
  }).join();
  // The thread died with a non-empty limbo bag; drain adopts orphans.
  vcas::ebr::drain_for_tests();
  EXPECT_EQ(g_live.load(), 0);
}

}  // namespace
