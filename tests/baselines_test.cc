// Baseline structures: EpochBST (Arbel-Raviv & Brown range queries),
// CowTree (SnapTree-style lazy copy-on-write), and the double-collect range
// query mechanism (KST behavior) on the Ellen BST.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "baselines/cow_tree.h"
#include "baselines/epoch_bst.h"
#include "ds/ellen_bst.h"
#include "ebr/ebr.h"
#include "util/barrier.h"
#include "util/rng.h"

namespace {

using EBst = vcas::baselines::EpochBST<std::int64_t, std::int64_t>;
using Cow = vcas::baselines::CowTree<std::int64_t, std::int64_t>;

// --- EpochBST --------------------------------------------------------------

TEST(EpochBst, SetSemanticsMatchModel) {
  EBst tree;
  std::set<std::int64_t> model;
  vcas::util::Xoshiro256 rng(41);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t k = static_cast<std::int64_t>(rng.next_in(300));
    if (rng.next_in(2) == 0) {
      EXPECT_EQ(tree.insert(k, k), model.insert(k).second);
    } else {
      EXPECT_EQ(tree.remove(k), model.erase(k) > 0);
    }
  }
  for (std::int64_t k = 0; k < 300; ++k) {
    EXPECT_EQ(tree.contains(k), model.count(k) > 0);
  }
  vcas::ebr::drain_for_tests();
}

TEST(EpochBst, RangeMatchesModelQuiescent) {
  EBst tree;
  std::set<std::int64_t> model;
  vcas::util::Xoshiro256 rng(42);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t k = static_cast<std::int64_t>(rng.next_in(500));
    tree.insert(k, k * 2);
    model.insert(k);
  }
  // Delete some so limbo records exist and must be filtered out.
  for (std::int64_t k = 0; k < 500; k += 3) {
    if (model.erase(k)) tree.remove(k);
  }
  for (int i = 0; i < 30; ++i) {
    const std::int64_t lo = static_cast<std::int64_t>(rng.next_in(500));
    const std::int64_t hi = lo + static_cast<std::int64_t>(rng.next_in(100));
    auto got = tree.range(lo, hi);
    std::vector<std::int64_t> expect;
    for (auto it = model.lower_bound(lo); it != model.end() && *it <= hi; ++it)
      expect.push_back(*it);
    ASSERT_EQ(got.size(), expect.size()) << "[" << lo << ", " << hi << "]";
    for (std::size_t j = 0; j < got.size(); ++j) {
      EXPECT_EQ(got[j].first, expect[j]);
    }
  }
  vcas::ebr::drain_for_tests();
}

TEST(EpochBst, RangeSeesPairInvariantUnderChurn) {
  EBst tree;
  constexpr std::int64_t kPairs = 48;
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};

  std::thread updater([&] {
    vcas::util::Xoshiro256 rng(43);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::int64_t k = static_cast<std::int64_t>(rng.next_in(kPairs));
      if (rng.next_in(2) == 0) {
        tree.insert(k, k);
        tree.insert(k + 1000, k);
      } else {
        tree.remove(k + 1000);
        tree.remove(k);
      }
    }
  });

  for (int iter = 0; iter < 2000; ++iter) {
    auto snap = tree.range(0, 2000);
    std::set<std::int64_t> keys;
    for (auto& [k, v] : snap) {
      if (!keys.insert(k).second) ok = false;  // duplicates leak through
    }
    for (std::int64_t k = 0; k < kPairs; ++k) {
      if (keys.count(k + 1000) && !keys.count(k)) ok = false;
    }
  }
  stop = true;
  updater.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

TEST(EpochBst, DeletedDuringQueryComesFromLimbo) {
  EBst tree;
  for (std::int64_t k = 0; k < 200; ++k) tree.insert(k, k);
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};

  // Permanent residents: multiples of 4. The churner removes/reinserts the
  // rest; a range query must always report every resident exactly once.
  std::thread churner([&] {
    vcas::util::Xoshiro256 rng(44);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::int64_t k = static_cast<std::int64_t>(rng.next_in(200));
      if (k % 4 == 0) continue;
      if (rng.next_in(2) == 0) {
        tree.remove(k);
      } else {
        tree.insert(k, k);
      }
    }
  });

  bool saw_limbo = false;
  for (int iter = 0; iter < 1500; ++iter) {
    auto snap = tree.range(0, 199);
    std::set<std::int64_t> keys;
    for (auto& [k, v] : snap) keys.insert(k);
    for (std::int64_t k = 0; k < 200; k += 4) {
      if (!keys.count(k)) ok = false;
    }
    saw_limbo = saw_limbo || tree.limbo_size() > 0;
  }
  stop = true;
  churner.join();
  EXPECT_TRUE(ok.load());
  // Deletes really went through limbo. Sampled DURING the run: push_limbo
  // prunes records below min_active() every 256 retirements, so a final
  // prune can legitimately leave the lists empty at the end (this check
  // used to flake ~10% as exactly that).
  EXPECT_TRUE(saw_limbo);
  vcas::ebr::drain_for_tests();
}

// --- CowTree ---------------------------------------------------------------

TEST(CowTree, SetSemanticsMatchModel) {
  Cow tree;
  std::set<std::int64_t> model;
  vcas::util::Xoshiro256 rng(51);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t k = static_cast<std::int64_t>(rng.next_in(300));
    if (rng.next_in(2) == 0) {
      EXPECT_EQ(tree.insert(k, k), model.insert(k).second);
    } else {
      EXPECT_EQ(tree.remove(k), model.erase(k) > 0);
    }
  }
  for (std::int64_t k = 0; k < 300; ++k) {
    EXPECT_EQ(tree.contains(k), model.count(k) > 0);
  }
  auto keys = tree.keys_unsynchronized();
  std::vector<std::int64_t> expect(model.begin(), model.end());
  EXPECT_EQ(keys, expect);
  vcas::ebr::drain_for_tests();
}

TEST(CowTree, SnapshotIsolatedFromLaterUpdates) {
  Cow tree;
  for (std::int64_t k = 0; k < 100; ++k) tree.insert(k, k);
  auto before = tree.range(0, 99);
  EXPECT_EQ(before.size(), 100u);
  // Updates after a snapshot trigger the copy-on-write path; a new
  // snapshot must see them while the old result is untouched data.
  for (std::int64_t k = 0; k < 50; ++k) tree.remove(k);
  auto after = tree.range(0, 99);
  EXPECT_EQ(after.size(), 50u);
  EXPECT_EQ(before.size(), 100u);
  vcas::ebr::drain_for_tests();
}

TEST(CowTree, ConcurrentWritersDisjointStripes) {
  Cow tree;
  constexpr int kThreads = 4;
  constexpr std::int64_t kPerThread = 1000;
  vcas::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      const std::int64_t base = t * 100000;
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(tree.insert(base + i, i));
      }
      for (std::int64_t i = 0; i < kPerThread; i += 2) {
        ASSERT_TRUE(tree.remove(base + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tree.size_unsynchronized(),
            static_cast<std::size_t>(kThreads) * (kPerThread / 2));
  vcas::ebr::drain_for_tests();
}

TEST(CowTree, RangeSeesPairInvariantUnderChurn) {
  Cow tree;
  constexpr std::int64_t kPairs = 32;
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};

  std::thread updater([&] {
    vcas::util::Xoshiro256 rng(52);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::int64_t k = static_cast<std::int64_t>(rng.next_in(kPairs));
      if (rng.next_in(2) == 0) {
        tree.insert(k, k);
        tree.insert(k + 1000, k);
      } else {
        tree.remove(k + 1000);
        tree.remove(k);
      }
    }
  });

  for (int iter = 0; iter < 1000; ++iter) {
    auto snap = tree.range(0, 2000);
    std::set<std::int64_t> keys;
    for (auto& [k, v] : snap) keys.insert(k);
    for (std::int64_t k = 0; k < kPairs; ++k) {
      if (keys.count(k + 1000) && !keys.count(k)) ok = false;
    }
  }
  stop = true;
  updater.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

// --- double-collect range queries (KST mechanism) ---------------------------

TEST(DoubleCollect, QuiescentRangeIsExact) {
  vcas::ds::NBBST<std::int64_t, std::int64_t> tree;
  for (std::int64_t k = 0; k < 100; k += 2) tree.insert(k, k);
  auto got = tree.range_double_collect(10, 20);
  ASSERT_EQ(got.size(), 6u);
  EXPECT_EQ(got.front().first, 10);
  EXPECT_EQ(got.back().first, 20);
  vcas::ebr::drain_for_tests();
}

TEST(DoubleCollect, StableUnderOutOfRangeChurn) {
  vcas::ds::NBBST<std::int64_t, std::int64_t> tree;
  for (std::int64_t k = 0; k < 1000; ++k) tree.insert(k, k);
  std::atomic<bool> stop{false};

  // Churn far outside the queried range: the double collect must converge
  // and return exactly the stable range.
  std::thread churner([&] {
    vcas::util::Xoshiro256 rng(53);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::int64_t k =
          5000 + static_cast<std::int64_t>(rng.next_in(1000));
      if (rng.next_in(2) == 0) {
        tree.insert(k, k);
      } else {
        tree.remove(k);
      }
    }
  });

  for (int iter = 0; iter < 500; ++iter) {
    auto got = tree.range_double_collect(100, 199);
    ASSERT_EQ(got.size(), 100u);
  }
  stop = true;
  churner.join();
  vcas::ebr::drain_for_tests();
}

}  // namespace
