// expect-lint: unknown-ord-tag
// lint-mode: manifest
//
// A tagged strong site whose tag has no entry in memory_order_audit.toml —
// an annotation is only a proof if the manifest backs it.
#include <atomic>

namespace fixture {

inline void publish(std::atomic<int>& slot) {
  slot.store(1, std::memory_order_seq_cst) VCAS_ORD("fix.never.registered");
}

}  // namespace fixture
