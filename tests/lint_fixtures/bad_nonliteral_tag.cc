// expect-lint: ord-tag-not-literal
// lint-mode: standalone
//
// VCAS_ORD must take a string literal so the audit is greppable and the
// manifest cross-check can resolve it statically.
namespace fixture {

constexpr const char* kTag = "fix.indirect";

inline void annotate() {
  VCAS_ORD(kTag);
}

}  // namespace fixture
