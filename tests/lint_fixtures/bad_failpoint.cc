// expect-lint: unknown-failpoint-tag failpoint-wrong-file
// lint-mode: manifest
//
// Two failpoint manifest-resolution failures: a tag with no failpoints.toml
// entry, and a registered tag used from a file its entry does not list.
// The correctly registered fix.fp.tagged site pins the happy path.
namespace fixture {

inline void hits() {
  VCAS_FAILPOINT("fix.fp.tagged");
  VCAS_FAILPOINT("fix.fp.unregistered");
  VCAS_FAILPOINT_SKIP("fix.fp.elsewhere");
}

}  // namespace fixture
