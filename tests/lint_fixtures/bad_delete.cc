// expect-lint: unwhitelisted-delete stale-delete-whitelist
// lint-mode: manifest
//
// Two reclamation-discipline failures:
//   `delete node` — a raw delete with no whitelist entry at all;
//   `delete audited` — whitelisted, but with count = 2 while the tree has
//   one occurrence, so the whitelist is stale and must be re-audited.
// Also carries the one CORRECTLY tagged strong site in the fixture set
// ("fix.tagged" lists this file), pinning the positive resolution path.
#include <atomic>

namespace fixture {

struct Node {
  int v;
};

inline void drop(Node* node, Node* audited, std::atomic<int>& epoch) {
  epoch.store(1, std::memory_order_seq_cst) VCAS_ORD("fix.tagged");
  delete node;
  delete audited;
}

}  // namespace fixture
