// expect-lint: untagged-strong-site
// lint-mode: standalone
//
// A seq_cst site with no VCAS_ORD("tag") — strength above acq/rel must be
// justified against the audit manifest.
#include <atomic>

namespace fixture {

inline void publish(std::atomic<int>& slot) {
  slot.store(1, std::memory_order_seq_cst);
}

}  // namespace fixture
