// expect-lint: protected-new
// lint-mode: manifest
//
// Naked `new VNode` outside the sanctioned factory. VNode is EBR-retired
// and pool-recycled; allocating it ad hoc bypasses the pool accounting and
// invites a matching ad-hoc delete that breaks the grace-period contract.
namespace fixture {

struct VNode {
  int value;
  VNode* next;
  explicit VNode(int v) : value(v), next(nullptr) {}
};

inline VNode* make(int v) {
  return new VNode(v);
}

}  // namespace fixture
