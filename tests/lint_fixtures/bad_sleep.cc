// expect-lint: banned-sleep
// lint-mode: standalone
//
// Sleeping in library code hides progress bugs (a helping protocol that
// needs a sleep to pass is broken) and wrecks tail latency.
#include <chrono>
#include <thread>

namespace fixture {

inline void backoff() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

}  // namespace fixture
