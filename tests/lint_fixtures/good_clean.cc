// expect-lint: clean
// lint-mode: standalone
//
// Exercises every shape the linter inspects, written correctly: explicit
// orders everywhere, .load() reads, fetch_add instead of ++. Guards against
// a linter regression that starts flagging conforming code.
#include <atomic>

namespace fixture {

struct Clean {
  std::atomic<int> hits_{0};
  std::atomic<bool> done_{false};

  void bump() { hits_.fetch_add(1, std::memory_order_relaxed); }
  bool closed() const { return done_.load(std::memory_order_acquire); }
  void close() { done_.store(true, std::memory_order_release); }
};

}  // namespace fixture
