// expect-lint: failpoint-not-literal
// lint-mode: standalone
//
// VCAS_FAILPOINT must take a string literal so the catalog is greppable
// and the failpoints.toml cross-check can resolve it statically — same
// bargain as VCAS_ORD tags.
namespace fixture {

constexpr const char* kTag = "fix.fp.indirect";

inline void hit() {
  VCAS_FAILPOINT(kTag);
}

}  // namespace fixture
