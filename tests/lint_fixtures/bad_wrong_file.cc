// expect-lint: ord-tag-wrong-file
// lint-mode: manifest
//
// Uses a registered tag from a file its manifest entry does not list.
// (The manifest side of the same mismatch surfaces as manifest-file-unused
// against memory_order_audit.toml — the driver asserts that too.)
#include <atomic>

namespace fixture {

inline void publish(std::atomic<int>& slot) {
  slot.store(1, std::memory_order_seq_cst) VCAS_ORD("fix.elsewhere");
}

}  // namespace fixture
