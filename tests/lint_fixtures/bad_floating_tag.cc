// expect-lint: ord-without-strong-site
// lint-mode: standalone
//
// A VCAS_ORD annotation in a statement with no seq_cst/acq_rel/fence token
// is a stale claim — the site it used to justify has been weakened or moved.
namespace fixture {

inline int stale() {
  int x = 0;
  VCAS_ORD("fix.floating");
  return x;
}

}  // namespace fixture
