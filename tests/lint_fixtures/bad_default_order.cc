// expect-lint: explicit-order
// lint-mode: standalone
//
// A defaulted atomic method call is an implicit seq_cst — the whole point
// of the contract is that seq_cst never happens by accident.
#include <atomic>

namespace fixture {

inline bool peek(std::atomic<bool>& flag) {
  return flag.load();  // no std::memory_order argument
}

}  // namespace fixture
