// expect-lint: banned-volatile
// lint-mode: standalone
//
// volatile is not a concurrency primitive; it neither orders nor
// atomicizes anything in the C++ memory model.
namespace fixture {

volatile int g_spin_flag = 0;

}  // namespace fixture
