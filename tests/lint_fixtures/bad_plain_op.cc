// expect-lint: atomic-plain-op
// lint-mode: standalone
//
// ++ on a declared atomic is an implicit seq_cst RMW.
#include <atomic>

namespace fixture {

struct Counter {
  std::atomic<int> hits_{0};

  void bump() {
    hits_++;  // implicit fetch_add(1, seq_cst)
  }
};

}  // namespace fixture
