#!/usr/bin/env python3
"""Negative-fixture harness for tools/vcas_lint.py (ctest: lint_fixtures).

Each bad_*.cc here violates exactly one (occasionally two) lint rule(s) and
declares what it expects in its header:

    // expect-lint: rule-id [rule-id...]     ("clean" = expect nothing)
    // lint-mode: standalone | manifest

Standalone fixtures are linted one at a time with --no-manifest-sync: the
per-file rules must fire with EXACTLY the expected rule set — no more (a
fixture tripping an unrelated rule is a harness bug), no less (the rule
regressed).

Manifest fixtures are linted together in ONE invocation against the
fixture-local config/ directory, because the rules they exercise
(unknown-ord-tag, ord-tag-wrong-file, unwhitelisted-delete, protected-new,
stale-delete-whitelist, orphan-manifest-tag, manifest-file-unused) only run
with the two-way manifest sync enabled, and the sync checks are whole-tree:
linting the fixtures separately would drown each run in orphan noise from
the other fixtures' tags. CONFIG_EXPECT below lists the diagnostics the
sync pass must raise against the config files themselves.

Exit 0 iff every fixture produced exactly its expected rule set and the
linter exited nonzero whenever it reported diagnostics.
"""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(REPO, "tools", "vcas_lint.py")
CONFIG = os.path.join(HERE, "config")

# Diagnostics the manifest-mode run must attribute to the CONFIG files
# (not to any fixture .cc): one orphan tag, one files-list mismatch, one
# dead whitelist entry. Kept in lockstep with config/*.toml.
CONFIG_EXPECT = {
    "memory_order_audit.toml": {"orphan-manifest-tag", "manifest-file-unused"},
    "reclamation.toml": {"stale-delete-whitelist"},
    "failpoints.toml": {"orphan-failpoint-tag",
                        "failpoint-manifest-file-unused"},
}

DIAG_RE = re.compile(r"^(?P<file>[^:]+):(?P<line>\d+): error: "
                     r"\[(?P<rule>[a-z-]+)\] ")


def read_header(path):
    expect, mode = None, None
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = re.match(r"//\s*expect-lint:\s*(.+)", line)
            if m:
                toks = m.group(1).replace(",", " ").split()
                expect = set() if toks == ["clean"] else set(toks)
            m = re.match(r"//\s*lint-mode:\s*(\w+)", line)
            if m:
                mode = m.group(1)
            if expect is not None and mode is not None:
                break
    if expect is None or mode not in {"standalone", "manifest"}:
        raise SystemExit(f"{path}: missing or bad expect-lint/lint-mode header")
    return expect, mode


def run_lint(argv):
    proc = subprocess.run([sys.executable, LINT] + argv, cwd=REPO,
                          capture_output=True, text=True)
    by_file = {}
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if m:
            by_file.setdefault(os.path.basename(m.group("file")),
                               set()).add(m.group("rule"))
    return proc.returncode, by_file, proc.stdout + proc.stderr


def main():
    fixtures = sorted(f for f in os.listdir(HERE) if f.endswith(".cc"))
    if not fixtures:
        raise SystemExit("no fixtures found")
    failures = []

    def check(name, got, want):
        if got != want:
            failures.append(f"{name}: expected rules {sorted(want)}, "
                            f"got {sorted(got)}")

    manifest_fixtures = []
    for fx in fixtures:
        expect, mode = read_header(os.path.join(HERE, fx))
        if mode == "manifest":
            manifest_fixtures.append((fx, expect))
            continue
        rel = os.path.join("tests", "lint_fixtures", fx)
        code, by_file, raw = run_lint(["--no-manifest-sync", rel])
        check(fx, by_file.get(fx, set()), expect)
        if expect and code == 0:
            failures.append(f"{fx}: diagnostics expected but exit code was 0")
        if not expect and code != 0:
            failures.append(f"{fx}: expected clean but lint failed:\n{raw}")

    rels = [os.path.join("tests", "lint_fixtures", fx)
            for fx, _ in manifest_fixtures]
    code, by_file, raw = run_lint(["--config-dir", CONFIG] + rels)
    for fx, expect in manifest_fixtures:
        check(f"{fx} (manifest mode)", by_file.get(fx, set()), expect)
    for cfg_file, expect in CONFIG_EXPECT.items():
        check(f"config {cfg_file}", by_file.get(cfg_file, set()), expect)
    if code == 0:
        failures.append("manifest-mode run: diagnostics expected but exit "
                        "code was 0")

    if failures:
        print("lint fixture harness FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    n_rules = len({r for fx in fixtures
                   for r in read_header(os.path.join(HERE, fx))[0]}
                  | {r for s in CONFIG_EXPECT.values() for r in s})
    print(f"lint fixtures OK: {len(fixtures)} fixtures, "
          f"{n_rules} rules exercised")
    return 0


if __name__ == "__main__":
    sys.exit(main())
