// expect-lint: atomic-implicit-read
// lint-mode: standalone
//
// Comparing a declared atomic without .load() is an implicit seq_cst read.
#include <atomic>

namespace fixture {

struct Gate {
  std::atomic<bool> done_{false};

  bool closed() const {
    return done_ == true;  // implicit-conversion read
  }
};

}  // namespace fixture
