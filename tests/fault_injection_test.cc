// Thread-abandonment matrix (fault-injection subsystem tentpole).
//
// The acceptance claim under test: a thread abandoned at ANY failpoint —
// killed mid-protocol via inject::Action::kAbandon, which declares it dead
// to EBR and parks it forever — leaves a system in which every remaining
// thread's operations complete, and EBR reclaims the dead thread's slot so
// pending retirals stay bounded. The matrix sweeps every registered
// failpoint site (tools/lint/failpoints.toml) across every store backend;
// each site's on_death entry documents the recovery this file asserts.
//
// Victims run detached and never exit (simulated death, not std::thread
// teardown), so each abandons leaves one yielding thread and its store
// alive until process exit — deliberate leaks, which is why this binary is
// exercised by the TSan fault-injection CI job and not an ASan/LSan one.
//
// The whole file needs -DVCAS_INJECT=ON; in default builds it compiles to
// a single skip so the test target exists in every configuration.
#include <gtest/gtest.h>

#if VCAS_INJECT

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

#include "ebr/ebr.h"
#include "inject/failpoint.h"
#include "obs/metrics.h"
#include "store/backend.h"
#include "store/batch.h"
#include "store/store.h"
#include "vcas/camera.h"

namespace {

using K = std::int64_t;
using V = std::int64_t;

// Deterministic schedules: the CI matrix reruns this binary under several
// fixed seeds; the seed feeds every every_n site's splitmix hash.
const bool kSeedApplied = [] {
  if (const char* s = std::getenv("VCAS_INJECT_SEED")) {
    vcas::inject::set_seed(std::strtoull(s, nullptr, 10));
  }
  return true;
}();

template <typename Backend>
class FaultInjectionTest : public ::testing::Test {
 public:
  using Store = vcas::store::ShardedStore<K, V, Backend>;

 protected:
  void TearDown() override {
    vcas::inject::disarm_all();
    vcas::inject::release_all();
  }
};

using Backends =
    ::testing::Types<vcas::store::ListBackend, vcas::store::BstBackend,
                     vcas::store::ChromaticBackend>;
TYPED_TEST_SUITE(FaultInjectionTest, Backends);

template <typename Cond>
bool within_deadline(Cond cond, std::chrono::seconds budget) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (!cond()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

// Arm `site` to abandon its next visitor, run `victim` detached, and
// return once (a) the abandonment happened and (b) EBR's stall containment
// reclaimed the dead thread's slot — the precondition for every survivor
// assertion that follows. The arm is one-shot, so survivors passing the
// same site afterwards sail through.
void abandon_at(const char* site, std::function<void()> victim) {
  const std::uint64_t abandoned_before = vcas::inject::abandoned();
  const std::uint64_t reclaims_before = vcas::ebr::dead_slot_reclaims();
  vcas::inject::Spec spec;
  spec.action = vcas::inject::Action::kAbandon;
  spec.trigger = 1;
  vcas::inject::arm(site, spec);
  std::thread(std::move(victim)).detach();
  ASSERT_TRUE(within_deadline(
      [&] { return vcas::inject::abandoned() > abandoned_before; },
      std::chrono::seconds(60)))
      << site << ": victim never reached the armed site";
  // Containment: any scan reclaims the declared-dead slot. Drive scans
  // from here — the site already disarmed, so our own ebr.scan hits are
  // inert even when that is the site under test.
  ASSERT_TRUE(within_deadline(
      [&] {
        vcas::ebr::flush();
        return vcas::ebr::dead_slot_reclaims() > reclaims_before;
      },
      std::chrono::seconds(60)))
      << site << ": dead slot never reclaimed";
}

// Post-abandonment invariants common to every site: writes land, reads
// answer, snapshots stay internally stable, and the EBR backlog drains
// instead of growing without bound behind the dead thread.
template <typename Store>
void assert_survivors_live(Store& store) {
  EXPECT_TRUE(store.put(9001, 1));
  EXPECT_EQ(store.get(9001), std::optional<V>(1));
  EXPECT_TRUE(store.remove(9001));
  EXPECT_FALSE(store.get(9001).has_value());
  auto view = store.snapshotAll();
  const auto first = view.multiGet({1, 2, 9001});
  EXPECT_EQ(view.multiGet({1, 2, 9001}), first);  // stable re-read
  for (int i = 0; i < 4; ++i) vcas::ebr::flush();
  const std::size_t pending = vcas::ebr::stats().pending;
  EXPECT_LT(pending, 100000u) << "EBR backlog stranded behind dead thread";
}

// --- the batch/txn helping protocol ------------------------------------------

// Sites on the cooperative write path. Dying between any two steps leaves
// a published descriptor; the FIRST survivor that meets it finishes the
// protocol, so the batch/txn still commits (batches validate trivially,
// and the txn here has an untouched witness).
TYPED_TEST(FaultInjectionTest, AbandonedWriterIsFinishedByHelpers) {
  for (const char* site :
       {"store.batch.install", "batch.stamp", "batch.decide",
        "store.txn.validate"}) {
    SCOPED_TRACE(site);
    const bool txn_site = std::string_view(site) == "store.txn.validate";
    auto store = std::make_shared<typename TestFixture::Store>(4);
    store->put(1, 10);
    store->put(2, 20);
    abandon_at(site, [store, txn_site] {
      if (txn_site) {
        auto txn = store->beginTransaction();
        EXPECT_EQ(txn.get(1), std::optional<V>(10));
        txn.put(2, 777);
        (void)txn.commit();  // dies validating; helpers decide
      } else {
        typename TestFixture::Store::Batch b;
        b.put(1, 100);
        b.put(2, 200);
        store->applyBatch(b);  // dies mid-protocol
      }
    });
    if (::testing::Test::HasFatalFailure()) return;

    // A snapshot read over the orphaned descriptor's keys helps it to its
    // decision; afterwards the write is fully, atomically visible.
    (void)store->multiGet({1, 2});
    if (txn_site) {
      EXPECT_EQ(store->get(1), std::optional<V>(10));
      EXPECT_EQ(store->get(2), std::optional<V>(777));
    } else {
      EXPECT_EQ(store->get(1), std::optional<V>(100));
      EXPECT_EQ(store->get(2), std::optional<V>(200));
    }
    // Later conflicting writers overtake the corpse's decided record.
    EXPECT_FALSE(store->put(1, 1000));
    EXPECT_EQ(store->get(1), std::optional<V>(1000));
    assert_survivors_live(*store);
  }
}

// --- cell GC / janitor -------------------------------------------------------

// Sites inside the janitor's shard claim. Dying there permanently strands
// ONE shard's claim — the documented degradation: that shard's maintenance
// stops, every operation stays live, and the POOL's bounded-requeue path
// keeps its workers from orbiting the dead claim forever. (The synchronous
// maintain_all would busy-wait on the stranded claim by design, so the
// containment story here is the pool's.)
TYPED_TEST(FaultInjectionTest, AbandonedJanitorStrandsOnlyItsShard) {
  for (const char* site : {"maint.janitor.cell", "store.gc.seal",
                           "store.gc.unmap", "store.gc.unlink"}) {
    SCOPED_TRACE(site);
    auto store = std::make_shared<typename TestFixture::Store>(2);
    // A reclaimable tombstone in every shard gives the janitor seal work
    // wherever its walk starts.
    for (K k = 0; k < 8; ++k) {
      store->put(k, k);
      store->remove(k);
    }
    store->put(1000, 1);
    store->camera().takeSnapshot();  // age the tombstones below the horizon
    abandon_at(site, [store] { store->maintain_all(); });
    if (::testing::Test::HasFatalFailure()) return;

    // Operations never touch the janitor claim: reads, writes, snapshots
    // and helpers all stay live on BOTH shards, including keys whose cells
    // the dead janitor may have half-detached (sealed cells re-resolve to
    // fresh ones on write).
    for (K k = 0; k < 8; ++k) {
      EXPECT_FALSE(store->get(k).has_value());
      EXPECT_TRUE(store->put(k, k + 100));
      EXPECT_EQ(store->get(k), std::optional<V>(k + 100));
    }
    EXPECT_EQ(store->get(1000), std::optional<V>(1));

    // The pool survives the stranded claim: workers hitting it take the
    // bounded kBusy-requeue path (dropping once the cap trips) and keep
    // serving the other shard; stop() joins cleanly.
    store->enable_maintenance(2, std::chrono::milliseconds(1));
    for (int i = 0; i < 20; ++i) {
      store->camera().takeSnapshot();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    store->disable_maintenance();
    assert_survivors_live(*store);
  }
}

// --- the version-list write path ---------------------------------------------

// vcas.install dies between version-node preparation steps of a plain
// put; vcas.coalesce / vcas.trim are skip-legal maintenance sites just
// BEFORE their try-lock, so a corpse there holds nothing.
TYPED_TEST(FaultInjectionTest, AbandonedVersionListWalkerHoldsNothing) {
  struct Case {
    const char* site;
    int mode;  // 0 = put, 1 = coalescing put churn, 2 = trim
  };
  for (const Case c : {Case{"vcas.install", 0}, Case{"vcas.coalesce", 1},
                       Case{"vcas.trim", 2}}) {
    SCOPED_TRACE(c.site);
    auto store = std::make_shared<typename TestFixture::Store>(2);
    store->put(1, 10);
    store->put(2, 20);
    if (c.mode == 1) store->set_coalesce_every(1);
    if (c.mode == 2) {
      for (V i = 0; i < 16; ++i) store->put(1, i);  // history to trim
      store->camera().takeSnapshot();
    }
    abandon_at(c.site, [store, c] {
      switch (c.mode) {
        case 0:
          store->put(1, 11);
          break;
        case 1:
          for (V i = 0; i < 64; ++i) store->put(1, 100 + i);
          break;
        default:
          store->trim_all();
          break;
      }
    });
    if (::testing::Test::HasFatalFailure()) return;

    // The same key stays fully writable/readable/trimmable for survivors.
    store->put(1, 555);
    EXPECT_EQ(store->get(1), std::optional<V>(555));
    EXPECT_EQ(store->get(2), std::optional<V>(20));
    store->camera().takeSnapshot();
    store->trim_all();  // the trim/coalesce locks were never stranded
    EXPECT_EQ(store->get(1), std::optional<V>(555));
    assert_survivors_live(*store);
  }
}

// --- EBR itself --------------------------------------------------------------

// A thread dying inside the reclaimer's own scan: its limbo (it had just
// retired a coalesced node) must be orphaned by containment and the epoch
// must keep advancing for everyone else.
TYPED_TEST(FaultInjectionTest, AbandonedScannerDoesNotStallTheEpoch) {
  auto store = std::make_shared<typename TestFixture::Store>(2);
  store->put(1, 10);
  store->put(2, 20);
  abandon_at("ebr.scan", [store] {
    store->put(1, 11);           // own a slot + some limbo
    (void)vcas::ebr::flush();    // dies entering the scan
  });
  if (::testing::Test::HasFatalFailure()) return;

  const std::uint64_t epoch_before = vcas::ebr::stats().epoch;
  ASSERT_TRUE(within_deadline(
      [&] {
        vcas::ebr::flush();
        return vcas::ebr::stats().epoch > epoch_before + 2;
      },
      std::chrono::seconds(60)));
  assert_survivors_live(*store);
}

// --- era pins (camera) -------------------------------------------------------

// A thread abandoned while HOLDING an era pin is the nastiest camera death:
// the pin holds min_active at its era's lower bound, so without containment
// trim/GC would stall forever. The dead-slot hook must drain the corpse's
// ledger when EBR reclaims its slot, after which the horizon catches back
// up to the clock. Two flavors:
//   cam.era.roll   — dies inside maybe_roll (before the chain try-lock)
//                    with a pin on the CURRENT era; the roll simply does
//                    not happen and a later takeSnapshot rolls instead.
//   cam.era.retire — dies in release_era right after balancing a closed
//                    era (sync word durable, sweep never ran) while still
//                    holding a SECOND pin; the next sweep retires the
//                    balanced era, containment drains the held pin.
TYPED_TEST(FaultInjectionTest, AbandonedPinnerNeverStallsTheHorizon) {
  for (const char* site : {"cam.era.roll", "cam.era.retire"}) {
    SCOPED_TRACE(site);
    const bool retire_site = std::string_view(site) == "cam.era.retire";
    auto store = std::make_shared<typename TestFixture::Store>(2);
    store->put(1, 10);
    store->put(2, 20);
    abandon_at(site, [store, retire_site] {
      auto& cam = store->camera();
      if (retire_site) {
        vcas::Camera::PinnedSnapshot first = cam.pin_and_snapshot();
        // Cross the roll cadence so first's era closes with gap 1...
        for (int i = 0; i < 200; ++i) cam.takeSnapshot();
        vcas::Camera::Pin second = cam.pin();
        (void)second;
        cam.unpin(first.pin);  // balances the closed era -> dies retiring it
      } else {
        vcas::Camera::PinnedSnapshot ps = cam.pin_and_snapshot();
        (void)ps;
        // Dies at the first roll attempt, pin still held.
        for (int i = 0; i < 200; ++i) cam.takeSnapshot();
      }
    });
    if (::testing::Test::HasFatalFailure()) return;

    // abandon_at returned => the dead slot was reclaimed => the dead-slot
    // hook drained the corpse's pins. The horizon must now catch the clock
    // (a roll or two may be needed to sweep the orphaned balanced era).
    auto& cam = store->camera();
    ASSERT_TRUE(within_deadline(
        [&] {
          cam.takeSnapshot();
          return cam.min_active() == cam.current();
        },
        std::chrono::seconds(60)))
        << site << ": horizon stuck behind the abandoned pin";

    // The chain does not leak the corpse's eras: sustained ticking sweeps
    // everything back down to the steady-state chain length.
    for (int i = 0; i < 300; ++i) cam.takeSnapshot();
    EXPECT_LE(cam.eras_live(), 2);
    EXPECT_EQ(cam.live_pins(), 0);

    // Trim actually proceeds past where the dead pin sat.
    for (V i = 0; i < 16; ++i) store->put(1, 100 + i);
    store->camera().takeSnapshot();
    store->trim_all();
    EXPECT_EQ(store->get(1), std::optional<V>(115));
    assert_survivors_live(*store);
  }
}

// --- seeded schedule noise ---------------------------------------------------

// Yield-storms on a seeded pseudo-random subset of hits at every hot
// helping site at once, under real contention: the linearizability
// invariants must hold on every schedule the seed matrix produces.
TYPED_TEST(FaultInjectionTest, SeededYieldStormsKeepBatchesAtomic) {
  typename TestFixture::Store store(4);
  const std::vector<K> keys = {0, 1, 2, 3};
  {
    typename TestFixture::Store::Batch init;
    for (K k : keys) init.put(k, 0);
    store.applyBatch(init);
  }
  for (const char* site :
       {"store.batch.install", "batch.stamp", "batch.decide",
        "vcas.install"}) {
    vcas::inject::Spec storm;
    storm.action = vcas::inject::Action::kYieldStorm;
    storm.every_n = 13;
    storm.yields = 96;
    vcas::inject::arm(site, storm);
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      for (V round = 1; !stop.load(std::memory_order_relaxed); ++round) {
        typename TestFixture::Store::Batch b;
        for (K k : keys) b.put(k, round * 2 + w);
        store.applyBatch(b);
      }
    });
  }
  for (int i = 0; i < 400; ++i) {
    auto view = store.snapshotAll();
    const auto vals = view.multiGet(keys);
    for (std::size_t j = 1; j < vals.size(); ++j) {
      if (!vals[j].has_value() || *vals[j] != *vals[0]) ok = false;
    }
    if (view.multiGet(keys) != vals) ok = false;
    if (i % 50 == 0) store.trim_all();
  }
  stop = true;
  for (auto& th : writers) th.join();
  EXPECT_TRUE(ok.load());
  EXPECT_TRUE(kSeedApplied);
  vcas::ebr::drain_for_tests();
}

}  // namespace

#else  // !VCAS_INJECT

TEST(FaultInjectionTest, RequiresInjectBuild) {
  GTEST_SKIP() << "abandonment matrix requires -DVCAS_INJECT=ON "
                  "(CI: the fault-injection job)";
}

#endif  // VCAS_INJECT
