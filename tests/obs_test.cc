// Observability substrate (ISSUE 6): counter aggregation across thread
// exit and slot recycling, log2 histogram bucket math at the power-of-two
// boundaries, trace-ring wraparound + dropped accounting and the binary
// dump format, and StatsSnapshot coherence under concurrent writers. Runs
// in the TSan and ASan CI jobs — the registry's whole design claim is
// "relaxed per-slot writes, racy-by-design aggregate reads, no UB", and
// TSan is the referee for that claim.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ebr/ebr.h"
#include "obs/metrics.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "store/backend.h"
#include "store/store.h"

namespace {

namespace obs = vcas::obs;
using K = std::int64_t;
using V = std::int64_t;
using Store = vcas::store::ShardedStore<K, V, vcas::store::ListBackend>;

// --- counters / gauges ------------------------------------------------------

// A thread's tally must survive its exit, and a later thread recycling the
// same slot must accumulate on top instead of clobbering. Metrics are
// immortal by contract (the registry keeps raw pointers), hence statics.
TEST(ObsCounter, AggregatesAcrossThreadExitAndSlotRecycling) {
  static obs::Counter c{"test.counter_recycle"};
  const std::uint64_t before = c.read();
  c.add(1);
  std::thread([&] { c.add(10); }).join();
  // This thread most likely recycles the slot the first one vacated; the
  // assertion holds either way because read() sums every live slot.
  std::thread([&] { c.add(100); }).join();
  EXPECT_EQ(c.read() - before, obs::kStatsEnabled ? 111u : 0u);
}

TEST(ObsGauge, SignedAcrossThreads) {
  static obs::Gauge g{"test.gauge"};
  const std::int64_t before = g.read();
  g.add(3);
  // A per-slot partial sum may go negative (the +5 and the -6 can land in
  // different slots); only the aggregate is meaningful.
  std::thread([&] { g.add(5); }).join();
  std::thread([&] { g.add(-6); }).join();
  EXPECT_EQ(g.read() - before, obs::kStatsEnabled ? 2 : 0);
}

// --- histogram bucket math --------------------------------------------------

TEST(ObsHistogram, BucketBoundaries) {
  using HS = obs::HistogramSnapshot;
  // Bucket 0 holds exactly the value 0; bucket b >= 1 holds
  // [2^(b-1), 2^b - 1].
  EXPECT_EQ(HS::bucket_of(0), 0);
  EXPECT_EQ(HS::bucket_of(1), 1);
  EXPECT_EQ(HS::bucket_of(2), 2);
  EXPECT_EQ(HS::bucket_of(3), 2);
  EXPECT_EQ(HS::bucket_of(4), 3);
  for (int b = 1; b < 63; ++b) {
    const std::uint64_t lo = std::uint64_t{1} << (b - 1);
    const std::uint64_t hi = (std::uint64_t{1} << b) - 1;
    EXPECT_EQ(HS::bucket_of(lo), b) << "lo of bucket " << b;
    EXPECT_EQ(HS::bucket_of(hi), b) << "hi of bucket " << b;
  }
  // The top bucket absorbs everything that would overflow the array.
  EXPECT_EQ(HS::bucket_of(~std::uint64_t{0}), HS::kBuckets - 1);
  EXPECT_EQ(HS::bucket_upper_bound(0), 0u);
  EXPECT_EQ(HS::bucket_upper_bound(1), 1u);
  EXPECT_EQ(HS::bucket_upper_bound(5), 31u);
  EXPECT_EQ(HS::bucket_upper_bound(HS::kBuckets - 1), ~std::uint64_t{0});
}

TEST(ObsHistogram, RecordSnapshotPercentileAndDelta) {
  if (!obs::kStatsEnabled) GTEST_SKIP() << "stats compiled out";
  static obs::Histogram h{"test.hist"};
  const obs::HistogramSnapshot before = h.snapshot();
  // 90 small values and 10 large ones: p50 lands in the small cluster,
  // p99 in the large one. Values are picked at bucket edges.
  for (int i = 0; i < 90; ++i) h.record(7);     // bucket 3: [4, 7]
  for (int i = 0; i < 10; ++i) h.record(1024);  // bucket 11: [1024, 2047]
  const obs::HistogramSnapshot d = h.snapshot().minus(before);
  EXPECT_EQ(d.count, 100u);
  EXPECT_EQ(d.sum, 90u * 7 + 10u * 1024);
  EXPECT_EQ(d.max, 1024u);
  EXPECT_EQ(d.buckets[3], 90u);
  EXPECT_EQ(d.buckets[11], 10u);
  // percentile() reports the containing bucket's inclusive upper bound;
  // the top occupied bucket is capped at the observed max.
  EXPECT_EQ(d.percentile(0.50), 7u);
  EXPECT_EQ(d.percentile(0.99), 1024u);  // edge would be 2047; max wins
  EXPECT_EQ(d.percentile(1.0), 1024u);
  EXPECT_DOUBLE_EQ(d.mean(), (90.0 * 7 + 10.0 * 1024) / 100.0);
  // Empty snapshot: everything zero, percentile well-defined.
  const obs::HistogramSnapshot empty;
  EXPECT_EQ(empty.percentile(0.99), 0u);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
}

TEST(ObsHistogram, ConcurrentRecordersLoseNothing) {
  if (!obs::kStatsEnabled) GTEST_SKIP() << "stats compiled out";
  static obs::Histogram h{"test.hist_mt"};
  const obs::HistogramSnapshot before = h.snapshot();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t) * 1000 + 1);
      }
    });
  }
  for (auto& t : ts) t.join();
  const obs::HistogramSnapshot d = h.snapshot().minus(before);
  EXPECT_EQ(d.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// --- trace rings ------------------------------------------------------------

#if VCAS_STATS

// Minimal little-endian reader for the VCTRACE1 dump produced below.
struct DumpReader {
  std::vector<unsigned char> data;
  std::size_t off = 0;

  template <typename T>
  T pod() {
    T v;
    EXPECT_LE(off + sizeof(T), data.size());
    std::memcpy(&v, data.data() + off, sizeof(T));
    off += sizeof(T);
    return v;
  }
};

TEST(ObsTrace, RingWraparoundDroppedAccountingAndDump) {
  obs::set_tracing(false);
  obs::reset_trace_for_tests();
  obs::set_trace_capacity_for_tests(8);
  obs::set_tracing(true);
  constexpr std::uint64_t kWrites = 20;
  // All records come from one worker ring (this thread emits nothing).
  std::thread([&] {
    for (std::uint64_t i = 0; i < kWrites; ++i) {
      obs::trace_instant(obs::Ev::kTakeSnapshot,
                         static_cast<std::uint32_t>(i));
    }
  }).join();
  obs::set_tracing(false);

  const obs::TraceSummary s = obs::trace_summary();
  EXPECT_EQ(s.records, kWrites);
  EXPECT_EQ(s.dropped, kWrites - 8);

  const std::string path = ::testing::TempDir() + "obs_test_trace.bin";
  ASSERT_TRUE(obs::dump_trace(path.c_str()));

  DumpReader r;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    unsigned char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      r.data.insert(r.data.end(), buf, buf + n);
    }
    std::fclose(f);
  }
  ASSERT_GE(r.data.size(), 8u);
  EXPECT_EQ(std::memcmp(r.data.data(), "VCTRACE1", 8), 0);
  r.off = 8;
  EXPECT_EQ(r.pod<std::uint32_t>(), 1u);  // version
  r.off += 4 * sizeof(std::uint64_t);     // calibration anchors
  const auto names = r.pod<std::uint32_t>();
  EXPECT_EQ(names, static_cast<std::uint32_t>(obs::Ev::kCount));
  for (std::uint32_t i = 0; i < names; ++i) r.off += r.pod<std::uint16_t>();
  ASSERT_EQ(r.pod<std::uint32_t>(), 1u);  // one non-empty ring
  r.pod<std::uint32_t>();                 // slot id
  EXPECT_EQ(r.pod<std::uint64_t>(), kWrites);      // total written
  EXPECT_EQ(r.pod<std::uint64_t>(), kWrites - 8);  // dropped
  ASSERT_EQ(r.pod<std::uint64_t>(), 8u);           // kept
  // Records are oldest -> newest: args 12..19, TSCs non-decreasing.
  std::uint64_t prev_tsc = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto tsc = r.pod<std::uint64_t>();
    const auto arg = r.pod<std::uint32_t>();
    const auto event = r.pod<std::uint16_t>();
    const auto phase = r.pod<std::uint8_t>();
    r.pod<std::uint8_t>();  // reserved
    EXPECT_GE(tsc, prev_tsc);
    prev_tsc = tsc;
    EXPECT_EQ(arg, kWrites - 8 + i);
    EXPECT_EQ(event, static_cast<std::uint16_t>(obs::Ev::kTakeSnapshot));
    EXPECT_EQ(phase, static_cast<std::uint8_t>('I'));
  }
  EXPECT_EQ(r.off, r.data.size());

  std::remove(path.c_str());
  obs::reset_trace_for_tests();
  obs::set_trace_capacity_for_tests(8192);
}

TEST(ObsTrace, SpanPairsAndDisabledCostsNothing) {
  obs::set_tracing(false);
  obs::reset_trace_for_tests();
  obs::set_trace_capacity_for_tests(64);
  std::thread([] {
    {
      // Not armed: tracing is off, so toggling it on later must not
      // produce an orphaned E.
      obs::TraceSpan off_span(obs::Ev::kTrimAll);
      obs::set_tracing(true);
    }
    {
      VCAS_TRACE_SPAN(obs::Ev::kJanitorPass, 3u);
      obs::trace_instant(obs::Ev::kTakeSnapshot);
    }
    obs::set_tracing(false);
  }).join();
  // B + I + E from the armed scope only.
  EXPECT_EQ(obs::trace_summary().records, 3u);
  obs::reset_trace_for_tests();
  obs::set_trace_capacity_for_tests(8192);
}

#endif  // VCAS_STATS

// --- registry / stats snapshot ----------------------------------------------

TEST(ObsRegistry, JsonEnumeratesNamedMeters) {
  const std::string j = obs::registry_json();
  if (!obs::kStatsEnabled) {
    EXPECT_EQ(j, "{}");
    return;
  }
  EXPECT_NE(j.find("\"camera.snapshots_taken\":"), std::string::npos);
  EXPECT_NE(j.find("\"maint.task_ns\":{"), std::string::npos);
  EXPECT_NE(j.find("\"batch.decide_committed\":"), std::string::npos);
}

// End-to-end: drive the real store through every instrumented layer and
// check the deltas land. Meters are process-global and monotone, so
// everything asserts before/after differences, never absolutes.
TEST(ObsStats, StoreStatsEndToEnd) {
  Store store(2);
  const obs::StatsSnapshot before = store.stats();

  {
    Store::Batch b;
    for (K k = 0; k < 32; ++k) b.put(k, k);
    store.applyBatch(b);
  }
  for (K k = 0; k < 32; ++k) store.put(k, k + 1);
  store.transact([](auto& txn) {
    const std::optional<V> v = txn.get(1);
    txn.put(2, v.value_or(0) + 100);
  });
  {
    auto view = store.snapshotAll();
    EXPECT_EQ(view.get(2), std::optional<V>(102));  // txn read 1 -> 2, +100
  }
  store.camera().takeSnapshot();
  store.maintain_all();

  const obs::StatsSnapshot after = store.stats();
  if (obs::kStatsEnabled) {
    EXPECT_GT(after.snapshots_taken, before.snapshots_taken);
    EXPECT_GT(after.guards_taken, before.guards_taken);
    EXPECT_GT(after.decide_committed, before.decide_committed);
    EXPECT_GT(after.batch_drive_owner, before.batch_drive_owner);
    EXPECT_GT(after.txn_validate_walk.count, before.txn_validate_walk.count);
    EXPECT_GT(after.maint_cells_visited, before.maint_cells_visited);
    // The janitor samples chain lengths 1-in-64 starting at tick 0, so
    // even this small store reports at least one sample.
    EXPECT_GT(after.chain_length.count, before.chain_length.count);
    EXPECT_GE(after.min_active, before.min_active);
  }
  // Store-live fields hold in both build modes.
  EXPECT_GE(after.clock, before.clock);
  EXPECT_LE(after.min_active, after.clock);
  EXPECT_EQ(after.min_active_lag_now, after.clock - after.min_active);
  EXPECT_EQ(after.live_pins, 0);  // no view is live any more

  const std::string json = after.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"snapshots_taken\":"), std::string::npos);
  EXPECT_NE(json.find("\"maint_task_ns\":{"), std::string::npos);
  EXPECT_NE(after.to_text().find("== camera =="), std::string::npos);
  vcas::ebr::drain_for_tests();
}

// stats() concurrent with writers: every read is an atomic aggregate, so
// TSan must stay quiet and the invariants the snapshot promises (lag
// non-negative, counters monotone across calls) must hold mid-run.
TEST(ObsStats, CoherentUnderConcurrentWriters) {
  Store store(4);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      K k = t * 1000;
      while (!stop.load(std::memory_order_relaxed)) {
        store.put(k % 512, k);
        if ((k & 7) == 0) {
          auto view = store.snapshotAll();
          (void)view.get(k % 512);
        }
        ++k;
      }
    });
  }
  std::uint64_t last_snapshots = 0;
  for (int i = 0; i < 200; ++i) {
    const obs::StatsSnapshot s = store.stats();
    EXPECT_LE(s.min_active, s.clock);
    EXPECT_EQ(s.min_active_lag_now, s.clock - s.min_active);
    EXPECT_GE(s.live_pins, 0);
    EXPECT_GE(s.snapshots_taken, last_snapshots);  // monotone across calls
    last_snapshots = s.snapshots_taken;
    EXPECT_FALSE(s.to_json().empty());
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  vcas::ebr::drain_for_tests();
}

}  // namespace
