// Snapshot-query semantics of VcasBST (paper Sections 4-6, Table 2).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "ds/ellen_bst.h"
#include "ebr/ebr.h"
#include "util/barrier.h"
#include "util/rng.h"

namespace {

using Tree = vcas::ds::VcasBST<std::int64_t, std::int64_t>;

// Both versioned flavors (direct/Figure 9 and indirect/Algorithm 1) must
// provide identical snapshot-query semantics.
template <typename T>
class VersionedFlavors : public ::testing::Test {};

using FlavorTypes =
    ::testing::Types<vcas::ds::VcasBST<std::int64_t, std::int64_t>,
                     vcas::ds::VcasBSTIndirect<std::int64_t, std::int64_t>>;

class FlavorNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    if (std::is_same_v<T, vcas::ds::VcasBST<std::int64_t, std::int64_t>>)
      return "Direct";
    return "Indirect";
  }
};

TYPED_TEST_SUITE(VersionedFlavors, FlavorTypes, FlavorNames);

TYPED_TEST(VersionedFlavors, RangeMatchesModel) {
  TypeParam tree;
  std::set<std::int64_t> model;
  vcas::util::Xoshiro256 rng(61);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t k = static_cast<std::int64_t>(rng.next_in(600));
    if (rng.next_in(3) == 0) {
      tree.remove(k);
      model.erase(k);
    } else {
      tree.insert(k, k);
      model.insert(k);
    }
  }
  for (int i = 0; i < 30; ++i) {
    const std::int64_t lo = static_cast<std::int64_t>(rng.next_in(600));
    const std::int64_t hi = lo + static_cast<std::int64_t>(rng.next_in(100));
    auto got = tree.range(lo, hi);
    std::vector<std::int64_t> expect;
    for (auto it = model.lower_bound(lo); it != model.end() && *it <= hi; ++it)
      expect.push_back(*it);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t j = 0; j < got.size(); ++j) {
      EXPECT_EQ(got[j].first, expect[j]);
    }
  }
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(VersionedFlavors, PairInvariantUnderChurn) {
  TypeParam tree;
  constexpr std::int64_t kPairs = 32;
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::thread updater([&] {
    vcas::util::Xoshiro256 rng(62);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::int64_t k = static_cast<std::int64_t>(rng.next_in(kPairs));
      if (rng.next_in(2) == 0) {
        tree.insert(k, k);
        tree.insert(k + 1000, k);
      } else {
        tree.remove(k + 1000);
        tree.remove(k);
      }
    }
  });
  for (int iter = 0; iter < 1500; ++iter) {
    auto snap = tree.range(0, 2000);
    std::set<std::int64_t> keys;
    for (auto& [k, v] : snap) {
      if (!keys.insert(k).second) ok = false;
    }
    for (std::int64_t k = 0; k < kPairs; ++k) {
      if (keys.count(k + 1000) && !keys.count(k)) ok = false;
    }
  }
  stop = true;
  updater.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(VersionedFlavors, SuccMultisearchFindifAgree) {
  TypeParam tree;
  for (std::int64_t k = 0; k < 200; k += 2) tree.insert(k, k * 10);
  auto s = tree.succ(10, 3);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].first, 12);
  auto m = tree.multisearch({0, 1, 198});
  EXPECT_EQ(m[0], 0);
  EXPECT_EQ(m[1], std::nullopt);
  EXPECT_EQ(m[2], 1980);
  auto f = tree.find_if(3, 200, [](const std::int64_t& k) { return k % 10 == 0; });
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->first, 10);
  EXPECT_EQ(tree.size_snapshot(), 100u);
  vcas::ebr::drain_for_tests();
}

TEST(VcasBstQueries, RangeMatchesModel) {
  Tree tree;
  std::set<std::int64_t> model;
  vcas::util::Xoshiro256 rng(5);
  for (int i = 0; i < 3000; ++i) {
    const std::int64_t k = static_cast<std::int64_t>(rng.next_in(1000));
    tree.insert(k, k * 3);
    model.insert(k);
  }
  for (int i = 0; i < 50; ++i) {
    const std::int64_t lo = static_cast<std::int64_t>(rng.next_in(1000));
    const std::int64_t hi = lo + static_cast<std::int64_t>(rng.next_in(200));
    auto got = tree.range(lo, hi);
    std::vector<std::int64_t> expect;
    for (auto it = model.lower_bound(lo); it != model.end() && *it <= hi; ++it)
      expect.push_back(*it);
    ASSERT_EQ(got.size(), expect.size()) << "[" << lo << "," << hi << "]";
    for (std::size_t j = 0; j < got.size(); ++j) {
      EXPECT_EQ(got[j].first, expect[j]);
      EXPECT_EQ(got[j].second, expect[j] * 3);
    }
  }
  vcas::ebr::drain_for_tests();
}

TEST(VcasBstQueries, SuccReturnsAscendingStrictSuccessors) {
  Tree tree;
  for (std::int64_t k = 0; k < 100; k += 10) tree.insert(k, k);
  auto got = tree.succ(25, 3);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].first, 30);
  EXPECT_EQ(got[1].first, 40);
  EXPECT_EQ(got[2].first, 50);
  // Strictly greater: succ of an existing key skips the key itself.
  auto got2 = tree.succ(30, 2);
  ASSERT_EQ(got2.size(), 2u);
  EXPECT_EQ(got2[0].first, 40);
  // Fewer than requested remain.
  auto got3 = tree.succ(85, 5);
  ASSERT_EQ(got3.size(), 1u);
  EXPECT_EQ(got3[0].first, 90);
  EXPECT_TRUE(tree.succ(95, 4).empty());
  vcas::ebr::drain_for_tests();
}

TEST(VcasBstQueries, FindIfReturnsFirstMatchInKeyOrder) {
  Tree tree;
  for (std::int64_t k = 1; k <= 300; ++k) tree.insert(k, k);
  auto r = tree.find_if(10, 300, [](const std::int64_t& k) {
    return k % 128 == 0;
  });
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 128);
  // Half-open upper bound: key 256 in [200, 256) is excluded.
  auto r2 = tree.find_if(200, 256,
                         [](const std::int64_t& k) { return k % 128 == 0; });
  EXPECT_FALSE(r2.has_value());
  auto r3 = tree.find_if(0, 301,
                         [](const std::int64_t& k) { return k > 299; });
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(r3->first, 300);
  vcas::ebr::drain_for_tests();
}

TEST(VcasBstQueries, MultisearchAnswersFromOneSnapshot) {
  Tree tree;
  for (std::int64_t k = 0; k < 100; k += 7) tree.insert(k, k + 1);
  auto res = tree.multisearch({0, 7, 8, 49, 98, 99});
  ASSERT_EQ(res.size(), 6u);
  EXPECT_EQ(res[0], 1);
  EXPECT_EQ(res[1], 8);
  EXPECT_EQ(res[2], std::nullopt);
  EXPECT_EQ(res[3], 50);
  EXPECT_EQ(res[4], 99);
  EXPECT_EQ(res[5], std::nullopt);
  vcas::ebr::drain_for_tests();
}

TEST(VcasBstQueries, SizeAndHeightSnapshots) {
  Tree tree;
  EXPECT_EQ(tree.size_snapshot(), 0u);
  for (std::int64_t k = 0; k < 64; ++k) tree.insert(k, k);
  EXPECT_EQ(tree.size_snapshot(), 64u);
  EXPECT_GE(tree.height_snapshot(), 6u);  // at least log2(64)
  vcas::ebr::drain_for_tests();
}

// --- atomicity under concurrency ------------------------------------------

// Pair invariant: k and k+1000 are inserted low-first and removed
// high-first, so "high present implies low present" holds at every instant
// and must hold in every snapshot range query.
TEST(VcasBstQueries, RangeSeesPairInvariantUnderChurn) {
  Tree tree;
  constexpr std::int64_t kPairs = 64;
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};

  std::thread updater([&] {
    vcas::util::Xoshiro256 rng(21);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::int64_t k = static_cast<std::int64_t>(rng.next_in(kPairs));
      if (rng.next_in(2) == 0) {
        tree.insert(k, k);
        tree.insert(k + 1000, k);
      } else {
        tree.remove(k + 1000);
        tree.remove(k);
      }
    }
  });

  for (int iter = 0; iter < 3000; ++iter) {
    auto snap = tree.range(0, 2000);
    std::set<std::int64_t> keys;
    for (auto& [k, v] : snap) keys.insert(k);
    for (std::int64_t k = 0; k < kPairs; ++k) {
      if (keys.count(k + 1000) && !keys.count(k)) ok = false;
    }
    for (std::size_t i = 1; i < snap.size(); ++i) {
      if (!(snap[i - 1].first < snap[i].first)) ok = false;
    }
  }
  stop = true;
  updater.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

// Slot invariant: each updater owns a slot and always keeps exactly one key
// in it (insert the new key, then remove the old). A snapshot therefore
// sees between kSlots and kSlots + updaters keys — never fewer.
TEST(VcasBstQueries, SizeSnapshotSeesSlotInvariant) {
  Tree tree;
  constexpr int kUpdaters = 3;
  constexpr std::int64_t kSlots = 8;
  // Slot s starts holding key s*1000.
  for (std::int64_t s = 0; s < kSlots; ++s) {
    ASSERT_TRUE(tree.insert(s * 1000, s));
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::vector<std::thread> updaters;
  for (int t = 0; t < kUpdaters; ++t) {
    updaters.emplace_back([&, t] {
      // Thread t owns slots where s % kUpdaters == t.
      std::vector<std::int64_t> cur(kSlots);
      for (std::int64_t s = 0; s < kSlots; ++s) cur[s] = s * 1000;
      vcas::util::Xoshiro256 rng(33 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::int64_t s =
            (static_cast<std::int64_t>(rng.next_in(kSlots / kUpdaters)) *
                 kUpdaters +
             t) %
            kSlots;
        if (s % kUpdaters != t) continue;
        const std::int64_t next =
            s * 1000 + 1 + static_cast<std::int64_t>(rng.next_in(900));
        if (next == cur[s]) continue;
        if (!tree.insert(next, s)) continue;  // key collision: skip
        ASSERT_TRUE(tree.remove(cur[s]));
        cur[s] = next;
      }
    });
  }
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t n = tree.size_snapshot();
    if (n < kSlots || n > kSlots + kUpdaters) ok = false;
  }
  stop = true;
  for (auto& th : updaters) th.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

// Deletes force the recorded-once copy path; interleave them with range
// queries that must stay sorted/duplicate-free and respect the membership
// the updater guarantees (multiples of 3 are permanent residents).
TEST(VcasBstQueries, CopyOnDeletePreservesPermanentResidents) {
  Tree tree;
  constexpr std::int64_t kKeys = 300;
  for (std::int64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(tree.insert(k, k));
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};

  std::thread updater([&] {
    vcas::util::Xoshiro256 rng(44);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::int64_t k = static_cast<std::int64_t>(rng.next_in(kKeys));
      if (k % 3 == 0) continue;  // multiples of 3 are never touched
      if (rng.next_in(2) == 0) {
        tree.remove(k);
      } else {
        tree.insert(k, k);
      }
    }
  });

  for (int iter = 0; iter < 2000; ++iter) {
    auto snap = tree.range(0, kKeys);
    std::set<std::int64_t> keys;
    for (auto& [k, v] : snap) {
      if (!keys.insert(k).second) ok = false;  // duplicate in one snapshot
    }
    for (std::int64_t k = 0; k < kKeys; k += 3) {
      if (!keys.count(k)) ok = false;  // permanent resident missing
    }
  }
  stop = true;
  updater.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

// succ/multisearch/find_if against churn: results must be internally
// consistent (sorted, strict successors, pred satisfied).
TEST(VcasBstQueries, PointQueriesInternallyConsistentUnderChurn) {
  Tree tree;
  for (std::int64_t k = 0; k < 500; ++k) tree.insert(k, k);
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};

  std::thread updater([&] {
    vcas::util::Xoshiro256 rng(55);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::int64_t k = static_cast<std::int64_t>(rng.next_in(500));
      if (rng.next_in(2) == 0) {
        tree.remove(k);
      } else {
        tree.insert(k, k);
      }
    }
  });

  vcas::util::Xoshiro256 rng(66);
  for (int iter = 0; iter < 1500; ++iter) {
    const std::int64_t k = static_cast<std::int64_t>(rng.next_in(500));
    auto s = tree.succ(k, 4);
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i].first <= k) ok = false;
      if (i > 0 && s[i - 1].first >= s[i].first) ok = false;
    }
    auto f = tree.find_if(k, k + 100,
                          [](const std::int64_t& x) { return x % 7 == 0; });
    if (f.has_value() && (f->first < k || f->first >= k + 100 ||
                          f->first % 7 != 0)) {
      ok = false;
    }
  }
  stop = true;
  updater.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

}  // namespace
