// VNode recycling pools (ISSUE 4): util::SlabPool behavior, the EBR
// batch-retire path that feeds it, and the end-to-end guarantee that
// write-path churn stops costing fresh allocator memory once the pool is
// warm. The full suite runs under ASan+UBSan in CI — recycled blocks must
// be handed around without ever tripping the sanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "ebr/ebr.h"
#include "util/slab_pool.h"
#include "vcas/camera.h"
#include "vcas/versioned_cas.h"

namespace {

using vcas::util::pool_stats;
using vcas::util::PoolStats;

// A size class nothing else in this binary uses, so slab-count deltas in
// these tests are attributable (gtest runs tests sequentially; EBR sweeps
// triggered here only touch VNode-sized classes).
using TestPool = vcas::util::SlabPool<888>;

TEST(SlabPool, ReusesFreedBlocks) {
  void* a = TestPool::allocate();
  TestPool::deallocate(a);
  void* b = TestPool::allocate();
  // LIFO local cache: the freed block comes straight back.
  EXPECT_EQ(a, b);
  TestPool::deallocate(b);
}

TEST(SlabPool, WarmPoolStopsTakingOsMemory) {
  constexpr int kBlocks = 1000;
  std::vector<void*> blocks;
  blocks.reserve(kBlocks);
  for (int i = 0; i < kBlocks; ++i) blocks.push_back(TestPool::allocate());
  std::set<void*> distinct(blocks.begin(), blocks.end());
  EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kBlocks));
  for (void* p : blocks) TestPool::deallocate(p);

  const PoolStats before = pool_stats();
  blocks.clear();
  for (int i = 0; i < kBlocks; ++i) blocks.push_back(TestPool::allocate());
  const PoolStats after = pool_stats();
  // Every allocation was served from the freelist: no new slabs.
  EXPECT_EQ(after.slabs, before.slabs);
  EXPECT_EQ(after.slab_bytes, before.slab_bytes);
  EXPECT_EQ(after.allocs - before.allocs, static_cast<std::uint64_t>(kBlocks));
  for (void* p : blocks) TestPool::deallocate(p);
}

TEST(SlabPool, BlocksFreedOnOneThreadFeedAnother) {
  constexpr int kBlocks = 600;  // above the local-cache flush threshold
  std::vector<void*> blocks;
  blocks.reserve(kBlocks);
  for (int i = 0; i < kBlocks; ++i) blocks.push_back(TestPool::allocate());
  // A DIFFERENT thread frees them; its cache overflows and flushes to the
  // shared freelist, and its exit flushes the rest.
  std::thread([&] {
    for (void* p : blocks) TestPool::deallocate(p);
  }).join();

  const PoolStats before = pool_stats();
  std::vector<void*> again;
  again.reserve(kBlocks);
  for (int i = 0; i < kBlocks; ++i) again.push_back(TestPool::allocate());
  const PoolStats after = pool_stats();
  EXPECT_EQ(after.slabs, before.slabs);  // all reuse, zero fresh slabs
  for (void* p : again) TestPool::deallocate(p);
}

TEST(SlabPool, ThreadExitOrphanedBlocksAreAdopted) {
  const PoolStats start = pool_stats();
  // The thread allocates (possibly carving slabs), frees into its LOCAL
  // cache only (no overflow), and exits without further ceremony.
  std::thread([] {
    std::vector<void*> blocks;
    for (int i = 0; i < 100; ++i) blocks.push_back(TestPool::allocate());
    for (void* p : blocks) TestPool::deallocate(p);
    EXPECT_GE(TestPool::local_cached_for_tests(), 100u);
  }).join();
  // Its blocks were handed to the shared freelist at exit: this thread can
  // consume all 100 without any new slab.
  const PoolStats mid = pool_stats();
  std::vector<void*> blocks;
  for (int i = 0; i < 100; ++i) blocks.push_back(TestPool::allocate());
  const PoolStats after = pool_stats();
  EXPECT_EQ(after.slabs, mid.slabs);
  EXPECT_GE(mid.frees - start.frees, 100u);
  for (void* p : blocks) TestPool::deallocate(p);
}

// --- EBR batch retire --------------------------------------------------------

std::atomic<int> g_run_live{0};

struct RunNode {
  RunNode* next = nullptr;
  RunNode() { g_run_live.fetch_add(1); }
  ~RunNode() { g_run_live.fetch_sub(1); }
};

void delete_run(void* p) {
  RunNode* n = static_cast<RunNode*>(p);
  while (n != nullptr) {
    RunNode* next = n->next;
    delete n;
    n = next;
  }
}

TEST(EbrBatchRetire, OneEntryFreesWholeRunAndCountsEveryObject) {
  vcas::ebr::drain_for_tests();
  const auto before = vcas::ebr::stats();
  constexpr int kRun = 57;
  RunNode* head = nullptr;
  for (int i = 0; i < kRun; ++i) {
    RunNode* n = new RunNode;
    n->next = head;
    head = n;
  }
  vcas::ebr::retire_batch(head, &delete_run, kRun);
  const auto pending = vcas::ebr::stats();
  EXPECT_GE(pending.pending, static_cast<std::size_t>(kRun));
  vcas::ebr::drain_for_tests();
  const auto after = vcas::ebr::stats();
  EXPECT_EQ(g_run_live.load(), 0);
  EXPECT_GE(after.freed - before.freed, static_cast<std::uint64_t>(kRun));
}

// --- end to end through VersionedCAS ----------------------------------------

TEST(Recycling, TrimChurnPlateausOsMemory) {
  vcas::Camera cam;
  vcas::VersionedCAS<std::int64_t> obj(0, &cam);
  // Warm-up: grow and trim a long chain once so the pool carves its slabs.
  std::int64_t v = 0;
  for (int i = 0; i < 4096; ++i, ++v) ASSERT_TRUE(obj.vCAS(v, v + 1));
  cam.takeSnapshot();
  {
    vcas::ebr::Guard g;
    obj.trim(cam.min_active());
  }
  vcas::ebr::drain_for_tests();

  // Steady state: the same churn again must be served almost entirely from
  // recycled nodes — OS memory growth is bounded by a few slabs of lag, an
  // order of magnitude under the 4096 nodes written.
  const PoolStats before = pool_stats();
  for (int i = 0; i < 4096; ++i, ++v) ASSERT_TRUE(obj.vCAS(v, v + 1));
  cam.takeSnapshot();
  {
    vcas::ebr::Guard g;
    obj.trim(cam.min_active());
  }
  vcas::ebr::drain_for_tests();
  const PoolStats after = pool_stats();
  EXPECT_LT(after.slabs - before.slabs, 8u);
  EXPECT_GE(after.frees - before.frees, 4096u);
}

TEST(Recycling, ConcurrentWritersAndTrimmersRecycleCleanly) {
  const PoolStats before = pool_stats();
  vcas::Camera cam;
  vcas::VersionedCAS<std::int64_t> obj(0, &cam);
  std::atomic<bool> stop{false};
  std::thread trimmer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      vcas::ebr::Guard g;
      obj.trim(cam.min_active());
      cam.takeSnapshot();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 30000; ++i) {
        vcas::ebr::Guard g;
        auto* head = obj.vReadNode();
        obj.install_over(head, head->val + 1);
      }
    });
  }
  for (auto& th : writers) th.join();
  stop = true;
  trimmer.join();
  // ASan is the real assertion here (recycled VNodes crossing threads);
  // the value check proves no install was lost or doubled. The final trim
  // makes reclamation deterministic whether or not the racing trimmer ever
  // won a timeslice; conservation then forces the frees count: 90k nodes
  // were installed and at most a handful survive in the chain, so nearly
  // all of them must have come back through the pool.
  cam.takeSnapshot();
  {
    vcas::ebr::Guard g;
    obj.trim(cam.min_active());
  }
  vcas::ebr::drain_for_tests();
  const PoolStats s = pool_stats();
  EXPECT_GT(s.frees - before.frees, 80000u);
  EXPECT_GT(obj.vRead(), 0);
}

}  // namespace
