#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "ds/msqueue.h"
#include "ebr/ebr.h"
#include "util/barrier.h"

namespace {

using vcas::ds::VcasMSQueue;

TEST(MSQueue, FifoOrderSingleThread) {
  VcasMSQueue<int> q;
  EXPECT_EQ(q.dequeue(), std::nullopt);
  for (int i = 0; i < 100; ++i) q.enqueue(i);
  for (int i = 0; i < 100; ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.dequeue(), std::nullopt);
  vcas::ebr::drain_for_tests();
}

TEST(MSQueue, InterleavedEnqueueDequeue) {
  VcasMSQueue<int> q;
  q.enqueue(1);
  q.enqueue(2);
  EXPECT_EQ(q.dequeue(), 1);
  q.enqueue(3);
  EXPECT_EQ(q.dequeue(), 2);
  EXPECT_EQ(q.dequeue(), 3);
  EXPECT_EQ(q.dequeue(), std::nullopt);
  vcas::ebr::drain_for_tests();
}

TEST(MSQueue, ScanSeesExactContents) {
  VcasMSQueue<int> q;
  EXPECT_TRUE(q.scan().empty());
  for (int i = 0; i < 10; ++i) q.enqueue(i);
  q.dequeue();
  q.dequeue();
  auto snap = q.scan();
  ASSERT_EQ(snap.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(snap[i], i + 2);
  vcas::ebr::drain_for_tests();
}

TEST(MSQueue, PeekEndPoints) {
  VcasMSQueue<int> q;
  auto [f0, b0] = q.peek_end_points();
  EXPECT_FALSE(f0.has_value());
  EXPECT_FALSE(b0.has_value());
  q.enqueue(7);
  auto [f1, b1] = q.peek_end_points();
  EXPECT_EQ(f1, 7);
  EXPECT_EQ(b1, 7);
  q.enqueue(9);
  q.enqueue(11);
  auto [f2, b2] = q.peek_end_points();
  EXPECT_EQ(f2, 7);
  EXPECT_EQ(b2, 11);
  vcas::ebr::drain_for_tests();
}

TEST(MSQueue, IthAndSize) {
  VcasMSQueue<int> q;
  for (int i = 0; i < 20; ++i) q.enqueue(i * 10);
  EXPECT_EQ(q.size_snapshot(), 20u);
  EXPECT_EQ(q.ith(0), 0);
  EXPECT_EQ(q.ith(7), 70);
  EXPECT_EQ(q.ith(19), 190);
  EXPECT_EQ(q.ith(20), std::nullopt);
  vcas::ebr::drain_for_tests();
}

// MPMC: all enqueued values dequeued exactly once; per-producer order
// preserved (FIFO is per-producer subsequence under concurrency).
TEST(MSQueue, ConcurrentProducersConsumersLoseNothing) {
  VcasMSQueue<std::int64_t> q;
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr std::int64_t kPerProducer = 5000;
  std::atomic<std::int64_t> consumed_sum{0};
  std::atomic<std::int64_t> consumed_count{0};
  vcas::util::SpinBarrier barrier(kProducers + kConsumers);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      barrier.arrive_and_wait();
      for (std::int64_t i = 0; i < kPerProducer; ++i) {
        q.enqueue(p * kPerProducer + i);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      std::int64_t last_seen[kProducers];
      for (auto& v : last_seen) v = -1;
      while (consumed_count.load() < kProducers * kPerProducer) {
        auto v = q.dequeue();
        if (!v.has_value()) {
          std::this_thread::yield();
          continue;
        }
        consumed_count.fetch_add(1);
        consumed_sum.fetch_add(*v);
        const int producer = static_cast<int>(*v / kPerProducer);
        // Values from one producer must reach any single consumer in order.
        EXPECT_GT(*v, last_seen[producer]);
        last_seen[producer] = *v;
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::int64_t n = kProducers * kPerProducer;
  EXPECT_EQ(consumed_count.load(), n);
  EXPECT_EQ(consumed_sum.load(), n * (n - 1) / 2);
  EXPECT_EQ(q.dequeue(), std::nullopt);
  vcas::ebr::drain_for_tests();
}

// Snapshot atomicity: a producer enqueues 0,1,2,... and a consumer dequeues
// in order. Any scan must observe a contiguous integer interval.
TEST(MSQueue, ScanSeesContiguousIntervalUnderConcurrency) {
  VcasMSQueue<std::int64_t> q;
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::atomic<std::int64_t> dequeued{0};

  // The producer's lead over the consumer is capped: scan() walks every
  // node in the queue at its snapshot, so an unthrottled producer (tens of
  // millions of enqueues while 300 scans run) used to grow the walk
  // quadratically until the test looked hung. The cap keeps full
  // producer/consumer/scanner concurrency while bounding each scan.
  constexpr std::int64_t kMaxLead = 20000;
  std::thread producer([&] {
    for (std::int64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      while (i - dequeued.load(std::memory_order_relaxed) > kMaxLead &&
             !stop.load(std::memory_order_relaxed)) {
        std::this_thread::yield();
      }
      q.enqueue(i);
    }
  });
  std::thread consumer([&] {
    std::int64_t expect = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto v = q.dequeue();
      if (v.has_value()) {
        if (*v != expect) ok = false;
        ++expect;
        dequeued.store(expect, std::memory_order_relaxed);
      }
    }
  });

  for (int iter = 0; iter < 300; ++iter) {
    auto snap = q.scan();
    for (std::size_t i = 1; i < snap.size(); ++i) {
      if (snap[i] != snap[i - 1] + 1) {
        ok = false;
      }
    }
    auto [front, back] = q.peek_end_points();
    if (front.has_value() != back.has_value()) ok = false;
    if (front.has_value() && *front > *back) ok = false;
  }
  stop = true;
  producer.join();
  consumer.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

// ith must agree with scan through the same kind of snapshot reasoning:
// ith(i) == head value + i while producer/consumer run.
TEST(MSQueue, IthIsConsistentWithFrontUnderConcurrency) {
  VcasMSQueue<std::int64_t> q;
  for (std::int64_t i = 0; i < 100; ++i) q.enqueue(i);
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};

  std::thread churn([&] {
    std::int64_t next = 100;
    while (!stop.load(std::memory_order_relaxed)) {
      q.enqueue(next++);
      q.dequeue();
    }
  });

  for (int iter = 0; iter < 2000; ++iter) {
    auto snap = q.scan();
    if (snap.size() < 5) continue;
    // Values are consecutive, so position arithmetic must hold within one
    // snapshot (scan already checked above; here exercise ith's own
    // snapshot against itself via two reads).
    auto third = q.ith(3);
    if (third.has_value() && *third < 3) ok = false;
  }
  stop = true;
  churn.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

}  // namespace
