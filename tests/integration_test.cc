// Cross-module integration and failure-injection tests: thread churn
// against the EBR slot registry, whole-system workloads mixing every
// structure on one camera, and parameterized concurrency sweeps on the
// chromatic tree's safety invariant.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "ds/chromatic.h"
#include "ds/ellen_bst.h"
#include "ds/harris_list.h"
#include "ds/msqueue.h"
#include "ebr/ebr.h"
#include "util/barrier.h"
#include "util/rng.h"
#include "vcas/camera.h"
#include "vcas/snapshot.h"

namespace {

using K = std::int64_t;

// Short-lived threads churn slots while long-lived threads keep operating:
// slot recycling, orphaned limbo bags and reservation reuse must all
// compose without losing or double-freeing memory.
TEST(Integration, ThreadChurnAgainstEbr) {
  vcas::ds::VcasBST<K, K> tree;
  std::atomic<bool> stop{false};
  std::thread resident([&] {
    vcas::util::Xoshiro256 rng(1);
    while (!stop.load(std::memory_order_relaxed)) {
      const K k = static_cast<K>(rng.next_in(512));
      if (rng.next_in(2) == 0) {
        tree.insert(k, k);
      } else {
        tree.remove(k);
      }
    }
  });
  for (int wave = 0; wave < 30; ++wave) {
    std::vector<std::thread> ephemeral;
    for (int t = 0; t < 6; ++t) {
      ephemeral.emplace_back([&, t] {
        vcas::util::Xoshiro256 rng(100 + wave * 10 + t);
        for (int i = 0; i < 300; ++i) {
          const K k = static_cast<K>(rng.next_in(512));
          if (rng.next_in(2) == 0) {
            tree.insert(k, k);
          } else {
            tree.remove(k);
          }
        }
      });
    }
    for (auto& th : ephemeral) th.join();
  }
  stop = true;
  resident.join();
  auto keys = tree.keys_unsynchronized();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  vcas::ebr::drain_for_tests();
  // All churned garbage reclaimed; nothing stranded in orphan bags.
  EXPECT_EQ(vcas::ebr::stats().pending, 0u);
}

// The kitchen sink: every structure on one shared camera, updaters on all
// of them, and snapshot takers reading all four with one handle. Checks
// per-structure sanity plus cross-structure handle validity.
TEST(Integration, AllStructuresOneCamera) {
  vcas::Camera camera;
  vcas::ds::VcasBST<K, K> bst(&camera);
  vcas::ds::VcasChromaticTree<K, K> ct(&camera);
  vcas::ds::VcasHarrisList<K, K> list(&camera);
  vcas::ds::VcasMSQueue<K> queue(&camera);

  // Every structure holds exactly the keys {0..63} marked by its updater;
  // the queue cycles a fixed population of 64 tickets.
  for (K i = 0; i < 64; ++i) {
    ASSERT_TRUE(bst.insert(i, i));
    ASSERT_TRUE(ct.insert(i, i));
    ASSERT_TRUE(list.insert(i, i));
    queue.enqueue(i);
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  // Fixed array, not vector<thread>: GCC 12's -Warray-bounds false-fires
  // on the vector<thread> realloc path at -O2 once enough of the store
  // inlines into this TU.
  std::thread updaters[4];
  updaters[0] = std::thread([&] {  // bst: remove+reinsert (size 63..64)
    vcas::util::Xoshiro256 rng(11);
    while (!stop.load(std::memory_order_relaxed)) {
      const K k = static_cast<K>(rng.next_in(64));
      if (bst.remove(k)) bst.insert(k, k);
    }
  });
  updaters[1] = std::thread([&] {  // ct: same
    vcas::util::Xoshiro256 rng(12);
    while (!stop.load(std::memory_order_relaxed)) {
      const K k = static_cast<K>(rng.next_in(64));
      if (ct.remove(k)) ct.insert(k, k);
    }
  });
  updaters[2] = std::thread([&] {  // list: same
    vcas::util::Xoshiro256 rng(13);
    while (!stop.load(std::memory_order_relaxed)) {
      const K k = static_cast<K>(rng.next_in(64));
      if (list.remove(k)) list.insert(k, k);
    }
  });
  updaters[3] = std::thread([&] {  // queue: rotate (size stays 64)
    while (!stop.load(std::memory_order_relaxed)) {
      auto v = queue.dequeue();
      if (v.has_value()) queue.enqueue(*v);
    }
  });

  for (int iter = 0; iter < 1500; ++iter) {
    vcas::SnapshotGuard snap(camera);
    const std::size_t in_bst = bst.range_at(snap.ts(), 0, 63).size();
    const std::size_t in_ct = ct.range_at(snap.ts(), 0, 63).size();
    const std::size_t in_list = list.range_at(snap.ts(), 0, 63).size();
    const std::size_t in_queue = queue.scan_at(snap.ts()).size();
    // Each remove+reinsert keeps at most one key in flight per structure;
    // the queue rotation keeps at most one ticket out at an instant.
    if (in_bst < 63 || in_bst > 64) ok = false;
    if (in_ct < 63 || in_ct > 64) ok = false;
    if (in_list < 63 || in_list > 64) ok = false;
    if (in_queue < 63 || in_queue > 64) ok = false;
  }
  stop = true;
  for (auto& th : updaters) th.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

// Parameterized concurrency sweep: the chromatic tree's equal-path-weight
// safety invariant must hold after any number of contending threads.
class ChromaticConcurrency : public ::testing::TestWithParam<int> {};

TEST_P(ChromaticConcurrency, WeightInvariantSurvivesContention) {
  const int threads = GetParam();
  vcas::ds::VcasChromaticTree<K, K> tree;
  vcas::util::SpinBarrier barrier(threads);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      vcas::util::Xoshiro256 rng(400 + t);
      barrier.arrive_and_wait();
      for (int i = 0; i < 2500; ++i) {
        const K k = static_cast<K>(rng.next_in(256));
        switch (rng.next_in(3)) {
          case 0:
            tree.insert(k, k);
            break;
          case 1:
            tree.remove(k);
            break;
          default:
            tree.range(k, k + 16);
            break;
        }
      }
    });
  }
  for (auto& th : workers) th.join();
  auto sums = tree.leaf_path_weights_unsynchronized();
  for (std::size_t i = 1; i < sums.size(); ++i) {
    ASSERT_EQ(sums[i], sums[0]);
  }
  auto keys = tree.keys_unsynchronized();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  vcas::ebr::drain_for_tests();
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChromaticConcurrency,
                         ::testing::Values(1, 2, 4, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "p" + std::to_string(info.param);
                         });

// A rolling window of snapshot handles with trimming chasing the oldest:
// every handle still in the window must keep reading its exact value while
// history behind the window is reclaimed. (One thread can announce only
// one pin, so the window passes the oldest retained handle to trim()
// directly — the documented caller contract.)
TEST(Integration, RollingSnapshotsWithTrimming) {
  vcas::Camera cam;
  vcas::VersionedCAS<K> obj(0, &cam);
  vcas::ebr::pin();  // hold one pin for the whole window's lifetime
  std::vector<vcas::Timestamp> window;
  std::vector<K> expected;
  K v = 0;
  for (int round = 0; round < 200; ++round) {
    window.push_back(cam.takeSnapshot());
    expected.push_back(v);
    for (int i = 0; i < 17; ++i) {
      ASSERT_TRUE(obj.vCAS(v, v + 1));
      ++v;
    }
    if (window.size() > 8) {  // drop the oldest handle, trim behind the rest
      window.erase(window.begin());
      expected.erase(expected.begin());
      obj.trim(window.front());
    }
    for (std::size_t i = 0; i < window.size(); ++i) {
      ASSERT_EQ(obj.readSnapshot(window[i]), expected[i]);
    }
  }
  // History behind the window is gone; the window itself stays readable.
  EXPECT_LT(obj.version_count(), 200u);
  vcas::ebr::unpin();
  vcas::ebr::drain_for_tests();
}

}  // namespace
