// ShardedStore teardown ordering: destruction racing a just-quiesced
// background trimmer and EBR orphan-bag adoption.
//
// The audited contract (see the destructor comment in store.h): the dtor
// joins the trimmer before touching any cell; versions the trimmer
// detached are unreachable from every vhead_ by then (trim unlinks before
// it retires), so the registry walk and EBR each free their own nodes
// exactly once; maps destruct before the camera they reference and never
// dereference their (by then dangling) Cell* values. These stresses run
// under the TSan CI job, where a mis-ordered free or a racing trimmer
// access shows up as a report rather than silent corruption.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "ebr/ebr.h"
#include "store/backend.h"
#include "store/batch.h"
#include "store/store.h"

namespace {

using K = std::int64_t;
using V = std::int64_t;

template <typename Backend>
class StoreTeardownTest : public ::testing::Test {
 public:
  using Store = vcas::store::ShardedStore<K, V, Backend>;
};

using Backends =
    ::testing::Types<vcas::store::ListBackend, vcas::store::BstBackend,
                     vcas::store::ChromaticBackend>;
TYPED_TEST_SUITE(StoreTeardownTest, Backends);

// Create/destroy cycles with the background trimmer running throughout and
// worker threads (writers, batch writers, snapshot readers) joining JUST
// before destruction — the trimmer is typically mid-scan when the dtor
// asks it to stop, and the workers' limbo bags orphan into the global EBR
// list as their threads exit around the store's death.
TYPED_TEST(StoreTeardownTest, CreateDestroyStressWithTrimmerAndLateReaders) {
  for (int iter = 0; iter < 20; ++iter) {
    auto store = std::make_unique<typename TestFixture::Store>(4);
    store->enable_background_trim(std::chrono::milliseconds(1));
    std::vector<std::thread> workers;
    for (int t = 0; t < 3; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < 80; ++i) {
          const K k = t * 100 + (i % 10);
          if (i % 5 == 0) {
            typename TestFixture::Store::Batch b;
            b.put(k, i);
            b.put(k + 50, i);
            store->applyBatch(b);
          } else if (i % 7 == 0) {
            store->remove(k);
          } else {
            store->put(k, i);
          }
          if (i % 3 == 0) store->multiGet({k, k + 50});
          if (i % 11 == 0) {
            auto view = store->snapshotAll();
            view.size();
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    store.reset();  // destruction: trimmer may be mid-trim_all right here
  }
  vcas::ebr::drain_for_tests();
}

// Tightest window: a zero-interval trimmer (back-to-back trim_all) plus
// version churn, destroyed with no grace period — the dtor's join must
// always wait out the in-flight scan before the cell registry is freed.
TYPED_TEST(StoreTeardownTest, DestroyImmediatelyUnderConstantTrimChurn) {
  for (int iter = 0; iter < 30; ++iter) {
    typename TestFixture::Store store(2);
    store.enable_background_trim(std::chrono::milliseconds(0));
    for (int i = 0; i < 150; ++i) {
      store.put(i % 8, i);
      if (i % 16 == 0) store.camera().takeSnapshot();
    }
  }
  vcas::ebr::drain_for_tests();
}

// enable/disable cycling concurrent with foreground trims and writes: the
// trimmer handoff (move under mutex, join outside) must never lose or
// double-join a thread, and a foreground trim_all racing the background
// one is serialized per cell by the trim try-lock.
TYPED_TEST(StoreTeardownTest, TrimmerEnableDisableCyclesRaceForegroundTrims) {
  typename TestFixture::Store store(4);
  for (K k = 0; k < 16; ++k) store.put(k, 0);
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      store.put(i % 16, i);
      if (i % 8 == 0) store.trim_all();
    }
  });
  for (int i = 0; i < 40; ++i) {
    store.enable_background_trim(std::chrono::milliseconds(0));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    store.disable_background_trim();
  }
  stop = true;
  churn.join();
  vcas::ebr::drain_for_tests();
}

}  // namespace
