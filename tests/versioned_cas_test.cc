#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "ebr/ebr.h"
#include "util/barrier.h"
#include "util/rng.h"
#include "vcas/camera.h"
#include "vcas/snapshot.h"
#include "vcas/versioned_cas.h"

namespace {

using vcas::Camera;
using vcas::Timestamp;
using vcas::VersionedCAS;

TEST(VersionedCas, ReadReturnsInitialValue) {
  Camera cam;
  VersionedCAS<int> obj(42, &cam);
  EXPECT_EQ(obj.vRead(), 42);
  EXPECT_EQ(obj.version_count(), 1u);
}

TEST(VersionedCas, SuccessfulCasChangesValue) {
  Camera cam;
  VersionedCAS<int> obj(1, &cam);
  EXPECT_TRUE(obj.vCAS(1, 2));
  EXPECT_EQ(obj.vRead(), 2);
  EXPECT_TRUE(obj.vCAS(2, 3));
  EXPECT_EQ(obj.vRead(), 3);
  EXPECT_EQ(obj.version_count(), 3u);
}

TEST(VersionedCas, FailedCasLeavesValueAndVersionsUntouched) {
  Camera cam;
  VersionedCAS<int> obj(1, &cam);
  EXPECT_FALSE(obj.vCAS(7, 9));
  EXPECT_EQ(obj.vRead(), 1);
  EXPECT_EQ(obj.version_count(), 1u);
}

TEST(VersionedCas, SameValueCasSucceedsWithoutNewVersion) {
  // Algorithm 1 line 44: oldV == newV returns true and must not append.
  Camera cam;
  VersionedCAS<int> obj(5, &cam);
  EXPECT_TRUE(obj.vCAS(5, 5));
  EXPECT_EQ(obj.version_count(), 1u);
}

TEST(VersionedCas, SnapshotReadsHistoricalValues) {
  Camera cam;
  VersionedCAS<int> obj(0, &cam);
  std::vector<Timestamp> handles;
  for (int k = 1; k <= 10; ++k) {
    handles.push_back(cam.takeSnapshot());
    ASSERT_TRUE(obj.vCAS(k - 1, k));
  }
  Timestamp final_handle = cam.takeSnapshot();
  for (int k = 1; k <= 10; ++k) {
    // handles[k-1] was taken when the object held k-1.
    EXPECT_EQ(obj.readSnapshot(handles[k - 1]), k - 1);
  }
  EXPECT_EQ(obj.readSnapshot(final_handle), 10);
  EXPECT_EQ(obj.vRead(), 10);
}

TEST(VersionedCas, SnapshotIsStableWhileUpdatesContinue) {
  Camera cam;
  VersionedCAS<int> obj(0, &cam);
  Timestamp h = cam.takeSnapshot();
  for (int k = 1; k <= 100; ++k) ASSERT_TRUE(obj.vCAS(k - 1, k));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(obj.readSnapshot(h), 0);
  EXPECT_EQ(obj.vRead(), 100);
}

TEST(VersionedCas, RepeatedSnapshotsOfSameStateShareValue) {
  Camera cam;
  VersionedCAS<int> obj(3, &cam);
  Timestamp h1 = cam.takeSnapshot();
  Timestamp h2 = cam.takeSnapshot();
  EXPECT_EQ(obj.readSnapshot(h1), 3);
  EXPECT_EQ(obj.readSnapshot(h2), 3);
}

TEST(VersionedCas, PointerValues) {
  Camera cam;
  int a = 1, b = 2;
  VersionedCAS<int*> obj(&a, &cam);
  Timestamp h = cam.takeSnapshot();
  EXPECT_TRUE(obj.vCAS(&a, &b));
  EXPECT_EQ(obj.readSnapshot(h), &a);
  EXPECT_EQ(obj.vRead(), &b);
}

// --- cross-object snapshot atomicity -------------------------------------

// A writer keeps x and y in lockstep (x := k, then y := k). At every
// instant y <= x <= y + 1. An atomic snapshot must observe that relation;
// a non-atomic pair of reads would eventually catch y > x.
TEST(VersionedCas, CrossObjectAtomicityUnderConcurrency) {
  Camera cam;
  VersionedCAS<std::int64_t> x(0, &cam);
  VersionedCAS<std::int64_t> y(0, &cam);
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};

  std::thread writer([&] {
    for (std::int64_t k = 1; !stop.load(std::memory_order_relaxed); ++k) {
      ASSERT_TRUE(x.vCAS(k - 1, k));
      ASSERT_TRUE(y.vCAS(k - 1, k));
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        Timestamp h = cam.takeSnapshot();
        std::int64_t sx = x.readSnapshot(h);
        std::int64_t sy = y.readSnapshot(h);
        if (!(sy <= sx && sx <= sy + 1)) ok = false;
      }
    });
  }
  for (auto& th : readers) th.join();
  stop = true;
  writer.join();
  EXPECT_TRUE(ok.load());
}

// Snapshot handles are totally ordered: a later handle must never observe
// an older state of a monotonically increasing counter.
TEST(VersionedCas, SnapshotsRespectHandleOrder) {
  Camera cam;
  VersionedCAS<std::int64_t> counter(0, &cam);
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};

  std::thread writer([&] {
    std::int64_t v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(counter.vCAS(v, v + 1));
      ++v;
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      Timestamp prev_h = -1;
      std::int64_t prev_v = -1;
      for (int i = 0; i < 20000; ++i) {
        Timestamp h = cam.takeSnapshot();
        std::int64_t v = counter.readSnapshot(h);
        if (h >= prev_h && v < prev_v) ok = false;
        if (h < prev_h) continue;  // cannot happen; belt and braces
        prev_h = h;
        prev_v = v;
      }
    });
  }
  for (auto& th : readers) th.join();
  stop = true;
  writer.join();
  EXPECT_TRUE(ok.load());
}

// Contended increments through vCAS retry loops must not lose updates, and
// every snapshot value must be between 0 and the final total.
TEST(VersionedCas, ContendedIncrementsAreLockFreeAndExact) {
  Camera cam;
  VersionedCAS<std::int64_t> counter(0, &cam);
  constexpr int kThreads = 8;
  constexpr int kIncrements = 3000;
  vcas::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kIncrements; ++i) {
        for (;;) {
          std::int64_t v = counter.vRead();
          if (counter.vCAS(v, v + 1)) break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.vRead(), kThreads * kIncrements);
  EXPECT_EQ(counter.version_count(),
            static_cast<std::size_t>(kThreads * kIncrements) + 1);
}

// --- version trimming (GC extension) --------------------------------------

TEST(VersionedCasTrim, TrimsEverythingWhenNoSnapshotActive) {
  Camera cam;
  VersionedCAS<int> obj(0, &cam);
  for (int k = 1; k <= 100; ++k) ASSERT_TRUE(obj.vCAS(k - 1, k));
  cam.takeSnapshot();  // bump the clock past the last write
  EXPECT_EQ(obj.version_count(), 101u);
  {
    vcas::ebr::Guard g;
    EXPECT_GT(obj.trim(cam.min_active()), 0u);
  }
  // Only the pivot (newest version at or below min_active) may remain,
  // possibly plus newer ones — here there are none newer.
  EXPECT_EQ(obj.version_count(), 1u);
  EXPECT_EQ(obj.vRead(), 100);
  vcas::ebr::drain_for_tests();
}

TEST(VersionedCasTrim, PreservesVersionsVisibleToActiveSnapshot) {
  Camera cam;
  VersionedCAS<int> obj(0, &cam);
  for (int k = 1; k <= 10; ++k) ASSERT_TRUE(obj.vCAS(k - 1, k));

  vcas::SnapshotGuard guard(cam);  // pins min_active at <= guard.ts()
  const int value_at_guard = obj.readSnapshot(guard.ts());
  for (int k = 11; k <= 50; ++k) ASSERT_TRUE(obj.vCAS(k - 1, k));

  {
    vcas::ebr::Guard g;
    obj.trim(cam.min_active());
  }
  // The guard's view is intact after trimming.
  EXPECT_EQ(obj.readSnapshot(guard.ts()), value_at_guard);
  EXPECT_EQ(obj.vRead(), 50);
  // Versions newer than the guard's snapshot must all survive (40 writes
  // after the guard + the pivot).
  EXPECT_GE(obj.version_count(), 41u);
  vcas::ebr::drain_for_tests();
}

TEST(VersionedCasTrim, ConcurrentTrimAndReadStress) {
  Camera cam;
  VersionedCAS<std::int64_t> obj(0, &cam);
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};

  std::thread writer([&] {
    std::int64_t v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(obj.vCAS(v, v + 1));
      ++v;
      if (v % 64 == 0) {
        vcas::ebr::Guard g;
        obj.trim(cam.min_active());
      }
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        vcas::SnapshotGuard guard(cam);
        std::int64_t first = obj.readSnapshot(guard.ts());
        // Re-reading through the same handle must be stable even while the
        // writer trims concurrently.
        for (int j = 0; j < 3; ++j) {
          if (obj.readSnapshot(guard.ts()) != first) ok = false;
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  stop = true;
  writer.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

// Cross-object extension of the trim races above (the shared-camera case
// the store layer depends on): a trimmer sweeps EVERY object registered on
// one camera off a single min_active() read while announced readers take
// cross-object snapshots. Each snapshot must stay internally consistent
// (lockstep invariant) and stable on re-read.
TEST(VersionedCasTrim, SharedCameraTrimAcrossObjectsStress) {
  Camera cam;
  constexpr int kObjects = 4;
  std::vector<std::unique_ptr<VersionedCAS<std::int64_t>>> objs;
  for (int i = 0; i < kObjects; ++i) {
    objs.push_back(std::make_unique<VersionedCAS<std::int64_t>>(0, &cam));
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};

  // Writer keeps all objects in lockstep: obj[0] >= obj[1] >= ... >=
  // obj[n-1] >= obj[0] - 1 at every instant.
  std::thread writer([&] {
    for (std::int64_t k = 1; !stop.load(std::memory_order_relaxed); ++k) {
      for (auto& o : objs) ASSERT_TRUE(o->vCAS(k - 1, k));
    }
  });
  std::thread trimmer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      vcas::ebr::Guard g;
      const Timestamp horizon = cam.min_active();
      for (auto& o : objs) o->trim(horizon);
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 6000; ++i) {
        vcas::SnapshotGuard guard(cam);
        std::int64_t first = objs[0]->readSnapshot(guard.ts());
        for (int j = 1; j < kObjects; ++j) {
          const std::int64_t v = objs[j]->readSnapshot(guard.ts());
          if (v > first || v < first - 1) ok = false;
        }
        if (objs[0]->readSnapshot(guard.ts()) != first) ok = false;
      }
    });
  }
  for (auto& th : readers) th.join();
  stop = true;
  writer.join();
  trimmer.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

// --- parameterized stress sweep -------------------------------------------

struct StressParam {
  int writers;
  int snapshotters;
};

class VersionedCasStress : public ::testing::TestWithParam<StressParam> {};

// The lockstep x/y invariant must hold for every writer/reader mix.
TEST_P(VersionedCasStress, PairInvariantHolds) {
  const auto param = GetParam();
  Camera cam;
  // Each writer owns its own pair; readers check all pairs.
  std::vector<std::unique_ptr<VersionedCAS<std::int64_t>>> xs, ys;
  for (int w = 0; w < param.writers; ++w) {
    xs.push_back(std::make_unique<VersionedCAS<std::int64_t>>(0, &cam));
    ys.push_back(std::make_unique<VersionedCAS<std::int64_t>>(0, &cam));
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int w = 0; w < param.writers; ++w) {
    threads.emplace_back([&, w] {
      for (std::int64_t k = 1; !stop.load(std::memory_order_relaxed); ++k) {
        ASSERT_TRUE(xs[w]->vCAS(k - 1, k));
        ASSERT_TRUE(ys[w]->vCAS(k - 1, k));
      }
    });
  }
  for (int r = 0; r < param.snapshotters; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < 4000; ++i) {
        Timestamp h = cam.takeSnapshot();
        for (int w = 0; w < param.writers; ++w) {
          std::int64_t sx = xs[w]->readSnapshot(h);
          std::int64_t sy = ys[w]->readSnapshot(h);
          if (!(sy <= sx && sx <= sy + 1)) ok = false;
        }
      }
      stop = true;  // first reader to finish ends the run
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(ok.load());
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, VersionedCasStress,
    ::testing::Values(StressParam{1, 1}, StressParam{1, 4}, StressParam{2, 2},
                      StressParam{4, 1}, StressParam{4, 4}),
    [](const ::testing::TestParamInfo<StressParam>& info) {
      return "w" + std::to_string(info.param.writers) + "_r" +
             std::to_string(info.param.snapshotters);
    });

}  // namespace
