// Cooperative batch helping: a stalled applyBatch writer must not block
// readers or writers (the PR-2 progress bug, and the paper's headline
// property restored on the write path).
//
// Every park test stalls a batch writer mid-batch through the
// store.batch.install failpoint (src/inject/failpoint.h) — after some or
// all of its installs, always before its commit — and asserts that
// concurrent point reads, snapshot queries, single-key writes, conflicting
// batches, and the trimmer all complete while the writer sleeps, by
// finishing the batch from its published descriptor. On the pre-helping
// protocol every one of these spins until the writer wakes, so these tests
// hang (and time out) there. Parking needs a -DVCAS_INJECT=ON build (the
// CI fault-injection job); the park tests skip in default builds, while
// the contended soak runs everywhere and gains seeded yield-storm noise
// when injection is compiled in.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "ebr/ebr.h"
#include "inject/failpoint.h"
#include "store/backend.h"
#include "store/batch.h"
#include "store/store.h"
#include "util/rng.h"

namespace {

using K = std::int64_t;
using V = std::int64_t;

constexpr char kInstallFp[] = "store.batch.install";

template <typename Backend>
class BatchHelpingTest : public ::testing::Test {
 public:
  using Store = vcas::store::ShardedStore<K, V, Backend>;

 protected:
  // Failpoint sites are process-global; never leak an armed site (or a
  // stale release latch) into the next test.
  void TearDown() override {
    vcas::inject::disarm_all();
    vcas::inject::release_all();
  }
};

using Backends =
    ::testing::Types<vcas::store::ListBackend, vcas::store::BstBackend,
                     vcas::store::ChromaticBackend>;
TYPED_TEST_SUITE(BatchHelpingTest, Backends);

// Keys landing in pairwise distinct shards, so the parked batch genuinely
// spans shard boundaries.
template <typename Store>
std::vector<K> distinct_shard_keys(const Store& store, std::size_t count) {
  std::vector<K> keys;
  std::vector<bool> used(store.shard_count(), false);
  for (K k = 0; keys.size() < count; ++k) {
    const std::size_t s = store.shard_index(k);
    if (!used[s]) {
      used[s] = true;
      keys.push_back(k);
    }
  }
  return keys;
}

// Parks the FIRST batch writer that completes `trigger` installs after this
// call (one-shot, so helpers' and later batches' applyBatch calls sail
// through), until release(kInstallFp). The failpoint fires in the owner's
// install loop only — helpers install through the descriptor, not
// run_descriptor — so the trigger counts exactly the parked writer's steps,
// like the deleted set_batch_pause_for_tests hook did.
void arm_park(std::size_t trigger) {
  vcas::inject::Spec spec;
  spec.action = vcas::inject::Action::kPark;
  spec.trigger = trigger;
  vcas::inject::arm(kInstallFp, spec);
}

void wait_parked() {
  while (vcas::inject::parked(kInstallFp) == 0) std::this_thread::yield();
}

// Writer parked AFTER every install, BEFORE its commit: snapshot queries on
// the batch's keys must complete (helping the commit stamp into place) and
// stay atomic; the batch becomes visible without the writer ever waking.
TYPED_TEST(BatchHelpingTest, SnapshotReadsCommitParkedBatchAndStayAtomic) {
  if (!vcas::inject::kInjectEnabled) {
    GTEST_SKIP() << "park failpoints require -DVCAS_INJECT=ON";
  }
  typename TestFixture::Store store(8);
  const std::vector<K> keys = distinct_shard_keys(store, 3);
  {
    typename TestFixture::Store::Batch init;
    for (K k : keys) init.put(k, 1);
    store.applyBatch(init);
  }

  arm_park(keys.size());
  std::thread writer([&] {
    typename TestFixture::Store::Batch b;
    b.put(keys[0], 100);
    b.put(keys[1], 200);
    b.remove(keys[2]);
    store.applyBatch(b);
  });
  wait_parked();

  // Point reads never block on (or help) an undecided batch: it simply has
  // not happened yet.
  EXPECT_EQ(store.get(keys[0]), std::optional<V>(1));

  // A snapshot query completes while the writer sleeps. Helping fixes the
  // commit stamp strictly after this query's handle, so the query itself
  // still reports the pre-batch state — atomically.
  const auto vals = store.multiGet(keys);
  ASSERT_EQ(vals.size(), 3u);
  EXPECT_EQ(vals[0], std::optional<V>(1));
  EXPECT_EQ(vals[1], std::optional<V>(1));
  EXPECT_EQ(vals[2], std::optional<V>(1));

  // That help committed the batch: the writer is still parked, yet the
  // batch is fully visible to everything.
  ASSERT_EQ(vcas::inject::parked(kInstallFp), 1);
  EXPECT_EQ(store.get(keys[0]), std::optional<V>(100));
  EXPECT_EQ(store.get(keys[1]), std::optional<V>(200));
  EXPECT_FALSE(store.get(keys[2]).has_value());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.rangeQuery(keys.front(), keys.back()).size(), 2u);

  vcas::inject::release(kInstallFp);
  writer.join();
  // The woken writer's own commit pass must be a no-op.
  EXPECT_EQ(store.get(keys[0]), std::optional<V>(100));
  EXPECT_EQ(store.get(keys[1]), std::optional<V>(200));
  EXPECT_FALSE(store.get(keys[2]).has_value());
  vcas::ebr::drain_for_tests();
}

// Writer parked after its FIRST install with two ops still pending: a
// reader that touches any installed record must finish the REMAINING
// installs from the descriptor, then commit — the full helping path, not
// just the commit CAS.
TYPED_TEST(BatchHelpingTest, ReadersFinishRemainingInstallsOfParkedWriter) {
  if (!vcas::inject::kInjectEnabled) {
    GTEST_SKIP() << "park failpoints require -DVCAS_INJECT=ON";
  }
  typename TestFixture::Store store(8);
  const std::vector<K> keys = distinct_shard_keys(store, 3);
  {
    typename TestFixture::Store::Batch init;
    for (K k : keys) init.put(k, 1);
    store.applyBatch(init);
  }

  arm_park(1);
  std::thread writer([&] {
    typename TestFixture::Store::Batch b;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      b.put(keys[i], 100 + static_cast<V>(i));
    }
    store.applyBatch(b);
  });
  wait_parked();

  // Exactly one record is installed (in descriptor order — we do not know
  // which key). A multiGet over all three keys is guaranteed to hit it,
  // help install the other two, and commit. It must still answer with the
  // pre-batch snapshot (commit lands after its handle), atomically.
  const auto vals = store.multiGet(keys);
  for (const auto& v : vals) EXPECT_EQ(v, std::optional<V>(1));

  // The whole batch — including the ops the writer never got to — is now
  // committed and visible, with the writer still asleep.
  ASSERT_EQ(vcas::inject::parked(kInstallFp), 1);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(store.get(keys[i]), std::optional<V>(100 + static_cast<V>(i)));
  }

  vcas::inject::release(kInstallFp);
  writer.join();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(store.get(keys[i]), std::optional<V>(100 + static_cast<V>(i)));
  }
  vcas::ebr::drain_for_tests();
}

// Single-key writes and a fully conflicting batch on the parked batch's
// keys must complete while the writer sleeps, and linearize AFTER it.
TYPED_TEST(BatchHelpingTest, WritersAndConflictingBatchesOvertakeParkedWriter) {
  if (!vcas::inject::kInjectEnabled) {
    GTEST_SKIP() << "park failpoints require -DVCAS_INJECT=ON";
  }
  typename TestFixture::Store store(8);
  const std::vector<K> keys = distinct_shard_keys(store, 3);
  {
    typename TestFixture::Store::Batch init;
    for (K k : keys) init.put(k, 1);
    store.applyBatch(init);
  }

  arm_park(keys.size());
  std::thread writer([&] {
    typename TestFixture::Store::Batch b;
    b.put(keys[0], 100);
    b.put(keys[1], 200);
    b.remove(keys[2]);
    store.applyBatch(b);
  });
  wait_parked();

  // put() helps the parked batch to its commit, then installs over it:
  // keys[0] was present (value 100 once helped), so put reports an update.
  EXPECT_FALSE(store.put(keys[0], 7));
  EXPECT_EQ(store.get(keys[0]), std::optional<V>(7));

  // remove() of the key the batch already tombstoned: after helping, the
  // key is absent, so remove is a no-op reporting "was not present".
  EXPECT_FALSE(store.remove(keys[2]));

  // A conflicting batch over every key completes while the writer sleeps
  // and wins (it commits after the batch it helped).
  {
    typename TestFixture::Store::Batch b2;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      b2.put(keys[i], 1000 + static_cast<V>(i));
    }
    store.applyBatch(b2);
  }
  ASSERT_EQ(vcas::inject::parked(kInstallFp), 1);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(store.get(keys[i]), std::optional<V>(1000 + static_cast<V>(i)));
  }

  vcas::inject::release(kInstallFp);
  writer.join();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(store.get(keys[i]), std::optional<V>(1000 + static_cast<V>(i)));
  }
  vcas::ebr::drain_for_tests();
}

// The trimmer is a blocked party too: trim_all must complete while the
// writer sleeps (help-then-check in its commit predicate), deciding the
// batch along the way instead of waiting it out.
TYPED_TEST(BatchHelpingTest, TrimAllDecidesParkedBatchAndCompletes) {
  if (!vcas::inject::kInjectEnabled) {
    GTEST_SKIP() << "park failpoints require -DVCAS_INJECT=ON";
  }
  typename TestFixture::Store store(4);
  const std::vector<K> keys = distinct_shard_keys(store, 2);
  {
    typename TestFixture::Store::Batch init;
    for (K k : keys) init.put(k, 1);
    store.applyBatch(init);
  }

  arm_park(keys.size());
  std::thread writer([&] {
    typename TestFixture::Store::Batch b;
    for (K k : keys) b.put(k, 2);
    store.applyBatch(b);
  });
  wait_parked();

  store.trim_all();  // must not hang; helps the batch to its commit
  ASSERT_EQ(vcas::inject::parked(kInstallFp), 1);
  for (K k : keys) EXPECT_EQ(store.get(k), std::optional<V>(2));

  vcas::inject::release(kInstallFp);
  writer.join();
  vcas::ebr::drain_for_tests();
}

// Contended soak with randomized stalls injected into every batch writer:
// two writers batching over the same keys keep them equal while a seeded
// yield-storm failpoint (roughly one install in 23) preempts them at
// pseudo-random points mid-batch; snapshot readers must always see
// all-equal values (atomicity) and identical answers on view re-reads
// (stability), with everyone helping everyone. Exercises racing helpers on
// the same descriptor under TSan. Runs in every build — without
// VCAS_INJECT the arm is a no-op and this is a plain contention soak.
TYPED_TEST(BatchHelpingTest, RandomMidBatchStallsStayAtomicUnderContention) {
  typename TestFixture::Store store(8);
  const std::vector<K> keys = distinct_shard_keys(store, 4);
  {
    typename TestFixture::Store::Batch init;
    for (K k : keys) init.put(k, 0);
    store.applyBatch(init);
  }

  vcas::inject::Spec storm;
  storm.action = vcas::inject::Action::kYieldStorm;
  storm.every_n = 23;
  storm.yields = 128;
  vcas::inject::arm(kInstallFp, storm);

  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      for (V round = 1; !stop.load(std::memory_order_relaxed); ++round) {
        typename TestFixture::Store::Batch batch;
        for (K k : keys) batch.put(k, round * 2 + w);
        store.applyBatch(batch);
      }
    });
  }

  for (int i = 0; i < 600; ++i) {
    auto view = store.snapshotAll();
    const auto first = view.multiGet(keys);
    for (std::size_t j = 1; j < first.size(); ++j) {
      if (!first[j].has_value() || *first[j] != *first[0]) ok = false;
    }
    const auto again = view.multiGet(keys);
    if (again != first) ok = false;
    if (i % 50 == 0) store.trim_all();
  }
  stop = true;
  for (auto& th : writers) th.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

}  // namespace
