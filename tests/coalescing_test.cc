// Clock-gated version coalescing (ISSUE 4).
//
// Two adjacent versions stamped with the same camera timestamp are
// indistinguishable to every snapshot, so the older one may be unlinked and
// recycled (VersionedCAS::try_coalesce_below). These tests pin down:
//   * the eligibility gate: equal stamps coalesce, a clock move fences off
//     history, the droppable predicate is honored;
//   * the bound the tentpole buys: version counts track snapshots taken,
//     not writes issued, under multi-writer no-snapshot churn;
//   * snapshot semantics are bit-for-bit preserved while coalescing runs
//     (stable re-reads, handle monotonicity, cross-object atomicity);
//   * the store NEVER coalesces ticketed records — pending OR decided —
//     because the batch/txn helper protocol addresses their version nodes
//     by identity (the regression the ISSUE calls out; runs under TSan in
//     CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "ebr/ebr.h"
#include "inject/failpoint.h"
#include "store/store.h"
#include "util/barrier.h"
#include "vcas/camera.h"
#include "vcas/snapshot.h"
#include "vcas/versioned_cas.h"

namespace {

using vcas::Camera;
using vcas::Timestamp;
using vcas::VersionedCAS;

constexpr auto kDropAll = [](const std::int64_t&) { return true; };

// Install through the coalescing write path: the store's put() in
// miniature, for a plain VersionedCAS.
std::int64_t coalescing_write(VersionedCAS<std::int64_t>& obj,
                              std::int64_t next) {
  vcas::ebr::Guard g;
  for (;;) {
    auto* head = obj.vReadNode();
    if (auto* mine = obj.install_over(head, next)) {
      return static_cast<std::int64_t>(obj.try_coalesce_below(mine, kDropAll));
    }
  }
}

TEST(Coalescing, EqualStampedRunCollapsesToOneVersion) {
  Camera cam;
  VersionedCAS<std::int64_t> obj(0, &cam);
  // No snapshot is ever taken: the clock never moves, every write stamps
  // the same value, and each write unlinks its predecessor.
  for (std::int64_t v = 1; v <= 1000; ++v) coalescing_write(obj, v);
  EXPECT_EQ(obj.version_count(), 1u);
  EXPECT_EQ(obj.vRead(), 1000);
  vcas::ebr::drain_for_tests();
}

TEST(Coalescing, ClockMoveFencesOffHistory) {
  Camera cam;
  VersionedCAS<std::int64_t> obj(0, &cam);
  std::vector<Timestamp> handles;
  std::vector<std::int64_t> expected;
  for (int epoch = 0; epoch < 5; ++epoch) {
    // Several writes per snapshot epoch; only the last survives per epoch.
    for (int i = 0; i < 10; ++i) {
      coalescing_write(obj, epoch * 100 + i);
    }
    expected.push_back(epoch * 100 + 9);
    handles.push_back(cam.takeSnapshot());
  }
  // One version per distinct stamp (5 epochs; the epoch-0 run swallowed the
  // seed, which was stamped equal).
  EXPECT_EQ(obj.version_count(), 5u);
  // Every snapshot still reads exactly what it must: the last write of its
  // epoch. Coalescing never crossed a stamp boundary.
  for (std::size_t i = 0; i < handles.size(); ++i) {
    EXPECT_EQ(obj.readSnapshot(handles[i]), expected[i]);
  }
  vcas::ebr::drain_for_tests();
}

TEST(Coalescing, DroppablePredicateIsHonored) {
  Camera cam;
  VersionedCAS<std::int64_t> obj(0, &cam);
  vcas::ebr::Guard g;
  auto* head = obj.vReadNode();
  auto* first = obj.install_over(head, 1);
  ASSERT_NE(first, nullptr);
  auto* second = obj.install_over(first, 2);
  ASSERT_NE(second, nullptr);
  // Refuse to drop anything: the equal-stamped run must stay chained.
  EXPECT_EQ(obj.try_coalesce_below(
                second, [](const std::int64_t&) { return false; }),
            0u);
  EXPECT_EQ(obj.version_count(), 3u);
  // The run stops at the first non-droppable value even when deeper nodes
  // would qualify (a kept node must never be walked over).
  auto* third = obj.install_over(second, 3);
  ASSERT_NE(third, nullptr);
  EXPECT_EQ(obj.try_coalesce_below(
                third, [](const std::int64_t& v) { return v != 1; }),
            1u);  // drops 2, stops at 1
  EXPECT_EQ(obj.version_count(), 3u);  // 3 -> 1 -> 0
  vcas::ebr::drain_for_tests();
}

// The satellite bound: under a multi-writer, NO-snapshot workload the
// version count is O(snapshots taken) = O(1), not O(writes). The final
// single-threaded write drains any backlog contended try-locks left
// behind, making the bound exact.
TEST(Coalescing, MultiWriterNoSnapshotChurnLeavesOneVersion) {
  Camera cam;
  VersionedCAS<std::int64_t> obj(0, &cam);
  constexpr int kThreads = 4;
  constexpr int kWritesEach = 20000;
  vcas::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kWritesEach; ++i) {
        coalescing_write(obj, t * kWritesEach + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Mid-flight the chain carries whatever backlog lock-holder preemption
  // allowed (on a loaded 1-core CI box that can be sizeable), but it must
  // be a small fraction of the 80k writes.
  EXPECT_LT(obj.version_count(), 4096u);
  // Uncontended writes drain the backlog (each coalesce removes up to one
  // full run); loop until it is gone.
  std::int64_t cleanup = -1;
  do {
    coalescing_write(obj, cleanup--);
    ASSERT_GT(cleanup, -100000);  // far more capacity than any backlog
  } while (obj.version_count() > 1u);
  EXPECT_EQ(obj.version_count(), 1u);
  EXPECT_EQ(obj.vRead(), cleanup + 1);
  vcas::ebr::drain_for_tests();
}

// Snapshot correctness while coalescers, a trimmer, and announced readers
// race (the TSan target for the unlink path): re-reads through one handle
// are stable, and later handles never observe older states.
TEST(Coalescing, SnapshotStabilityUnderConcurrentCoalesceAndTrim) {
  Camera cam;
  VersionedCAS<std::int64_t> obj(0, &cam);
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};

  std::thread writer([&] {
    std::int64_t v = 1;
    while (!stop.load(std::memory_order_relaxed)) coalescing_write(obj, v++);
  });
  std::thread trimmer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      vcas::ebr::Guard g;
      obj.trim(cam.min_active());
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      Timestamp prev_h = -1;
      std::int64_t prev_v = -1;
      for (int i = 0; i < 20000; ++i) {
        vcas::SnapshotGuard guard(cam);
        const std::int64_t first = obj.readSnapshot(guard.ts());
        for (int j = 0; j < 3; ++j) {
          if (obj.readSnapshot(guard.ts()) != first) ok = false;
        }
        if (guard.ts() >= prev_h && first < prev_v) ok = false;
        prev_h = guard.ts();
        prev_v = first;
      }
    });
  }
  for (auto& th : readers) th.join();
  stop = true;
  writer.join();
  trimmer.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

// --- store-layer behavior ----------------------------------------------------

using Store = vcas::store::ShardedStore<std::int64_t, std::int64_t,
                                        vcas::store::ListBackend>;
using Batch = Store::Batch;

TEST(StoreCoalescing, PutChurnIsBoundedBySnapshots) {
  Store store(4);
  ASSERT_TRUE(store.coalescing());  // default ON
  constexpr std::int64_t kKeys = 8;
  constexpr int kThreads = 4;
  constexpr int kWritesEach = 10000;
  vcas::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kWritesEach; ++i) {
        store.put(i % kKeys, t * kWritesEach + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  // The backlog reflects pacing plus whatever lock-holder preemption
  // allowed on a loaded box; it must be a small fraction of the 40k
  // writes.
  EXPECT_LT(store.total_versions(), 8192u);
  // Eager cleanup passes: each put splices away a run below it (including
  // eventually the absent seed — also stamped at the never-moved clock);
  // loop until only the newest record per key remains.
  store.set_coalesce_every(1);
  for (int round = 0; round < 1000; ++round) {
    for (std::int64_t k = 0; k < kKeys; ++k) store.put(k, k);
    if (store.total_versions() == static_cast<std::size_t>(kKeys)) break;
  }
  EXPECT_EQ(store.total_versions(), static_cast<std::size_t>(kKeys));
  for (std::int64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(store.get(k), std::optional<std::int64_t>(k));
  }
  vcas::ebr::drain_for_tests();
}

// The ISSUE's regression: ticketed records keep node identity. A committed
// batch record sits under equal-stamped plain puts and must never be
// unlinked, while the plain puts above it coalesce among themselves.
TEST(StoreCoalescing, NeverFiresOnTicketedRecords) {
  Store store(1);
  store.set_coalesce_every(1);  // eager: assert exact history shapes
  {
    Batch b;
    b.put(7, 100);
    store.applyBatch(b);
  }
  // Chain for key 7: [batch record] -> [absent seed], all stamped at the
  // never-moved clock. applyBatch's read_commit_clock does not bump it.
  EXPECT_EQ(store.total_versions(), 2u);
  store.put(7, 101);
  // The put may not coalesce the batch record below it (ticketed), and the
  // stop there also shields the seed.
  EXPECT_EQ(store.total_versions(), 3u);
  store.put(7, 102);
  store.put(7, 103);
  // Plain puts above the ticket coalesce among themselves: still 3.
  EXPECT_EQ(store.total_versions(), 3u);
  EXPECT_EQ(store.get(7), std::optional<std::int64_t>(103));
  vcas::ebr::drain_for_tests();
}

// A PENDING record at head: a concurrent put first helps the batch to its
// decision (store writers never install over an undecided record), then
// installs over it WITHOUT coalescing it — the descriptor's witnessed node
// must stay in the chain. Runs under TSan in CI.
TEST(StoreCoalescing, PendingBatchRecordSurvivesConcurrentPut) {
  if (!vcas::inject::kInjectEnabled) {
    GTEST_SKIP() << "park failpoints require -DVCAS_INJECT=ON";
  }
  Store store(1);
  store.set_coalesce_every(1);  // eager: assert exact history shapes
  vcas::inject::Spec spec;
  spec.action = vcas::inject::Action::kPark;
  spec.trigger = 2;  // batch of two: park after the LAST install
  vcas::inject::arm("store.batch.install", spec);

  std::thread owner([&] {
    Batch b;
    b.put(1, 10);
    b.put(2, 20);
    store.applyBatch(b);  // parks after the last install, before deciding
  });
  while (vcas::inject::parked("store.batch.install") == 0) {
    std::this_thread::yield();
  }

  // The helper path: decides the stalled batch, installs over its (now
  // committed, still ticketed) record, and must leave that record chained.
  store.put(1, 11);
  EXPECT_EQ(store.get(1), std::optional<std::int64_t>(11));
  EXPECT_EQ(store.get(2), std::optional<std::int64_t>(20));
  // key 1: seed + batch record + put = 3; key 2: seed + batch record = 2.
  EXPECT_EQ(store.total_versions(), 5u);

  vcas::inject::release("store.batch.install");
  owner.join();
  vcas::inject::disarm_all();
  vcas::inject::release_all();
  vcas::ebr::drain_for_tests();
}

// Same regression for transactions: a parked owner's txn record is decided
// by the helper and survives under the helper's own write.
TEST(StoreCoalescing, TxnRecordSurvivesConcurrentPut) {
  if (!vcas::inject::kInjectEnabled) {
    GTEST_SKIP() << "park failpoints require -DVCAS_INJECT=ON";
  }
  Store store(1);
  store.set_coalesce_every(1);  // eager: assert exact history shapes
  vcas::inject::Spec spec;
  spec.action = vcas::inject::Action::kPark;
  spec.trigger = 1;  // single-write txn: park after its only install
  vcas::inject::arm("store.batch.install", spec);

  std::thread owner([&] {
    auto txn = store.beginTransaction();
    txn.put(5, 50);
    txn.commit();  // parks after install, before stamp/decide
  });
  while (vcas::inject::parked("store.batch.install") == 0) {
    std::this_thread::yield();
  }

  store.put(5, 51);
  EXPECT_EQ(store.get(5), std::optional<std::int64_t>(51));
  // The txn record (whatever its fate) stays chained below the put: seed +
  // txn record + put.
  EXPECT_EQ(store.total_versions(), 3u);

  vcas::inject::release("store.batch.install");
  owner.join();
  vcas::inject::disarm_all();
  vcas::inject::release_all();
  vcas::ebr::drain_for_tests();
}

// Concurrent mixed churn with coalescing on: single-key puts, batches, and
// announced snapshot readers. Snapshot atomicity (batch all-or-nothing)
// and re-read stability must hold bit-for-bit; TSan watches the unlink.
TEST(StoreCoalescing, MixedBatchAndPutChurnKeepsSnapshotsAtomic) {
  Store store(4);
  const std::int64_t k1 = 3, k2 = 11;  // batch-equal pair
  {
    Batch init;
    init.put(k1, 0);
    init.put(k2, 0);
    store.applyBatch(init);
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};

  std::thread batcher([&] {
    for (std::int64_t round = 1; !stop.load(std::memory_order_relaxed);
         ++round) {
      Batch b;
      b.put(k1, round);
      b.put(k2, round);
      store.applyBatch(b);
    }
  });
  std::thread putter([&] {
    // Hammers a DIFFERENT key: plain-record coalescing churns next to the
    // ticketed chains without touching them.
    for (std::int64_t v = 0; !stop.load(std::memory_order_relaxed); ++v) {
      store.put(99, v);
    }
  });
  std::thread trimmer([&] {
    while (!stop.load(std::memory_order_relaxed)) store.trim_all();
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 8000; ++i) {
        auto view = store.snapshotAll();
        const auto a = view.get(k1);
        const auto b = view.get(k2);
        if (a != b) ok = false;                    // batch atomicity
        if (view.get(k1) != a) ok = false;         // re-read stability
      }
    });
  }
  for (auto& th : readers) th.join();
  stop = true;
  batcher.join();
  putter.join();
  trimmer.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

}  // namespace
