// Cross-structure atomic snapshots (paper Section 3: "one will often have
// just one global camera object for all versioned CAS objects used in a
// data structure" — and the interface deliberately allows *several*
// structures to share one camera).
//
// A queue, a list, and two trees all attached to the same camera; a single
// SnapshotGuard handle then reads all of them at one linearization point.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "ds/chromatic.h"
#include "ds/ellen_bst.h"
#include "ds/harris_list.h"
#include "ds/msqueue.h"
#include "ebr/ebr.h"
#include "util/rng.h"
#include "vcas/camera.h"
#include "vcas/snapshot.h"

namespace {

using K = std::int64_t;

TEST(SharedCamera, StructuresShareOneClock) {
  vcas::Camera camera;
  vcas::ds::VcasBST<K, K> tree(&camera);
  vcas::ds::VcasHarrisList<K, K> list(&camera);
  vcas::ds::VcasMSQueue<K> queue(&camera);
  EXPECT_EQ(&tree.camera(), &camera);
  EXPECT_EQ(&list.camera(), &camera);
  EXPECT_EQ(&queue.camera(), &camera);

  tree.insert(1, 1);
  list.insert(2, 2);
  queue.enqueue(3);
  {
    vcas::SnapshotGuard snap(camera);
    EXPECT_EQ(tree.range_at(snap.ts(), 0, 10).size(), 1u);
    EXPECT_EQ(list.range_at(snap.ts(), 0, 10).size(), 1u);
    EXPECT_EQ(queue.scan_at(snap.ts()).size(), 1u);
  }
  vcas::ebr::drain_for_tests();
}

// The cross-structure invariant: a mover transfers items between a BST
// ("warehouse") and a list ("shelf") by inserting into the destination
// first and removing from the source second. The total across both can
// momentarily be N+1 but never less than N — and a single-handle snapshot
// of both structures must observe that, while two independent snapshots
// could see N-1 (item removed from source in between).
TEST(SharedCamera, CrossStructureCountInvariant) {
  vcas::Camera camera;
  vcas::ds::VcasBST<K, K> warehouse(&camera);
  vcas::ds::VcasHarrisList<K, K> shelf(&camera);
  constexpr K kItems = 64;
  for (K i = 0; i < kItems; ++i) ASSERT_TRUE(warehouse.insert(i, i));

  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::thread mover([&] {
    vcas::util::Xoshiro256 rng(3);
    while (!stop.load(std::memory_order_relaxed)) {
      const K i = static_cast<K>(rng.next_in(kItems));
      if (warehouse.contains(i)) {
        if (shelf.insert(i, i)) {
          if (!warehouse.remove(i)) shelf.remove(i);  // lost a race: undo
        }
      } else if (shelf.find(i).has_value()) {
        if (warehouse.insert(i, i)) {
          if (!shelf.remove(i)) warehouse.remove(i);
        }
      }
    }
  });

  for (int iter = 0; iter < 3000; ++iter) {
    vcas::SnapshotGuard snap(camera);
    const std::size_t in_tree =
        warehouse.range_at(snap.ts(), 0, kItems).size();
    const std::size_t on_shelf = shelf.range_at(snap.ts(), 0, kItems).size();
    const std::size_t total = in_tree + on_shelf;
    if (total < kItems || total > kItems + 1) {
      ok = false;
    }
  }
  stop = true;
  mover.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

// Same invariant across the two tree implementations sharing a camera.
TEST(SharedCamera, TreeToTreeTransfer) {
  vcas::Camera camera;
  vcas::ds::VcasBST<K, K> a(&camera);
  vcas::ds::VcasChromaticTree<K, K> b(&camera);
  constexpr K kItems = 128;
  for (K i = 0; i < kItems; ++i) ASSERT_TRUE(a.insert(i, i));

  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::thread mover([&] {
    vcas::util::Xoshiro256 rng(5);
    while (!stop.load(std::memory_order_relaxed)) {
      const K i = static_cast<K>(rng.next_in(kItems));
      if (a.contains(i)) {
        if (b.insert(i, i)) {
          if (!a.remove(i)) b.remove(i);
        }
      } else if (b.contains(i)) {
        if (a.insert(i, i)) {
          if (!b.remove(i)) a.remove(i);
        }
      }
    }
  });

  for (int iter = 0; iter < 3000; ++iter) {
    vcas::SnapshotGuard snap(camera);
    const std::size_t total = a.range_at(snap.ts(), 0, kItems).size() +
                              b.range_at(snap.ts(), 0, kItems).size();
    if (total < kItems || total > kItems + 1) ok = false;
  }
  stop = true;
  mover.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

// Nested-pin semantics on a shared camera (ported from the old per-thread
// depth-array tests): every guard is an independent era pin now, so an
// inner guard's release must never lift the horizon past an enclosing
// guard's handle, no matter which structure either guard is reading.
TEST(SharedCamera, NestedPinsKeepOldestHorizonAcrossStructures) {
  vcas::Camera camera;
  vcas::ds::VcasBST<K, K> tree(&camera);
  vcas::ds::VcasHarrisList<K, K> list(&camera);
  for (K i = 0; i < 32; ++i) {
    ASSERT_TRUE(tree.insert(i, i));
    ASSERT_TRUE(list.insert(i, i));
  }
  vcas::SnapshotGuard outer(camera);
  const auto outer_ts = outer.ts();
  for (K i = 0; i < 32; ++i) ASSERT_TRUE(tree.insert(100 + i, i));
  {
    vcas::SnapshotGuard inner(camera);
    EXPECT_GE(inner.ts(), outer_ts);
    EXPECT_LE(camera.min_active(), outer_ts);
    // The outer handle still reads the pre-insert world, the inner one the
    // post-insert world, from the same thread at the same moment.
    EXPECT_EQ(tree.range_at(outer_ts, 0, 199).size(), 32u);
    EXPECT_EQ(tree.range_at(inner.ts(), 0, 199).size(), 64u);
  }
  // Inner release kept the outer pin: min_active is still bounded and the
  // outer handle still reads consistently.
  EXPECT_LE(camera.min_active(), outer_ts);
  EXPECT_EQ(list.range_at(outer_ts, 0, 99).size(), 32u);
  vcas::ebr::drain_for_tests();
}

// The concurrent version of the hazard the depth arrays used to guard:
// one thread holds a long-lived outer pin while other threads churn
// short-lived pins (and the clock rolls eras underneath). The horizon must
// never rise past the outer handle until the outer guard dies.
TEST(SharedCamera, NestedPinChurnNeverLiftsHorizonPastOuter) {
  vcas::Camera camera;
  vcas::ds::VcasBST<K, K> tree(&camera);
  ASSERT_TRUE(tree.insert(1, 1));
  vcas::SnapshotGuard outer(camera);
  const auto outer_ts = outer.ts();
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::thread churner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      vcas::SnapshotGuard inner(camera);
      (void)inner;
    }
  });
  for (int i = 0; i < 2000; ++i) {
    camera.takeSnapshot();  // crosses many era-roll cadences
    if (camera.min_active() > outer_ts) ok = false;
  }
  stop = true;
  churner.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

// Control experiment: WITHOUT a shared handle (two separate snapshots) the
// invariant is routinely violated — demonstrating that the shared camera is
// what buys cross-structure atomicity, not luck.
TEST(SharedCamera, IndependentSnapshotsDoTear) {
  vcas::Camera camera;
  vcas::ds::VcasBST<K, K> a(&camera);
  vcas::ds::VcasChromaticTree<K, K> b(&camera);
  constexpr K kItems = 32;
  for (K i = 0; i < kItems; ++i) ASSERT_TRUE(a.insert(i, i));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> tears{0};
  std::thread mover([&] {
    vcas::util::Xoshiro256 rng(7);
    while (!stop.load(std::memory_order_relaxed)) {
      const K i = static_cast<K>(rng.next_in(kItems));
      if (a.contains(i)) {
        if (b.insert(i, i)) {
          if (!a.remove(i)) b.remove(i);
        }
      } else if (b.contains(i)) {
        if (a.insert(i, i)) {
          if (!b.remove(i)) a.remove(i);
        }
      }
    }
  });

  for (int iter = 0; iter < 30000; ++iter) {
    // Two separate queries = two separate snapshots.
    const std::size_t total =
        a.range(0, kItems).size() + b.range(0, kItems).size();
    if (total < kItems || total > kItems + 1) tears.fetch_add(1);
  }
  stop = true;
  mover.join();
  // Tearing is probabilistic; on a single-core box preemption makes it
  // common. We only assert that the run completed — the interesting output
  // is the counter, and the sibling tests prove the shared handle never
  // tears under identical load.
  SUCCEED() << "independent snapshots tore " << tears.load() << " times";
  vcas::ebr::drain_for_tests();
}

}  // namespace
