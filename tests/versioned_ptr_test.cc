#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "ebr/ebr.h"
#include "util/barrier.h"
#include "vcas/camera.h"
#include "vcas/versioned_ptr.h"

namespace {

using vcas::Camera;
using vcas::Timestamp;
using vcas::Versioned;
using vcas::VersionedPtr;

struct Node : Versioned<Node> {
  explicit Node(int v) : value(v) {}
  int value;
};

TEST(VersionedPtr, InitialValueAndRead) {
  Camera cam;
  Node n0(0);
  VersionedPtr<Node> ptr(&n0, &cam);
  EXPECT_EQ(ptr.vRead(), &n0);
  EXPECT_EQ(ptr.version_count(), 1u);
}

TEST(VersionedPtr, NullInitialValue) {
  Camera cam;
  VersionedPtr<Node> ptr(nullptr, &cam);
  Timestamp h = cam.takeSnapshot();
  EXPECT_EQ(ptr.vRead(), nullptr);
  EXPECT_EQ(ptr.readSnapshot(h), nullptr);
  Node n1(1);
  EXPECT_TRUE(ptr.vCAS(nullptr, &n1));
  EXPECT_EQ(ptr.vRead(), &n1);
  EXPECT_EQ(ptr.readSnapshot(h), nullptr);  // old snapshot still sees null
}

TEST(VersionedPtr, CasChainsVersionsThroughNodes) {
  Camera cam;
  Node a(1), b(2), c(3);
  VersionedPtr<Node> ptr(&a, &cam);
  Timestamp h0 = cam.takeSnapshot();
  ASSERT_TRUE(ptr.vCAS(&a, &b));
  Timestamp h1 = cam.takeSnapshot();
  ASSERT_TRUE(ptr.vCAS(&b, &c));
  Timestamp h2 = cam.takeSnapshot();

  EXPECT_EQ(ptr.readSnapshot(h0), &a);
  EXPECT_EQ(ptr.readSnapshot(h1), &b);
  EXPECT_EQ(ptr.readSnapshot(h2), &c);
  EXPECT_EQ(ptr.vRead(), &c);
  EXPECT_EQ(ptr.version_count(), 3u);
  // The version list is threaded through the nodes: no auxiliary VNodes.
  EXPECT_EQ(c.vcas_nextv.load(), &b);
  EXPECT_EQ(b.vcas_nextv.load(), &a);
  EXPECT_EQ(a.vcas_nextv.load(), nullptr);
}

TEST(VersionedPtr, FailedCasLeavesNodeReusableAfterReset) {
  Camera cam;
  Node a(1), b(2), fresh(3);
  VersionedPtr<Node> ptr(&a, &cam);
  // Wrong expected value fails before touching `fresh` at all.
  EXPECT_FALSE(ptr.vCAS(&b, &fresh));
  EXPECT_EQ(fresh.vcas_nextv.load(), vcas::detail::invalid_nextv<Node>());
  EXPECT_EQ(fresh.vcas_ts.load(), vcas::kTBD);
  // A lost race (right expected value at read time, head moved) may leave
  // nextv set; reset_version_fields restores a pristine private node.
  fresh.vcas_nextv.store(&a);  // simulate the lost-race leftover
  fresh.reset_version_fields();
  EXPECT_EQ(fresh.vcas_nextv.load(), vcas::detail::invalid_nextv<Node>());
  EXPECT_TRUE(ptr.vCAS(&a, &fresh));
  EXPECT_EQ(ptr.vRead(), &fresh);
}

TEST(VersionedPtr, SameValueCasAddsNoVersion) {
  Camera cam;
  Node a(1);
  VersionedPtr<Node> ptr(&a, &cam);
  EXPECT_TRUE(ptr.vCAS(&a, &a));
  EXPECT_EQ(ptr.version_count(), 1u);
}

// The copy-on-delete scenario of Appendix G: a node that is currently a
// version of object O1 becomes the *initial* value of a new object O2. Its
// nextv keeps pointing into O1's history, but no query on O2 may follow it
// because the node's timestamp (<= any handle that can reach O2) stops the
// walk.
TEST(VersionedPtr, SharedInitialValueStopsSnapshotWalk) {
  Camera cam;
  Node a(1), b(2), c(3);
  VersionedPtr<Node> o1(&a, &cam);
  ASSERT_TRUE(o1.vCAS(&a, &b));  // b's nextv -> a (O1's history)
  cam.takeSnapshot();

  VersionedPtr<Node> o2(&b, &cam);  // b reused as O2's initial value
  EXPECT_EQ(b.vcas_nextv.load(), &a);  // init_nextv must NOT clobber it
  Timestamp h = cam.takeSnapshot();
  ASSERT_TRUE(o2.vCAS(&b, &c));
  // Snapshot taken after O2 existed: must see b, not walk into O1's a.
  EXPECT_EQ(o2.readSnapshot(h), &b);
  EXPECT_EQ(o2.vRead(), &c);
}

TEST(VersionedPtr, CrossObjectAtomicityUnderConcurrency) {
  // Same lockstep invariant as the indirect variant, with node identity as
  // the value: x and y step through a shared array of nodes; at any instant
  // index(x) - index(y) is 0 or 1.
  Camera cam;
  constexpr int kSteps = 8192;
  std::vector<Node*> nodes_x, nodes_y;
  for (int i = 0; i < kSteps; ++i) {
    nodes_x.push_back(new Node(i));
    nodes_y.push_back(new Node(i));
  }
  VersionedPtr<Node> x(nodes_x[0], &cam);
  VersionedPtr<Node> y(nodes_y[0], &cam);
  std::atomic<bool> ok{true};
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (int k = 1; k < kSteps; ++k) {
      ASSERT_TRUE(x.vCAS(nodes_x[k - 1], nodes_x[k]));
      ASSERT_TRUE(y.vCAS(nodes_y[k - 1], nodes_y[k]));
    }
    done = true;
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        Timestamp h = cam.takeSnapshot();
        Node* sx = x.readSnapshot(h);
        Node* sy = y.readSnapshot(h);
        const int dx = sx->value - sy->value;
        if (dx != 0 && dx != 1) ok = false;
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_TRUE(ok.load());
  for (Node* n : nodes_x) delete n;
  for (Node* n : nodes_y) delete n;
}

TEST(VersionedPtr, ContendedCasInstallsExactlyOneWinnerPerRound) {
  Camera cam;
  Node root(0);
  VersionedPtr<Node> ptr(&root, &cam);
  constexpr int kThreads = 6;
  constexpr int kRounds = 2000;
  std::atomic<int> wins{0};
  vcas::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  std::vector<std::vector<Node*>> allocations(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kRounds; ++i) {
        Node* cur = ptr.vRead();
        Node* mine = new Node(cur->value + 1);
        allocations[t].push_back(mine);
        if (ptr.vCAS(cur, mine)) wins.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every win added exactly one version; the chain length proves none were
  // lost or duplicated.
  EXPECT_EQ(ptr.version_count(), static_cast<std::size_t>(wins.load()) + 1);
  // Current value counts the number of successful increments along the
  // winning chain.
  EXPECT_EQ(ptr.vRead()->value, wins.load());
  for (auto& vec : allocations)
    for (Node* n : vec) delete n;
}

}  // namespace
