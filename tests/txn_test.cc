// Compare-and-batch transactions: optimistic read-modify-write on the
// ticket protocol (store.h, TxnDescriptor).
//
// Covers the sequential semantics (read-your-writes, witnessing, abort on
// conflict, absent-key witnesses), the linearizability-critical concurrent
// cases — a conserved sum maintained by fully overlapping writers with NO
// key partitioning, and a forced abort DECIDED BY A HELPER while the
// transaction's owner sleeps mid-commit (the store.batch.install failpoint
// parks the owner after its installs; a snapshot reader bumping into an
// installed record must drive the transaction to ABORTED without the
// owner) — and abort-then-retry progress under contention. The parked-owner
// tests need a -DVCAS_INJECT=ON build and skip elsewhere; the short-running
// suites here also run under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

#include "ebr/ebr.h"
#include "inject/failpoint.h"
#include "store/backend.h"
#include "store/batch.h"
#include "store/store.h"
#include "util/rng.h"

namespace {

using K = std::int64_t;
using V = std::int64_t;

template <typename Backend>
class TxnTest : public ::testing::Test {
 public:
  using Store = vcas::store::ShardedStore<K, V, Backend>;

 protected:
  // Failpoint sites are process-global; never leak an armed site into the
  // next test.
  void TearDown() override {
    vcas::inject::disarm_all();
    vcas::inject::release_all();
  }
};

using Backends =
    ::testing::Types<vcas::store::ListBackend, vcas::store::BstBackend,
                     vcas::store::ChromaticBackend>;
TYPED_TEST_SUITE(TxnTest, Backends);

// --- sequential semantics ----------------------------------------------------

TYPED_TEST(TxnTest, ReadYourWritesAndBasicCommit) {
  typename TestFixture::Store store(8);
  store.put(1, 10);

  auto txn = store.beginTransaction();
  EXPECT_EQ(txn.get(1), std::optional<V>(10));
  EXPECT_FALSE(txn.get(2).has_value());
  txn.put(2, 20);
  EXPECT_EQ(txn.get(2), std::optional<V>(20));  // buffered, not in store yet
  EXPECT_FALSE(store.get(2).has_value());
  txn.put(2, 21);
  EXPECT_EQ(txn.get(2), std::optional<V>(21));  // last buffered op wins
  txn.remove(1);
  EXPECT_FALSE(txn.get(1).has_value());

  const auto ts = txn.commit();
  ASSERT_TRUE(ts.has_value());
  EXPECT_GE(*ts, txn.snapshot_ts());
  EXPECT_EQ(store.get(2), std::optional<V>(21));
  EXPECT_FALSE(store.get(1).has_value());
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(TxnTest, ReadOnlyTransactionAlwaysCommits) {
  typename TestFixture::Store store(4);
  store.put(1, 10);
  auto txn = store.beginTransaction();
  EXPECT_EQ(txn.get(1), std::optional<V>(10));
  store.put(1, 11);  // conflicting write — irrelevant without a write set
  const auto ts = txn.commit();
  ASSERT_TRUE(ts.has_value());
  EXPECT_EQ(*ts, txn.snapshot_ts());  // read-only commits at its snapshot
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(TxnTest, DroppedTransactionWritesNothing) {
  typename TestFixture::Store store(4);
  {
    auto txn = store.beginTransaction();
    txn.put(7, 70);
  }  // dropped without commit
  EXPECT_FALSE(store.get(7).has_value());
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(TxnTest, ConflictOnReadKeyAborts) {
  typename TestFixture::Store store(8);
  store.put(1, 10);

  auto txn = store.beginTransaction();
  EXPECT_EQ(txn.get(1), std::optional<V>(10));
  store.put(1, 99);  // the witnessed key changes after the snapshot
  txn.put(2, 20);
  EXPECT_FALSE(txn.commit().has_value());
  EXPECT_FALSE(store.get(2).has_value());  // the aborted write never happened
  EXPECT_EQ(store.get(1), std::optional<V>(99));
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(TxnTest, RemoveOfReadKeyAborts) {
  typename TestFixture::Store store(8);
  store.put(1, 10);
  auto txn = store.beginTransaction();
  EXPECT_EQ(txn.get(1), std::optional<V>(10));
  store.remove(1);
  txn.put(2, 20);
  EXPECT_FALSE(txn.commit().has_value());
  EXPECT_FALSE(store.get(2).has_value());
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(TxnTest, UntouchedReadSetCommits) {
  typename TestFixture::Store store(8);
  store.put(1, 10);
  auto txn = store.beginTransaction();
  EXPECT_EQ(txn.get(1), std::optional<V>(10));
  store.put(5, 50);  // unrelated key: no conflict
  txn.put(2, 20);
  EXPECT_TRUE(txn.commit().has_value());
  EXPECT_EQ(store.get(2), std::optional<V>(20));
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(TxnTest, RmwConflictOnOwnWriteKeyAborts) {
  typename TestFixture::Store store(8);
  store.put(1, 10);
  auto txn = store.beginTransaction();
  const V v = txn.get(1).value();
  store.put(1, 500);  // lands between the read and the install
  txn.put(1, v + 1);  // read-modify-write of the same key
  EXPECT_FALSE(txn.commit().has_value());
  EXPECT_EQ(store.get(1), std::optional<V>(500));  // the RMW never happened
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(TxnTest, RmwWithoutInterferenceCommits) {
  typename TestFixture::Store store(8);
  store.put(1, 10);
  auto txn = store.beginTransaction();
  txn.put(1, txn.get(1).value() + 1);
  EXPECT_TRUE(txn.commit().has_value());
  EXPECT_EQ(store.get(1), std::optional<V>(11));
  vcas::ebr::drain_for_tests();
}

// Witnessing a key that has no cell at all must still catch a later put —
// and a read-then-write of such a key must not falsely abort on its own
// freshly created cell.
TYPED_TEST(TxnTest, AbsentKeyWitness) {
  typename TestFixture::Store store(8);
  {
    auto txn = store.beginTransaction();
    EXPECT_FALSE(txn.get(42).has_value());  // no cell anywhere
    store.put(42, 1);                       // key springs into existence
    txn.put(7, 70);
    EXPECT_FALSE(txn.commit().has_value());
    EXPECT_FALSE(store.get(7).has_value());
  }
  {
    auto txn = store.beginTransaction();
    EXPECT_FALSE(txn.get(43).has_value());
    txn.put(43, 2);  // creates the cell at commit; must not self-abort
    EXPECT_TRUE(txn.commit().has_value());
    EXPECT_EQ(store.get(43), std::optional<V>(2));
  }
  vcas::ebr::drain_for_tests();
}

// Absent when read and still absent at the commit stamp is equality, even
// if a tombstone (or a fresh cell's absent seed) landed in between: batch
// removes install tombstones on keys with no cell, and those must not
// abort a transaction that only ever saw "absent".
TYPED_TEST(TxnTest, AbsentStableKeySurvivesTombstoneTraffic) {
  typename TestFixture::Store store(8);
  auto txn = store.beginTransaction();
  EXPECT_FALSE(txn.get(42).has_value());
  {
    typename TestFixture::Store::Batch b;
    b.remove(42);  // creates the cell, installs a committed tombstone
    store.applyBatch(b);
  }
  txn.put(7, 70);
  EXPECT_TRUE(txn.commit().has_value());
  EXPECT_EQ(store.get(7), std::optional<V>(70));
  vcas::ebr::drain_for_tests();
}

// A cell created AFTER the transaction's snapshot has no version at or
// below the handle; the read must report absent (not walk past the seed),
// and the witnessed creation must still abort the commit.
TYPED_TEST(TxnTest, CellBornAfterSnapshotReadsAbsentAndConflicts) {
  typename TestFixture::Store store(8);
  store.put(0, 1);
  auto txn = store.beginTransaction();
  store.put(7, 70);  // first-ever write to key 7: cell born after the handle
  EXPECT_FALSE(txn.get(7).has_value());  // absent at the snapshot
  txn.put(8, 80);
  EXPECT_FALSE(txn.commit().has_value());  // witnessed key 7 changed
  EXPECT_FALSE(store.get(8).has_value());
  EXPECT_EQ(store.get(7), std::optional<V>(70));
  vcas::ebr::drain_for_tests();
}

// A validator that meets an UNSTAMPED undecided record on a read key must
// vote abort, not help: the blocker's install phase may itself be blocked
// on the validator's own undecided record, and mutual helping would
// recurse forever. Before the fix this test deadlocked (stack-overflowed);
// now the transaction aborts while the blocker is still parked.
TYPED_TEST(TxnTest, UnstampedBlockerAbortsInsteadOfDeadlock) {
  if (!vcas::inject::kInjectEnabled) {
    GTEST_SKIP() << "park failpoints require -DVCAS_INJECT=ON";
  }
  typename TestFixture::Store store(8);
  // Two keys in distinct shards with shard_index(ka) < shard_index(kb), so
  // the blocker batch {ka, kb} installs ka FIRST and parks before kb.
  K ka = -1, kb = -1;
  for (K k = 0; k < 4096 && kb < 0; ++k) {
    const std::size_t s = store.shard_index(k);
    if (ka < 0 && s == 0) {
      ka = k;
    } else if (ka >= 0 && s > 0) {
      kb = k;
    }
  }
  ASSERT_GE(ka, 0);
  ASSERT_GE(kb, 0);
  store.put(ka, 1);
  store.put(kb, 2);

  auto txn = store.beginTransaction();
  EXPECT_EQ(txn.get(ka), std::optional<V>(1));  // read-only witness of ka

  vcas::inject::Spec spec;
  spec.action = vcas::inject::Action::kPark;
  spec.trigger = 1;  // one-shot: the blocker parks, later installs sail
  vcas::inject::arm("store.batch.install", spec);
  std::thread blocker([&] {
    typename TestFixture::Store::Batch b;
    b.put(ka, 10);
    b.put(kb, 20);
    store.applyBatch(b);  // installs ka (unstamped, undecided), parks
  });
  while (vcas::inject::parked("store.batch.install") == 0) {
    std::this_thread::yield();
  }

  // Commit installs at kb, stamps, then validates ka: the blocker's
  // unstamped record there is an immediate abort vote. Helping it instead
  // would re-enter this commit through the blocker's pending kb install.
  txn.put(kb, 99);
  EXPECT_FALSE(txn.commit().has_value());
  // Decided our own abort without the blocker.
  ASSERT_EQ(vcas::inject::parked("store.batch.install"), 1);

  vcas::inject::release("store.batch.install");
  blocker.join();
  // The blocker's batch then installed over our aborted record and won.
  EXPECT_EQ(store.get(ka), std::optional<V>(10));
  EXPECT_EQ(store.get(kb), std::optional<V>(20));
  vcas::ebr::drain_for_tests();
}

TYPED_TEST(TxnTest, ConflictingBatchAbortsTransaction) {
  typename TestFixture::Store store(8);
  store.put(1, 10);
  auto txn = store.beginTransaction();
  EXPECT_EQ(txn.get(1), std::optional<V>(10));
  {
    typename TestFixture::Store::Batch b;
    b.put(1, 11);
    b.put(2, 22);
    store.applyBatch(b);
  }
  txn.put(3, 30);
  EXPECT_FALSE(txn.commit().has_value());
  EXPECT_FALSE(store.get(3).has_value());
  vcas::ebr::drain_for_tests();
}

// Aborted records stay in version lists as no-ops: snapshot reads before,
// at, and after the abort see the surviving value; a later put installs
// over the aborted head and wins.
TYPED_TEST(TxnTest, AbortedRecordsAreInvisibleToEveryRead) {
  typename TestFixture::Store store(4);
  store.put(1, 10);
  store.put(2, 20);

  auto view_before = store.snapshotAll();
  {
    auto txn = store.beginTransaction();
    EXPECT_EQ(txn.get(2), std::optional<V>(20));
    store.put(2, 21);  // force the abort
    txn.put(1, 999);
    EXPECT_FALSE(txn.commit().has_value());
  }
  // Point read, snapshot-at-now, and the pre-abort view all skip the
  // aborted record on key 1.
  EXPECT_EQ(store.get(1), std::optional<V>(10));
  EXPECT_EQ(view_before.get(1), std::optional<V>(10));
  EXPECT_EQ(store.multiGet({1, 2})[0], std::optional<V>(10));
  // Installing over the aborted head works and reports "was present".
  EXPECT_FALSE(store.put(1, 11));
  EXPECT_EQ(store.get(1), std::optional<V>(11));
  // remove() of a key whose head is an aborted record sees the logical
  // value below it.
  {
    auto txn = store.beginTransaction();
    EXPECT_EQ(txn.get(2), std::optional<V>(21));
    store.put(2, 22);
    txn.put(1, 998);
    EXPECT_FALSE(txn.commit().has_value());
  }
  EXPECT_TRUE(store.remove(1));  // logical value below the aborted head
  EXPECT_FALSE(store.get(1).has_value());
  vcas::ebr::drain_for_tests();
}

// trim_all must neither pivot on an aborted record nor let one pin old
// versions below a newer committed value.
TYPED_TEST(TxnTest, TrimSkipsAbortedRecords) {
  typename TestFixture::Store store(1);
  store.put(1, 10);
  store.put(2, 20);
  for (V i = 0; i < 8; ++i) store.put(1, 100 + i);
  {
    auto txn = store.beginTransaction();
    EXPECT_EQ(txn.get(2), std::optional<V>(20));
    store.put(2, 21);
    txn.put(1, 999);  // aborted record lands at key 1's head
    EXPECT_FALSE(txn.commit().has_value());
  }
  store.camera().takeSnapshot();
  store.trim_all();
  EXPECT_EQ(store.get(1), std::optional<V>(107));
  EXPECT_EQ(store.get(2), std::optional<V>(21));
  // The aborted head plus the committed pivot below it may remain; the
  // seven older versions of key 1 must be gone.
  EXPECT_LE(store.total_versions(), 4u);
  vcas::ebr::drain_for_tests();
}

// --- forced abort decided by a helper while the owner sleeps ----------------

// The ISSUE's stalled-owner case: the transaction owner installs its write
// record, then parks (store.batch.install failpoint) BEFORE
// stamping/validating/deciding. A conflicting single-key put lands while
// it sleeps, then a snapshot reader bumps into the installed record and
// must drive the transaction to ABORTED — the owner wakes to find
// strangers decided its fate.
TYPED_TEST(TxnTest, HelperDecidesAbortWhileOwnerParked) {
  if (!vcas::inject::kInjectEnabled) {
    GTEST_SKIP() << "park failpoints require -DVCAS_INJECT=ON";
  }
  typename TestFixture::Store store(8);
  store.put(1, 10);  // the read key
  store.put(2, 20);  // the write key

  vcas::inject::Spec spec;
  spec.action = vcas::inject::Action::kPark;
  spec.trigger = 1;  // the txn writes one key: park after its only install
  vcas::inject::arm("store.batch.install", spec);

  std::optional<vcas::Timestamp> owner_result;
  std::thread owner([&] {
    auto txn = store.beginTransaction();
    EXPECT_EQ(txn.get(1), std::optional<V>(10));
    store.put(1, 99);  // the conflict, in place before commit starts
    txn.put(2, 777);
    owner_result = txn.commit();  // parks after its install, pre-decision
  });
  while (vcas::inject::parked("store.batch.install") == 0) {
    std::this_thread::yield();
  }

  // Point reads never help: the undecided transaction has not happened.
  EXPECT_EQ(store.get(2), std::optional<V>(20));

  // A snapshot reader resolving key 2 hits the installed record, helps:
  // stamp, validate (key 1 changed after the snapshot!), decide ABORTED.
  EXPECT_EQ(store.multiGet({2})[0], std::optional<V>(20));
  // Owner still asleep — a stranger decided.
  ASSERT_EQ(vcas::inject::parked("store.batch.install"), 1);

  // The abort is total and permanent: nothing of the write is visible.
  EXPECT_EQ(store.get(2), std::optional<V>(20));
  EXPECT_EQ(store.size(), 2u);

  vcas::inject::release("store.batch.install");
  owner.join();
  EXPECT_FALSE(owner_result.has_value());  // owner observed its own abort
  EXPECT_EQ(store.get(2), std::optional<V>(20));
  EXPECT_EQ(store.get(1), std::optional<V>(99));
  vcas::ebr::drain_for_tests();
}

// Same parked-owner shape, but with NO conflict: the helper must decide
// COMMITTED and the batch becomes fully visible while the owner sleeps.
TYPED_TEST(TxnTest, HelperCommitsCleanTransactionWhileOwnerParked) {
  if (!vcas::inject::kInjectEnabled) {
    GTEST_SKIP() << "park failpoints require -DVCAS_INJECT=ON";
  }
  typename TestFixture::Store store(8);
  store.put(1, 10);
  store.put(2, 20);

  vcas::inject::Spec spec;
  spec.action = vcas::inject::Action::kPark;
  spec.trigger = 1;  // single-write txn: park after its only install
  vcas::inject::arm("store.batch.install", spec);

  std::optional<vcas::Timestamp> owner_result;
  std::thread owner([&] {
    auto txn = store.beginTransaction();
    const V v = txn.get(1).value();
    txn.put(2, v + 100);
    owner_result = txn.commit();
  });
  while (vcas::inject::parked("store.batch.install") == 0) {
    std::this_thread::yield();
  }

  EXPECT_EQ(store.multiGet({2})[0], std::optional<V>(20));  // helps + decides
  ASSERT_EQ(vcas::inject::parked("store.batch.install"), 1);
  EXPECT_EQ(store.get(2), std::optional<V>(110));  // committed by the helper

  vcas::inject::release("store.batch.install");
  owner.join();
  ASSERT_TRUE(owner_result.has_value());
  EXPECT_EQ(store.get(2), std::optional<V>(110));
  vcas::ebr::drain_for_tests();
}

// --- concurrent stress -------------------------------------------------------

// Abort-then-retry progress: two threads RMW-increment the same counter
// through transact(); every increment must land exactly once despite
// aborts, so the final count is the total number of transact() calls.
TYPED_TEST(TxnTest, AbortThenRetryProgress) {
  typename TestFixture::Store store(4);
  store.put(0, 0);
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        store.transact([](typename TestFixture::Store::Txn& txn) {
          txn.put(0, txn.get(0).value() + 1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.get(0), std::optional<V>(2 * kPerThread));
  vcas::ebr::drain_for_tests();
}

// The headline: a conserved sum maintained by FULLY OVERLAPPING writers —
// no key partitioning, every writer transfers between any two accounts —
// with concurrent snapshot audits and the background trimmer running.
// Blind batches cannot do this (the PR-1/PR-2 example had to partition
// writers); compare-and-batch must.
TYPED_TEST(TxnTest, ConservedSumWithUnpartitionedWriters) {
  using Store = typename TestFixture::Store;
  constexpr K kAccounts = 32;
  constexpr V kInitial = 100;
  constexpr V kTotal = kAccounts * kInitial;
  constexpr int kWriters = 4;

  Store store(8);
  store.enable_background_trim(std::chrono::milliseconds(2));
  {
    typename Store::Batch init;
    for (K a = 0; a < kAccounts; ++a) init.put(a, kInitial);
    store.applyBatch(init);
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      vcas::util::Xoshiro256 rng(91 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        const K from = static_cast<K>(rng.next_in(kAccounts));
        const K to = static_cast<K>(rng.next_in(kAccounts));
        if (from == to) continue;
        const V amount = 1 + static_cast<V>(rng.next_in(10));
        store.transact([&](typename Store::Txn& txn) {
          const V fb = txn.get(from).value();
          const V tb = txn.get(to).value();
          if (fb < amount) return;  // insufficient funds: read-only commit
          txn.put(from, fb - amount);
          txn.put(to, tb + amount);
        });
      }
    });
  }

  int bad = 0;
  for (int audit = 0; audit < 300; ++audit) {
    auto view = store.snapshotAll();
    V total = 0;
    for (const auto& [a, bal] : view.range(0, kAccounts - 1)) {
      (void)a;
      total += bal;
    }
    if (total != kTotal) ++bad;
  }
  stop.store(true);
  for (auto& th : writers) th.join();
  EXPECT_EQ(bad, 0);

  V final_total = 0;
  for (const auto& [a, bal] : store.rangeQuery(0, kAccounts - 1)) {
    (void)a;
    final_total += bal;
  }
  EXPECT_EQ(final_total, kTotal);
  store.disable_background_trim();
  vcas::ebr::drain_for_tests();
}

// Randomized stalls injected into every owner (writers AND transactions),
// all parties helping all others, trimmer in the loop: the conserved sum
// must hold in every audit. Exercises racing helpers validating the same
// descriptor under TSan.
TYPED_TEST(TxnTest, RandomStallsConservedSumUnderContention) {
  using Store = typename TestFixture::Store;
  constexpr K kAccounts = 8;
  constexpr V kInitial = 50;
  constexpr V kTotal = kAccounts * kInitial;

  Store store(4);
  {
    typename Store::Batch init;
    for (K a = 0; a < kAccounts; ++a) init.put(a, kInitial);
    store.applyBatch(init);
  }
  // Seeded yield-storm on roughly one install in 17: a no-op stub in
  // default builds (the soak still runs as a plain contention test), live
  // preemption noise under -DVCAS_INJECT=ON.
  vcas::inject::Spec storm;
  storm.action = vcas::inject::Action::kYieldStorm;
  storm.every_n = 17;
  storm.yields = 128;
  vcas::inject::arm("store.batch.install", storm);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&, w] {
      vcas::util::Xoshiro256 rng(7 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        const K from = static_cast<K>(rng.next_in(kAccounts));
        const K to = static_cast<K>((from + 1 + rng.next_in(kAccounts - 1)) %
                                    kAccounts);
        store.transact([&](typename Store::Txn& txn) {
          const V fb = txn.get(from).value();
          const V tb = txn.get(to).value();
          if (fb < 1) return;
          txn.put(from, fb - 1);
          txn.put(to, tb + 1);
        });
      }
    });
  }

  int bad = 0;
  for (int audit = 0; audit < 400; ++audit) {
    auto view = store.snapshotAll();
    V total = 0;
    for (K a = 0; a < kAccounts; ++a) total += view.get(a).value_or(0);
    if (total != kTotal) ++bad;
    if (audit % 100 == 0) store.trim_all();
  }
  stop.store(true);
  for (auto& th : writers) th.join();
  EXPECT_EQ(bad, 0);
  vcas::ebr::drain_for_tests();
}

}  // namespace
