#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "ds/harris_list.h"
#include "ebr/ebr.h"
#include "util/barrier.h"
#include "util/rng.h"

namespace {

using vcas::ds::VcasHarrisList;

TEST(HarrisList, InsertRemoveContains) {
  VcasHarrisList<int> list;
  EXPECT_FALSE(list.contains(5));
  EXPECT_TRUE(list.insert(5, 50));
  EXPECT_FALSE(list.insert(5, 51));  // duplicate
  EXPECT_TRUE(list.contains(5));
  EXPECT_EQ(list.find(5), 50);
  EXPECT_TRUE(list.insert(3, 30));
  EXPECT_TRUE(list.insert(9, 90));
  EXPECT_TRUE(list.remove(5));
  EXPECT_FALSE(list.remove(5));
  EXPECT_FALSE(list.contains(5));
  EXPECT_TRUE(list.contains(3));
  EXPECT_TRUE(list.contains(9));
  vcas::ebr::drain_for_tests();
}

TEST(HarrisList, OrderedSemanticsMatchStdSet) {
  VcasHarrisList<int> list;
  std::set<int> model;
  vcas::util::Xoshiro256 rng(11);
  for (int i = 0; i < 5000; ++i) {
    const int key = static_cast<int>(rng.next_in(200));
    if (rng.next_in(2) == 0) {
      EXPECT_EQ(list.insert(key, key), model.insert(key).second);
    } else {
      EXPECT_EQ(list.remove(key), model.erase(key) > 0);
    }
  }
  for (int k = 0; k < 200; ++k) {
    EXPECT_EQ(list.contains(k), model.count(k) > 0) << "key " << k;
  }
  auto all = list.range(0, 199);
  ASSERT_EQ(all.size(), model.size());
  auto it = model.begin();
  for (const auto& [k, v] : all) {
    EXPECT_EQ(k, *it++);
  }
  vcas::ebr::drain_for_tests();
}

TEST(HarrisList, RangeBoundsAreInclusive) {
  VcasHarrisList<int> list;
  for (int k = 0; k < 20; k += 2) list.insert(k, k);
  auto r = list.range(4, 10);
  std::vector<int> keys;
  for (auto& [k, v] : r) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<int>{4, 6, 8, 10}));
  EXPECT_TRUE(list.range(11, 11).empty());
  EXPECT_EQ(list.range(0, 100).size(), 10u);
  vcas::ebr::drain_for_tests();
}

TEST(HarrisList, MultisearchAnswersAllKeysFromOneSnapshot) {
  VcasHarrisList<int> list;
  for (int k = 0; k < 50; k += 5) list.insert(k, k * 10);
  auto res = list.multisearch({10, 11, 45, 0, 7});
  ASSERT_EQ(res.size(), 5u);
  EXPECT_EQ(res[0], 100);
  EXPECT_EQ(res[1], std::nullopt);
  EXPECT_EQ(res[2], 450);
  EXPECT_EQ(res[3], 0);
  EXPECT_EQ(res[4], std::nullopt);
  vcas::ebr::drain_for_tests();
}

TEST(HarrisList, IthReturnsKeysInOrder) {
  VcasHarrisList<int> list;
  for (int k : {40, 10, 30, 20}) list.insert(k, k);
  EXPECT_EQ(list.ith(0)->first, 10);
  EXPECT_EQ(list.ith(1)->first, 20);
  EXPECT_EQ(list.ith(2)->first, 30);
  EXPECT_EQ(list.ith(3)->first, 40);
  EXPECT_EQ(list.ith(4), std::nullopt);
  EXPECT_EQ(list.size_snapshot(), 4u);
  vcas::ebr::drain_for_tests();
}

// Concurrent set semantics: each thread owns a disjoint key stripe, so
// every operation's expected outcome is deterministic.
TEST(HarrisList, DisjointStripesBehaveSequentially) {
  VcasHarrisList<std::int64_t> list;
  constexpr int kThreads = 4;
  constexpr std::int64_t kPerThread = 1500;
  vcas::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      const std::int64_t base = t * 1000000;
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(list.insert(base + i, i));
      }
      for (std::int64_t i = 0; i < kPerThread; i += 2) {
        ASSERT_TRUE(list.remove(base + i));
      }
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        ASSERT_EQ(list.contains(base + i), i % 2 == 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(list.size_snapshot(),
            static_cast<std::size_t>(kThreads) * (kPerThread / 2));
  vcas::ebr::drain_for_tests();
}

// Snapshot atomicity: updaters maintain the invariant "key k and key k+1000
// are always inserted/removed together" (k first). A range snapshot must
// never see the pair in a torn state except the one-key transition window
// ... which is excluded by checking pairs where the *second* key is
// present: then the first must be too.
TEST(HarrisList, RangeSeesPairInvariant) {
  VcasHarrisList<std::int64_t> list;
  constexpr std::int64_t kPairs = 50;
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};

  std::thread updater([&] {
    vcas::util::Xoshiro256 rng(3);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::int64_t k = static_cast<std::int64_t>(rng.next_in(kPairs));
      // Insert low then high; remove high then low. Invariant: high present
      // implies low present, at every instant.
      if (rng.next_in(2) == 0) {
        list.insert(k, k);
        list.insert(k + 1000, k);
      } else {
        list.remove(k + 1000);
        list.remove(k);
      }
    }
  });

  for (int iter = 0; iter < 4000; ++iter) {
    auto snap = list.range(0, 2000);
    std::set<std::int64_t> keys;
    for (auto& [k, v] : snap) keys.insert(k);
    for (std::int64_t k = 0; k < kPairs; ++k) {
      if (keys.count(k + 1000) && !keys.count(k)) {
        ok = false;
      }
    }
  }
  stop = true;
  updater.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

// Mixed stress with a final exact count: inserts and removes on disjoint
// stripes with concurrent full-range queries; queries must always see a
// sorted, duplicate-free view.
TEST(HarrisList, SnapshotViewsAreSortedAndDuplicateFree) {
  VcasHarrisList<std::int64_t> list;
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  constexpr int kUpdaters = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kUpdaters; ++t) {
    threads.emplace_back([&, t] {
      vcas::util::Xoshiro256 rng(100 + t);
      const std::int64_t base = t * 10000;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::int64_t k = base + static_cast<std::int64_t>(rng.next_in(500));
        if (rng.next_in(2) == 0) {
          list.insert(k, k);
        } else {
          list.remove(k);
        }
      }
    });
  }
  for (int iter = 0; iter < 2000; ++iter) {
    auto snap = list.range(0, 1000000);
    for (std::size_t i = 1; i < snap.size(); ++i) {
      if (!(snap[i - 1].first < snap[i].first)) ok = false;
    }
  }
  stop = true;
  for (auto& th : threads) th.join();
  EXPECT_TRUE(ok.load());
  vcas::ebr::drain_for_tests();
}

}  // namespace
