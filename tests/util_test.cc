#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "util/barrier.h"
#include "util/marked_ptr.h"
#include "util/padded.h"
#include "util/rng.h"
#include "util/threading.h"

// Fork-based death tests are unreliable under TSan; detect it for both
// GCC (__SANITIZE_THREAD__) and Clang (__has_feature).
#if defined(__SANITIZE_THREAD__)
#define VCAS_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define VCAS_TSAN_BUILD 1
#endif
#endif
#ifndef VCAS_TSAN_BUILD
#define VCAS_TSAN_BUILD 0
#endif

namespace {

using namespace vcas::util;

TEST(Padded, OccupiesAtLeastOneCacheLine) {
  static_assert(sizeof(Padded<int>) >= kCacheLine);
  static_assert(alignof(Padded<int>) == kCacheLine);
  Padded<int> p(7);
  EXPECT_EQ(*p, 7);
  *p = 9;
  EXPECT_EQ(p.value, 9);
}

TEST(Padded, ArrayElementsOnDistinctLines) {
  Padded<std::atomic<int>> arr[4];
  for (int i = 0; i < 3; ++i) {
    auto a = reinterpret_cast<std::uintptr_t>(&arr[i]);
    auto b = reinterpret_cast<std::uintptr_t>(&arr[i + 1]);
    EXPECT_GE(b - a, kCacheLine);
  }
}

TEST(MarkedPtr, RoundTrip) {
  int x = 0;
  int* p = &x;
  EXPECT_FALSE(is_marked(p));
  int* m = with_mark(p);
  EXPECT_TRUE(is_marked(m));
  EXPECT_EQ(without_mark(m), p);
  EXPECT_EQ(without_mark(p), p);
  EXPECT_TRUE(is_marked(with_mark(m)));
}

TEST(MarkedPtr, NullHandling) {
  int* null = nullptr;
  EXPECT_FALSE(is_marked(null));
  EXPECT_TRUE(is_marked(with_mark(null)));
  EXPECT_EQ(without_mark(with_mark(null)), nullptr);
}

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42), b(42), c(43);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, BoundedDrawsInRange) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    auto v = rng.next_in(37);
    EXPECT_LT(v, 37u);
    auto r = rng.next_range(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
  }
}

TEST(Rng, UniformCoversRange) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_in(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Zipf, SkewsTowardSmallKeys) {
  Zipf z(1000, 0.99, 5);
  int small = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    auto v = z.next();
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 1000u);
    if (v <= 10) ++small;
  }
  // With theta=0.99 the 10 hottest keys draw a large constant fraction.
  EXPECT_GT(small, kDraws / 5);
}

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counter[kPhases] = {};
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int ph = 0; ph < kPhases; ++ph) {
        phase_counter[ph].fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier every thread must have bumped this phase.
        if (phase_counter[ph].load() != kThreads) ok = false;
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(ok.load());
}

TEST(ThreadRegistry, SlotsAreDenseAndExclusive) {
  constexpr int kThreads = 8;
  std::vector<int> ids(kThreads, -1);
  SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ids[t] = thread_slot();
      EXPECT_EQ(thread_slot(), ids[t]);  // stable within the thread
      barrier.arrive_and_wait();         // hold all slots live at once
    });
  }
  for (auto& th : threads) th.join();
  std::set<int> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads));
  for (int id : ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, kMaxThreads);
  }
}

TEST(ThreadRegistry, SlotsRecycledAfterExit) {
  int first = -1;
  std::thread([&] { first = thread_slot(); }).join();
  int second = -1;
  std::thread([&] { second = thread_slot(); }).join();
  // With no other live threads competing, the freed slot is reused.
  EXPECT_EQ(first, second);
}

TEST(ThreadRegistry, SlotsRecycleAcrossManySequentialThreadExits) {
  // Far more sequential thread lifetimes than there are slots: if exit did
  // not recycle, the claim scan would exhaust the table and abort.
  for (int i = 0; i < 3 * kMaxThreads; ++i) {
    int id = -1;
    std::thread([&] { id = thread_slot(); }).join();
    ASSERT_GE(id, 0);
    ASSERT_LT(id, kMaxThreads);
  }
}

TEST(ThreadRegistryDeathTest, ExhaustedRegistryAbortsLoudly) {
#if VCAS_TSAN_BUILD
  GTEST_SKIP() << "fork-based death tests are unreliable under TSan";
#else
  // Genuine exhaustion (kMaxThreads live claimants plus one more) must
  // abort with a diagnostic, not livelock silently in the claim scan.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        std::atomic<int> claimed{0};
        std::atomic<bool> done{false};
        std::vector<std::thread> holders;
        for (int i = 0; i < kMaxThreads; ++i) {
          holders.emplace_back([&] {
            thread_slot();
            claimed.fetch_add(1);
            while (!done.load()) std::this_thread::yield();
          });
        }
        while (claimed.load() < kMaxThreads) std::this_thread::yield();
        std::thread extra([] { thread_slot(); });  // 193rd claimant: aborts
        extra.join();
        done.store(true);
        for (auto& h : holders) h.join();
      },
      "thread slots are in use");
#endif
}

}  // namespace
