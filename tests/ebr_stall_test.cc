// EBR stall containment (fault-injection subsystem).
//
// A thread that dies while pinned is the classic EBR soft spot: its
// reservation freezes the epoch and every retiral after it is stranded
// forever. The containment contract under test: a thread that declares
// itself dead (ebr::declare_self_dead — what inject's abandon action does
// before killing a thread mid-protocol) is RECLAIMED by any later scan —
// slot tenure ended through the generation CAS, limbo orphaned, reservation
// cleared — after which the epoch advances and pending retirals drain.
// Plus the telemetry half: a stall streak blames the pinned slot
// (ebr::stalled_slot / the ebr.stalled_slot gauge) and clears on recovery.
//
// Everything here uses the plain ebr/util API — no failpoints — so the
// whole file runs in EVERY build config, including the default
// VCAS_INJECT=OFF tier-1 suite and the TSan CI jobs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "ebr/ebr.h"
#include "obs/metrics.h"
#include "util/threading.h"

namespace {

// Spin until `cond` holds or a generous iteration bound trips; the bound
// turns a containment bug into a test failure instead of a suite timeout.
template <typename Cond>
bool eventually(Cond cond) {
  for (int i = 0; i < 200000; ++i) {
    if (cond()) return true;
    vcas::ebr::flush();  // every scan runs containment + orphan adoption
    std::this_thread::yield();
  }
  return cond();
}

// A pinned thread declares itself dead and goes silent (alive, blocked,
// but out of the protocol — exactly an abandoned thread's shape). Any
// other thread's scan must reclaim its slot, un-stall the epoch, and
// drain the garbage it retired while pinned. The thread stays joinable.
TEST(EbrStallContainment, DeadPinnedSlotIsReclaimedAndEpochResumes) {
  const std::uint64_t reclaims_before = vcas::ebr::dead_slot_reclaims();
  std::atomic<bool> dead{false};
  std::atomic<bool> quit{false};
  std::thread victim([&] {
    vcas::ebr::pin();
    for (std::int64_t i = 0; i < 64; ++i) {
      vcas::ebr::retire(new std::int64_t(i));
    }
    vcas::ebr::declare_self_dead();
    dead.store(true, std::memory_order_release);
    // Alive but makes no further vcas/ebr calls (the declare contract).
    while (!quit.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  while (!dead.load(std::memory_order_acquire)) std::this_thread::yield();

  const std::uint64_t epoch_before = vcas::ebr::stats().epoch;
  // Containment: a scan notices the declaration and ends the tenure.
  EXPECT_TRUE(eventually(
      [&] { return vcas::ebr::dead_slot_reclaims() > reclaims_before; }));
  // The reclaimed slot no longer pins the epoch: it advances again.
  EXPECT_TRUE(eventually(
      [&] { return vcas::ebr::stats().epoch > epoch_before + 2; }));
  // The dead thread's limbo was orphaned and drains through normal scans —
  // the victim's 64 retirals do not sit stranded.
  vcas::ebr::drain_for_tests();
  EXPECT_LT(vcas::ebr::stats().pending, 64u);
  if (vcas::obs::kStatsEnabled) {
    EXPECT_GE(vcas::obs::m::ebr_dead_slot_reclaims.read(), 1u);
  }

  quit.store(true, std::memory_order_release);
  victim.join();  // declared-dead threads remain joinable
  vcas::ebr::drain_for_tests();
}

// The generation check is what makes third-party reclamation safe against
// slot recycling: a claimant holding a DEAD tenure's generation can never
// end the next tenant's tenure.
TEST(EbrStallContainment, StaleTenureClaimCannotEndNextTenure) {
  int slot = -1;
  std::uint64_t gen = 0;
  std::thread a([&] {
    slot = vcas::util::thread_slot();
    gen = vcas::util::thread_slot_gen();
  });
  a.join();
  // a's exit ended its tenure: the slot's generation moved past `gen`.
  ASSERT_GE(slot, 0);
  EXPECT_EQ(vcas::util::slot_tenure(slot), gen + 1);
  // A reclaimer still holding (slot, gen) from the dead tenure must lose.
  EXPECT_FALSE(vcas::util::claim_tenure_end(slot, gen));

  // Recycle the slot to a LIVE tenant and try again: the stale claim keeps
  // losing — the new tenure is untouchable with the old token.
  std::atomic<bool> claimed{false};
  std::atomic<bool> quit{false};
  int b_slot = -1;
  std::uint64_t b_gen = 0;
  std::thread b([&] {
    b_slot = vcas::util::thread_slot();
    b_gen = vcas::util::thread_slot_gen();
    claimed.store(true, std::memory_order_release);
    while (!quit.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  while (!claimed.load(std::memory_order_acquire)) std::this_thread::yield();
  EXPECT_FALSE(vcas::util::claim_tenure_end(slot, gen));
  if (b_slot == slot) {
    // Lowest-free-first usually hands b the same slot: its tenure token is
    // the bumped generation, proving the slot really was recycled under
    // the failed stale claim.
    EXPECT_GT(b_gen, gen);
    EXPECT_EQ(vcas::util::slot_tenure(slot), b_gen);
  }
  quit.store(true, std::memory_order_release);
  b.join();
  vcas::ebr::drain_for_tests();
}

// A declared-dead thread that exits NORMALLY before any reclaimer acts:
// its own exit hook wins the tenure race, the declaration is wiped, and
// the slot's next tenant must not be reclaimed by the stale flag.
TEST(EbrStallContainment, NormalExitClearsDeclarationForNextTenant) {
  const std::uint64_t reclaims_before = vcas::ebr::dead_slot_reclaims();
  std::thread victim([&] {
    vcas::ebr::pin();
    vcas::ebr::unpin();
    vcas::ebr::declare_self_dead();
  });
  victim.join();  // exit hook ends the tenure and clears the flag

  // A fresh thread (very likely recycling the slot) pins and works; scans
  // must treat it as fully live — no third-party reclaim fires.
  std::atomic<bool> working{false};
  std::atomic<bool> quit{false};
  std::thread tenant([&] {
    vcas::ebr::Guard g;
    vcas::ebr::retire(new std::int64_t(1));
    working.store(true, std::memory_order_release);
    while (!quit.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  while (!working.load(std::memory_order_acquire)) std::this_thread::yield();
  for (int i = 0; i < 100; ++i) vcas::ebr::flush();
  // The victim's own exit consumed its declaration: nothing was (or will
  // be) third-party reclaimed, and the live tenant was never disturbed.
  EXPECT_EQ(vcas::ebr::dead_slot_reclaims(), reclaims_before);
  quit.store(true, std::memory_order_release);
  tenant.join();
  vcas::ebr::drain_for_tests();
}

// Pending-retiral bound under mass abandonment: many pinned threads retire
// garbage and die declared; containment must reclaim every one and the
// whole backlog must drain — nothing stays stranded.
TEST(EbrStallContainment, PendingRetiralsDrainAfterMassAbandonment) {
  constexpr int kVictims = 8;
  constexpr std::int64_t kRetiresEach = 128;
  const std::uint64_t reclaims_before = vcas::ebr::dead_slot_reclaims();
  std::atomic<int> dead{0};
  std::atomic<bool> quit{false};
  std::vector<std::thread> victims;
  for (int v = 0; v < kVictims; ++v) {
    victims.emplace_back([&] {
      vcas::ebr::pin();
      for (std::int64_t i = 0; i < kRetiresEach; ++i) {
        vcas::ebr::retire(new std::int64_t(i));
      }
      vcas::ebr::declare_self_dead();
      dead.fetch_add(1, std::memory_order_release);
      while (!quit.load(std::memory_order_acquire)) std::this_thread::yield();
    });
  }
  while (dead.load(std::memory_order_acquire) < kVictims) {
    std::this_thread::yield();
  }
  // Every dead tenure reclaimed, then the orphaned backlog drains below
  // one victim's worth — the bound the abandonment matrix relies on.
  EXPECT_TRUE(eventually([&] {
    return vcas::ebr::dead_slot_reclaims() >= reclaims_before + kVictims;
  }));
  vcas::ebr::drain_for_tests();
  EXPECT_LT(vcas::ebr::stats().pending,
            static_cast<std::size_t>(kRetiresEach));
  quit.store(true, std::memory_order_release);
  for (std::thread& t : victims) t.join();
  vcas::ebr::drain_for_tests();
}

// The telemetry half: a try_advance failure streak against one slot
// crosses the threshold and surfaces the blamed slot; recovery (the pin
// released, epoch advancing again) clears the report.
TEST(EbrStallContainment, StallStreakBlamesSlotAndRecoveryClearsIt) {
  vcas::ebr::set_stall_threshold_for_tests(3);
  std::atomic<int> victim_slot{-1};
  std::atomic<bool> unpin{false};
  std::thread victim([&] {
    vcas::ebr::pin();
    victim_slot.store(vcas::util::thread_slot(), std::memory_order_release);
    while (!unpin.load(std::memory_order_acquire)) std::this_thread::yield();
    vcas::ebr::unpin();
  });
  while (victim_slot.load(std::memory_order_acquire) < 0) {
    std::this_thread::yield();
  }
  // First scan may still advance once (the victim pinned the CURRENT
  // epoch); every scan after that stalls on it, and the third consecutive
  // failure publishes the blame.
  for (int i = 0; i < 8; ++i) vcas::ebr::flush();
  EXPECT_EQ(vcas::ebr::stalled_slot(), victim_slot.load());
  if (vcas::obs::kStatsEnabled) {
    EXPECT_EQ(vcas::obs::m::ebr_stalled_slot.read(),
              static_cast<std::int64_t>(victim_slot.load()) + 1);
  }

  unpin.store(true, std::memory_order_release);
  victim.join();
  // Epoch advances again; the blame (and its gauge mirror) must clear.
  vcas::ebr::flush();
  EXPECT_EQ(vcas::ebr::stalled_slot(), -1);
  if (vcas::obs::kStatsEnabled) {
    EXPECT_EQ(vcas::obs::m::ebr_stalled_slot.read(), 0);
  }
  vcas::ebr::set_stall_threshold_for_tests(16);  // restore the default
  vcas::ebr::drain_for_tests();
}

}  // namespace
