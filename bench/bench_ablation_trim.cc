// Ablation: version-list trimming (the GC extension in versioned_cas.h).
// A hot VersionedCAS object accumulates one VNode per successful vCAS; the
// paper's C++ setup simply keeps them for the (short) run. This bench
// quantifies both sides: memory growth without trimming, and the
// throughput cost of trimming at different cadences.
#include <cstdio>

#include "bench/harness.h"
#include "ebr/ebr.h"
#include "util/timing.h"
#include "vcas/camera.h"
#include "vcas/snapshot.h"
#include "vcas/versioned_cas.h"

namespace {

using namespace vcas::bench;

void run(int trim_every, int run_ms) {
  vcas::Camera cam;
  vcas::VersionedCAS<std::int64_t> obj(0, &cam);
  vcas::util::Timer timer;
  std::int64_t v = 0;
  std::uint64_t trims = 0;
  std::size_t detached = 0;
  while (timer.elapsed_nanos() < static_cast<std::int64_t>(run_ms) * 1000000) {
    for (int i = 0; i < 1024; ++i) {
      obj.vCAS(v, v + 1);
      ++v;
      if (trim_every > 0 && v % trim_every == 0) {
        vcas::ebr::Guard g;
        detached += obj.trim(cam.min_active());
        ++trims;
      }
    }
  }
  const double secs = timer.elapsed_seconds();
  std::printf("trim_every=%-8d  %8.3f Mvcas/s   live versions %-9zu"
              "  trims %-8llu detached %zu\n",
              trim_every, static_cast<double>(v) / secs / 1e6,
              obj.version_count(), static_cast<unsigned long long>(trims),
              detached);
  vcas::ebr::drain_for_tests();
}

void run_with_reader(int run_ms) {
  // A long-lived announced snapshot pins history: trimming must retain
  // every version the snapshot might read, so the list keeps growing
  // behind the pin.
  vcas::Camera cam;
  vcas::VersionedCAS<std::int64_t> obj(0, &cam);
  vcas::SnapshotGuard pin(cam);
  vcas::util::Timer timer;
  std::int64_t v = 0;
  while (timer.elapsed_nanos() < static_cast<std::int64_t>(run_ms) * 1000000) {
    for (int i = 0; i < 1024; ++i) {
      obj.vCAS(v, v + 1);
      ++v;
      if (v % 4096 == 0) {
        vcas::ebr::Guard g;
        obj.trim(cam.min_active());
      }
    }
  }
  std::printf("pinned reader:     %8zu live versions after %lld vCASes "
              "(pin blocks trimming; value at pin still readable: %lld)\n",
              obj.version_count(), static_cast<long long>(v),
              static_cast<long long>(obj.readSnapshot(pin.ts())));
}

}  // namespace

int main() {
  const Config cfg = config_from_env();
  std::printf("== Ablation: version-list trimming ==\n\n");
  run(0, cfg.run_ms);      // never trim: unbounded history (paper default)
  run(65536, cfg.run_ms);  // coarse cadence
  run(4096, cfg.run_ms);
  run(256, cfg.run_ms);    // aggressive cadence
  std::printf("\n");
  run_with_reader(cfg.run_ms);
  vcas::ebr::drain_for_tests();
  return 0;
}
