// Snapshot-pin scaling (ISSUE 10): refcount-packed eras vs the old
// announcement-slot protocol.
//
// Two protocols, same workload shapes:
//
//   era    the real Camera: pin = ONE unconditional fetch_add on the
//          packed era word (wait-free, no retry loop), release bumps the
//          era's inner count, min_active walks the O(live eras) chain.
//   slots  a bench-local reimplementation of the pre-PR protocol the era
//          rework replaced: every reader announces its handle in a padded
//          per-thread slot with a seq_cst publish, re-validating against
//          the clock (the retry loop — a reader can chase the clock
//          arbitrarily long under write pressure), and min_active scans
//          every slot up to the process's slot high water.
//
// Two measured shapes per thread count:
//
//   pin         back-to-back pin+snapshot / release pairs on all threads.
//               The acceptance claims: era throughput scales with threads
//               (disjoint cache-line fetch_adds roll up in hardware) and
//               its retry counter is structurally ZERO — the bench exits
//               nonzero if any era pin ever retried.
//   min_active  one caller computing the horizon while one pin is held
//               and the clock ticks. The era walk is O(live eras) —
//               independent of how many threads EVER registered — while
//               the slot scan pays O(slot high water), which only ever
//               grows (scan_width in the JSON rows: it keeps the maximum
//               thread count across the sweep; eras_live stays ~2).
//
// JSON rows (VCAS_BENCH_JSON=1): {proto, op:"pin", threads, mops,
// pin_retries} and {proto, op:"min_active", threads, ops_per_sec,
// scan_width | eras_live}.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "util/padded.h"
#include "vcas/camera.h"

namespace {

using namespace vcas::bench;

// --- the old protocol, reconstructed for comparison --------------------------

// Faithful to the replaced design where it matters for cost: seq_cst slot
// publish with clock re-validation (the retry loop), seq_cst slot scan to
// the high water for the horizon. Slot indices are handed out per thread
// per phase; high_water only ever grows, like the real slot registry's.
class SlotCamera {
 public:
  std::int64_t pin_and_snapshot(int slot, std::uint64_t& retries) {
    for (;;) {
      const std::int64_t t = clock_.load(std::memory_order_seq_cst);
      slots_[slot].value.store(t, std::memory_order_seq_cst);
      if (clock_.load(std::memory_order_seq_cst) == t) {
        // takeSnapshot parity: one CAS attempt to advance the clock.
        std::int64_t cur = t;
        clock_.compare_exchange_strong(cur, t + 1,
                                       std::memory_order_seq_cst);
        return t;
      }
      ++retries;  // the clock moved under the announcement: republish
    }
  }
  void unpin(int slot) {
    slots_[slot].value.store(-1, std::memory_order_seq_cst);
  }
  std::int64_t take_snapshot() {
    std::int64_t cur = clock_.load(std::memory_order_seq_cst);
    clock_.compare_exchange_strong(cur, cur + 1, std::memory_order_seq_cst);
    return cur;
  }
  void raise_high_water(int slots) {
    int hw = high_water_.load(std::memory_order_relaxed);
    while (hw < slots &&
           !high_water_.compare_exchange_weak(hw, slots,
                                              std::memory_order_relaxed)) {
    }
  }
  int high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  std::int64_t min_active() {
    std::int64_t m = clock_.load(std::memory_order_seq_cst);
    const int hw = high_water();
    for (int i = 0; i < hw; ++i) {
      const std::int64_t v = slots_[i].value.load(std::memory_order_seq_cst);
      if (v >= 0 && v < m) m = v;
    }
    return m;
  }

 private:
  std::atomic<std::int64_t> clock_{0};
  std::atomic<int> high_water_{0};
  vcas::util::Padded<std::atomic<std::int64_t>> slots_[vcas::util::kMaxThreads] = {};
};

struct PinResult {
  double mops = 0;
  std::uint64_t retries = 0;
};

// T threads run back-to-back pin+snapshot / release pairs for run_ms.
template <typename PinPair>
PinResult run_pin_phase(int threads, int run_ms, PinPair&& per_thread) {
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  vcas::util::Padded<std::uint64_t> ops[vcas::util::kMaxThreads] = {};
  vcas::util::Padded<std::uint64_t> retries[vcas::util::kMaxThreads] = {};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t n = 0;
      std::uint64_t r = 0;
      while (!stop.load(std::memory_order_acquire)) {
        per_thread(t, r);
        ++n;
      }
      ops[t].value = n;
      retries[t].value = r;
    });
  }
  vcas::util::Timer timer;
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double secs = timer.elapsed_seconds();

  PinResult res;
  std::uint64_t total = 0;
  for (int t = 0; t < threads; ++t) {
    total += ops[t].value;
    res.retries += retries[t].value;
  }
  res.mops = static_cast<double>(total) / secs / 1e6;
  return res;
}

// One caller computes the horizon in a loop while a ticker advances the
// clock (so the era chain actually rolls and sweeps underneath).
template <typename MinActive, typename Tick>
double run_min_active_phase(int run_ms, MinActive&& min_active, Tick&& tick) {
  std::atomic<bool> stop{false};
  std::thread ticker([&] {
    while (!stop.load(std::memory_order_acquire)) {
      tick();
      std::this_thread::yield();
    }
  });
  std::uint64_t calls = 0;
  vcas::util::Timer timer;
  while (timer.elapsed_seconds() * 1e3 < run_ms) {
    for (int i = 0; i < 64; ++i) min_active();
    calls += 64;
  }
  const double secs = timer.elapsed_seconds();
  stop.store(true, std::memory_order_release);
  ticker.join();
  return static_cast<double>(calls) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg = config_from_env();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      cfg.run_ms = 20;
      cfg.reps = 1;
      cfg.threads = {2};
    }
  }
  JsonReport report("snapshot_scaling");
  std::printf("== Snapshot pins: refcount-packed eras vs announcement slots "
              "==\n");
  std::printf("era = wait-free fetch_add pin + O(live eras) horizon; slots = "
              "seq_cst announce/validate retry loop + O(slot high water) "
              "scan\n\n");
  std::printf("%-6s %8s %14s %13s %18s %12s\n", "proto", "threads",
              "pin Mops/s", "pin retries", "min_active ops/s", "scan cost");

  vcas::Camera era_cam;          // one instance each, shared across the
  SlotCamera slot_cam;           // sweep like a long-lived process
  std::uint64_t era_retries_total = 0;

  for (int threads : cfg.threads) {
    // --- era ---
    PinResult era_pin{};
    for (int rep = 0; rep < cfg.reps; ++rep) {
      const PinResult r = run_pin_phase(
          threads, cfg.run_ms, [&](int, std::uint64_t&) {
            vcas::Camera::PinnedSnapshot ps = era_cam.pin_and_snapshot();
            era_cam.unpin(ps.pin);
          });
      era_pin.mops += r.mops / cfg.reps;
      era_pin.retries += r.retries;  // structurally zero: no retry path
    }
    era_retries_total += era_pin.retries;
    double era_scan = 0;
    {
      vcas::Camera::PinnedSnapshot held = era_cam.pin_and_snapshot();
      era_scan = run_min_active_phase(
          cfg.run_ms, [&] { (void)era_cam.min_active(); },
          [&] { era_cam.takeSnapshot(); });
      era_cam.unpin(held.pin);
    }
    const long long eras_live = era_cam.eras_live();
    std::printf("%-6s %8d %14.3f %13llu %18.0f %9lld eras\n", "era", threads,
                era_pin.mops,
                static_cast<unsigned long long>(era_pin.retries), era_scan,
                eras_live);
    JsonRow era_row;
    era_row.field("proto", "era")
        .field("op", "pin")
        .field("threads", static_cast<long long>(threads))
        .field("mops", era_pin.mops)
        .field("pin_retries", static_cast<long long>(era_pin.retries));
    report.add(era_row);
    JsonRow era_scan_row;
    era_scan_row.field("proto", "era")
        .field("op", "min_active")
        .field("threads", static_cast<long long>(threads))
        .field("ops_per_sec", era_scan)
        .field("eras_live", eras_live);
    report.add(era_scan_row);

    // --- slots ---
    slot_cam.raise_high_water(threads);
    PinResult slot_pin{};
    for (int rep = 0; rep < cfg.reps; ++rep) {
      const PinResult r = run_pin_phase(
          threads, cfg.run_ms, [&](int slot, std::uint64_t& retries) {
            (void)slot_cam.pin_and_snapshot(slot, retries);
            slot_cam.unpin(slot);
          });
      slot_pin.mops += r.mops / cfg.reps;
      slot_pin.retries += r.retries;
    }
    double slot_scan = 0;
    {
      std::uint64_t r = 0;
      (void)slot_cam.pin_and_snapshot(0, r);  // one held announcement
      slot_scan = run_min_active_phase(
          cfg.run_ms, [&] { (void)slot_cam.min_active(); },
          [&] { (void)slot_cam.take_snapshot(); });
      slot_cam.unpin(0);
    }
    std::printf("%-6s %8d %14.3f %13llu %18.0f %9d slots\n", "slots",
                threads, slot_pin.mops,
                static_cast<unsigned long long>(slot_pin.retries), slot_scan,
                slot_cam.high_water());
    JsonRow slot_row;
    slot_row.field("proto", "slots")
        .field("op", "pin")
        .field("threads", static_cast<long long>(threads))
        .field("mops", slot_pin.mops)
        .field("pin_retries", static_cast<long long>(slot_pin.retries));
    report.add(slot_row);
    JsonRow slot_scan_row;
    slot_scan_row.field("proto", "slots")
        .field("op", "min_active")
        .field("threads", static_cast<long long>(threads))
        .field("ops_per_sec", slot_scan)
        .field("scan_width", static_cast<long long>(slot_cam.high_water()));
    report.add(slot_scan_row);
  }
  vcas::ebr::drain_for_tests();

  if (era_retries_total != 0) {
    std::fprintf(stderr,
                 "FAIL: era pin retried %llu times — the pin path must be "
                 "a single unconditional fetch_add\n",
                 static_cast<unsigned long long>(era_retries_total));
    return 1;
  }
  std::printf("\nera pin retries: 0 (wait-free pin path held)\n");
  return 0;
}
