// Figure 2i: insert-only sorted-key workload. Keys 0..n-1 are split into
// 1024-key chunks on a global work queue; each thread grabs a chunk and
// inserts its keys in order. Balanced trees (VcasCT/CT, and the paper's
// KiWi/SnapTree) shine here; unbalanced trees degenerate toward lists.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/adapters.h"
#include "bench/harness.h"
#include "util/timing.h"

namespace {

using namespace vcas::bench;

template <typename A>
void run_structure(const Config& cfg, std::size_t n, int threads) {
  double mops_acc = 0;
  std::size_t height = 0;
  for (int rep = 0; rep < cfg.reps; ++rep) {
    typename A::Tree tree;
    std::atomic<std::size_t> next_chunk{0};
    constexpr std::size_t kChunk = 1024;
    const std::size_t chunks = (n + kChunk - 1) / kChunk;
    vcas::util::Timer timer;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        for (;;) {
          const std::size_t c = next_chunk.fetch_add(1);
          if (c >= chunks) return;
          const Key lo = static_cast<Key>(c * kChunk);
          const Key hi = static_cast<Key>(std::min(n, (c + 1) * kChunk));
          for (Key k = lo; k < hi; ++k) A::insert(tree, k, k);
        }
      });
    }
    for (auto& w : workers) w.join();
    const double secs = timer.elapsed_seconds();
    mops_acc += static_cast<double>(n) / secs / 1e6;
    if constexpr (requires { tree.height_unsynchronized(); }) {
      height = tree.height_unsynchronized();
    }
    vcas::ebr::drain_for_tests();
  }
  std::printf("%-20s p=%-3d  %8.3f Minserts/s   final height %zu\n", A::kName,
              threads, mops_acc / cfg.reps, height);
}

}  // namespace

int main() {
  const Config cfg = config_from_env();
  // Sorted inserts into an unbalanced tree are O(n^2); cap n so the bench
  // finishes. Balanced structures also run the configured size.
  const std::size_t n_unbalanced = std::min<std::size_t>(cfg.size_small, 20000);
  const std::size_t n_balanced = cfg.size_small;

  std::printf("== Figure 2i: sorted insert-only (1024-key chunks) ==\n\n");
  for (int threads : cfg.threads) {
    run_structure<VcasCtAdapter>(cfg, n_balanced, threads);
    run_structure<CtAdapter>(cfg, n_balanced, threads);
    run_structure<VcasBstAdapter>(cfg, n_unbalanced, threads);
    run_structure<NbbstAdapter>(cfg, n_unbalanced, threads);
    run_structure<CowTreeAdapter>(cfg, n_unbalanced, threads);
    std::printf("(unbalanced trees capped at n=%zu; balanced at n=%zu)\n\n",
                n_unbalanced, n_balanced);
  }
  return 0;
}
