// Figure 3 (and Table 2): throughput of the multi-point queries —
// range256, succ1, succ128, findif128, multisearch4 — comparing atomic
// snapshot queries on VcasCT against non-atomic sequential queries on the
// original CT, with and without concurrent update threads.
//
// Paper result: all queries except succ1 are within 2.9%-12.8% of the
// non-atomic baseline; succ1 pays 36.8%-41.4% because the takeSnapshot
// counter bump dominates such a tiny query.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/adapters.h"
#include "bench/harness.h"
#include "util/padded.h"

namespace {

using namespace vcas::bench;

using VTree = vcas::ds::VcasChromaticTree<Key, Key>;
using OTree = vcas::ds::ChromaticTree<Key, Key>;

enum class QueryKind { kRange256, kSucc1, kSucc128, kFindif128, kMulti4 };

const char* name_of(QueryKind q) {
  switch (q) {
    case QueryKind::kRange256: return "range256";
    case QueryKind::kSucc1: return "succ1";
    case QueryKind::kSucc128: return "succ128";
    case QueryKind::kFindif128: return "findif128";
    case QueryKind::kMulti4: return "multisearch4";
  }
  return "?";
}

// One query execution against either tree; Atomic selects the snapshot
// (VcasCT) or sequential non-atomic (CT) implementation.
template <typename Tree, bool Atomic>
void run_query(Tree& tree, QueryKind q, Key range, vcas::util::Xoshiro256& rng) {
  const Key k = 1 + static_cast<Key>(rng.next_in(static_cast<std::uint64_t>(range)));
  switch (q) {
    case QueryKind::kRange256:
      if constexpr (Atomic) {
        tree.range(k, k + 255);
      } else {
        tree.range_nonatomic(k, k + 255);
      }
      break;
    case QueryKind::kSucc1:
      if constexpr (Atomic) {
        tree.succ(k, 1);
      } else {
        tree.succ_nonatomic(k, 1);
      }
      break;
    case QueryKind::kSucc128:
      if constexpr (Atomic) {
        tree.succ(k, 128);
      } else {
        tree.succ_nonatomic(k, 128);
      }
      break;
    case QueryKind::kFindif128: {
      auto pred = [](const Key& key) { return key % 128 == 0; };
      if constexpr (Atomic) {
        tree.find_if(k, k + 4096, pred);
      } else {
        tree.find_if_nonatomic(k, k + 4096, pred);
      }
      break;
    }
    case QueryKind::kMulti4: {
      std::vector<Key> keys = {
          k, k + static_cast<Key>(rng.next_in(1000)),
          k + static_cast<Key>(rng.next_in(1000)),
          k + static_cast<Key>(rng.next_in(1000))};
      if constexpr (Atomic) {
        tree.multisearch(keys);
      } else {
        tree.multisearch_nonatomic(keys);
      }
      break;
    }
  }
}

template <typename Tree, bool Atomic>
double measure(const Config& cfg, Tree& tree, QueryKind q, Key range,
               int query_threads, int update_threads) {
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  vcas::util::Padded<std::uint64_t> counts[192];
  std::vector<std::thread> workers;
  for (int t = 0; t < query_threads; ++t) {
    workers.emplace_back([&, t] {
      vcas::util::Xoshiro256 rng(99 + static_cast<std::uint64_t>(t));
      std::uint64_t ops = 0;
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_acquire)) {
        run_query<Tree, Atomic>(tree, q, range, rng);
        ++ops;
      }
      counts[t].value = ops;
    });
  }
  for (int t = 0; t < update_threads; ++t) {
    workers.emplace_back([&, t] {
      vcas::util::Xoshiro256 rng(7000 + static_cast<std::uint64_t>(t));
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_acquire)) {
        const Key k =
            1 + static_cast<Key>(rng.next_in(static_cast<std::uint64_t>(range)));
        if (rng.next_in(2) == 0) {
          tree.insert(k, k);
        } else {
          tree.remove(k);
        }
      }
    });
  }
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.run_ms));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  std::uint64_t total = 0;
  for (int t = 0; t < query_threads; ++t) total += counts[t].value;
  return static_cast<double>(total) / (cfg.run_ms / 1000.0);
}

}  // namespace

int main() {
  const Config cfg = config_from_env();
  int max_threads = 1;
  for (int t : cfg.threads) max_threads = std::max(max_threads, t);
  const int query_threads = std::max(1, max_threads / 2);

  std::printf("== Figure 3: atomic (VcasCT) vs non-atomic (CT) queries ==\n");
  std::printf("(paper: 36 query threads on 100M keys; here: %d threads on "
              "%zu keys)\n\n",
              query_threads, cfg.size_small);
  std::printf("%-14s %-10s | %12s %12s %7s\n", "query", "updaters",
              "VcasCT q/s", "CT q/s", "ratio");

  const Key range = static_cast<Key>(cfg.size_small);
  const QueryKind kinds[] = {QueryKind::kRange256, QueryKind::kSucc1,
                             QueryKind::kSucc128, QueryKind::kFindif128,
                             QueryKind::kMulti4};
  for (int updaters : {0, std::max(1, max_threads / 2)}) {
    for (QueryKind q : kinds) {
      double atomic = 0, plain = 0;
      for (int rep = 0; rep < cfg.reps; ++rep) {
        {
          VTree vt;
          prefill<VcasCtAdapter>(vt, cfg.size_small, range, 5000 + rep);
          atomic += measure<VTree, true>(cfg, vt, q, range, query_threads,
                                         updaters);
        }
        {
          OTree ot;
          prefill<CtAdapter>(ot, cfg.size_small, range, 5000 + rep);
          plain += measure<OTree, false>(cfg, ot, q, range, query_threads,
                                         updaters);
        }
        vcas::ebr::drain_for_tests();
      }
      atomic /= cfg.reps;
      plain /= cfg.reps;
      std::printf("%-14s %-10d | %12.0f %12.0f %7.3f\n", name_of(q), updaters,
                  atomic, plain, plain > 0 ? atomic / plain : 0.0);
    }
    std::printf("\n");
  }
  std::printf("(paper: ratio 0.872-0.971 for all queries except succ1 at "
              "0.586-0.632)\n");
  return 0;
}
