// Shared benchmark harness: workload generation, timed multi-thread
// drivers, paper-style table printing, and machine-readable telemetry.
//
// Environment knobs (all optional):
//   VCAS_BENCH_MS    per-measurement wall time in ms        (default 300)
//   VCAS_BENCH_REPS  repetitions averaged per cell          (default 3)
//   VCAS_THREADS     comma list of thread counts            (default 1,2,4)
//   VCAS_SIZE        "small" tree size in keys              (default 100000)
//   VCAS_LARGE_SIZE  "large" tree size in keys              (default 1000000)
//   VCAS_LARGE       run large-size experiments too if "1"  (default 0)
//   VCAS_BENCH_JSON  if "1", each participating bench also writes
//                    BENCH_<name>.json (one row per measured config) to
//                    the working directory — CI uploads these as the
//                    repo's perf-trajectory artifacts
//
// The paper's testbed is a 72-core/144-thread 4-socket Xeon with 5-second
// runs; this harness defaults are scaled for CI-class machines. Shapes
// (who wins, crossovers), not absolute numbers, are the reproduction goal;
// see EXPERIMENTS.md.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ebr/ebr.h"
#include "maint/maintenance.h"
#include "util/barrier.h"
#include "util/padded.h"
#include "util/rng.h"
#include "util/slab_pool.h"
#include "util/timing.h"

namespace vcas::bench {

using Key = std::int64_t;

struct Config {
  int run_ms = 300;
  int reps = 3;
  std::vector<int> threads = {1, 2, 4};
  std::size_t size_small = 100000;
  std::size_t size_large = 1000000;
  bool large = false;
};

inline Config config_from_env() {
  Config cfg;
  if (const char* v = std::getenv("VCAS_BENCH_MS")) cfg.run_ms = std::atoi(v);
  if (const char* v = std::getenv("VCAS_BENCH_REPS")) cfg.reps = std::atoi(v);
  if (const char* v = std::getenv("VCAS_SIZE")) {
    cfg.size_small = static_cast<std::size_t>(std::atoll(v));
  }
  if (const char* v = std::getenv("VCAS_LARGE_SIZE")) {
    cfg.size_large = static_cast<std::size_t>(std::atoll(v));
  }
  if (const char* v = std::getenv("VCAS_LARGE")) cfg.large = std::atoi(v) != 0;
  if (const char* v = std::getenv("VCAS_THREADS")) {
    cfg.threads.clear();
    std::string s(v);
    std::size_t pos = 0;
    while (pos < s.size()) {
      std::size_t comma = s.find(',', pos);
      if (comma == std::string::npos) comma = s.size();
      cfg.threads.push_back(std::atoi(s.substr(pos, comma - pos).c_str()));
      pos = comma + 1;
    }
  }
  return cfg;
}

// --- machine-readable telemetry (VCAS_BENCH_JSON=1) --------------------------

// One result row: flat string/number fields, rendered as a JSON object.
class JsonRow {
 public:
  JsonRow& field(const char* key, const char* value) {
    append_key(key);
    body_ += '"';
    body_ += value;  // bench-controlled labels: no escaping needed
    body_ += '"';
    return *this;
  }
  JsonRow& field(const char* key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    append_key(key);
    body_ += buf;
    return *this;
  }
  JsonRow& field(const char* key, long long value) {
    append_key(key);
    body_ += std::to_string(value);
    return *this;
  }

  std::string render() const { return "{" + body_ + "}"; }

 private:
  void append_key(const char* key) {
    if (!body_.empty()) body_ += ",";
    body_ += '"';
    body_ += key;
    body_ += "\":";
  }
  std::string body_;
};

// Collects rows and, when VCAS_BENCH_JSON=1, writes BENCH_<name>.json on
// destruction: {"bench":"<name>","rows":[{...},...]}. Disabled (all calls
// no-ops, no file) otherwise, so benches call it unconditionally.
class JsonReport {
 public:
  explicit JsonReport(std::string name)
      : name_(std::move(name)),
        enabled_(std::getenv("VCAS_BENCH_JSON") != nullptr &&
                 std::atoi(std::getenv("VCAS_BENCH_JSON")) != 0) {}

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  void add(const JsonRow& row) {
    if (enabled_) rows_.push_back(row.render());
  }

  ~JsonReport() {
    if (!enabled_) return;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReport: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\"bench\":\"%s\",\"rows\":[", name_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s%s", i == 0 ? "" : ",", rows_[i].c_str());
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  std::string name_;
  bool enabled_;
  std::vector<std::string> rows_;
};

// --- memory telemetry --------------------------------------------------------

// Snapshot of the process-wide memory counters: EBR reclamation state plus
// the VNode recycling pool (util::SlabPool). Sample before and after a
// measured phase; add_memory_fields() emits the deltas so BENCH_*.json
// rows capture allocation behavior alongside throughput.
struct MemorySample {
  ebr::Stats ebr;
  util::PoolStats pool;
};

inline MemorySample memory_sample() {
  return MemorySample{ebr::stats(), util::pool_stats()};
}

// Append the phase's memory behavior to a JSON row:
//   ebr_pending      objects retired but not yet reclaimed (absolute)
//   ebr_freed        objects reclaimed during the phase
//   pool_allocs      version nodes handed out during the phase
//   pool_frees       version nodes recycled back during the phase
//   pool_slab_bytes  fresh OS memory the pool carved during the phase —
//                    THE allocation-churn number: a warm recycling write
//                    path keeps it near zero regardless of write volume
inline void add_memory_fields(JsonRow& row, const MemorySample& before) {
  const MemorySample now = memory_sample();
  row.field("ebr_pending", static_cast<long long>(now.ebr.pending));
  row.field("ebr_freed",
            static_cast<long long>(now.ebr.freed - before.ebr.freed));
  row.field("pool_allocs",
            static_cast<long long>(now.pool.allocs - before.pool.allocs));
  row.field("pool_frees",
            static_cast<long long>(now.pool.frees - before.pool.frees));
  row.field("pool_slab_bytes",
            static_cast<long long>(now.pool.slab_bytes -
                                   before.pool.slab_bytes));
}

// Append the maintenance subsystem's behavior over a phase (deltas vs a
// Stats sampled before it, absolutes where a delta is meaningless):
//   maint_tasks            janitor tasks run
//   maint_tasks_dropped    stale-generation tasks dropped unrun
//   maint_hints            write-path hints enqueued
//   maint_trimmed          versions detached by incremental trim
//   maint_coalesced        versions unlinked by horizon-side coalescing
//   maint_cells_gcd        tombstone cells structurally reclaimed
//   maint_aborts_unlinked  decided-aborted records spliced out
//   maint_queue_depth      tasks waiting at sample time (absolute)
//   maint_task_us_avg      mean per-task latency over the phase (delta)
//   maint_task_us_p50      median per-task latency over the phase (delta
//   maint_task_us_p99      of the obs registry's log-bucket histogram;
//                          resolved to the bucket's upper bound)
//   maint_task_us_max      slowest task since process start (ABSOLUTE —
//                          a running max cannot be delta'd; phases after
//                          the first inherit earlier outliers)
//
// Since ISSUE 6 the numbers come from the process-wide obs registry
// (maint::Stats is aggregate-on-read), so a mid-run sample is coherent —
// the delete_heavy rows used to read one worker's unaggregated counters.
inline void add_maintenance_fields(JsonRow& row, const maint::Stats& before,
                                   const maint::Stats& now) {
  const std::uint64_t tasks = now.tasks_run - before.tasks_run;
  row.field("maint_tasks", static_cast<long long>(tasks));
  row.field("maint_tasks_dropped",
            static_cast<long long>(now.tasks_dropped - before.tasks_dropped));
  row.field("maint_hints",
            static_cast<long long>(now.hints - before.hints));
  row.field("maint_trimmed", static_cast<long long>(now.versions_trimmed -
                                                    before.versions_trimmed));
  row.field("maint_coalesced",
            static_cast<long long>(now.versions_coalesced -
                                   before.versions_coalesced));
  row.field("maint_cells_gcd", static_cast<long long>(now.cells_detached -
                                                      before.cells_detached));
  row.field("maint_aborts_unlinked",
            static_cast<long long>(now.aborted_unlinked -
                                   before.aborted_unlinked));
  row.field("maint_queue_depth", static_cast<long long>(now.queue_depth));
  const std::uint64_t ns = now.task_ns_total - before.task_ns_total;
  row.field("maint_task_us_avg",
            tasks > 0 ? static_cast<double>(ns) /
                            static_cast<double>(tasks) / 1e3
                      : 0.0);
  const obs::HistogramSnapshot phase =
      now.task_latency.minus(before.task_latency);
  row.field("maint_task_us_p50",
            static_cast<double>(phase.percentile(0.50)) / 1e3);
  row.field("maint_task_us_p99",
            static_cast<double>(phase.percentile(0.99)) / 1e3);
  row.field("maint_task_us_max",
            static_cast<double>(now.task_ns_max) / 1e3);
}

// The paper's key-range rule: with insert fraction i and delete fraction d
// (percent), draw keys from [1, r] with r = n*(i+d)/i so the structure
// hovers around n keys.
inline Key key_range_for(std::size_t n, int ins_pct, int del_pct) {
  if (ins_pct == 0) return static_cast<Key>(n);
  return static_cast<Key>(n) * (ins_pct + del_pct) / ins_pct;
}

// Fill a tree with exactly n distinct keys drawn uniformly from [1, range].
template <typename A>
void prefill(typename A::Tree& tree, std::size_t n, Key range,
             std::uint64_t seed = 12345) {
  util::Xoshiro256 rng(seed);
  std::size_t inserted = 0;
  while (inserted < n) {
    const Key k = 1 + static_cast<Key>(rng.next_in(
                          static_cast<std::uint64_t>(range)));
    if (A::insert(tree, k, k)) ++inserted;
  }
}

struct MixResult {
  double total_mops = 0;   // all operations / sec / 1e6
  double update_mops = 0;  // inserts+deletes+finds per sec / 1e6
  double rq_per_sec = 0;   // range queries per sec
};

// Timed mixed workload: each thread draws ops i.i.d. with the given percent
// mix (ins + del + find + rq == 100) over uniform keys in [1, range].
template <typename A>
MixResult run_mix(typename A::Tree& tree, int threads, int ins_pct,
                  int del_pct, int find_pct, int rq_pct, Key range,
                  Key rq_size, int run_ms, std::uint64_t seed = 777) {
  // rq is the residual bucket of the percentage dice below.
  assert(ins_pct + del_pct + find_pct + rq_pct == 100);
  (void)rq_pct;
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  util::Padded<std::uint64_t> point_ops[192];
  util::Padded<std::uint64_t> rq_ops[192];
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(seed + static_cast<std::uint64_t>(t) * 7919);
      std::uint64_t points = 0;
      std::uint64_t rqs = 0;
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      while (!stop.load(std::memory_order_acquire)) {
        const int dice = static_cast<int>(rng.next_in(100));
        const Key k =
            1 + static_cast<Key>(rng.next_in(static_cast<std::uint64_t>(range)));
        if (dice < ins_pct) {
          A::insert(tree, k, k);
          ++points;
        } else if (dice < ins_pct + del_pct) {
          A::remove(tree, k);
          ++points;
        } else if (dice < ins_pct + del_pct + find_pct) {
          A::find(tree, k);
          ++points;
        } else {
          A::range(tree, k, k + rq_size - 1);
          ++rqs;
        }
      }
      point_ops[t].value = points;
      rq_ops[t].value = rqs;
    });
  }
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();

  MixResult r;
  const double secs = run_ms / 1000.0;
  std::uint64_t points = 0, rqs = 0;
  for (int t = 0; t < threads; ++t) {
    points += point_ops[t].value;
    rqs += rq_ops[t].value;
  }
  r.update_mops = static_cast<double>(points) / secs / 1e6;
  r.rq_per_sec = static_cast<double>(rqs) / secs;
  r.total_mops = static_cast<double>(points + rqs) / secs / 1e6;
  return r;
}

// Dedicated-role workload (Figures 2g/2h/2j/2k): `upd_threads` run a 50/50
// insert/delete mix while `rq_threads` run back-to-back range queries of
// the given size. Returns update Mops/s and range queries/s separately.
struct DedicatedResult {
  double update_mops = 0;
  double rq_per_sec = 0;
};

template <typename A>
DedicatedResult run_dedicated(typename A::Tree& tree, int upd_threads,
                              int rq_threads, Key range, Key rq_size,
                              int run_ms, std::uint64_t seed = 991) {
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  util::Padded<std::uint64_t> upd_ops[192];
  util::Padded<std::uint64_t> rq_ops[192];
  std::vector<std::thread> workers;
  for (int t = 0; t < upd_threads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(seed + static_cast<std::uint64_t>(t) * 104729);
      std::uint64_t ops = 0;
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_acquire)) {
        const Key k =
            1 + static_cast<Key>(rng.next_in(static_cast<std::uint64_t>(range)));
        if (rng.next_in(2) == 0) {
          A::insert(tree, k, k);
        } else {
          A::remove(tree, k);
        }
        ++ops;
      }
      upd_ops[t].value = ops;
    });
  }
  for (int t = 0; t < rq_threads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(seed + 555 + static_cast<std::uint64_t>(t) * 7);
      std::uint64_t ops = 0;
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_acquire)) {
        const Key lo =
            1 + static_cast<Key>(rng.next_in(static_cast<std::uint64_t>(range)));
        A::range(tree, lo, lo + rq_size - 1);
        ++ops;
      }
      rq_ops[t].value = ops;
    });
  }
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();

  DedicatedResult r;
  const double secs = run_ms / 1000.0;
  std::uint64_t upd = 0, rq = 0;
  for (int t = 0; t < upd_threads; ++t) upd += upd_ops[t].value;
  for (int t = 0; t < rq_threads; ++t) rq += rq_ops[t].value;
  r.update_mops = static_cast<double>(upd) / secs / 1e6;
  r.rq_per_sec = static_cast<double>(rq) / secs;
  return r;
}

}  // namespace vcas::bench
