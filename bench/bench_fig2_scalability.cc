// Figures 2a-2f: throughput scalability across thread counts for three
// operation mixes (lookup-heavy, update-heavy, update-heavy + 1% range
// queries of size 1024), at the small tree size and — with VCAS_LARGE=1 —
// the large size standing in for the paper's 100M keys.
#include <cstdio>

#include "bench/adapters.h"
#include "bench/harness.h"

namespace {

using namespace vcas::bench;

struct Mix {
  const char* figure;
  const char* label;
  int ins, del, find, rq;
  Key rq_size;
};

template <typename A>
void run_structure(const Config& cfg, const Mix& mix, std::size_t size) {
  const Key range = key_range_for(size, mix.ins == 0 ? 3 : mix.ins,
                                  mix.del == 0 ? 2 : mix.del);
  for (int threads : cfg.threads) {
    double total = 0, upd = 0, rq = 0;
    for (int rep = 0; rep < cfg.reps; ++rep) {
      typename A::Tree tree;
      prefill<A>(tree, size, range, 1000 + rep);
      MixResult r = run_mix<A>(tree, threads, mix.ins, mix.del, mix.find,
                               mix.rq, range, mix.rq_size, cfg.run_ms,
                               777 + rep);
      total += r.total_mops;
      upd += r.update_mops;
      rq += r.rq_per_sec;
      vcas::ebr::drain_for_tests();
    }
    std::printf("%-4s %-28s %-20s n=%-8zu p=%-3d %8.3f Mops/s"
                " (point %7.3f Mops/s, rq %9.0f /s)\n",
                mix.figure, mix.label, A::kName, size, threads,
                total / cfg.reps, upd / cfg.reps, rq / cfg.reps);
  }
}

void run_all(const Config& cfg, const Mix& mix, std::size_t size) {
  run_structure<VcasBstAdapter>(cfg, mix, size);
  run_structure<VcasCtAdapter>(cfg, mix, size);
  run_structure<EpochBstAdapter>(cfg, mix, size);
  run_structure<DoubleCollectAdapter>(cfg, mix, size);
  run_structure<CowTreeAdapter>(cfg, mix, size);
  if (mix.rq == 0) {
    // The originals support no atomic range query; they appear only in the
    // rq-free mixes as the paper's non-snapshot reference points.
    run_structure<NbbstAdapter>(cfg, mix, size);
    run_structure<CtAdapter>(cfg, mix, size);
  }
}

}  // namespace

int main() {
  const Config cfg = config_from_env();
  std::printf("== Figure 2a-2f: scalability by workload and size ==\n");
  std::printf("(paper: 72-core Xeon, 5s runs, sizes 100K/100M; here: %dms "
              "runs, sizes %zu/%zu, see EXPERIMENTS.md)\n\n",
              cfg.run_ms, cfg.size_small, cfg.size_large);

  const Mix mixes_small[] = {
      {"2a", "lookup-heavy 3i-2d-95f", 3, 2, 95, 0, 0},
      {"2b", "update-heavy 30i-20d-50f", 30, 20, 50, 0, 0},
      {"2c", "update+rq 30i-20d-49f-1rq", 30, 20, 49, 1, 1024},
  };
  const Mix mixes_large[] = {
      {"2d", "lookup-heavy 3i-2d-95f", 3, 2, 95, 0, 0},
      {"2e", "update-heavy 30i-20d-50f", 30, 20, 50, 0, 0},
      {"2f", "update+rq 30i-20d-49f-1rq", 30, 20, 49, 1, 1024},
  };

  for (const Mix& m : mixes_small) {
    run_all(cfg, m, cfg.size_small);
    std::printf("\n");
  }
  if (cfg.large) {
    for (const Mix& m : mixes_large) {
      run_all(cfg, m, cfg.size_large);
      std::printf("\n");
    }
  } else {
    std::printf("(set VCAS_LARGE=1 for Figures 2d-2f at n=%zu)\n",
                cfg.size_large);
  }
  return 0;
}
