// Figures 2g/2h: dedicated update threads vs dedicated range-query threads
// over a 100K-key tree, sweeping the range-query size. The paper runs
// 36+36 threads; here the split is scaled to the machine (half the largest
// configured thread count each, minimum 1+1).
//
// Shapes to look for (paper Section 7):
//  - DC-BST (KST mechanism) update throughput is fine, but its RQ
//    throughput collapses once ranges are wide enough to keep seeing
//    updates (restart storms).
//  - COW (SnapTree mechanism) updates crater when RQs are frequent: every
//    snapshot forces path copying.
//  - VcasBST/VcasCT update throughput is stable across rqsize — version
//    lists make queries read-only passengers.
#include <cstdio>

#include "bench/adapters.h"
#include "bench/harness.h"

namespace {

using namespace vcas::bench;

template <typename A>
void run_structure(const Config& cfg, int upd_threads, int rq_threads,
                   std::size_t size, Key rq_size) {
  const Key range = key_range_for(size, 50, 50);
  double upd = 0, rq = 0;
  for (int rep = 0; rep < cfg.reps; ++rep) {
    typename A::Tree tree;
    prefill<A>(tree, size, range, 2000 + rep);
    DedicatedResult r = run_dedicated<A>(tree, upd_threads, rq_threads, range,
                                         rq_size, cfg.run_ms, 881 + rep);
    upd += r.update_mops;
    rq += r.rq_per_sec;
    vcas::ebr::drain_for_tests();
  }
  std::printf("%-20s rqsize=%-6lld  updates %8.3f Mops/s   rqs %10.0f /s\n",
              A::kName, static_cast<long long>(rq_size), upd / cfg.reps,
              rq / cfg.reps);
}

}  // namespace

int main() {
  const Config cfg = config_from_env();
  int max_threads = 2;
  for (int t : cfg.threads) max_threads = std::max(max_threads, t);
  const int upd_threads = std::max(1, max_threads / 2);
  const int rq_threads = std::max(1, max_threads / 2);

  std::printf("== Figures 2g/2h: update and RQ throughput vs rqsize ==\n");
  std::printf("(paper: 36 update + 36 RQ threads; here: %d + %d)\n\n",
              upd_threads, rq_threads);

  const Key sizes[] = {8, 64, 256, 1024, 8192, 65536};
  for (Key rq_size : sizes) {
    run_structure<VcasCtAdapter>(cfg, upd_threads, rq_threads,
                                 cfg.size_small, rq_size);
    run_structure<VcasBstAdapter>(cfg, upd_threads, rq_threads,
                                  cfg.size_small, rq_size);
    run_structure<DoubleCollectAdapter>(cfg, upd_threads, rq_threads,
                                        cfg.size_small, rq_size);
    run_structure<CowTreeAdapter>(cfg, upd_threads, rq_threads,
                                  cfg.size_small, rq_size);
    std::printf("\n");
  }
  return 0;
}
