// Write-churn ablation (ISSUE 4): does the write path allocate and chain
// proportionally to SNAPSHOT activity rather than write volume?
//
// Writer threads hammer single-key puts over a fixed key set while the
// snapshot load varies:
//
//   write_heavy           writers only, no snapshots ever
//   write_heavy_snap_light  writers plus ONE analytical view at a time,
//                         refreshed every 20ms (paper Section 4's use
//                         case: a long-lived snapshot scanned while
//                         updates churn). Reads through the view walk
//                         every version stamped after its handle, so
//                         write-proportional chains make the reader pay
//                         Theorem 2's walk bound; coalesced chains keep
//                         it O(1).
//   snapshot_heavy        writers plus dedicated back-to-back fresh
//                         multiGet readers (snapshot-rate-bound)
//   delete_heavy          (ISSUE 5, separate section below) a fixed live
//                         set plus put/remove churn over a large transient
//                         key space, with the maintenance pool's tombstone
//                         cell GC on vs a trim-only loop — the acceptance
//                         metric is the STEADY-STATE CELL COUNT, which GC
//                         bounds near the live set and trim-only grows
//                         with every key ever touched
//
// Each mix runs with clock-gated coalescing off and on, in the store's
// production configuration: background trimming ENABLED. Trimming is what
// makes the comparison fair — versions a real deployment cannot keep must
// be reclaimed somehow, so with coalescing off every churned node takes
// the full chain -> trim-detach -> EBR -> recycle round trip, where
// coalescing recycles it at the write. Versions-per-key is sampled over a
// bounded set of cells right after the phase stops, with reclamation
// frozen first — the backlog a reader must walk through at that instant
// (on a loaded box the trimmer may lag writers arbitrarily; coalescing
// cannot lag, it reclaims inside the write).
//
// Reported per config: put throughput (Mops/s), snapshots taken, live
// versions per key, and the memory counters (pool slab bytes = fresh OS
// memory; pool frees = nodes recycled). The acceptance bar for the PR: on
// the write-heavy/snapshot-light mix, coalescing on shows >= 2x fewer
// versions-per-key and higher Mops/s than coalescing off.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "store/store.h"

namespace {

using namespace vcas::bench;
using Store = vcas::store::ShardedStore<Key, std::int64_t,
                                        vcas::store::ListBackend>;

constexpr Key kKeys = 256;
constexpr std::size_t kShards = 8;

struct MixSpec {
  const char* name;
  int rq_threads;      // dedicated snapshot readers
  bool pinned_view;    // readers read through ONE view held all phase
  int reader_sleep_us; // sleep between reads; 0 = back-to-back
};

constexpr MixSpec kMixes[] = {
    {"write_heavy", 0, false, 0},
    {"write_heavy_snap_light", 1, true, 1000},
    {"snapshot_heavy", 2, false, 0},
};

struct Result {
  double put_mops = 0;    // sustained: puts / (burst + digest)
  double burst_mops = 0;  // puts / burst window alone (reclaim debt hidden)
  double digest_ms = 0;   // time to reclaim the backlog after the burst
  double versions_per_key = 0;
  std::uint64_t snapshots = 0;
};

// `optimized` toggles the PR's write-path memory system AS A UNIT —
// clock-gated coalescing AND slab-pool node recycling. Off reproduces the
// seed write path: one heap allocation per put, version chains that grow
// with writes, reclamation only through trim's detach -> EBR -> free
// round trip.
Result run_mix(const MixSpec& mix, bool optimized, int writers, int run_ms,
               JsonReport& report) {
  Store store(kShards);
  store.set_coalescing(optimized);
  store.set_node_pooling(optimized);
  for (Key k = 0; k < kKeys; ++k) store.put(k, 0);
  store.enable_background_trim(std::chrono::milliseconds(1));

  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  vcas::util::Padded<std::uint64_t> put_ops[vcas::util::kMaxThreads];
  vcas::util::Padded<std::uint64_t> snap_ops[vcas::util::kMaxThreads];
  std::vector<std::thread> threads;

  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      vcas::util::Xoshiro256 rng(1234 + static_cast<std::uint64_t>(t) * 7919);
      std::uint64_t ops = 0;
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_acquire)) {
        const Key k = static_cast<Key>(rng.next_in(kKeys));
        store.put(k, static_cast<std::int64_t>(ops));
        ++ops;
      }
      put_ops[t].value = ops;
    });
  }
  for (int t = 0; t < mix.rq_threads; ++t) {
    threads.emplace_back([&, t] {
      vcas::util::Xoshiro256 rng(99 + static_cast<std::uint64_t>(t));
      std::vector<Key> sample(16);
      std::uint64_t snaps = 0;
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      // Long-lived analytical view, refreshed every 20ms: every read pays
      // the walk from each key's head down to the view's handle.
      std::unique_ptr<Store::View> view;
      auto view_born = std::chrono::steady_clock::now();
      if (mix.pinned_view) {
        view = std::make_unique<Store::View>(store);
        ++snaps;
      }
      while (!stop.load(std::memory_order_acquire)) {
        if (mix.pinned_view) {
          const auto now = std::chrono::steady_clock::now();
          if (now - view_born > std::chrono::milliseconds(20)) {
            view.reset();
            view = std::make_unique<Store::View>(store);
            view_born = now;
            ++snaps;
          }
        }
        for (Key& k : sample) k = static_cast<Key>(rng.next_in(kKeys));
        if (view != nullptr) {
          view->multiGet(sample);
        } else {
          store.multiGet(sample);
          ++snaps;
        }
        if (mix.reader_sleep_us > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(mix.reader_sleep_us));
        }
      }
      snap_ops[t].value = snaps;
    });
  }

  const MemorySample mem_before = memory_sample();
  vcas::util::Timer timer;
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  const double burst_secs = timer.elapsed_seconds();
  // Freeze reclamation BEFORE sampling so the sample reflects the backlog
  // as of the stop, then walk a bounded cell sample (a full
  // total_versions() against an un-reclaimed history is millions of cold
  // nodes).
  store.disable_background_trim();
  const double versions_per_cell = store.sampled_versions_per_cell(32);
  // Digest phase: a real deployment cannot stop here — the version chains
  // and limbo bags the burst queued up still have to be reclaimed. Run
  // trimming to a fixed point and drain EBR, and charge the time to the
  // run: "sustained" throughput is ops / (burst + digest). The optimized
  // write path reclaims as it writes, so its digest is near zero; the
  // seed path defers everything into this window.
  vcas::util::Timer digest_timer;
  while (store.trim_all() > 0) {
  }
  vcas::ebr::drain_for_tests();
  const double digest_secs = digest_timer.elapsed_seconds();

  Result r;
  std::uint64_t puts = 0;
  for (int t = 0; t < writers; ++t) puts += put_ops[t].value;
  for (int t = 0; t < mix.rq_threads; ++t) r.snapshots += snap_ops[t].value;
  r.put_mops = static_cast<double>(puts) / (burst_secs + digest_secs) / 1e6;
  r.burst_mops = static_cast<double>(puts) / burst_secs / 1e6;
  r.digest_ms = digest_secs * 1e3;
  r.versions_per_key = versions_per_cell;

  JsonRow row;
  row.field("mix", mix.name)
      .field("write_path", optimized ? "on" : "off")
      .field("writers", static_cast<long long>(writers))
      .field("put_mops", r.put_mops)
      .field("burst_mops", r.burst_mops)
      .field("digest_ms", r.digest_ms)
      .field("snapshots", static_cast<long long>(r.snapshots))
      .field("versions_per_key", r.versions_per_key)
      .field("total_puts", static_cast<long long>(puts));
  add_memory_fields(row, mem_before);
  report.add(row);
  return r;
}

// --- delete-heavy mix (ISSUE 5): does tombstone cell GC bound the store? ----
//
// Writers keep a fixed LIVE key set hot while churning a large TRANSIENT
// key space with put-then-remove pairs; a reader thread takes periodic
// multiGet snapshots (which is also what moves the clock, and hence the GC
// horizon). Without cell GC every transient key leaves an immortal
// tombstone cell — the store's footprint grows with keys EVER touched.
// With the maintenance pool the steady-state cell count stays near the
// live set. `gc` off reproduces the PR-4 world: reclamation is a
// 1ms trim_all loop (versions shrink, cells never do).
struct ChurnResult {
  double write_mops = 0;
  std::size_t keys_touched = 0;
  std::size_t cells_at_stop = 0;     // steady-state footprint (the metric)
  std::size_t cells_after_digest = 0;
};

ChurnResult run_delete_heavy(bool gc_on, int writers, int run_ms,
                             JsonReport& report) {
  Store store(kShards);
  constexpr Key kLivePerWriter = 64;
  constexpr Key kTransientPerWriter = 4096;
  constexpr Key kStride = kLivePerWriter + kTransientPerWriter;

  const MemorySample mem_before = memory_sample();
  const vcas::maint::Stats maint_before = store.maintenance_stats();
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};

  std::thread trim_only;
  if (gc_on) {
    store.enable_maintenance(2, std::chrono::milliseconds(1));
  } else {
    trim_only = std::thread([&] {
      while (!stop.load(std::memory_order_acquire)) {
        store.trim_all();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  vcas::util::Padded<std::uint64_t> write_ops[vcas::util::kMaxThreads];
  std::vector<std::thread> threads;
  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      const Key base = static_cast<Key>(t) * kStride;
      std::uint64_t ops = 0;
      std::uint64_t i = 0;
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_acquire)) {
        store.put(base + static_cast<Key>(i % kLivePerWriter),
                  static_cast<std::int64_t>(i));
        const Key tk = base + kLivePerWriter +
                     static_cast<Key>(i % kTransientPerWriter);
        store.put(tk, static_cast<std::int64_t>(i));
        store.remove(tk);
        ops += 3;
        ++i;
      }
      write_ops[t].value = ops;
    });
  }
  std::thread reader([&] {
    vcas::util::Xoshiro256 rng(4242);
    std::vector<Key> sample(8);
    while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
    while (!stop.load(std::memory_order_acquire)) {
      for (Key& k : sample) {
        // Draw from the writers' ACTUAL live windows (each writer's keys
        // start at t * kStride), so the reads hit hot cells rather than
        // tombstoned transient keys.
        const std::uint64_t w = rng.next_in(
            static_cast<std::uint64_t>(writers > 0 ? writers : 1));
        k = static_cast<Key>(w) * kStride +
            static_cast<Key>(
                rng.next_in(static_cast<std::uint64_t>(kLivePerWriter)));
      }
      store.multiGet(sample);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  vcas::util::Timer timer;
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  reader.join();
  const double secs = timer.elapsed_seconds();

  ChurnResult r;
  // Steady-state footprint, sampled with the maintenance still configured
  // exactly as it ran (the pool keeps working; that IS the steady state).
  r.cells_at_stop = store.total_cells();
  if (gc_on) {
    store.disable_maintenance();
  } else {
    trim_only.join();
  }
  std::uint64_t ops = 0;
  for (int t = 0; t < writers; ++t) ops += write_ops[t].value;
  r.write_mops = static_cast<double>(ops) / secs / 1e6;
  // Every writer's live window plus however much of the transient space
  // its op count covered.
  for (int t = 0; t < writers; ++t) {
    const std::uint64_t iters = write_ops[t].value / 3;
    r.keys_touched +=
        kLivePerWriter +
        static_cast<std::size_t>(
            iters < static_cast<std::uint64_t>(kTransientPerWriter)
                ? iters
                : static_cast<std::uint64_t>(kTransientPerWriter));
  }
  // Digest to a fixed point (horizon moved one last time so every
  // tombstone ages out), then measure the reclaimable floor.
  store.camera().takeSnapshot();
  if (gc_on) store.maintain_all();
  while (store.trim_all() > 0) {
  }
  r.cells_after_digest = store.total_cells();
  const vcas::maint::Stats maint_now = store.maintenance_stats();

  JsonRow row;
  row.field("mix", "delete_heavy")
      .field("gc", gc_on ? "on" : "off")
      .field("writers", static_cast<long long>(writers))
      .field("write_mops", r.write_mops)
      .field("keys_touched", static_cast<long long>(r.keys_touched))
      .field("cells_at_stop", static_cast<long long>(r.cells_at_stop))
      .field("cells_after_digest",
             static_cast<long long>(r.cells_after_digest));
  add_memory_fields(row, mem_before);
  add_maintenance_fields(row, maint_before, maint_now);
  report.add(row);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg = config_from_env();
  // --short: one tiny rep at 2 threads — the CI observability smoke shape
  // (enough traffic to populate every meter, seconds not minutes).
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      cfg.run_ms = 20;
      cfg.reps = 1;
      cfg.threads = {2};
    }
  }
  // VCAS_TRACE_OUT=<path>: record event traces for the whole run and dump
  // the rings (binary; feed to tools/trace_export.py) at exit.
  const char* trace_out = std::getenv("VCAS_TRACE_OUT");
  if (trace_out != nullptr && *trace_out != '\0') {
    vcas::obs::set_tracing(true);
  }
  JsonReport report("write_churn");
  std::printf("== Write churn: clock-gated coalescing + VNode recycling ==\n");
  std::printf("%zu keys, %zu shards, background trim on (1ms); off = seed "
              "write path (heap nodes, no coalescing), on = recycling pool "
              "+ clock-gated coalescing\n\n",
              static_cast<std::size_t>(kKeys), kShards);
  for (int writers : cfg.threads) {
    std::printf("-- %d writer(s), %d ms per cell --\n", writers, cfg.run_ms);
    std::printf("%-24s %-10s %13s %11s %10s %12s %14s\n", "mix",
                "write_path", "sust.Mops/s", "burst", "digest", "snapshots",
                "versions/key");
    for (const MixSpec& mix : kMixes) {
      Result off{}, on{};
      for (int rep = 0; rep < cfg.reps; ++rep) {
        const Result o = run_mix(mix, false, writers, cfg.run_ms, report);
        const Result n = run_mix(mix, true, writers, cfg.run_ms, report);
        off.put_mops += o.put_mops / cfg.reps;
        off.burst_mops += o.burst_mops / cfg.reps;
        off.digest_ms += o.digest_ms / cfg.reps;
        off.versions_per_key += o.versions_per_key / cfg.reps;
        off.snapshots += o.snapshots / static_cast<std::uint64_t>(cfg.reps);
        on.put_mops += n.put_mops / cfg.reps;
        on.burst_mops += n.burst_mops / cfg.reps;
        on.digest_ms += n.digest_ms / cfg.reps;
        on.versions_per_key += n.versions_per_key / cfg.reps;
        on.snapshots += n.snapshots / static_cast<std::uint64_t>(cfg.reps);
      }
      const Result* results[2] = {&off, &on};
      const char* labels[2] = {"off", "on"};
      for (int i = 0; i < 2; ++i) {
        const Result& res = *results[i];
        std::printf("%-24s %-10s %13.3f %11.3f %8.1fms %12llu %14.1f\n",
                    mix.name, labels[i], res.put_mops, res.burst_mops,
                    res.digest_ms,
                    static_cast<unsigned long long>(res.snapshots),
                    res.versions_per_key);
      }
      std::printf("%-24s -> optimized write path: %.2fx sustained "
                  "throughput, %.0fx fewer versions/key\n",
                  "", on.put_mops / (off.put_mops > 0 ? off.put_mops : 1),
                  off.versions_per_key /
                      (on.versions_per_key > 0 ? on.versions_per_key : 1));
    }
    std::printf("\n");
  }

  std::printf("== Delete-heavy churn: tombstone cell GC (maintenance pool) "
              "==\n");
  std::printf("fixed live set + transient put/remove churn; gc off = 1ms "
              "trim_all loop (PR 4's reclamation: versions shrink, cells "
              "never do), gc on = 2-worker maintenance pool\n\n");
  for (int writers : cfg.threads) {
    std::printf("-- %d writer(s), %d ms --\n", writers, cfg.run_ms);
    std::printf("%-4s %12s %14s %15s %18s\n", "gc", "write Mops/s",
                "keys_touched", "cells_at_stop", "cells_after_digest");
    ChurnResult results[2];
    const bool modes[2] = {false, true};
    for (int m = 0; m < 2; ++m) {
      results[m] = run_delete_heavy(modes[m], writers, cfg.run_ms, report);
      std::printf("%-4s %12.3f %14zu %15zu %18zu\n", modes[m] ? "on" : "off",
                  results[m].write_mops, results[m].keys_touched,
                  results[m].cells_at_stop, results[m].cells_after_digest);
    }
    std::printf("-> cell GC: %.1fx fewer steady-state cells\n\n",
                static_cast<double>(results[0].cells_at_stop) /
                    static_cast<double>(results[1].cells_at_stop > 0
                                            ? results[1].cells_at_stop
                                            : 1));
  }
  vcas::ebr::drain_for_tests();

  // Observability dumps (all workers joined above, so the rings are
  // quiescent). VCAS_STATS_OUT=<path> writes the registry-side stats
  // snapshot as JSON.
  if (trace_out != nullptr && *trace_out != '\0') {
    vcas::obs::set_tracing(false);
    if (vcas::obs::dump_trace(trace_out)) {
      const vcas::obs::TraceSummary ts = vcas::obs::trace_summary();
      std::printf("wrote %s (%llu records, %llu dropped)\n", trace_out,
                  static_cast<unsigned long long>(ts.records),
                  static_cast<unsigned long long>(ts.dropped));
    } else {
      std::fprintf(stderr, "trace dump to %s failed\n", trace_out);
    }
  }
  if (const char* stats_out = std::getenv("VCAS_STATS_OUT")) {
    if (*stats_out != '\0') {
      if (std::FILE* f = std::fopen(stats_out, "w")) {
        const std::string json = vcas::obs::collect().to_json();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote %s\n", stats_out);
      } else {
        std::fprintf(stderr, "stats dump to %s failed\n", stats_out);
      }
    }
  }
  return 0;
}
