// Write-churn ablation (ISSUE 4): does the write path allocate and chain
// proportionally to SNAPSHOT activity rather than write volume?
//
// Writer threads hammer single-key puts over a fixed key set while the
// snapshot load varies:
//
//   write_heavy           writers only, no snapshots ever
//   write_heavy_snap_light  writers plus ONE analytical view at a time,
//                         refreshed every 20ms (paper Section 4's use
//                         case: a long-lived snapshot scanned while
//                         updates churn). Reads through the view walk
//                         every version stamped after its handle, so
//                         write-proportional chains make the reader pay
//                         Theorem 2's walk bound; coalesced chains keep
//                         it O(1).
//   snapshot_heavy        writers plus dedicated back-to-back fresh
//                         multiGet readers (snapshot-rate-bound)
//
// Each mix runs with clock-gated coalescing off and on, in the store's
// production configuration: background trimming ENABLED. Trimming is what
// makes the comparison fair — versions a real deployment cannot keep must
// be reclaimed somehow, so with coalescing off every churned node takes
// the full chain -> trim-detach -> EBR -> recycle round trip, where
// coalescing recycles it at the write. Versions-per-key is sampled over a
// bounded set of cells right after the phase stops, with reclamation
// frozen first — the backlog a reader must walk through at that instant
// (on a loaded box the trimmer may lag writers arbitrarily; coalescing
// cannot lag, it reclaims inside the write).
//
// Reported per config: put throughput (Mops/s), snapshots taken, live
// versions per key, and the memory counters (pool slab bytes = fresh OS
// memory; pool frees = nodes recycled). The acceptance bar for the PR: on
// the write-heavy/snapshot-light mix, coalescing on shows >= 2x fewer
// versions-per-key and higher Mops/s than coalescing off.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "store/store.h"

namespace {

using namespace vcas::bench;
using Store = vcas::store::ShardedStore<Key, std::int64_t,
                                        vcas::store::ListBackend>;

constexpr Key kKeys = 256;
constexpr std::size_t kShards = 8;

struct MixSpec {
  const char* name;
  int rq_threads;      // dedicated snapshot readers
  bool pinned_view;    // readers read through ONE view held all phase
  int reader_sleep_us; // sleep between reads; 0 = back-to-back
};

constexpr MixSpec kMixes[] = {
    {"write_heavy", 0, false, 0},
    {"write_heavy_snap_light", 1, true, 1000},
    {"snapshot_heavy", 2, false, 0},
};

struct Result {
  double put_mops = 0;    // sustained: puts / (burst + digest)
  double burst_mops = 0;  // puts / burst window alone (reclaim debt hidden)
  double digest_ms = 0;   // time to reclaim the backlog after the burst
  double versions_per_key = 0;
  std::uint64_t snapshots = 0;
};

// `optimized` toggles the PR's write-path memory system AS A UNIT —
// clock-gated coalescing AND slab-pool node recycling. Off reproduces the
// seed write path: one heap allocation per put, version chains that grow
// with writes, reclamation only through trim's detach -> EBR -> free
// round trip.
Result run_mix(const MixSpec& mix, bool optimized, int writers, int run_ms,
               JsonReport& report) {
  Store store(kShards);
  store.set_coalescing(optimized);
  store.set_node_pooling(optimized);
  for (Key k = 0; k < kKeys; ++k) store.put(k, 0);
  store.enable_background_trim(std::chrono::milliseconds(1));

  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  vcas::util::Padded<std::uint64_t> put_ops[vcas::util::kMaxThreads];
  vcas::util::Padded<std::uint64_t> snap_ops[vcas::util::kMaxThreads];
  std::vector<std::thread> threads;

  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      vcas::util::Xoshiro256 rng(1234 + static_cast<std::uint64_t>(t) * 7919);
      std::uint64_t ops = 0;
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_acquire)) {
        const Key k = static_cast<Key>(rng.next_in(kKeys));
        store.put(k, static_cast<std::int64_t>(ops));
        ++ops;
      }
      put_ops[t].value = ops;
    });
  }
  for (int t = 0; t < mix.rq_threads; ++t) {
    threads.emplace_back([&, t] {
      vcas::util::Xoshiro256 rng(99 + static_cast<std::uint64_t>(t));
      std::vector<Key> sample(16);
      std::uint64_t snaps = 0;
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      // Long-lived analytical view, refreshed every 20ms: every read pays
      // the walk from each key's head down to the view's handle.
      std::unique_ptr<Store::View> view;
      auto view_born = std::chrono::steady_clock::now();
      if (mix.pinned_view) {
        view = std::make_unique<Store::View>(store);
        ++snaps;
      }
      while (!stop.load(std::memory_order_acquire)) {
        if (mix.pinned_view) {
          const auto now = std::chrono::steady_clock::now();
          if (now - view_born > std::chrono::milliseconds(20)) {
            view.reset();
            view = std::make_unique<Store::View>(store);
            view_born = now;
            ++snaps;
          }
        }
        for (Key& k : sample) k = static_cast<Key>(rng.next_in(kKeys));
        if (view != nullptr) {
          view->multiGet(sample);
        } else {
          store.multiGet(sample);
          ++snaps;
        }
        if (mix.reader_sleep_us > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(mix.reader_sleep_us));
        }
      }
      snap_ops[t].value = snaps;
    });
  }

  const MemorySample mem_before = memory_sample();
  vcas::util::Timer timer;
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  const double burst_secs = timer.elapsed_seconds();
  // Freeze reclamation BEFORE sampling so the sample reflects the backlog
  // as of the stop, then walk a bounded cell sample (a full
  // total_versions() against an un-reclaimed history is millions of cold
  // nodes).
  store.disable_background_trim();
  const double versions_per_cell = store.sampled_versions_per_cell(32);
  // Digest phase: a real deployment cannot stop here — the version chains
  // and limbo bags the burst queued up still have to be reclaimed. Run
  // trimming to a fixed point and drain EBR, and charge the time to the
  // run: "sustained" throughput is ops / (burst + digest). The optimized
  // write path reclaims as it writes, so its digest is near zero; the
  // seed path defers everything into this window.
  vcas::util::Timer digest_timer;
  while (store.trim_all() > 0) {
  }
  vcas::ebr::drain_for_tests();
  const double digest_secs = digest_timer.elapsed_seconds();

  Result r;
  std::uint64_t puts = 0;
  for (int t = 0; t < writers; ++t) puts += put_ops[t].value;
  for (int t = 0; t < mix.rq_threads; ++t) r.snapshots += snap_ops[t].value;
  r.put_mops = static_cast<double>(puts) / (burst_secs + digest_secs) / 1e6;
  r.burst_mops = static_cast<double>(puts) / burst_secs / 1e6;
  r.digest_ms = digest_secs * 1e3;
  r.versions_per_key = versions_per_cell;

  JsonRow row;
  row.field("mix", mix.name)
      .field("write_path", optimized ? "on" : "off")
      .field("writers", static_cast<long long>(writers))
      .field("put_mops", r.put_mops)
      .field("burst_mops", r.burst_mops)
      .field("digest_ms", r.digest_ms)
      .field("snapshots", static_cast<long long>(r.snapshots))
      .field("versions_per_key", r.versions_per_key)
      .field("total_puts", static_cast<long long>(puts));
  add_memory_fields(row, mem_before);
  report.add(row);
  return r;
}

}  // namespace

int main() {
  const Config cfg = config_from_env();
  JsonReport report("write_churn");
  std::printf("== Write churn: clock-gated coalescing + VNode recycling ==\n");
  std::printf("%zu keys, %zu shards, background trim on (1ms); off = seed "
              "write path (heap nodes, no coalescing), on = recycling pool "
              "+ clock-gated coalescing\n\n",
              static_cast<std::size_t>(kKeys), kShards);
  for (int writers : cfg.threads) {
    std::printf("-- %d writer(s), %d ms per cell --\n", writers, cfg.run_ms);
    std::printf("%-24s %-10s %13s %11s %10s %12s %14s\n", "mix",
                "write_path", "sust.Mops/s", "burst", "digest", "snapshots",
                "versions/key");
    for (const MixSpec& mix : kMixes) {
      Result off{}, on{};
      for (int rep = 0; rep < cfg.reps; ++rep) {
        const Result o = run_mix(mix, false, writers, cfg.run_ms, report);
        const Result n = run_mix(mix, true, writers, cfg.run_ms, report);
        off.put_mops += o.put_mops / cfg.reps;
        off.burst_mops += o.burst_mops / cfg.reps;
        off.digest_ms += o.digest_ms / cfg.reps;
        off.versions_per_key += o.versions_per_key / cfg.reps;
        off.snapshots += o.snapshots / static_cast<std::uint64_t>(cfg.reps);
        on.put_mops += n.put_mops / cfg.reps;
        on.burst_mops += n.burst_mops / cfg.reps;
        on.digest_ms += n.digest_ms / cfg.reps;
        on.versions_per_key += n.versions_per_key / cfg.reps;
        on.snapshots += n.snapshots / static_cast<std::uint64_t>(cfg.reps);
      }
      const Result* results[2] = {&off, &on};
      const char* labels[2] = {"off", "on"};
      for (int i = 0; i < 2; ++i) {
        const Result& res = *results[i];
        std::printf("%-24s %-10s %13.3f %11.3f %8.1fms %12llu %14.1f\n",
                    mix.name, labels[i], res.put_mops, res.burst_mops,
                    res.digest_ms,
                    static_cast<unsigned long long>(res.snapshots),
                    res.versions_per_key);
      }
      std::printf("%-24s -> optimized write path: %.2fx sustained "
                  "throughput, %.0fx fewer versions/key\n",
                  "", on.put_mops / (off.put_mops > 0 ? off.put_mops : 1),
                  off.versions_per_key /
                      (on.versions_per_key > 0 ? on.versions_per_key : 1));
    }
    std::printf("\n");
  }
  vcas::ebr::drain_for_tests();
  return 0;
}
