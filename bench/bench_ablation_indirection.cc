// Ablation for the Section 5 "avoiding indirection" optimization at the
// whole-data-structure level: the same Ellen BST built with direct
// (Figure 9, version fields in nodes) vs indirect (Algorithm 1, separate
// VNode lists) versioned child pointers, plus the unversioned original as
// the floor.
#include <algorithm>
#include <cstdio>

#include "bench/adapters.h"
#include "bench/harness.h"

namespace {

using namespace vcas::bench;

template <typename A>
void run_structure(const Config& cfg, int threads, std::size_t size,
                   int find_pct) {
  const int upd = (100 - find_pct) / 2;
  const Key range = key_range_for(size, upd, upd);
  double mops = 0;
  for (int rep = 0; rep < cfg.reps; ++rep) {
    typename A::Tree tree;
    prefill<A>(tree, size, range, 6000 + rep);
    MixResult r = run_mix<A>(tree, threads, upd, upd, find_pct, 0, range, 0,
                             cfg.run_ms, 31 + rep);
    mops += r.total_mops;
    vcas::ebr::drain_for_tests();
  }
  std::printf("  %-18s find%%=%-3d %8.3f Mops/s\n", A::kName, find_pct,
              mops / cfg.reps);
}

}  // namespace

int main() {
  const Config cfg = config_from_env();
  int threads = 1;
  for (int t : cfg.threads) threads = std::max(threads, t);
  std::printf("== Ablation: direct vs indirect versioning (p=%d, n=%zu) ==\n\n",
              threads, cfg.size_small);
  for (int find_pct : {0, 50, 90}) {
    run_structure<NbbstAdapter>(cfg, threads, cfg.size_small, find_pct);
    run_structure<VcasBstAdapter>(cfg, threads, cfg.size_small, find_pct);
    run_structure<VcasBstIndirectAdapter>(cfg, threads, cfg.size_small,
                                          find_pct);
    std::printf("\n");
  }
  std::printf("(the direct build should sit between the original and the "
              "indirect build:\n one fewer cache miss per child access than "
              "Algorithm 1)\n");
  return 0;
}
