// Figures 2j/2k: the paper's C++ head-to-head — VcasBST vs EpochBST with
// dedicated update and range-query threads, sweeping rqsize over a
// 100K-key tree.
//
// Paper result: VcasBST range queries are 4.7-6.3x faster than EpochBST
// (EpochBST revisits limbo-list entries for every concurrent delete), and
// VcasBST updates are >= 7% faster. The reproduction target is the
// direction and rough magnitude of those ratios.
#include <cstdio>

#include "bench/adapters.h"
#include "bench/harness.h"

namespace {

using namespace vcas::bench;

template <typename A>
DedicatedResult measure(const Config& cfg, int upd_threads, int rq_threads,
                        std::size_t size, Key rq_size) {
  const Key range = key_range_for(size, 50, 50);
  DedicatedResult acc;
  for (int rep = 0; rep < cfg.reps; ++rep) {
    typename A::Tree tree;
    prefill<A>(tree, size, range, 3000 + rep);
    DedicatedResult r = run_dedicated<A>(tree, upd_threads, rq_threads, range,
                                         rq_size, cfg.run_ms, 17 + rep);
    acc.update_mops += r.update_mops;
    acc.rq_per_sec += r.rq_per_sec;
    vcas::ebr::drain_for_tests();
  }
  acc.update_mops /= cfg.reps;
  acc.rq_per_sec /= cfg.reps;
  return acc;
}

}  // namespace

int main() {
  const Config cfg = config_from_env();
  int max_threads = 2;
  for (int t : cfg.threads) max_threads = std::max(max_threads, t);
  const int upd_threads = std::max(1, max_threads / 2);
  const int rq_threads = std::max(1, max_threads / 2);

  std::printf("== Figures 2j/2k [C++]: VcasBST vs EpochBST vs rqsize ==\n");
  std::printf("(paper: 36+36 threads, 100K keys; here: %d+%d, %zu keys)\n\n",
              upd_threads, rq_threads, cfg.size_small);
  std::printf("%-8s | %-10s %-12s | %-10s %-12s | %-8s %-8s\n", "rqsize",
              "Vcas updM", "Vcas rq/s", "Epoch updM", "Epoch rq/s",
              "upd x", "rq x");

  const Key sizes[] = {8, 64, 256, 1024, 8192, 65536};
  for (Key rq_size : sizes) {
    DedicatedResult v = measure<VcasBstAdapter>(cfg, upd_threads, rq_threads,
                                                cfg.size_small, rq_size);
    DedicatedResult e = measure<EpochBstAdapter>(cfg, upd_threads, rq_threads,
                                                 cfg.size_small, rq_size);
    std::printf("%-8lld | %10.3f %12.0f | %10.3f %12.0f | %8.2f %8.2f\n",
                static_cast<long long>(rq_size), v.update_mops, v.rq_per_sec,
                e.update_mops, e.rq_per_sec,
                e.update_mops > 0 ? v.update_mops / e.update_mops : 0.0,
                e.rq_per_sec > 0 ? v.rq_per_sec / e.rq_per_sec : 0.0);
  }
  std::printf("\n(paper reports rq x of 4.7-6.3 and upd x >= 1.07)\n");
  return 0;
}
