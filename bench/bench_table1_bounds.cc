// Table 1 + Theorem 2: empirical validation of the complexity claims.
//
//  1. takeSnapshot / vRead / vCAS are O(1): latency independent of history
//     length (number of versions already accumulated).
//  2. readSnapshot(ts) costs O(#successful vCASes stamped after ts): the
//     walk length grows linearly as the snapshot ages.
//  3. Queue ith(i) is O(i + c): linear in i.
//  4. BST range(s,e) is O(h + K(s,e) + c): linear in the result size.
//
// Each section prints the measured cost at geometrically spaced parameters
// plus the fitted growth ratio between consecutive points (≈1.0 for O(1),
// ≈2.0 for linear when the parameter doubles).
#include <cstdio>
#include <vector>

#include "bench/adapters.h"
#include "bench/harness.h"
#include "ds/msqueue.h"
#include "util/timing.h"
#include "vcas/versioned_cas.h"

namespace {

using namespace vcas::bench;

double nanos_per_op(std::int64_t total_nanos, std::int64_t ops) {
  return static_cast<double>(total_nanos) / static_cast<double>(ops);
}

void section_o1_ops() {
  std::printf("-- O(1) claims: cost vs accumulated history --\n");
  std::printf("%-12s %14s %14s %14s\n", "versions", "takeSnap ns", "vRead ns",
              "vCAS ns");
  for (std::int64_t versions : {1000, 10000, 100000, 1000000}) {
    vcas::Camera cam;
    vcas::VersionedCAS<std::int64_t> obj(0, &cam);
    for (std::int64_t k = 1; k <= versions; ++k) obj.vCAS(k - 1, k);

    constexpr std::int64_t kOps = 200000;
    vcas::util::Timer t1;
    for (std::int64_t i = 0; i < kOps; ++i) cam.takeSnapshot();
    const double snap_ns = nanos_per_op(t1.elapsed_nanos(), kOps);

    vcas::util::Timer t2;
    std::int64_t sink = 0;
    for (std::int64_t i = 0; i < kOps; ++i) sink += obj.vRead();
    const double read_ns = nanos_per_op(t2.elapsed_nanos(), kOps);

    vcas::util::Timer t3;
    std::int64_t v = obj.vRead();
    for (std::int64_t i = 0; i < kOps; ++i) {
      obj.vCAS(v, v + 1);
      ++v;
    }
    const double cas_ns = nanos_per_op(t3.elapsed_nanos(), kOps);

    std::printf("%-12lld %14.1f %14.1f %14.1f%s\n",
                static_cast<long long>(versions), snap_ns, read_ns, cas_ns,
                sink == -1 ? "!" : "");
  }
  std::printf("(flat columns ==> constant time regardless of history)\n\n");
}

void section_read_snapshot() {
  std::printf("-- readSnapshot cost vs snapshot age --\n");
  std::printf("%-12s %14s %10s\n", "age (vCASes)", "ns/readSnap", "growth");
  vcas::Camera cam;
  vcas::VersionedCAS<std::int64_t> obj(0, &cam);
  double prev = 0;
  for (std::int64_t age : {256, 512, 1024, 2048, 4096}) {
    const vcas::Timestamp handle = cam.takeSnapshot();
    std::int64_t v = obj.vRead();
    for (std::int64_t i = 0; i < age; ++i) {
      obj.vCAS(v, v + 1);
      ++v;
    }
    constexpr std::int64_t kOps = 20000;
    vcas::util::Timer t;
    std::int64_t sink = 0;
    for (std::int64_t i = 0; i < kOps; ++i) sink += obj.readSnapshot(handle);
    const double ns = nanos_per_op(t.elapsed_nanos(), kOps);
    std::printf("%-12lld %14.1f %10.2f%s\n", static_cast<long long>(age), ns,
                prev > 0 ? ns / prev : 0.0, sink == -1 ? "!" : "");
    prev = ns;
  }
  std::printf("(growth ~2 when age doubles ==> linear in #vCASes after the "
              "snapshot; Theorem 2)\n\n");
}

void section_queue_ith() {
  std::printf("-- MS queue ith(i): O(i) --\n");
  std::printf("%-12s %14s %10s\n", "i", "ns/ith", "growth");
  vcas::ds::VcasMSQueue<std::int64_t> queue;
  for (std::int64_t i = 0; i < 70000; ++i) queue.enqueue(i);
  double prev = 0;
  for (std::size_t i : {4096u, 8192u, 16384u, 32768u, 65536u}) {
    constexpr int kOps = 200;
    vcas::util::Timer t;
    for (int rep = 0; rep < kOps; ++rep) queue.ith(i);
    const double ns = nanos_per_op(t.elapsed_nanos(), kOps);
    std::printf("%-12zu %14.0f %10.2f\n", i, ns, prev > 0 ? ns / prev : 0.0);
    prev = ns;
  }
  std::printf("\n");
}

void section_bst_range() {
  std::printf("-- VcasBST range(s,e): O(h + K + c) --\n");
  std::printf("%-12s %14s %10s\n", "K(s,e)", "ns/range", "growth");
  vcas::ds::VcasBST<Key, Key> tree;
  prefill<VcasBstAdapter>(tree, 1 << 17, 1 << 18, 9);
  double prev = 0;
  for (Key width : {512, 1024, 2048, 4096, 8192}) {
    constexpr int kOps = 400;
    vcas::util::Timer t;
    for (int rep = 0; rep < kOps; ++rep) {
      tree.range(rep * 16 + 1, rep * 16 + width * 2);  // ~width keys hit
    }
    const double ns = nanos_per_op(t.elapsed_nanos(), kOps);
    std::printf("%-12lld %14.0f %10.2f\n", static_cast<long long>(width), ns,
                prev > 0 ? ns / prev : 0.0);
    prev = ns;
  }
  std::printf("\n");
  vcas::ebr::drain_for_tests();
}

}  // namespace

int main() {
  std::printf("== Table 1 / Theorem 2: empirical complexity checks ==\n\n");
  section_o1_ops();
  section_read_snapshot();
  section_queue_ith();
  section_bst_range();
  return 0;
}
