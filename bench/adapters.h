// Uniform static adapters over every benchmarked structure.
//
// Each adapter provides:
//   using Tree;
//   static constexpr const char* kName;
//   static bool insert(Tree&, Key, Key);
//   static bool remove(Tree&, Key);
//   static bool find(Tree&, Key);
//   static std::size_t range(Tree&, Key lo, Key hi);  // atomic if the
//                                                     // structure offers it
#pragma once

#include <cstdint>

#include "baselines/cow_tree.h"
#include "baselines/epoch_bst.h"
#include "bench/harness.h"
#include "ds/chromatic.h"
#include "ds/ellen_bst.h"

namespace vcas::bench {

struct VcasBstAdapter {
  using Tree = ds::VcasBST<Key, Key>;
  static constexpr const char* kName = "VcasBST";
  static bool insert(Tree& t, Key k, Key v) { return t.insert(k, v); }
  static bool remove(Tree& t, Key k) { return t.remove(k); }
  static bool find(Tree& t, Key k) { return t.contains(k); }
  static std::size_t range(Tree& t, Key lo, Key hi) {
    return t.range(lo, hi).size();
  }
};

struct VcasBstIndirectAdapter {
  using Tree = ds::VcasBSTIndirect<Key, Key>;
  static constexpr const char* kName = "VcasBST-indirect";
  static bool insert(Tree& t, Key k, Key v) { return t.insert(k, v); }
  static bool remove(Tree& t, Key k) { return t.remove(k); }
  static bool find(Tree& t, Key k) { return t.contains(k); }
  static std::size_t range(Tree& t, Key lo, Key hi) {
    return t.range(lo, hi).size();
  }
};

struct VcasCtAdapter {
  using Tree = ds::VcasChromaticTree<Key, Key>;
  static constexpr const char* kName = "VcasCT";
  static bool insert(Tree& t, Key k, Key v) { return t.insert(k, v); }
  static bool remove(Tree& t, Key k) { return t.remove(k); }
  static bool find(Tree& t, Key k) { return t.contains(k); }
  static std::size_t range(Tree& t, Key lo, Key hi) {
    return t.range(lo, hi).size();
  }
};

// Originals: point operations only; range() runs the non-atomic sequential
// walk (used only where the paper compares against non-atomic queries).
struct NbbstAdapter {
  using Tree = ds::NBBST<Key, Key>;
  static constexpr const char* kName = "NBBST(orig)";
  static bool insert(Tree& t, Key k, Key v) { return t.insert(k, v); }
  static bool remove(Tree& t, Key k) { return t.remove(k); }
  static bool find(Tree& t, Key k) { return t.contains(k); }
  static std::size_t range(Tree& t, Key lo, Key hi) {
    return t.range_nonatomic(lo, hi).size();
  }
};

struct CtAdapter {
  using Tree = ds::ChromaticTree<Key, Key>;
  static constexpr const char* kName = "CT(orig)";
  static bool insert(Tree& t, Key k, Key v) { return t.insert(k, v); }
  static bool remove(Tree& t, Key k) { return t.remove(k); }
  static bool find(Tree& t, Key k) { return t.contains(k); }
  static std::size_t range(Tree& t, Key lo, Key hi) {
    return t.range_nonatomic(lo, hi).size();
  }
};

struct EpochBstAdapter {
  using Tree = baselines::EpochBST<Key, Key>;
  static constexpr const char* kName = "EpochBST";
  static bool insert(Tree& t, Key k, Key v) { return t.insert(k, v); }
  static bool remove(Tree& t, Key k) { return t.remove(k); }
  static bool find(Tree& t, Key k) { return t.contains(k); }
  static std::size_t range(Tree& t, Key lo, Key hi) {
    return t.range(lo, hi).size();
  }
};

// KST stand-in: the double-collect validated range query mechanism on the
// plain BST (see DESIGN.md substitutions).
struct DoubleCollectAdapter {
  using Tree = ds::NBBST<Key, Key>;
  static constexpr const char* kName = "DC-BST(KST-like)";
  static bool insert(Tree& t, Key k, Key v) { return t.insert(k, v); }
  static bool remove(Tree& t, Key k) { return t.remove(k); }
  static bool find(Tree& t, Key k) { return t.contains(k); }
  static std::size_t range(Tree& t, Key lo, Key hi) {
    return t.range_double_collect(lo, hi).size();
  }
};

// SnapTree stand-in: lock-based lazy copy-on-write tree.
struct CowTreeAdapter {
  using Tree = baselines::CowTree<Key, Key>;
  static constexpr const char* kName = "COW(SnapTree-like)";
  static bool insert(Tree& t, Key k, Key v) { return t.insert(k, v); }
  static bool remove(Tree& t, Key k) { return t.remove(k); }
  static bool find(Tree& t, Key k) { return t.contains(k); }
  static std::size_t range(Tree& t, Key lo, Key hi) {
    return t.range(lo, hi).size();
  }
};

}  // namespace vcas::bench
