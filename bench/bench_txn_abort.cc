// Compare-and-batch transactions under contention: abort rate and commit
// throughput as the conflict window shrinks.
//
// Every writer runs the canonical RMW — transfer between two random
// accounts inside one transaction (two witnessed reads, two conditional
// puts) — over a span of `span` accounts. A small span means most
// transactions race on overlapping read sets and must retry; a large span
// approximates disjoint access. Two snapshot readers audit the conserved
// sum the whole time (their multiGets also drive the read-side helping of
// in-flight descriptors), and the run FAILS if any audit ever tears — the
// bench doubles as a correctness soak.
//
// Columns: committed txns/s, attempted txns/s, abort rate. The abort rate
// vs span curve is the cost of optimism; the committed column is what
// survives it. With VCAS_BENCH_JSON=1 the same cells land in
// BENCH_txn_abort.json for CI's perf-trajectory artifact.
//
// Env knobs: VCAS_BENCH_MS, VCAS_BENCH_REPS, VCAS_THREADS (writer counts).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "store/backend.h"
#include "store/batch.h"
#include "store/store.h"

namespace {

using namespace vcas::bench;

struct Totals {
  double commits_per_sec = 0;
  double attempts_per_sec = 0;
  bool audits_clean = true;
};

template <typename Store>
Totals run_transfers(Store& store, int writers, Key span, Key initial,
                     int run_ms, std::uint64_t seed) {
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::atomic<bool> clean{true};
  vcas::util::Padded<std::uint64_t> commit_counts[192];
  vcas::util::Padded<std::uint64_t> attempt_counts[192];
  constexpr int kReaders = 2;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(writers + kReaders));

  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      vcas::util::Xoshiro256 rng(seed + static_cast<std::uint64_t>(t) * 7919);
      std::uint64_t commits = 0, attempts = 0;
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      while (!stop.load(std::memory_order_acquire)) {
        const Key from = static_cast<Key>(
            rng.next_in(static_cast<std::uint64_t>(span)));
        const Key to = static_cast<Key>(
            (from + 1 +
             static_cast<Key>(
                 rng.next_in(static_cast<std::uint64_t>(span - 1)))) %
            span);
        const Key amount = 1 + static_cast<Key>(rng.next_in(5));
        // Explicit begin/commit (not transact()) so aborts are countable.
        // Insufficient funds drops the txn without counting an attempt —
        // an empty read-only commit is not a transfer.
        bool committed = false;
        while (!committed) {
          auto txn = store.beginTransaction();
          const Key fb = txn.get(from).value_or(0);
          if (fb < amount) break;
          ++attempts;
          const Key tb = txn.get(to).value_or(0);
          txn.put(from, fb - amount);
          txn.put(to, tb + amount);
          committed = txn.commit().has_value();
          if (stop.load(std::memory_order_acquire)) break;
        }
        if (committed) ++commits;
      }
      commit_counts[t].value = commits;
      attempt_counts[t].value = attempts;
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      std::vector<Key> keys(static_cast<std::size_t>(span));
      for (Key k = 0; k < span; ++k) keys[static_cast<std::size_t>(k)] = k;
      const Key expected = span * initial;
      (void)t;
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      while (!stop.load(std::memory_order_acquire)) {
        Key total = 0;
        for (const auto& v : store.multiGet(keys)) total += v.value_or(0);
        if (total != expected) clean.store(false, std::memory_order_relaxed);
      }
    });
  }

  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  Totals totals;
  const double secs = run_ms / 1000.0;
  std::uint64_t commits = 0, attempts = 0;
  for (int t = 0; t < writers; ++t) {
    commits += commit_counts[t].value;
    attempts += attempt_counts[t].value;
  }
  totals.commits_per_sec = static_cast<double>(commits) / secs;
  totals.attempts_per_sec = static_cast<double>(attempts) / secs;
  totals.audits_clean = clean.load();
  return totals;
}

template <typename Backend>
bool run_backend(const Config& cfg, JsonReport& report) {
  using Store = vcas::store::ShardedStore<Key, Key, Backend>;
  constexpr Key kInitial = 1000;
  const Key spans[] = {8, 64, 1024};
  bool all_clean = true;
  for (Key span : spans) {
    for (int writers : cfg.threads) {
      Totals avg;
      for (int rep = 0; rep < cfg.reps; ++rep) {
        Store store(8);
        store.enable_background_trim(std::chrono::milliseconds(5));
        {
          typename Store::Batch init;
          for (Key a = 0; a < span; ++a) init.put(a, kInitial);
          store.applyBatch(init);
        }
        const Totals t = run_transfers(store, writers, span, kInitial,
                                       cfg.run_ms, 777 + rep);
        avg.commits_per_sec += t.commits_per_sec;
        avg.attempts_per_sec += t.attempts_per_sec;
        avg.audits_clean = avg.audits_clean && t.audits_clean;
        store.disable_background_trim();
        vcas::ebr::drain_for_tests();
      }
      avg.commits_per_sec /= cfg.reps;
      avg.attempts_per_sec /= cfg.reps;
      const double abort_rate =
          avg.attempts_per_sec > 0
              ? 1.0 - avg.commits_per_sec / avg.attempts_per_sec
              : 0.0;
      std::printf(
          "txn-abort %-12s span=%-5lld writers=%-3d %10.0f commits/s "
          "%10.0f attempts/s  abort=%5.1f%%%s\n",
          Store::backend_name(), static_cast<long long>(span), writers,
          avg.commits_per_sec, avg.attempts_per_sec, abort_rate * 100.0,
          avg.audits_clean ? "" : "  AUDIT TORN");
      report.add(JsonRow()
                     .field("backend", Store::backend_name())
                     .field("span", static_cast<long long>(span))
                     .field("writers", static_cast<long long>(writers))
                     .field("ops_per_sec", avg.commits_per_sec)
                     .field("attempts_per_sec", avg.attempts_per_sec)
                     .field("abort_rate", abort_rate));
      all_clean = all_clean && avg.audits_clean;
    }
    std::printf("\n");
  }
  return all_clean;
}

}  // namespace

int main() {
  Config cfg = config_from_env();
  std::printf("== Transaction abort rate vs contention ==\n");
  std::printf("(2-read/2-write transfers over a span of hot accounts, "
              "8 shards, 2 audit readers; %dms runs, %d reps)\n\n",
              cfg.run_ms, cfg.reps);
  JsonReport report("txn_abort");
  bool clean = true;
  clean = run_backend<vcas::store::ListBackend>(cfg, report) && clean;
  clean = run_backend<vcas::store::BstBackend>(cfg, report) && clean;
  clean = run_backend<vcas::store::ChromaticBackend>(cfg, report) && clean;
  if (!clean) {
    std::printf("FAIL: some conserved-sum audit tore\n");
    return 1;
  }
  return 0;
}
