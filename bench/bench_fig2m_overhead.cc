// Figure 2m: the headline overhead measurement — throughput of the
// versioned trees normalized to their original (non-snapshot) builds,
// across workloads, at the highest configured thread count. The paper
// reports 2.7%-9.1% overhead (normalized throughput 0.909-0.973).
//
// Also includes the indirect (Algorithm 1, VNode-based) BST so the
// Section 5 "avoiding indirection" optimization is visible in the same
// table.
#include <algorithm>
#include <cstdio>

#include "bench/adapters.h"
#include "bench/harness.h"

namespace {

using namespace vcas::bench;

struct Mix {
  const char* label;
  int ins, del, find;
};

template <typename A>
double measure(const Config& cfg, const Mix& mix, std::size_t size,
               int threads) {
  const Key range = key_range_for(size, std::max(mix.ins, 1), mix.del);
  double mops = 0;
  for (int rep = 0; rep < cfg.reps; ++rep) {
    typename A::Tree tree;
    prefill<A>(tree, size, range, 4000 + rep);
    MixResult r = run_mix<A>(tree, threads, mix.ins, mix.del, mix.find, 0,
                             range, 0, cfg.run_ms, 51 + rep);
    mops += r.total_mops;
    vcas::ebr::drain_for_tests();
  }
  return mops / cfg.reps;
}

}  // namespace

int main() {
  const Config cfg = config_from_env();
  int threads = 1;
  for (int t : cfg.threads) threads = std::max(threads, t);

  std::printf("== Figure 2m: overhead of Vcas vs original, p=%d ==\n", threads);
  std::printf("(normalized throughput; paper reports 0.909-0.973)\n\n");
  std::printf("%-26s | %-10s %-10s %-6s | %-10s %-10s %-6s | %-10s %-6s\n",
              "workload", "BST", "VcasBST", "ratio", "CT", "VcasCT", "ratio",
              "VcasBSTind", "ratio");

  const Mix mixes[] = {
      {"3i-2d-95f (lookup-heavy)", 3, 2, 95},
      {"30i-20d-50f (update-heavy)", 30, 20, 50},
      {"50i-50d (update-only)", 50, 50, 0},
      {"5i-5d-90f (read-mostly)", 5, 5, 90},
  };
  for (const Mix& mix : mixes) {
    const double bst = measure<NbbstAdapter>(cfg, mix, cfg.size_small, threads);
    const double vbst =
        measure<VcasBstAdapter>(cfg, mix, cfg.size_small, threads);
    const double vbst_ind =
        measure<VcasBstIndirectAdapter>(cfg, mix, cfg.size_small, threads);
    const double ct = measure<CtAdapter>(cfg, mix, cfg.size_small, threads);
    const double vct = measure<VcasCtAdapter>(cfg, mix, cfg.size_small, threads);
    std::printf("%-26s | %10.3f %10.3f %6.3f | %10.3f %10.3f %6.3f | %10.3f %6.3f\n",
                mix.label, bst, vbst, bst > 0 ? vbst / bst : 0, ct, vct,
                ct > 0 ? vct / ct : 0, vbst_ind,
                bst > 0 ? vbst_ind / bst : 0);
  }
  return 0;
}
