// Microbenchmarks (google-benchmark) for the core vCAS operations, the
// Section 5 indirection ablation at the object level, and the ISSUE 4
// write-path ablation (clock-gated coalescing + VNode recycling).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "ebr/ebr.h"
#include "vcas/camera.h"
#include "vcas/versioned_cas.h"
#include "vcas/versioned_ptr.h"

namespace {

void BM_TakeSnapshot(benchmark::State& state) {
  vcas::Camera cam;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cam.takeSnapshot());
  }
}
BENCHMARK(BM_TakeSnapshot);

void BM_TakeSnapshotContended(benchmark::State& state) {
  static vcas::Camera cam;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cam.takeSnapshot());
  }
}
BENCHMARK(BM_TakeSnapshotContended)->Threads(2)->Threads(4);

void BM_VRead(benchmark::State& state) {
  vcas::Camera cam;
  vcas::VersionedCAS<std::int64_t> obj(42, &cam);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj.vRead());
  }
}
BENCHMARK(BM_VRead);

void BM_VCas(benchmark::State& state) {
  vcas::Camera cam;
  vcas::VersionedCAS<std::int64_t> obj(0, &cam);
  std::int64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj.vCAS(v, v + 1));
    ++v;
  }
}
BENCHMARK(BM_VCas);

void BM_PlainCasBaseline(benchmark::State& state) {
  std::atomic<std::int64_t> obj{0};
  std::int64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj.compare_exchange_strong(v, v + 1));
    ++v;
  }
}
BENCHMARK(BM_PlainCasBaseline);

// Wait-free readSnapshot: cost scales with the number of versions stamped
// after the handle (state.range(0)).
void BM_ReadSnapshotByAge(benchmark::State& state) {
  vcas::Camera cam;
  vcas::VersionedCAS<std::int64_t> obj(0, &cam);
  const vcas::Timestamp handle = cam.takeSnapshot();
  std::int64_t v = 0;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    obj.vCAS(v, v + 1);
    ++v;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj.readSnapshot(handle));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReadSnapshotByAge)->Range(1, 1 << 12)->Complexity();

// Write-path ablation (ISSUE 4): the same update stream with the version
// chain left to grow (chained; nodes still come from the recycling pool)
// vs coalesced in place (each write unlinks its equal-stamped predecessor
// and recycles it — with no snapshots the chain stays at one node and the
// pool serves every allocation from the just-retired nodes).
void BM_InstallOverChained(benchmark::State& state) {
  vcas::Camera cam;
  vcas::VersionedCAS<std::int64_t> obj(0, &cam);
  std::int64_t v = 0;
  for (auto _ : state) {
    // Per-op pin, like the store's put(): the realistic write-path cost.
    vcas::ebr::Guard g;
    auto* head = obj.vReadNode();
    benchmark::DoNotOptimize(obj.install_over(head, ++v));
  }
  state.counters["versions"] = static_cast<double>(obj.version_count());
}
BENCHMARK(BM_InstallOverChained);

void BM_InstallOverCoalesced(benchmark::State& state) {
  vcas::Camera cam;
  vcas::VersionedCAS<std::int64_t> obj(0, &cam);
  std::int64_t v = 0;
  const auto drop_all = [](const std::int64_t&) { return true; };
  for (auto _ : state) {
    vcas::ebr::Guard g;
    auto* head = obj.vReadNode();
    if (auto* mine = obj.install_over(head, ++v)) {
      obj.try_coalesce_below(mine, drop_all);
    }
  }
  state.counters["versions"] = static_cast<double>(obj.version_count());
  vcas::ebr::drain_for_tests();
}
BENCHMARK(BM_InstallOverCoalesced);

// Indirection ablation: reading the current value through a VNode
// (Algorithm 1) vs through the node itself (Figure 9).
struct MicroNode : vcas::Versioned<MicroNode> {
  std::int64_t payload = 7;
};

void BM_ReadIndirect(benchmark::State& state) {
  vcas::Camera cam;
  std::vector<MicroNode> nodes(3);
  vcas::VersionedCAS<MicroNode*> obj(&nodes[0], &cam);
  obj.vCAS(&nodes[0], &nodes[1]);
  obj.vCAS(&nodes[1], &nodes[2]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj.vRead()->payload);
  }
}
BENCHMARK(BM_ReadIndirect);

void BM_ReadDirect(benchmark::State& state) {
  vcas::Camera cam;
  std::vector<MicroNode> nodes(3);
  vcas::VersionedPtr<MicroNode> obj(&nodes[0], &cam);
  obj.vCAS(&nodes[0], &nodes[1]);
  obj.vCAS(&nodes[1], &nodes[2]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj.vRead()->payload);
  }
}
BENCHMARK(BM_ReadDirect);

}  // namespace

BENCHMARK_MAIN();
