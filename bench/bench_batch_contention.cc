// Contended atomic batches: the cost of the cooperative-helping protocol.
//
// Every writer applies `batch_size`-op batches; in the `overlap` mode all
// writers batch over the SAME hot key set (worst case: every batch
// conflicts with every other, and conflicting batches finish each other
// through the descriptor's help path), in the `disjoint` mode each writer
// owns a private key window (batches never conflict; the descriptor is
// pure overhead). Concurrent snapshot readers multiGet the hot keys, which
// drives the read-side helping path (resolving records whose commit stamp
// is still undecided).
//
// Columns: batch commits/s (all writers), batched key-ops/s, and reader
// multiGets/s. Comparing overlap vs disjoint at equal thread counts shows
// what conflict-driven helping costs; scaling readers shows that read-side
// helping does not collapse under a hot commit window.
//
// Env knobs: VCAS_BENCH_MS, VCAS_BENCH_REPS, VCAS_THREADS (writer counts).
#include <atomic>
#include <cstdio>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "store/backend.h"
#include "store/batch.h"
#include "store/store.h"

namespace {

using namespace vcas::bench;

struct Totals {
  double batches_per_sec = 0;
  double keyops_per_sec = 0;
  double reads_per_sec = 0;
};

template <typename Store>
Totals run_contended(Store& store, int writers, int readers, bool overlap,
                     int batch_size, Key hot_span, int run_ms,
                     std::uint64_t seed) {
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  vcas::util::Padded<std::uint64_t> batch_counts[192];
  vcas::util::Padded<std::uint64_t> read_counts[192];
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(writers + readers));

  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      vcas::util::Xoshiro256 rng(seed + static_cast<std::uint64_t>(t) * 7919);
      // overlap: everyone hammers [1, hot_span]; disjoint: private window.
      const Key base = overlap ? 1 : 1 + static_cast<Key>(t) * hot_span;
      std::uint64_t n = 0;
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      while (!stop.load(std::memory_order_acquire)) {
        typename Store::Batch batch;
        for (int i = 0; i < batch_size; ++i) {
          const Key k = base + static_cast<Key>(rng.next_in(
                                   static_cast<std::uint64_t>(hot_span)));
          batch.put(k, static_cast<Key>(n));
        }
        store.applyBatch(batch);
        ++n;
      }
      batch_counts[t].value = n;
    });
  }
  for (int t = 0; t < readers; ++t) {
    threads.emplace_back([&, t] {
      vcas::util::Xoshiro256 rng(seed + 555 + static_cast<std::uint64_t>(t));
      std::vector<Key> keys(8);
      std::uint64_t n = 0;
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      while (!stop.load(std::memory_order_acquire)) {
        for (auto& k : keys) {
          k = 1 + static_cast<Key>(
                      rng.next_in(static_cast<std::uint64_t>(hot_span)));
        }
        store.multiGet(keys);  // hot window: resolves in-flight batches
        ++n;
      }
      read_counts[t].value = n;
    });
  }

  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  Totals totals;
  const double secs = run_ms / 1000.0;
  std::uint64_t batches = 0, reads = 0;
  for (int t = 0; t < writers; ++t) batches += batch_counts[t].value;
  for (int t = 0; t < readers; ++t) reads += read_counts[t].value;
  totals.batches_per_sec = static_cast<double>(batches) / secs;
  totals.keyops_per_sec =
      static_cast<double>(batches) * batch_size / secs;
  totals.reads_per_sec = static_cast<double>(reads) / secs;
  return totals;
}

template <typename Backend>
void run_backend(const Config& cfg, JsonReport& report) {
  using Store = vcas::store::ShardedStore<Key, Key, Backend>;
  constexpr int kBatchSize = 8;
  constexpr Key kHotSpan = 64;  // small on purpose: conflicts are the point
  constexpr int kReaders = 2;
  for (bool overlap : {true, false}) {
    for (int writers : cfg.threads) {
      Totals avg;
      for (int rep = 0; rep < cfg.reps; ++rep) {
        Store store(8);
        store.enable_background_trim(std::chrono::milliseconds(5));
        // Seed the hot window so readers always resolve live cells.
        for (Key k = 1; k <= kHotSpan; ++k) store.put(k, 0);
        const Totals t =
            run_contended(store, writers, kReaders, overlap, kBatchSize,
                          kHotSpan, cfg.run_ms, 777 + rep);
        avg.batches_per_sec += t.batches_per_sec;
        avg.keyops_per_sec += t.keyops_per_sec;
        avg.reads_per_sec += t.reads_per_sec;
        store.disable_background_trim();
        vcas::ebr::drain_for_tests();
      }
      std::printf(
          "batch-contention %-12s %-8s writers=%-3d readers=%d "
          "%10.0f batches/s %12.0f keyops/s %12.0f multiGets/s\n",
          Store::backend_name(), overlap ? "overlap" : "disjoint", writers,
          kReaders, avg.batches_per_sec / cfg.reps,
          avg.keyops_per_sec / cfg.reps, avg.reads_per_sec / cfg.reps);
      report.add(JsonRow()
                     .field("backend", Store::backend_name())
                     .field("mode", overlap ? "overlap" : "disjoint")
                     .field("writers", static_cast<long long>(writers))
                     .field("readers", static_cast<long long>(kReaders))
                     .field("ops_per_sec", avg.keyops_per_sec / cfg.reps)
                     .field("batches_per_sec", avg.batches_per_sec / cfg.reps)
                     .field("reads_per_sec", avg.reads_per_sec / cfg.reps));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  Config cfg = config_from_env();
  std::printf("== Contended atomic batches: helping under conflict ==\n");
  std::printf("(8-op batches over a 64-key hot span, 8 shards; %dms runs, "
              "%d reps)\n\n",
              cfg.run_ms, cfg.reps);
  JsonReport report("batch_contention");
  run_backend<vcas::store::ListBackend>(cfg, report);
  run_backend<vcas::store::BstBackend>(cfg, report);
  run_backend<vcas::store::ChromaticBackend>(cfg, report);
  return 0;
}
