// Store scalability sweep: write throughput of ShardedStore across
// threads x shard counts x backends, against the single-shard
// configuration as the contention baseline.
//
// Three workloads per cell:
//   put    — 100% single-key upserts over uniform keys
//   batch  — the same write stream grouped into atomic 8-op batches
//   mixed  — 80% puts / 20% cross-shard multiGet(8)
//
// Sharding pays twice: the update CAS contends on 1/N of the key space,
// and per-shard structures stay smaller (shorter descents). The shared
// camera keeps cross-shard queries atomic at every shard count, so the
// mixed column shows what the consistency guarantee costs as N grows.
//
// Env knobs: VCAS_BENCH_MS, VCAS_BENCH_REPS, VCAS_THREADS, VCAS_SIZE
// (key-space size, default scaled down to 16384 — the list backend is
// O(n) per point op). Thread counts always include 8 (the acceptance
// configuration) unless VCAS_THREADS overrides the list explicitly.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "store/backend.h"
#include "store/batch.h"
#include "store/store.h"

namespace {

using namespace vcas::bench;

enum class Workload { kPut, kBatch, kMixed };

constexpr const char* name_of(Workload w) {
  switch (w) {
    case Workload::kPut:
      return "put";
    case Workload::kBatch:
      return "batch8";
    default:
      return "80p-20mg";
  }
}

// Write-heavy driver over a store; returns Mops/s of applied operations
// (batch ops count individually; a multiGet(8) counts as one op).
template <typename Store>
double run_store(Store& store, int threads, Workload workload, Key range,
                 int run_ms, std::uint64_t seed) {
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  vcas::util::Padded<std::uint64_t> ops[192];
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      vcas::util::Xoshiro256 rng(seed + static_cast<std::uint64_t>(t) * 7919);
      std::uint64_t n = 0;
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      while (!stop.load(std::memory_order_acquire)) {
        switch (workload) {
          case Workload::kPut: {
            const Key k = 1 + static_cast<Key>(
                                  rng.next_in(static_cast<std::uint64_t>(range)));
            store.put(k, k);
            ++n;
            break;
          }
          case Workload::kBatch: {
            typename Store::Batch batch;
            for (int i = 0; i < 8; ++i) {
              const Key k = 1 + static_cast<Key>(rng.next_in(
                                    static_cast<std::uint64_t>(range)));
              batch.put(k, k);
            }
            store.applyBatch(batch);
            n += 8;
            break;
          }
          case Workload::kMixed: {
            if (rng.next_in(100) < 80) {
              const Key k = 1 + static_cast<Key>(rng.next_in(
                                    static_cast<std::uint64_t>(range)));
              store.put(k, k);
            } else {
              std::vector<Key> keys(8);
              for (auto& k : keys) {
                k = 1 + static_cast<Key>(
                            rng.next_in(static_cast<std::uint64_t>(range)));
              }
              store.multiGet(keys);
            }
            ++n;
            break;
          }
        }
      }
      ops[t].value = n;
    });
  }
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();

  std::uint64_t total = 0;
  for (int t = 0; t < threads; ++t) total += ops[t].value;
  return static_cast<double>(total) / (run_ms / 1000.0) / 1e6;
}

template <typename Backend>
void run_backend(const Config& cfg, const std::vector<int>& threads_list,
                 Key range, JsonReport& report) {
  using Store = vcas::store::ShardedStore<Key, Key, Backend>;
  const std::size_t shard_counts[] = {1, 4, 16};
  for (Workload workload :
       {Workload::kPut, Workload::kBatch, Workload::kMixed}) {
    for (std::size_t shards : shard_counts) {
      for (int threads : threads_list) {
        double mops = 0;
        for (int rep = 0; rep < cfg.reps; ++rep) {
          Store store(shards);
          store.enable_background_trim(std::chrono::milliseconds(10));
          // Prefill half the key space so puts mix inserts and updates.
          vcas::util::Xoshiro256 rng(99 + rep);
          for (Key i = 0; i < range / 2; ++i) {
            const Key k = 1 + static_cast<Key>(
                                  rng.next_in(static_cast<std::uint64_t>(range)));
            store.put(k, k);
          }
          mops += run_store(store, threads, workload, range, cfg.run_ms,
                            777 + rep);
          store.disable_background_trim();
          vcas::ebr::drain_for_tests();
        }
        std::printf("store %-12s %-8s shards=%-3zu range=%-7lld p=%-3d"
                    " %8.3f Mops/s\n",
                    Store::backend_name(), name_of(workload), shards,
                    static_cast<long long>(range), threads, mops / cfg.reps);
        report.add(JsonRow()
                       .field("backend", Store::backend_name())
                       .field("workload", name_of(workload))
                       .field("shards", static_cast<long long>(shards))
                       .field("range", static_cast<long long>(range))
                       .field("threads", static_cast<long long>(threads))
                       .field("ops_per_sec", mops / cfg.reps * 1e6));
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  Config cfg = config_from_env();
  // The acceptance configuration is 8+ threads; keep 8 in the sweep unless
  // the user pinned an explicit list.
  std::vector<int> threads_list = cfg.threads;
  if (std::getenv("VCAS_THREADS") == nullptr &&
      std::find(threads_list.begin(), threads_list.end(), 8) ==
          threads_list.end()) {
    threads_list.push_back(8);
  }
  // Key space scaled for the O(n) list backend; override with VCAS_SIZE.
  const Key range = std::getenv("VCAS_SIZE") != nullptr
                        ? static_cast<Key>(cfg.size_small)
                        : 16384;

  std::printf("== ShardedStore scalability: threads x shards x backend ==\n");
  std::printf("(write throughput vs the single-shard baseline; %dms runs, "
              "%d reps)\n\n",
              cfg.run_ms, cfg.reps);
  JsonReport report("store_scalability");
  run_backend<vcas::store::ListBackend>(cfg, threads_list, range, report);
  run_backend<vcas::store::BstBackend>(cfg, threads_list, range, report);
  run_backend<vcas::store::ChromaticBackend>(cfg, threads_list, range, report);
  return 0;
}
